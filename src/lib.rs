//! # `manet-local-mutex` — local mutual exclusion in mobile ad hoc networks
//!
//! A full reproduction of Attiya, Kogan and Welch, *"Efficient and Robust
//! Local Mutual Exclusion in Mobile Ad Hoc Networks"* (ICDCS 2008; thesis
//! version: A. Kogan, Technion, 2008): the two LME algorithms, every
//! substrate they need (a deterministic MANET simulator, doorways, and
//! distributed coloring procedures), comparison baselines, and the
//! experiment harness that regenerates the paper's table and figures.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event MANET simulator;
//! * [`doorway`] — synchronous/asynchronous/double doorways (Figures 1–4);
//! * [`coloring`] — greedy + Linial coloring over cover-free families;
//! * [`lme`] — the paper's Algorithm 1 (two recoloring variants) and
//!   Algorithm 2;
//! * [`baselines`] — Chandy–Misra and Choy–Singh comparators;
//! * [`harness`] — topologies, workloads, safety/liveness checkers,
//!   metrics, failure-locality probes, and the one-call runner;
//! * [`check`] — bounded schedule-space model checker with witness
//!   shrinking and byte-for-byte replay (`lme check`).
//!
//! ## Quickstart
//!
//! ```
//! use manet_local_mutex::harness::{run_algorithm, AlgKind, RunSpec};
//! use manet_local_mutex::harness::topology;
//!
//! let spec = RunSpec { horizon: 20_000, ..RunSpec::default() };
//! let out = run_algorithm(AlgKind::A2, &spec, &topology::line(5), &[]);
//! assert!(out.violations.is_empty());          // never two neighbors eating
//! assert!(out.metrics.meals.iter().all(|&m| m > 0)); // everyone ate
//! println!("static response times: {}", out.static_summary());
//! ```
//!
//! See `examples/` for runnable application scenarios and `crates/bench`
//! for the experiment binaries behind EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use coloring;
pub use doorway;
pub use harness;
pub use lme_check as check;
pub use local_mutex as lme;
pub use manet_sim as sim;
