#!/usr/bin/env bash
# Full local gate: formatting, lints, tests. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "All checks passed."
