//! Integration test replaying the paper's Figure 6 scenario end to end
//! (crash containment + the `SD^f` return path). Mirrors the
//! `fig6_scenario` experiment binary with hard assertions.

use manet_local_mutex::harness::{Metrics, SafetyMonitor, Workload};
use manet_local_mutex::lme::Algorithm1;
use manet_local_mutex::sim::{DiningState, Engine, NodeId, SimConfig, SimTime};

const P4: NodeId = NodeId(0);
const P3: NodeId = NodeId(1);
const P2: NodeId = NodeId(2);
const P1: NodeId = NodeId(3);

fn scenario_engine() -> Engine<Algorithm1> {
    // Chain p4 – p3 – p2 – p1 with colors p3 < p4, p3 < p2 < p1.
    let positions = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)];
    let colors = [1i64, 0, 2, 3];
    Engine::new(SimConfig::default(), positions, move |seed| {
        let mut node = Algorithm1::greedy(&seed);
        node.set_initial_coloring(&colors);
        node
    })
}

#[test]
fn crash_is_contained_and_return_path_frees_p2() {
    let mut engine = scenario_engine();
    let (metrics, data) = Metrics::new(4);
    engine.add_hook(Box::new(metrics));
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::one_shot(20..=20, 1)));

    engine.crash_at(SimTime(5), P4);
    for n in [P3, P2, P1] {
        engine.set_hungry_at(SimTime(10), n);
    }

    // Phase 1: containment at distance 2.
    engine.run_until(SimTime(4_000));
    assert_eq!(data.borrow().meals[P1.index()], 1, "p1 (distance 3) eats");
    assert_eq!(engine.dining_state(P3), DiningState::Hungry, "p3 blocked");
    assert_eq!(engine.dining_state(P2), DiningState::Hungry, "p2 blocked");
    // p2 granted p1's fork request and is stuck in its low phase; it must
    // not have taken a return path yet.
    assert_eq!(engine.protocol(P2).stats.return_paths, 0);

    // Phase 2: p3 departs; the return path unblocks p2.
    engine.teleport_at(SimTime(4_000), P3, (50.0, 0.0));
    engine.run_until(SimTime(8_000));
    assert!(
        engine.protocol(P2).stats.return_paths >= 1,
        "p2 took the return path"
    );
    assert_eq!(
        data.borrow().meals[P2.index()],
        1,
        "p2 eats after the return path"
    );
    assert_eq!(data.borrow().meals[P3.index()], 1, "p3 eats alone");
}

#[test]
fn without_mobility_p2_and_p3_stay_blocked_indefinitely() {
    // Control: no movement — the blocked region persists (failure locality
    // is about *containment*, not recovery).
    let mut engine = scenario_engine();
    let (metrics, data) = Metrics::new(4);
    engine.add_hook(Box::new(metrics));
    engine.add_hook(Box::new(Workload::one_shot(20..=20, 1)));
    engine.crash_at(SimTime(5), P4);
    for n in [P3, P2, P1] {
        engine.set_hungry_at(SimTime(10), n);
    }
    engine.run_until(SimTime(20_000));
    assert_eq!(data.borrow().meals[P1.index()], 1);
    assert_eq!(data.borrow().meals[P2.index()], 0);
    assert_eq!(data.borrow().meals[P3.index()], 0);
}

#[test]
fn without_crash_everyone_eats() {
    // Control: no crash — the same coloring serves all four nodes.
    let mut engine = scenario_engine();
    let (metrics, data) = Metrics::new(4);
    engine.add_hook(Box::new(metrics));
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::one_shot(20..=20, 1)));
    for n in [P4, P3, P2, P1] {
        engine.set_hungry_at(SimTime(10), n);
    }
    engine.run_until(SimTime(20_000));
    assert_eq!(data.borrow().meals, vec![1, 1, 1, 1]);
}
