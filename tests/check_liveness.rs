//! Liveness-lasso self-validation: under the recycling workload the
//! checker hunts starvation directly — a repeated progress digest with a
//! node hungry across the whole repetition is a schedule segment the
//! adversary can loop forever. With the `unfair-fork` mutation planted
//! (every Algorithm 2 node black-holes fork requests from node 0) the
//! lasso must be found; with the algorithms intact the same exploration
//! must come back clean. The lasso witness must replay deterministically.

use manet_local_mutex::check::{explore, replay, CheckSpec, ExploreConfig, Mutation, Witness};
use manet_local_mutex::harness::AlgKind;

fn clique(n: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            edges.push((a, b));
        }
    }
    edges
}

fn liveness_spec(alg: AlgKind, mutation: Mutation) -> CheckSpec {
    // clique:3 is the smallest instance where the starved node's
    // neighborhood keeps exchanging messages (the digest samples that make
    // the lasso observable); on a 2-line the steady starvation cycle is
    // message-free and therefore invisible by design.
    let mut spec = CheckSpec::new(alg, "clique:3", 3, clique(3));
    spec.mutation = mutation;
    spec.liveness = true;
    spec.think = 10;
    spec
}

fn small_budget() -> ExploreConfig {
    // Recycling runs never drain, so each schedule costs a full horizon;
    // the lasso is reachable on the very first (all-earliest) schedule.
    ExploreConfig {
        max_schedules: 8,
        max_depth: 6,
        ..ExploreConfig::default()
    }
}

#[test]
fn unfair_fork_starvation_is_caught_as_a_lasso() {
    let spec = liveness_spec(AlgKind::A2, Mutation::UnfairFork);
    let result = explore(&spec, &small_budget());
    let witness = result
        .witness
        .expect("the starved node must produce a lasso within the budget");
    assert_eq!(witness.property, "starvation-lasso");
    assert!(
        witness
            .detail
            .contains("hungry across a repeated progress state"),
        "{}",
        witness.detail
    );
    assert!(witness.liveness, "the witness must record the workload");
}

#[test]
fn lasso_witness_replays_to_the_same_violation() {
    let spec = liveness_spec(AlgKind::A2, Mutation::UnfairFork);
    let witness = explore(&spec, &small_budget())
        .witness
        .expect("lasso must be found");
    let reparsed = Witness::from_json(&witness.to_json()).expect("witness JSON must parse");
    assert_eq!(reparsed, witness);
    let (spec, verdict) = replay(&reparsed).expect("witness must describe a valid instance");
    assert!(spec.liveness, "replayed spec must re-arm the workload");
    let violation = verdict.violation.expect("replay must reproduce the lasso");
    assert_eq!(violation.property, witness.property);
    assert_eq!(violation.detail, witness.detail);
}

#[test]
fn intact_algorithms_are_lasso_clean() {
    for alg in [AlgKind::A2, AlgKind::A1Greedy] {
        let spec = liveness_spec(alg, Mutation::None);
        let result = explore(&spec, &small_budget());
        assert!(
            result.witness.is_none(),
            "{}: spurious lasso: {:?}",
            alg.name(),
            result.witness.map(|w| w.detail)
        );
        assert!(result.schedules > 0);
    }
}
