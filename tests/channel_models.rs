//! Channel-model battery (DESIGN.md §14).
//!
//! Five pillars:
//!
//! 1. **Iid is the bare channel.** `channel: Iid` (the default) is
//!    bit-for-bit the historical i.i.d. delay draw: the pinned golden
//!    fingerprint of `tests/reliable_delivery.rs` must hold under an
//!    explicitly-spelled `Iid`, and under an all-good Gilbert–Elliott
//!    chain (whose dedicated RNG stream never touches the main one).
//! 2. **Constant bandwidth serializes.** A burst through one link arrives
//!    in FIFO order, spaced exactly `ticks_per_frame` apart, with the
//!    queueing counters accounting for every waiting frame; a transmit
//!    queue past `max_queue` is a structured
//!    [`RunAbort::ChannelQueueOverflow`], and a frame time that cannot fit
//!    the legal delay window is a [`RunAbort::DelayOutOfWindow`] naming
//!    the model — never a silent clamp.
//! 3. **Shared medium conserves capacity.** The fair-share allocation
//!    never hands any neighborhood more than the medium's capacity.
//! 4. **Gilbert–Elliott loses at the stationary rate.** The empirical
//!    loss fraction of a long run converges to π_bad = p / (p + q).
//! 5. **Determinism.** Every model is byte-identical across `--jobs`
//!    values and across repeated runs.

use std::cell::RefCell;
use std::rc::Rc;

use harness::{run_algorithm, topology, AlgKind, RunSpec, SweepSpec, Topo};
use local_mutex::testutil::AutoExit;
use local_mutex::Algorithm2;
use manet_sim::{
    fair_share_rates, ChannelConfig, Context, DiningState, Engine, Event, NodeId, Protocol,
    RunAbort, SimConfig, SimTime,
};

// ---------------------------------------------------------------------
// 1. Iid (and a silent Gilbert–Elliott chain) are the bare channel.
// ---------------------------------------------------------------------

/// Trace-level fingerprint of one bare-channel A2 run — the same workload
/// `tests/reliable_delivery.rs` pins, parameterized by channel model.
fn fingerprint(channel: ChannelConfig) -> (u64, u64, usize, Option<u64>) {
    let cfg = SimConfig {
        seed: 42,
        trace: true,
        channel,
        ..SimConfig::default()
    };
    let positions: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 0.0)).collect();
    let mut eng = Engine::new(cfg, positions, |seed| Algorithm2::new(&seed));
    eng.add_hook(Box::new(AutoExit::new(8)));
    for i in 0..6u32 {
        eng.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
    }
    eng.run_until(SimTime(6_000));
    let stats = eng.stats();
    (
        stats.events,
        stats.messages_sent,
        eng.trace().len(),
        eng.state_digest(),
    )
}

/// Pinned when the ARQ shim landed (PR 7); the channel subsystem must not
/// move any of these numbers on the default path.
const GOLDEN_EVENTS: u64 = 46;
const GOLDEN_MESSAGES: u64 = 34;
const GOLDEN_TRACE_LEN: usize = 51;
const GOLDEN_DIGEST: Option<u64> = Some(4863837214346979772);

#[test]
fn explicit_iid_matches_the_golden_fingerprint() {
    let a = fingerprint(ChannelConfig::Iid);
    assert_eq!(
        (a.0, a.1, a.2),
        (GOLDEN_EVENTS, GOLDEN_MESSAGES, GOLDEN_TRACE_LEN),
        "explicit Iid drifted from the golden bare-channel run"
    );
    assert_eq!(a.3, GOLDEN_DIGEST, "explicit Iid state digest drifted");
}

#[test]
fn all_good_gilbert_elliott_is_bit_for_bit_iid() {
    // A chain that can never leave the good state and never loses there
    // must be invisible: its transitions come from a dedicated RNG stream
    // and its delay is the exact i.i.d. draw, so even the state digest
    // matches the golden run.
    let ge = fingerprint(ChannelConfig::GilbertElliott {
        p_good_to_bad: 0.0,
        p_bad_to_good: 1.0,
        loss_good: 0.0,
        loss_bad: 1.0,
    });
    assert_eq!(
        ge,
        (
            GOLDEN_EVENTS,
            GOLDEN_MESSAGES,
            GOLDEN_TRACE_LEN,
            GOLDEN_DIGEST
        ),
        "an all-good Gilbert–Elliott chain perturbed the bare channel"
    );
}

// ---------------------------------------------------------------------
// 2. Constant bandwidth: FIFO serialization, structured aborts.
// ---------------------------------------------------------------------

/// Node 0 fires `burst` messages at node 1 the instant it goes hungry;
/// node 1 records `(arrival time, payload)` pairs.
struct Burster {
    burst: u64,
    arrivals: Rc<RefCell<Vec<(SimTime, u64)>>>,
}

impl Protocol for Burster {
    type Msg = u64;

    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Hungry => {
                for k in 0..self.burst {
                    ctx.send(NodeId(1), k);
                }
            }
            Event::Message { msg, .. } => {
                self.arrivals.borrow_mut().push((ctx.time(), msg));
            }
            _ => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        DiningState::Thinking
    }
}

/// Run a two-node burst under `channel`; returns (engine, arrivals).
#[allow(clippy::type_complexity)]
fn burst_run(
    channel: ChannelConfig,
    burst: u64,
    horizon: u64,
) -> (Engine<Burster>, Rc<RefCell<Vec<(SimTime, u64)>>>) {
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    let sink = arrivals.clone();
    let cfg = SimConfig {
        seed: 9,
        channel,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, vec![(0.0, 0.0), (1.0, 0.0)], move |_| Burster {
        burst,
        arrivals: sink.clone(),
    });
    eng.set_hungry_at(SimTime(1), NodeId(0));
    eng.run_until(SimTime(horizon));
    (eng, arrivals)
}

#[test]
fn constant_bandwidth_preserves_fifo_order_and_frame_spacing() {
    let (eng, arrivals) = burst_run(
        ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 3,
            max_queue: 64,
        },
        8,
        1_000,
    );
    assert_eq!(eng.abort(), None, "{:?}", eng.abort());
    let got = arrivals.borrow().clone();
    assert_eq!(got.len(), 8, "every frame must arrive: {got:?}");
    // FIFO: payloads in send order.
    assert!(
        got.windows(2).all(|w| w[0].1 < w[1].1),
        "out-of-order delivery: {got:?}"
    );
    // Serialization: back-to-back frames leave the link exactly
    // `ticks_per_frame` apart — the queueing delay past ν is emergent,
    // not drawn.
    assert!(
        got.windows(2).all(|w| (w[1].0 .0 - w[0].0 .0) == 3),
        "frames not serialized at 3 ticks each: {got:?}"
    );
    let stats = &eng.stats().channel;
    assert_eq!(stats.frames_queued, 7, "all but the first frame waited");
    assert_eq!(stats.queue_peak, 8);
    assert_eq!(stats.frames_lost, 0);
    assert_eq!(stats.burst_transitions, 0);
}

#[test]
fn constant_bandwidth_overflow_is_a_structured_abort() {
    let (eng, _) = burst_run(
        ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 3,
            max_queue: 2,
        },
        8,
        1_000,
    );
    match eng.abort() {
        Some(RunAbort::ChannelQueueOverflow { from, to, limit }) => {
            assert_eq!((*from, *to, *limit), (NodeId(0), NodeId(1), 2));
        }
        other => panic!("expected ChannelQueueOverflow, got {other:?}"),
    }
    let msg = eng.abort().unwrap().to_string();
    assert!(msg.contains("transmit queue overflow"), "{msg}");
}

#[test]
fn misconfigured_bandwidth_aborts_with_the_channel_name() {
    // A 50-tick frame cannot fit the default [1, 10] delay window: the
    // run aborts (naming the model) instead of silently clamping — the
    // same contract the strategy seam has for malformed schedules.
    let (eng, _) = burst_run(
        ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 50,
            max_queue: 64,
        },
        1,
        1_000,
    );
    match eng.abort() {
        Some(RunAbort::DelayOutOfWindow {
            channel,
            delay,
            earliest,
            latest,
            ..
        }) => {
            assert_eq!(*channel, "constant-bandwidth");
            assert_eq!((*delay, *earliest, *latest), (50, 1, 10));
        }
        other => panic!("expected DelayOutOfWindow, got {other:?}"),
    }
    let msg = eng.abort().unwrap().to_string();
    assert!(msg.contains("constant-bandwidth delay 50"), "{msg}");
}

// ---------------------------------------------------------------------
// 3. Shared medium: conservation and liveness under contention.
// ---------------------------------------------------------------------

#[test]
fn fair_share_never_exceeds_capacity_in_any_neighborhood() {
    // Overlapping spans drawn from a clique-ish neighborhood structure:
    // at every node, the audible transmissions' rates must sum to at most
    // the capacity (here 1.0), however the spans overlap.
    let spans: Vec<Vec<NodeId>> = vec![
        vec![NodeId(0), NodeId(1), NodeId(2)],
        vec![NodeId(1), NodeId(2), NodeId(3)],
        vec![NodeId(2), NodeId(3), NodeId(4)],
        vec![NodeId(4), NodeId(5)],
        vec![NodeId(0), NodeId(5)],
    ];
    let rates = fair_share_rates(6, &spans, 1.0);
    assert_eq!(rates.len(), spans.len());
    assert!(rates.iter().all(|&r| r > 0.0), "{rates:?}");
    for x in 0..6u32 {
        let audible: f64 = spans
            .iter()
            .zip(&rates)
            .filter(|(span, _)| span.contains(&NodeId(x)))
            .map(|(_, &r)| r)
            .sum();
        assert!(
            audible <= 1.0 + 1e-9,
            "node {x} hears {audible} > capacity: {rates:?}"
        );
    }
}

#[test]
fn shared_medium_runs_stay_safe_and_feed_everyone() {
    // Behavioral check on a dense topology: contention slows the clique
    // down but never breaks safety or starves it.
    let spec = RunSpec {
        sim: SimConfig {
            seed: 5,
            channel: ChannelConfig::SharedMedium {
                ticks_per_frame: 2,
                max_inflight: 64,
            },
            ..SimConfig::default()
        },
        horizon: 12_000,
        ..RunSpec::default()
    };
    let out = run_algorithm(AlgKind::A2, &spec, &topology::clique(6), &[]);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(
        out.metrics.meals.iter().all(|&m| m > 0),
        "starved node under shared medium: {:?}",
        out.metrics.meals
    );
    assert!(out.abort.is_none(), "{:?}", out.abort);
}

// ---------------------------------------------------------------------
// 4. Gilbert–Elliott: empirical loss near the stationary distribution.
// ---------------------------------------------------------------------

/// Node 0 streams one message per tick at node 1 via a timer chain.
struct Streamer {
    sent: u64,
    limit: u64,
    arrivals: Rc<RefCell<Vec<u64>>>,
}

impl Protocol for Streamer {
    type Msg = u64;

    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Hungry => ctx.set_timer(1, 0),
            Event::Timer { .. } if self.sent < self.limit => {
                ctx.send(NodeId(1), self.sent);
                self.sent += 1;
                ctx.set_timer(1, 0);
            }
            Event::Message { msg, .. } => self.arrivals.borrow_mut().push(msg),
            _ => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        DiningState::Thinking
    }
}

#[test]
fn gilbert_elliott_loss_converges_to_the_stationary_rate() {
    // p = 0.1, q = 0.3 → π_bad = p / (p + q) = 0.25; with loss_good = 0
    // and loss_bad = 1 the empirical loss fraction of a long stream must
    // land near 25%.
    let frames = 4_000u64;
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    let sink = arrivals.clone();
    let cfg = SimConfig {
        seed: 17,
        channel: ChannelConfig::GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 1.0,
        },
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, vec![(0.0, 0.0), (1.0, 0.0)], move |_| Streamer {
        sent: 0,
        limit: frames,
        arrivals: sink.clone(),
    });
    eng.set_hungry_at(SimTime(1), NodeId(0));
    eng.run_until(SimTime(8_000));
    assert_eq!(eng.abort(), None, "{:?}", eng.abort());
    let stats = &eng.stats().channel;
    let delivered = arrivals.borrow().len() as u64;
    assert_eq!(
        delivered + stats.frames_lost,
        frames,
        "every frame is delivered or counted lost"
    );
    let loss = stats.frames_lost as f64 / frames as f64;
    assert!(
        (loss - 0.25).abs() < 0.05,
        "empirical loss {loss:.3} far from stationary 0.25 ({} lost / {frames})",
        stats.frames_lost
    );
    assert!(
        stats.burst_transitions > 0,
        "the chain never moved: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// 5. Determinism: every model, byte-identical across --jobs.
// ---------------------------------------------------------------------

#[test]
fn every_channel_model_is_jobs_invariant() {
    let models = [
        ChannelConfig::Iid,
        ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 2,
            max_queue: 64,
        },
        ChannelConfig::SharedMedium {
            ticks_per_frame: 2,
            max_inflight: 64,
        },
        ChannelConfig::burst_loss_default(),
    ];
    for channel in models {
        let name = channel.name();
        let spec = SweepSpec::new(
            format!("ring6/{name}"),
            Topo::Geo(topology::ring(6)),
            RunSpec {
                sim: SimConfig {
                    seed: 3,
                    channel,
                    ..SimConfig::default()
                },
                horizon: 5_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seeds([3, 4]);
        let serial = spec.run(1).jsonl();
        assert_eq!(
            serial,
            spec.run(4).jsonl(),
            "{name}: sweep JSONL depends on --jobs"
        );
        assert_eq!(serial, spec.run(1).jsonl(), "{name}: sweep not repeatable");
    }
}
