//! Property-based safety tests: random topologies, workloads, mobility and
//! crash schedules must never produce two eating neighbors — for any
//! algorithm. This is the paper's safety theorem (Lemma 3 / Theorem 25)
//! exercised adversarially.

use manet_local_mutex::harness::{run_algorithm, AlgKind, RunSpec};
use manet_local_mutex::sim::{Command, NodeId, Position, SimConfig, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Scenario {
    kind_idx: usize,
    positions: Vec<(f64, f64)>,
    seed: u64,
    moves: Vec<(u64, u32, (f64, f64))>,
    crashes: Vec<(u64, u32)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let pos = (0.0f64..8.0, 0.0f64..8.0);
    (
        0usize..5,
        prop::collection::vec(pos, 3..12),
        any::<u64>(),
        prop::collection::vec((100u64..6_000, 0u32..12, (0.0f64..8.0, 0.0f64..8.0)), 0..5),
        prop::collection::vec((100u64..6_000, 0u32..12), 0..2),
    )
        .prop_map(|(kind_idx, positions, seed, moves, crashes)| Scenario {
            kind_idx,
            positions,
            seed,
            moves,
            crashes,
        })
}

fn run_scenario(s: &Scenario) {
    let n = s.positions.len() as u32;
    let kind = AlgKind::all()[s.kind_idx];
    let spec = RunSpec {
        sim: SimConfig {
            seed: s.seed,
            ..SimConfig::default()
        },
        horizon: 8_000,
        panic_on_violation: false,
        ..RunSpec::default()
    };
    let mut commands: Vec<(SimTime, Command)> = Vec::new();
    for &(t, node, dest) in &s.moves {
        if node < n {
            commands.push((
                SimTime(t),
                Command::Teleport {
                    node: NodeId(node),
                    dest: Position::from(dest),
                },
            ));
        }
    }
    for &(t, node) in &s.crashes {
        if node < n {
            commands.push((SimTime(t), Command::Crash(NodeId(node))));
        }
    }
    let out = run_algorithm(kind, &spec, &s.positions, &commands);
    assert!(
        out.violations.is_empty(),
        "{}: local mutual exclusion violated: {:?}\nscenario: {s:?}",
        kind.name(),
        out.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// No algorithm, under any random topology + teleport + crash schedule,
    /// ever lets two neighbors eat simultaneously.
    #[test]
    fn lme_safety_is_never_violated(s in scenario_strategy()) {
        run_scenario(&s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Smooth (non-teleport) movement sweeps links through many
    /// intermediate configurations; safety must hold throughout.
    #[test]
    fn lme_safety_under_smooth_motion(
        kind_idx in 0usize..5,
        seed in any::<u64>(),
        moves in prop::collection::vec((100u64..4_000, 0u32..8, (0.0f64..6.0, 0.0f64..6.0)), 1..4),
    ) {
        let positions = manet_local_mutex::harness::topology::random_points(8, 4.0, seed);
        let kind = AlgKind::all()[kind_idx];
        let spec = RunSpec {
            sim: SimConfig { seed, ..SimConfig::default() },
            horizon: 8_000,
            ..RunSpec::default()
        };
        let commands: Vec<(SimTime, Command)> = moves
            .into_iter()
            .map(|(t, node, dest)| {
                (
                    SimTime(t),
                    Command::StartMove {
                        node: NodeId(node),
                        dest: Position::from(dest),
                        speed: 0.3,
                    },
                )
            })
            .collect();
        let out = run_algorithm(kind, &spec, &positions, &commands);
        prop_assert!(
            out.violations.is_empty(),
            "{}: violations {:?}",
            kind.name(),
            out.violations
        );
    }
}
