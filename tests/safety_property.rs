//! Randomized safety tests: random topologies, workloads, mobility and
//! crash schedules must never produce two eating neighbors — for any
//! algorithm. This is the paper's safety theorem (Lemma 3 / Theorem 25)
//! exercised adversarially.
//!
//! Formerly proptest properties; now seeded batteries over the simulator's
//! own deterministic RNG so the suite builds offline. Each failing case
//! prints its full scenario, which reproduces it exactly.

use manet_local_mutex::harness::{run_algorithm, AlgKind, RunSpec};
use manet_local_mutex::sim::{Command, NodeId, Position, SimConfig, SimRng, SimTime};

#[derive(Clone, Debug)]
struct Scenario {
    kind_idx: usize,
    positions: Vec<(f64, f64)>,
    seed: u64,
    moves: Vec<(u64, u32, (f64, f64))>,
    crashes: Vec<(u64, u32)>,
}

fn random_scenario(rng: &mut SimRng) -> Scenario {
    let kind_idx = rng.gen_range(0..5usize);
    let n = rng.gen_range(3..12usize);
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_f64() * 8.0, rng.gen_f64() * 8.0))
        .collect();
    let seed = rng.next_u64();
    let moves: Vec<(u64, u32, (f64, f64))> = (0..rng.gen_range(0..5usize))
        .map(|_| {
            (
                rng.gen_range(100..6_000u64),
                rng.gen_range(0..12u32),
                (rng.gen_f64() * 8.0, rng.gen_f64() * 8.0),
            )
        })
        .collect();
    let crashes: Vec<(u64, u32)> = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(100..6_000u64), rng.gen_range(0..12u32)))
        .collect();
    Scenario {
        kind_idx,
        positions,
        seed,
        moves,
        crashes,
    }
}

fn run_scenario(s: &Scenario) {
    let n = s.positions.len() as u32;
    let kind = AlgKind::all()[s.kind_idx];
    let spec = RunSpec {
        sim: SimConfig {
            seed: s.seed,
            ..SimConfig::default()
        },
        horizon: 8_000,
        panic_on_violation: false,
        ..RunSpec::default()
    };
    let mut commands: Vec<(SimTime, Command)> = Vec::new();
    for &(t, node, dest) in &s.moves {
        if node < n {
            commands.push((
                SimTime(t),
                Command::Teleport {
                    node: NodeId(node),
                    dest: Position::from(dest),
                },
            ));
        }
    }
    for &(t, node) in &s.crashes {
        if node < n {
            commands.push((SimTime(t), Command::Crash(NodeId(node))));
        }
    }
    let out = run_algorithm(kind, &spec, &s.positions, &commands);
    assert!(
        out.violations.is_empty(),
        "{}: local mutual exclusion violated: {:?}\nscenario: {s:?}",
        kind.name(),
        out.violations
    );
}

/// No algorithm, under any random topology + teleport + crash schedule,
/// ever lets two neighbors eat simultaneously.
#[test]
fn lme_safety_is_never_violated() {
    let mut rng = SimRng::seed_from_u64(0x5AFE_0001);
    for _ in 0..48 {
        let s = random_scenario(&mut rng);
        run_scenario(&s);
    }
}

/// Smooth (non-teleport) movement sweeps links through many
/// intermediate configurations; safety must hold throughout.
#[test]
fn lme_safety_under_smooth_motion() {
    let mut rng = SimRng::seed_from_u64(0x5AFE_0002);
    for case in 0..24u32 {
        let kind_idx = rng.gen_range(0..5usize);
        let seed = rng.next_u64();
        let moves: Vec<(u64, u32, (f64, f64))> = (0..rng.gen_range(1..4usize))
            .map(|_| {
                (
                    rng.gen_range(100..4_000u64),
                    rng.gen_range(0..8u32),
                    (rng.gen_f64() * 6.0, rng.gen_f64() * 6.0),
                )
            })
            .collect();
        let positions = manet_local_mutex::harness::topology::random_points(8, 4.0, seed);
        let kind = AlgKind::all()[kind_idx];
        let spec = RunSpec {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            horizon: 8_000,
            ..RunSpec::default()
        };
        let commands: Vec<(SimTime, Command)> = moves
            .into_iter()
            .map(|(t, node, dest)| {
                (
                    SimTime(t),
                    Command::StartMove {
                        node: NodeId(node),
                        dest: Position::from(dest),
                        speed: 0.3,
                    },
                )
            })
            .collect();
        let out = run_algorithm(kind, &spec, &positions, &commands);
        assert!(
            out.violations.is_empty(),
            "case {case} ({}, seed {seed}): violations {:?}",
            kind.name(),
            out.violations
        );
    }
}
