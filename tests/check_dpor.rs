//! Differential soundness of the partial-order reduction: DPOR may only
//! skip flips that provably commute with the rest of the run, so on every
//! instance the reduced DFS must reach the **same verdict** — clean stays
//! clean, a planted bug stays found, and the violated property agrees —
//! while running **no more** schedules than the unreduced DFS. On a
//! contended clique it must run *strictly fewer* (the acceptance bar for
//! the reduction actually doing something).

use manet_local_mutex::check::{explore, CheckSpec, ExploreConfig, Mutation};
use manet_local_mutex::harness::AlgKind;

fn line(n: usize) -> Vec<(u32, u32)> {
    (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
}

fn clique(n: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            edges.push((a, b));
        }
    }
    edges
}

fn spec(alg: AlgKind, topo: &str, mutation: Mutation) -> CheckSpec {
    let (n, edges) = match topo.split_once(':').expect("kind:n") {
        ("line", n) => {
            let n: usize = n.parse().unwrap();
            (n, line(n))
        }
        ("clique", n) => {
            let n: usize = n.parse().unwrap();
            (n, clique(n))
        }
        other => panic!("unsupported topology {other:?}"),
    };
    let mut spec = CheckSpec::new(alg, topo, n, edges);
    spec.mutation = mutation;
    spec
}

/// Explore `spec` twice — DPOR on and off — under an otherwise identical
/// configuration, and check verdict equality and schedule-count ordering.
fn differential(spec: &CheckSpec, cfg: &ExploreConfig) -> (usize, usize, usize) {
    let with = explore(
        spec,
        &ExploreConfig {
            dpor: true,
            ..cfg.clone()
        },
    );
    let without = explore(
        spec,
        &ExploreConfig {
            dpor: false,
            ..cfg.clone()
        },
    );
    assert_eq!(without.dpor_prunes, 0, "dpor:false must never prune");
    let label = format!("{} on {}", spec.alg.name(), spec.topo);
    match (&with.witness, &without.witness) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_eq!(
            a.property, b.property,
            "{label}: DPOR changed the violated property"
        ),
        (a, b) => panic!(
            "{label}: DPOR changed the verdict: with={:?} without={:?}",
            a.as_ref().map(|w| &w.property),
            b.as_ref().map(|w| &w.property)
        ),
    }
    // Both sides exhausted their (identically bounded) tree, or neither.
    assert_eq!(with.complete, without.complete, "{label}");
    assert!(
        with.schedules <= without.schedules,
        "{label}: the reduction ran MORE schedules ({} > {})",
        with.schedules,
        without.schedules
    );
    (with.schedules, without.schedules, with.dpor_prunes)
}

/// Verdicts agree between reduced and unreduced DFS on every algorithm ×
/// topology cell, intact and (for the A1 family, which owns the mutation)
/// with the planted SD^f-guard bug.
#[test]
fn dpor_verdicts_match_unreduced_dfs_on_every_cell() {
    let cfg = ExploreConfig {
        max_schedules: 512,
        max_depth: 6,
        dedup: false,
        ..ExploreConfig::default()
    };
    for alg in [AlgKind::A1Greedy, AlgKind::A1Linial, AlgKind::A2] {
        for topo in ["line:3", "line:4", "clique:3"] {
            differential(&spec(alg, topo, Mutation::None), &cfg);
        }
    }
    for alg in [AlgKind::A1Greedy, AlgKind::A1Linial] {
        for topo in ["line:3", "line:4", "clique:3"] {
            let s = spec(alg, topo, Mutation::NoSdfGuard);
            let (_, _, _) = differential(&s, &cfg);
            // Sanity: the planted bug is actually found on line:3 (the
            // canonical mutation cell) so verdict equality is not vacuous.
            if topo == "line:3" {
                let found = explore(&s, &cfg);
                assert!(
                    found.witness.is_some(),
                    "{} line:3: planted bug not found under DPOR",
                    alg.name()
                );
            }
        }
    }
}

/// On a contended clique the reduction must actually reduce: strictly
/// fewer schedules than the unreduced DFS, with a nonzero prune count and
/// an identical (clean) verdict. Counts are logged for the CI record.
#[test]
fn dpor_explores_strictly_fewer_schedules_on_the_clique() {
    let cfg = ExploreConfig {
        max_schedules: 4096,
        max_depth: 10,
        dedup: false,
        ..ExploreConfig::default()
    };
    let (reduced, full, prunes) =
        differential(&spec(AlgKind::A2, "clique:3", Mutation::None), &cfg);
    println!("dpor on A2/clique:3 (depth 10): {reduced} vs {full} schedules, {prunes} flip prunes");
    assert!(prunes > 0, "DPOR pruned nothing on a contended clique");
    assert!(
        reduced < full,
        "DPOR must explore strictly fewer schedules ({reduced} vs {full})"
    );
}

/// The reduction stays sound under the planted mutation even when its
/// flip-relevance rule and the bug interact: same property found with and
/// without DPOR at a depth where the violation is reachable.
#[test]
fn dpor_keeps_finding_the_planted_bug_at_depth() {
    let cfg = ExploreConfig {
        max_schedules: 1024,
        max_depth: 10,
        dedup: false,
        ..ExploreConfig::default()
    };
    let s = spec(AlgKind::A1Greedy, "clique:3", Mutation::NoSdfGuard);
    differential(&s, &cfg);
}
