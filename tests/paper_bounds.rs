//! Empirical conformance suite for the paper's headline analytic bounds
//! (Attiya/Kogan/Welch, ICDCS 2008, Table 1):
//!
//! * Algorithm 2 has failure locality 2 — a crash starves nothing beyond
//!   two hops (Theorem 26). Checked actively in tier-1.
//! * Algorithm 2's static response time is O(n) — the measured growth
//!   over n ∈ {8, 16, 32, 64} must not be superlinear. Nightly (release).
//! * Algorithm 1's greedy (O((n + δ³)δ)) and Linial (O((log* n + δ⁴)δ))
//!   variants trade response time in opposite directions as δ grows: on
//!   bounded-δ graphs with large n the Linial doorway wins, at large δ
//!   the greedy one does. Nightly (release).
//!
//! The heavy fits are `#[ignore]`d so `cargo test -q` stays fast; the CI
//! nightly matrix runs them with `--release -- --include-ignored`.
//!
//! The degradation matrix at the bottom re-fits the A2 bounds under every
//! channel model × mobility mix: the paper's analysis assumes i.i.d.
//! bounded delay, so the non-iid rows *report* how far contention and
//! burst loss push failure locality and response-time growth — the
//! nightly job fails only on safety violations, never on degraded bounds.

use harness::{
    crash_probe, run_algorithm, run_cells, topology, AlgKind, Job, MobilityMix, RunSpec, SweepCell,
    Topo,
};
use lme_check::{certify, Certificate, CertifyConfig, CheckSpec};
use manet_sim::{ArqConfig, ChannelConfig, NodeId, SimConfig};

fn spec(seed: u64, horizon: u64) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            ..SimConfig::default()
        },
        horizon,
        ..RunSpec::default()
    }
}

// ---------------------------------------------------------------------
// Failure locality (tier-1).
// ---------------------------------------------------------------------

/// A2 crash probes: no node more than 2 hops from a mid-CS crash may
/// starve, on a line and on random unit-disk deployments.
#[test]
fn a2_crash_probes_confirm_failure_locality_two() {
    let cells = [
        ("line:9", topology::line(9), NodeId(4)),
        ("random:16:1", topology::random_connected(16, 1), NodeId(7)),
        ("random:16:2", topology::random_connected(16, 2), NodeId(3)),
    ];
    for (label, positions, victim) in cells {
        for seed in [11, 23] {
            let report = crash_probe(AlgKind::A2, &spec(seed, 30_000), &positions, victim, 4_000);
            assert!(
                report.locality.is_none_or(|d| d <= 2),
                "{label} seed {seed}: A2 starved a node {}(>2) hops from the crash; starving: {:?}",
                report.locality.unwrap(),
                report.starving
            );
        }
    }
}

// ---------------------------------------------------------------------
// Response-time growth (nightly, release).
// ---------------------------------------------------------------------

/// Mean static response time of `kind` on `positions`, pooled over seeds.
fn mean_static_rt(kind: AlgKind, positions: &[(f64, f64)], horizon: u64) -> f64 {
    let mut samples = Vec::new();
    for seed in [3, 5, 7] {
        let out = run_algorithm(kind, &spec(seed, horizon), positions, &[]);
        assert!(out.violations.is_empty(), "{}: unsafe run", kind.name());
        samples.extend(out.metrics.static_responses());
    }
    assert!(!samples.is_empty(), "{}: no static samples", kind.name());
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

/// Least-squares slope of ln(rt) against ln(n): the empirical growth
/// exponent of the response time.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let k = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x.ln(), b + y.ln()));
    let (mx, my) = (sx / k, sy / k);
    let num: f64 = points
        .iter()
        .map(|&(x, y)| (x.ln() - mx) * (y.ln() - my))
        .sum();
    let den: f64 = points.iter().map(|&(x, _)| (x.ln() - mx).powi(2)).sum();
    num / den
}

/// A2's static response time on cliques (the max-contention regime where
/// the O(n) bound binds: δ = n − 1, every meal serializes against every
/// other) must grow at most linearly in n. A superlinear regression —
/// growth exponent ≥ 1.5, i.e. closer to n² than to n — fails the test.
#[test]
#[ignore = "heavy fit; run in the nightly matrix with --release -- --include-ignored"]
fn a2_static_response_time_grows_linearly_in_n() {
    let mut points = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let rt = mean_static_rt(AlgKind::A2, &topology::clique(n), 60_000 * n as u64 / 8);
        points.push((n as f64, rt));
    }
    let slope = loglog_slope(&points);
    assert!(
        slope < 1.5,
        "A2 static RT grows superlinearly (exponent {slope:.2}): {points:?}"
    );
    assert!(
        slope > 0.2,
        "A2 static RT did not grow with n at all (exponent {slope:.2}): {points:?} — \
         the contention regime is not binding; fix the workload"
    );
}

/// The δ³-vs-δ⁴ tradeoff direction of the two Algorithm 1 doorways
/// (Theorems 16 and 22): on a bounded-δ graph with many nodes (ring:48,
/// δ = 2) the Linial variant must not lose to greedy by more than the
/// slack, and at large δ (clique:10, δ = 9, n = δ + 1) the greedy variant
/// must not lose to Linial by more than the slack. The slack absorbs
/// constant factors; what may not happen is the *ordering inverting by a
/// wide margin* in either regime.
#[test]
#[ignore = "heavy fit; run in the nightly matrix with --release -- --include-ignored"]
fn a1_greedy_vs_linial_tradeoff_direction() {
    const SLACK: f64 = 1.5;
    // Bounded δ, large n: greedy pays O(n·δ) recoloring worst case, the
    // Linial schedule pays O(log* n + δ⁴) — Linial's regime.
    let ring = topology::ring(48);
    let greedy_ring = mean_static_rt(AlgKind::A1Greedy, &ring, 60_000);
    let linial_ring = mean_static_rt(AlgKind::A1Linial, &ring, 60_000);
    assert!(
        linial_ring <= greedy_ring * SLACK,
        "bounded-δ regime inverted: linial {linial_ring:.0} vs greedy {greedy_ring:.0}"
    );
    // Large δ: greedy's δ³ beats Linial's δ⁴ — greedy's regime.
    let clique = topology::clique(10);
    let greedy_clique = mean_static_rt(AlgKind::A1Greedy, &clique, 80_000);
    let linial_clique = mean_static_rt(AlgKind::A1Linial, &clique, 80_000);
    assert!(
        greedy_clique <= linial_clique * SLACK,
        "large-δ regime inverted: greedy {greedy_clique:.0} vs linial {linial_clique:.0}"
    );
}

// ---------------------------------------------------------------------
// Certified exact worst-case response time (Theorem 26, small cliques).
// ---------------------------------------------------------------------

/// Exhaust the extremal schedule space of A2 on `clique:n` and return the
/// certificate (exact worst-case response time over that space).
fn certified_a2_clique(n: usize, jobs: usize) -> Certificate {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            edges.push((a, b));
        }
    }
    let mut spec = CheckSpec::new(AlgKind::A2, format!("clique:{n}"), n, edges);
    // Every node hungry at tick 1, ν = 10, eat = 10: max contention. The
    // horizon only needs to cover the slowest extremal run.
    spec.horizon = 600;
    let cert = certify(
        &spec,
        &CertifyConfig {
            jobs,
            ..CertifyConfig::default()
        },
    );
    assert!(
        cert.holds(),
        "clique:{n} certificate is void (the bound means nothing): {cert:?}"
    );
    cert
}

/// The linear response-time budget the certificates are asserted against:
/// each of the `n - 1` contenders ahead of the worst-placed node costs at
/// most one eating session plus one fork handover (ν) plus constant
/// bookkeeping. Any superlinear blow-up bursts this for some small n.
fn linear_rt_budget(n: usize, eat: u64, nu: u64) -> u64 {
    (n as u64 - 1) * (eat + nu + 2) + 2
}

/// Exhaustive certification of A2 on clique:3: the exact worst-case
/// response time over every extremal schedule must sit within the linear
/// budget of Theorem 26. This is the machine-checked (if small) form of
/// the O(n) claim — not a regression fit but an exact bound.
#[test]
fn certified_a2_worst_case_rt_is_linear_on_clique_3() {
    let cert = certified_a2_clique(3, 1);
    let budget = linear_rt_budget(3, cert.eat, cert.nu);
    println!("clique:3 certificate: {}", cert.to_json());
    assert!(
        cert.worst_rt <= budget,
        "A2 worst-case RT {} exceeds the linear budget {budget} on clique:3\n{}",
        cert.worst_rt,
        cert.to_json()
    );
    // The bound is not vacuous: contention really serializes some meals.
    assert!(cert.worst_rt > cert.eat, "{}", cert.to_json());
}

/// clique:4 exhausts ~200k extremal schedules — nightly, release only.
#[test]
#[ignore = "exhausts ~200k schedules; run in the nightly matrix with --release -- --include-ignored"]
fn certified_a2_worst_case_rt_is_linear_on_clique_4() {
    let cert = certified_a2_clique(4, 4);
    let budget = linear_rt_budget(4, cert.eat, cert.nu);
    println!("clique:4 certificate: {}", cert.to_json());
    assert!(
        cert.worst_rt <= budget,
        "A2 worst-case RT {} exceeds the linear budget {budget} on clique:4\n{}",
        cert.worst_rt,
        cert.to_json()
    );
    // The certified worst case must actually grow with n (clique:3 tops
    // out at the clique:3 budget), pinning the linear trend between the
    // two exhaustively-checked points.
    let smaller = certified_a2_clique(3, 4);
    assert!(cert.worst_rt > smaller.worst_rt, "{}", cert.to_json());
}

// ---------------------------------------------------------------------
// Degradation matrix (nightly, release): channel models × mobility.
// ---------------------------------------------------------------------

/// A run spec with a channel model (and, where the model loses frames,
/// the ARQ shim — burst loss without retransmission starves by design).
fn channel_spec(seed: u64, horizon: u64, channel: &ChannelConfig, arq: bool) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            channel: channel.clone(),
            arq: arq.then(ArqConfig::default),
            ..SimConfig::default()
        },
        horizon,
        ..RunSpec::default()
    }
}

/// Ground a mobility mix in an `n`-node random deployment's geometry.
fn grounded_mix(mix: &MobilityMix, n: usize, horizon: u64, seed: u64) -> MobilityMix {
    MobilityMix {
        area_side: (n as f64 / 1.6).sqrt().max(2.0),
        window: (horizon / 10, horizon * 9 / 10),
        seed,
        ..mix.clone()
    }
}

/// Worst observed failure locality of A2 crash probes under one
/// (channel, mobility) cell, pooled over seeds and deployments. Returns
/// `(max locality, safety violations)`; starvation with no crash-distance
/// is folded in as `usize::MAX` (unbounded locality).
fn probe_fl_cell(
    channel: &ChannelConfig,
    arq: bool,
    mix: Option<&MobilityMix>,
    horizon: u64,
) -> (Option<usize>, usize) {
    let n = 16;
    let mut cells = Vec::new();
    for topo_seed in [1u64, 2] {
        let positions = topology::random_connected(n, topo_seed);
        for seed in [11u64, 23] {
            let commands = mix
                .map(|m| grounded_mix(m, n, horizon, seed).commands(n))
                .unwrap_or_default();
            cells.push(SweepCell {
                label: format!("random:{n}:{topo_seed}/{}", channel.name()),
                kind: AlgKind::A2,
                spec: channel_spec(seed, horizon, channel, arq),
                topo: Topo::Geo(positions.clone()),
                commands,
                job: Job::Probe {
                    victim: NodeId(7),
                    crash_at: horizon / 10,
                },
            });
        }
    }
    let report = run_cells(&cells, 4);
    let mut fl: Option<usize> = None;
    let mut violations = 0;
    for run in &report.runs {
        violations += run.violations;
        let cell_fl = match (run.starving, run.locality) {
            (0, _) => None,
            (_, Some(d)) => Some(d),
            // Starving nodes with no crash distance: unbounded locality.
            (_, None) => Some(usize::MAX),
        };
        fl = fl.max(cell_fl);
    }
    (fl, violations)
}

/// Response-time growth exponent of A2 under one (channel, mobility)
/// cell: mean static RT over random deployments of n ∈ {12, 24, 48},
/// log–log slope. Returns `(slope, safety violations)`.
fn rt_growth_cell(channel: &ChannelConfig, arq: bool, mix: Option<&MobilityMix>) -> (f64, usize) {
    let mut points = Vec::new();
    let mut violations = 0;
    for n in [12usize, 24, 48] {
        let horizon = 30_000 * n as u64 / 12;
        let positions = topology::random_connected(n, 7);
        let mut samples = Vec::new();
        for seed in [3u64, 5] {
            let commands = mix
                .map(|m| grounded_mix(m, n, horizon, seed).commands(n))
                .unwrap_or_default();
            let out = run_algorithm(
                AlgKind::A2,
                &channel_spec(seed, horizon, channel, arq),
                &positions,
                &commands,
            );
            violations += out.violations.len();
            samples.extend(out.metrics.static_responses());
        }
        assert!(
            !samples.is_empty(),
            "{}: no static samples at n = {n}",
            channel.name()
        );
        points.push((
            n as f64,
            samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        ));
    }
    (loglog_slope(&points), violations)
}

/// The full degradation matrix: every channel model × {static,
/// heterogeneous-mix} mobility, one fitted FL and RT-growth row per cell,
/// plus a contention ladder reporting the first constant-bandwidth frame
/// time at which FL ≤ 2 fails empirically. Fails only on safety
/// violations (and on FL > 2 in the i.i.d. static cell, where the
/// paper's assumptions hold and Theorem 26 must bind).
#[test]
#[ignore = "heavy fit; run in the nightly matrix with --release -- --include-ignored"]
fn a2_bounds_degradation_matrix() {
    let channels: [(&str, ChannelConfig, bool); 4] = [
        ("iid", ChannelConfig::Iid, false),
        (
            "constant-bandwidth",
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 2,
                max_queue: 1024,
            },
            false,
        ),
        (
            "shared-medium",
            ChannelConfig::SharedMedium {
                ticks_per_frame: 2,
                max_inflight: 1024,
            },
            false,
        ),
        ("gilbert-elliott", ChannelConfig::burst_loss_default(), true),
    ];
    let het = MobilityMix {
        static_frac: 0.5,
        highway_frac: 0.25,
        ..MobilityMix::default()
    };
    let mixes: [(&str, Option<&MobilityMix>); 2] = [("static", None), ("het-mix", Some(&het))];
    let mut total_violations = 0;
    println!(
        "degradation matrix: channel × mobility, A2, random:16 probes + n ∈ {{12,24,48}} fits"
    );
    println!(
        "{:<20} {:<8} {:>8} {:>9}",
        "channel", "mobility", "fl_max", "rt_slope"
    );
    for (cname, channel, arq) in &channels {
        for (mname, mix) in &mixes {
            let (fl, v1) = probe_fl_cell(channel, *arq, *mix, 30_000);
            let (slope, v2) = rt_growth_cell(channel, *arq, *mix);
            total_violations += v1 + v2;
            let fl_str = match fl {
                None => "none".to_string(),
                Some(usize::MAX) => "unbounded".to_string(),
                Some(d) => d.to_string(),
            };
            println!("{cname:<20} {mname:<8} {fl_str:>8} {slope:>9.2}");
            if *cname == "iid" && *mname == "static" {
                assert!(
                    fl.is_none_or(|d| d <= 2),
                    "FL > 2 under the paper's own assumptions (iid, static): {fl:?}"
                );
            }
        }
    }
    // Contention ladder: shrink the link capacity (grow the per-frame
    // serialization time) until the empirical FL ≤ 2 bound first fails.
    let mut first_failure = None;
    for ticks_per_frame in [1u64, 2, 4, 8] {
        let cb = ChannelConfig::ConstantBandwidth {
            ticks_per_frame,
            max_queue: 1024,
        };
        let (fl, v) = probe_fl_cell(&cb, false, None, 30_000);
        total_violations += v;
        if fl.is_some_and(|d| d > 2) && first_failure.is_none() {
            first_failure = Some(ticks_per_frame);
        }
    }
    match first_failure {
        Some(tpf) => println!(
            "FL ≤ 2 first fails at constant-bandwidth ticks_per_frame = {tpf} \
             (capacity 1/{tpf} frames per tick)"
        ),
        None => println!("FL ≤ 2 held across the whole contention ladder (ticks_per_frame ≤ 8)"),
    }
    assert_eq!(
        total_violations, 0,
        "safety violations in the degradation matrix"
    );
}
