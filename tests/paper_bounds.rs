//! Empirical conformance suite for the paper's headline analytic bounds
//! (Attiya/Kogan/Welch, ICDCS 2008, Table 1):
//!
//! * Algorithm 2 has failure locality 2 — a crash starves nothing beyond
//!   two hops (Theorem 26). Checked actively in tier-1.
//! * Algorithm 2's static response time is O(n) — the measured growth
//!   over n ∈ {8, 16, 32, 64} must not be superlinear. Nightly (release).
//! * Algorithm 1's greedy (O((n + δ³)δ)) and Linial (O((log* n + δ⁴)δ))
//!   variants trade response time in opposite directions as δ grows: on
//!   bounded-δ graphs with large n the Linial doorway wins, at large δ
//!   the greedy one does. Nightly (release).
//!
//! The heavy fits are `#[ignore]`d so `cargo test -q` stays fast; the CI
//! nightly matrix runs them with `--release -- --include-ignored`.

use harness::{crash_probe, run_algorithm, topology, AlgKind, RunSpec};
use manet_sim::{NodeId, SimConfig};

fn spec(seed: u64, horizon: u64) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            ..SimConfig::default()
        },
        horizon,
        ..RunSpec::default()
    }
}

// ---------------------------------------------------------------------
// Failure locality (tier-1).
// ---------------------------------------------------------------------

/// A2 crash probes: no node more than 2 hops from a mid-CS crash may
/// starve, on a line and on random unit-disk deployments.
#[test]
fn a2_crash_probes_confirm_failure_locality_two() {
    let cells = [
        ("line:9", topology::line(9), NodeId(4)),
        ("random:16:1", topology::random_connected(16, 1), NodeId(7)),
        ("random:16:2", topology::random_connected(16, 2), NodeId(3)),
    ];
    for (label, positions, victim) in cells {
        for seed in [11, 23] {
            let report = crash_probe(AlgKind::A2, &spec(seed, 30_000), &positions, victim, 4_000);
            assert!(
                report.locality.is_none_or(|d| d <= 2),
                "{label} seed {seed}: A2 starved a node {}(>2) hops from the crash; starving: {:?}",
                report.locality.unwrap(),
                report.starving
            );
        }
    }
}

// ---------------------------------------------------------------------
// Response-time growth (nightly, release).
// ---------------------------------------------------------------------

/// Mean static response time of `kind` on `positions`, pooled over seeds.
fn mean_static_rt(kind: AlgKind, positions: &[(f64, f64)], horizon: u64) -> f64 {
    let mut samples = Vec::new();
    for seed in [3, 5, 7] {
        let out = run_algorithm(kind, &spec(seed, horizon), positions, &[]);
        assert!(out.violations.is_empty(), "{}: unsafe run", kind.name());
        samples.extend(out.metrics.static_responses());
    }
    assert!(!samples.is_empty(), "{}: no static samples", kind.name());
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

/// Least-squares slope of ln(rt) against ln(n): the empirical growth
/// exponent of the response time.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let k = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x.ln(), b + y.ln()));
    let (mx, my) = (sx / k, sy / k);
    let num: f64 = points
        .iter()
        .map(|&(x, y)| (x.ln() - mx) * (y.ln() - my))
        .sum();
    let den: f64 = points.iter().map(|&(x, _)| (x.ln() - mx).powi(2)).sum();
    num / den
}

/// A2's static response time on cliques (the max-contention regime where
/// the O(n) bound binds: δ = n − 1, every meal serializes against every
/// other) must grow at most linearly in n. A superlinear regression —
/// growth exponent ≥ 1.5, i.e. closer to n² than to n — fails the test.
#[test]
#[ignore = "heavy fit; run in the nightly matrix with --release -- --include-ignored"]
fn a2_static_response_time_grows_linearly_in_n() {
    let mut points = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let rt = mean_static_rt(AlgKind::A2, &topology::clique(n), 60_000 * n as u64 / 8);
        points.push((n as f64, rt));
    }
    let slope = loglog_slope(&points);
    assert!(
        slope < 1.5,
        "A2 static RT grows superlinearly (exponent {slope:.2}): {points:?}"
    );
    assert!(
        slope > 0.2,
        "A2 static RT did not grow with n at all (exponent {slope:.2}): {points:?} — \
         the contention regime is not binding; fix the workload"
    );
}

/// The δ³-vs-δ⁴ tradeoff direction of the two Algorithm 1 doorways
/// (Theorems 16 and 22): on a bounded-δ graph with many nodes (ring:48,
/// δ = 2) the Linial variant must not lose to greedy by more than the
/// slack, and at large δ (clique:10, δ = 9, n = δ + 1) the greedy variant
/// must not lose to Linial by more than the slack. The slack absorbs
/// constant factors; what may not happen is the *ordering inverting by a
/// wide margin* in either regime.
#[test]
#[ignore = "heavy fit; run in the nightly matrix with --release -- --include-ignored"]
fn a1_greedy_vs_linial_tradeoff_direction() {
    const SLACK: f64 = 1.5;
    // Bounded δ, large n: greedy pays O(n·δ) recoloring worst case, the
    // Linial schedule pays O(log* n + δ⁴) — Linial's regime.
    let ring = topology::ring(48);
    let greedy_ring = mean_static_rt(AlgKind::A1Greedy, &ring, 60_000);
    let linial_ring = mean_static_rt(AlgKind::A1Linial, &ring, 60_000);
    assert!(
        linial_ring <= greedy_ring * SLACK,
        "bounded-δ regime inverted: linial {linial_ring:.0} vs greedy {greedy_ring:.0}"
    );
    // Large δ: greedy's δ³ beats Linial's δ⁴ — greedy's regime.
    let clique = topology::clique(10);
    let greedy_clique = mean_static_rt(AlgKind::A1Greedy, &clique, 80_000);
    let linial_clique = mean_static_rt(AlgKind::A1Linial, &clique, 80_000);
    assert!(
        greedy_clique <= linial_clique * SLACK,
        "large-δ regime inverted: greedy {greedy_clique:.0} vs linial {linial_clique:.0}"
    );
}
