//! Mobility integration tests: recoloring, demotion, and post-move
//! liveness for Algorithm 1 and Algorithm 2.

use std::sync::Arc;

use manet_local_mutex::coloring::LinialSchedule;
use manet_local_mutex::harness::{Metrics, SafetyMonitor, Workload};
use manet_local_mutex::lme::{Algorithm1, Algorithm2, RecolorConfig};
use manet_local_mutex::sim::{DiningState, Engine, NodeId, SimConfig, SimTime};

fn a1_engine(positions: Vec<(f64, f64)>, cfg: RecolorConfig) -> Engine<Algorithm1> {
    Engine::new(SimConfig::default(), positions, move |seed| {
        Algorithm1::new(&seed, cfg.clone())
    })
}

/// A mover teleports into a 3-clique; when it next gets hungry it must
/// recolor (negative color) and then eat; neighbor colors stay distinct.
fn mover_recolors_and_eats(cfg: RecolorConfig) {
    let mut positions = manet_local_mutex::harness::topology::clique(3);
    positions.push((50.0, 0.0)); // the future mover, initially isolated
    let mover = NodeId(3);
    let mut engine = a1_engine(positions, cfg);
    let (metrics, data) = Metrics::new(4);
    engine.add_hook(Box::new(metrics));
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::cyclic(10..=20, 40..=80, 9)));
    for i in 0..4 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.teleport_at(SimTime(500), mover, (0.1, 0.1));
    engine.run_until(SimTime(30_000));

    let p = engine.protocol(mover);
    assert!(
        p.stats.recolorings >= 1,
        "mover must run the recoloring module"
    );
    assert!(
        data.borrow().meals[mover.index()] >= 3,
        "mover starved after joining: {:?}",
        data.borrow().meals
    );
    // All four now form a clique: colors must be pairwise distinct.
    let colors: Vec<i64> = (0..4).map(|i| engine.protocol(NodeId(i)).color()).collect();
    for a in 0..4 {
        for b in (a + 1)..4 {
            assert_ne!(colors[a], colors[b], "illegal coloring {colors:?}");
        }
    }
}

#[test]
fn greedy_mover_recolors_and_eats() {
    mover_recolors_and_eats(RecolorConfig::Greedy);
}

#[test]
fn linial_mover_recolors_and_eats() {
    mover_recolors_and_eats(RecolorConfig::Linial(Arc::new(LinialSchedule::compute(
        4, 3,
    ))));
}

#[test]
fn eating_mover_is_demoted_for_safety() {
    // Two isolated nodes both eat; one teleports next to the other. The
    // mover must drop to hungry (Algorithm 3, Line 50), never producing two
    // eating neighbors.
    let mut engine = a1_engine(vec![(0.0, 0.0), (50.0, 0.0)], RecolorConfig::Greedy);
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    // No workload: nodes eat forever until demoted.
    engine.set_hungry_at(SimTime(1), NodeId(0));
    engine.set_hungry_at(SimTime(1), NodeId(1));
    engine.run_until(SimTime(100));
    assert_eq!(engine.dining_state(NodeId(0)), DiningState::Eating);
    assert_eq!(engine.dining_state(NodeId(1)), DiningState::Eating);
    engine.teleport_at(SimTime(100), NodeId(1), (1.0, 0.0));
    engine.run_until(SimTime(200));
    assert_eq!(
        engine.dining_state(NodeId(0)),
        DiningState::Eating,
        "static keeps eating"
    );
    assert_eq!(
        engine.dining_state(NodeId(1)),
        DiningState::Hungry,
        "mover demoted"
    );
    assert_eq!(engine.protocol(NodeId(1)).stats.demotions, 1);
}

#[test]
fn a2_eating_mover_is_demoted_for_safety() {
    let mut engine: Engine<Algorithm2> = Engine::new(
        SimConfig::default(),
        vec![(0.0, 0.0), (50.0, 0.0)],
        |seed| Algorithm2::new(&seed),
    );
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.set_hungry_at(SimTime(1), NodeId(0));
    engine.set_hungry_at(SimTime(1), NodeId(1));
    engine.run_until(SimTime(100));
    engine.teleport_at(SimTime(100), NodeId(1), (1.0, 0.0));
    engine.run_until(SimTime(200));
    assert_eq!(engine.dining_state(NodeId(0)), DiningState::Eating);
    assert_eq!(engine.dining_state(NodeId(1)), DiningState::Hungry);
    assert_eq!(engine.protocol(NodeId(1)).stats.demotions, 1);
}

#[test]
fn two_movers_meeting_use_id_symmetry_breaking() {
    // Both nodes move simultaneously toward each other; exactly one side
    // (the smaller ID) is designated static and owns the new fork, and the
    // system stays safe and live.
    let mut engine = a1_engine(vec![(0.0, 0.0), (20.0, 0.0)], RecolorConfig::Greedy);
    let (metrics, data) = Metrics::new(2);
    engine.add_hook(Box::new(metrics));
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::cyclic(5..=15, 30..=60, 3)));
    engine.set_hungry_at(SimTime(1), NodeId(0));
    engine.set_hungry_at(SimTime(1), NodeId(1));
    engine.schedule(
        SimTime(200),
        manet_local_mutex::sim::Command::StartMove {
            node: NodeId(0),
            dest: (10.0, 0.0).into(),
            speed: 0.5,
        },
    );
    engine.schedule(
        SimTime(200),
        manet_local_mutex::sim::Command::StartMove {
            node: NodeId(1),
            dest: (10.5, 0.0).into(),
            speed: 0.5,
        },
    );
    engine.run_until(SimTime(20_000));
    assert!(engine.world().linked(NodeId(0), NodeId(1)));
    assert!(data.borrow().meals[0] >= 3, "{:?}", data.borrow().meals);
    assert!(data.borrow().meals[1] >= 3, "{:?}", data.borrow().meals);
    assert_ne!(
        engine.protocol(NodeId(0)).color(),
        engine.protocol(NodeId(1)).color(),
        "neighbors ended with equal colors"
    );
}

#[test]
fn post_move_liveness_with_churn() {
    // A node hops across a line repeatedly; after the churn stops, everyone
    // (including the hopper) keeps eating.
    let mut positions = manet_local_mutex::harness::topology::line(6);
    positions.push((0.0, 1.0));
    let hopper = NodeId(6);
    for cfg in [
        RecolorConfig::Greedy,
        RecolorConfig::Linial(Arc::new(LinialSchedule::compute(7, 4))),
    ] {
        let mut engine = a1_engine(positions.clone(), cfg);
        let (metrics, data) = Metrics::new(7);
        engine.add_hook(Box::new(metrics));
        let (monitor, _) = SafetyMonitor::new(true);
        engine.add_hook(Box::new(monitor));
        engine.add_hook(Box::new(Workload::cyclic(10..=20, 40..=100, 17)));
        for i in 0..7 {
            engine.set_hungry_at(SimTime(1), NodeId(i));
        }
        for (k, t) in (1_000..6_000).step_by(1_000).enumerate() {
            let x = (k % 6) as f64;
            engine.teleport_at(SimTime(t as u64), hopper, (x, 1.0));
        }
        engine.run_until(SimTime(40_000));
        let meals = data.borrow().meals.clone();
        assert!(
            meals.iter().all(|&m| m >= 3),
            "starvation after churn: {meals:?}"
        );
    }
}

#[test]
fn bootstrap_recoloring_yields_legal_colors_and_liveness() {
    // The paper's initialization: every node obtains its initial color by
    // running the recoloring module. All nodes recolor concurrently, then
    // everyone must eat and the resulting coloring must be legal.
    let mut engine: Engine<Algorithm1> = Engine::new(
        SimConfig::default(),
        manet_local_mutex::harness::topology::grid(3, 3),
        |seed| {
            let mut node = Algorithm1::greedy(&seed);
            node.require_initial_recoloring();
            node
        },
    );
    let (metrics, data) = Metrics::new(9);
    engine.add_hook(Box::new(metrics));
    let (monitor, _) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::one_shot(10..=20, 5)));
    for i in 0..9 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.run_until(SimTime(60_000));
    let meals = data.borrow().meals.clone();
    assert!(
        meals.iter().all(|&m| m == 1),
        "bootstrap starved someone: {meals:?}"
    );
    for i in 0..9u32 {
        assert!(
            engine.protocol(NodeId(i)).stats.recolorings >= 1,
            "node {i} skipped its initial recoloring"
        );
        // After eating, exit-colors are in [0, δ] and legal vs neighbors.
        let ci = engine.protocol(NodeId(i)).color();
        assert!((0..=4).contains(&ci));
        for &j in engine.world().neighbors(NodeId(i)) {
            assert_ne!(ci, engine.protocol(j).color(), "illegal pair ({i},{j})");
        }
    }
}
