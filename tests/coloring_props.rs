//! Seeded property battery for `crates/coloring` and the message-driven
//! recoloring procedures in `local_mutex::recolor` — the first tier-1
//! coverage of these modules outside their inline unit tests.
//!
//! Properties pinned:
//! * greedy graph coloring is proper and uses at most δ + 1 colors on
//!   random graphs,
//! * the Linial schedule keeps the coloring proper after *every* round
//!   and lands in a final palette respecting the cover-free-family bound
//!   (≈ 40·δ²·log²δ),
//! * all three distributed recoloring procedures (greedy, Linial,
//!   randomized) converge under a synchronous message pump with decided
//!   nodes answering Nack, and adjacent participants end with distinct
//!   colors (the paper's Assumption 1).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use coloring::{greedy_color_graph, AdjGraph, LinialSchedule};
use local_mutex::recolor::{
    GreedyRecolor, LinialRecolor, RandomizedRecolor, RecolorOutcome, RecolorProcedure,
};
use local_mutex::RecolorMsg;
use manet_sim::{NodeId, SimRng};

/// A seeded G(n, p) random graph over vertices `0..n` (isolated vertices
/// included).
fn random_graph(n: u32, p: f64, seed: u64) -> AdjGraph {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut g = AdjGraph::new();
    for v in 0..n {
        g.add_vertex(v);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn max_degree(g: &AdjGraph) -> usize {
    g.vertices().map(|v| g.degree(v)).max().unwrap_or(0)
}

// ---------------------------------------------------------------------
// Centralized colorings.
// ---------------------------------------------------------------------

#[test]
fn greedy_coloring_is_proper_with_at_most_delta_plus_one_colors() {
    for seed in 0..12u64 {
        let n = 10 + (seed % 4) as u32 * 10;
        let p = 0.08 + 0.06 * (seed % 3) as f64;
        let g = random_graph(n, p, seed);
        let colors = greedy_color_graph(&g);
        assert!(
            g.is_legal_coloring(|v| colors.get(&v).copied()),
            "seed {seed}: greedy coloring not proper"
        );
        let delta = max_degree(&g) as i64;
        assert!(
            colors.values().all(|&c| (0..=delta).contains(&c)),
            "seed {seed}: greedy used a color outside 0..=δ ({delta}): {colors:?}"
        );
    }
}

#[test]
fn linial_schedule_stays_proper_every_round_on_random_graphs() {
    for seed in 0..8u64 {
        let n = 40u32;
        let g = random_graph(n, 0.08, 0x11A1 ^ seed);
        let delta = max_degree(&g).max(2) as u64;
        let sched = LinialSchedule::compute(u64::from(n), delta);
        // ID colors are a proper coloring in [0, input_range(0)).
        let mut colors: Vec<u64> = (0..u64::from(n)).collect();
        for t in 0..sched.rounds() {
            colors = (0..n)
                .map(|v| {
                    let nbr: Vec<u64> = g.neighbors(v).map(|u| colors[u as usize]).collect();
                    sched.step(t, colors[v as usize], &nbr)
                })
                .collect();
            assert!(
                g.is_legal_coloring(|v| Some(colors[v as usize] as i64)),
                "seed {seed}: coloring broken after round {t}"
            );
            assert!(
                colors.iter().all(|&c| c < sched.input_range(t + 1)),
                "seed {seed}: round {t} color out of declared range"
            );
        }
        // Cover-free-family palette bound: final range ≈ 40·δ²·log²δ.
        let log_delta = u64::from(64 - delta.leading_zeros());
        let bound = (40 * delta * delta * log_delta * log_delta).max(100);
        assert!(
            sched.final_range() <= bound,
            "seed {seed}: final range {} exceeds the cover-free bound {bound} (δ = {delta})",
            sched.final_range()
        );
        assert!(colors.iter().all(|&c| c < sched.final_range()));
    }
}

// ---------------------------------------------------------------------
// Distributed recoloring procedures.
// ---------------------------------------------------------------------

/// Drive a set of recoloring participants (one per vertex of `g`) with a
/// synchronous message pump until every one decides. Nodes that have
/// already decided answer further messages with `Nack`, emulating
/// Algorithm 2's lines 40–43 for non-participants.
fn pump(g: &AdjGraph, mut procs: BTreeMap<u32, Box<dyn RecolorProcedure>>) -> BTreeMap<u32, i64> {
    let mut outbox: BTreeMap<u32, Vec<(NodeId, RecolorMsg)>> = BTreeMap::new();
    let mut done: BTreeMap<u32, i64> = BTreeMap::new();
    for (&v, p) in procs.iter_mut() {
        let r: BTreeSet<NodeId> = g.neighbors(v).map(NodeId).collect();
        let mut out = Vec::new();
        if let RecolorOutcome::Done(c) = p.start(r, &mut out) {
            done.insert(v, c);
        }
        outbox.insert(v, out);
    }
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 2_000, "recoloring did not converge");
        let mut deliveries: Vec<(u32, NodeId, RecolorMsg)> = Vec::new();
        for (&from, box_) in outbox.iter_mut() {
            for (dest, msg) in box_.drain(..) {
                deliveries.push((from, dest, msg));
            }
        }
        if deliveries.is_empty() {
            break;
        }
        for (from, dest, msg) in deliveries {
            if done.contains_key(&dest.0) {
                if !matches!(msg, RecolorMsg::Nack) {
                    outbox
                        .get_mut(&dest.0)
                        .expect("participant outbox")
                        .push((NodeId(from), RecolorMsg::Nack));
                }
                continue;
            }
            let p = procs.get_mut(&dest.0).expect("participant");
            let mut out = Vec::new();
            if let RecolorOutcome::Done(c) = p.on_message(NodeId(from), msg, &mut out) {
                done.insert(dest.0, c);
            }
            outbox
                .get_mut(&dest.0)
                .expect("participant outbox")
                .extend(out);
        }
    }
    assert_eq!(
        done.len(),
        procs.len(),
        "only {:?} of {} participants decided",
        done.keys().collect::<Vec<_>>(),
        procs.len()
    );
    done
}

/// The outcome every procedure must deliver: all participants decide a
/// negative color (the "recolored" namespace), and adjacent participants
/// decide *distinct* colors.
fn assert_proper_recoloring(g: &AdjGraph, colors: &BTreeMap<u32, i64>, what: &str) {
    assert!(
        colors.values().all(|&c| c < 0),
        "{what}: recolored colors must be negative: {colors:?}"
    );
    for (a, b) in g.edges() {
        assert_ne!(
            colors[&a], colors[&b],
            "{what}: neighbors {a} and {b} share color (Assumption 1 violated)"
        );
    }
}

#[test]
fn greedy_recolor_converges_on_random_graphs() {
    for seed in 0..8u64 {
        let g = random_graph(8, 0.3, 0x6EE0 ^ seed);
        let procs: BTreeMap<u32, Box<dyn RecolorProcedure>> = g
            .vertices()
            .map(|v| {
                (
                    v,
                    Box::new(GreedyRecolor::new(NodeId(v))) as Box<dyn RecolorProcedure>,
                )
            })
            .collect();
        let colors = pump(&g, procs);
        assert_proper_recoloring(&g, &colors, &format!("greedy seed {seed}"));
    }
}

#[test]
fn linial_recolor_converges_on_random_graphs() {
    for seed in 0..8u64 {
        let g = random_graph(8, 0.3, 0x11A1 ^ seed);
        let delta = max_degree(&g).max(2) as u64;
        let sched = Arc::new(LinialSchedule::compute(1_000, delta));
        let procs: BTreeMap<u32, Box<dyn RecolorProcedure>> = g
            .vertices()
            .map(|v| {
                (
                    v,
                    Box::new(LinialRecolor::new(NodeId(v), sched.clone()))
                        as Box<dyn RecolorProcedure>,
                )
            })
            .collect();
        let colors = pump(&g, procs);
        assert_proper_recoloring(&g, &colors, &format!("linial seed {seed}"));
    }
}

#[test]
fn randomized_recolor_converges_on_random_graphs() {
    for seed in 0..8u64 {
        let g = random_graph(8, 0.3, 0x5EED ^ seed);
        let delta = max_degree(&g).max(2) as u64;
        let procs: BTreeMap<u32, Box<dyn RecolorProcedure>> = g
            .vertices()
            .map(|v| {
                (
                    v,
                    Box::new(RandomizedRecolor::new(NodeId(v), delta, seed))
                        as Box<dyn RecolorProcedure>,
                )
            })
            .collect();
        let colors = pump(&g, procs);
        assert_proper_recoloring(&g, &colors, &format!("randomized seed {seed}"));
    }
}
