//! Live-runtime safety and conformance (DESIGN.md §11).
//!
//! Short in-process mpsc runs of every live-capable algorithm on a clique
//! and a ring, each with one mid-run crash: the captured trace must be
//! safe under the harness monitor, every node thread must join, and the
//! wire codec must not drop a single frame. A separate test exports one
//! fault-free one-shot run's delivery timings as a simulator schedule and
//! asserts the deterministic replay is safe and reproduces the same
//! eating census — the sim-conformance bridge.

use harness::topology;
use lme_net::{conformance_replay, run_live, LiveAlg, LiveConfig, TransportKind};

fn crash_cfg(alg: LiveAlg, positions: Vec<(f64, f64)>) -> LiveConfig {
    let mut cfg = LiveConfig::new(alg, TransportKind::Mpsc, positions);
    cfg.duration_ms = 300;
    cfg.rate = 60.0;
    cfg.eat_ms = 1;
    cfg.crash = Some((0, 100));
    cfg
}

#[test]
fn crashed_mpsc_runs_stay_safe_on_clique_and_ring() {
    for alg in LiveAlg::all() {
        for (name, positions) in [
            ("clique:4", topology::clique(4)),
            ("ring:5", topology::ring(5)),
        ] {
            let n = positions.len();
            let cfg = crash_cfg(alg, positions);
            let out = run_live(&cfg).unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
            assert!(
                out.violations.is_empty(),
                "{} on {name}: {:?}",
                alg.name(),
                out.violations
            );
            assert_eq!(
                out.threads_joined,
                n,
                "{} on {name}: leaked node threads",
                alg.name()
            );
            assert_eq!(
                out.decode_errors,
                0,
                "{} on {name}: wire frames failed to decode",
                alg.name()
            );
            // The crash severs node 0 at 100 ms; survivors must keep the
            // trace non-trivial (states, deliveries) without it.
            assert!(
                !out.trace.is_empty(),
                "{} on {name}: empty trace",
                alg.name()
            );
        }
    }
}

#[test]
fn live_delivery_order_replays_safely_in_the_simulator() {
    // One-shot and fault-free: every node eats exactly once, so the
    // eating census is schedule-independent and the sim replay of the
    // observed delivery timings must reproduce it exactly.
    let mut cfg = LiveConfig::new(LiveAlg::A1Greedy, TransportKind::Mpsc, topology::ring(5));
    cfg.one_shot = true;
    cfg.eat_ms = 1;
    cfg.duration_ms = 5_000;
    let out = run_live(&cfg).expect("live run");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.meals, vec![1; 5], "one-shot run must feed every node");
    // Fault-free and in-process: every decode or send failure is a bug,
    // and each node must report its own zero counters (a node silently
    // eating errors would be invisible in the global totals alone).
    for (i, s) in out.trace.net_stats(5).iter().enumerate() {
        assert_eq!(s.decode_errors, 0, "node {i} saw decode errors");
        assert_eq!(s.send_failures, 0, "node {i} saw send failures");
    }

    let report = conformance_replay(&cfg, &out).expect("replay");
    assert!(
        report.imported_delays > 0,
        "no live delivery delays were imported"
    );
    assert_eq!(report.sim_violations, 0, "sim replay was unsafe");
    assert!(
        report.census_match,
        "sim census {:?} != live census {:?}",
        report.sim_census, report.live_census
    );
    assert!(report.conforms());
}

#[test]
fn reliable_mpsc_runs_stay_safe_with_the_live_shim() {
    // The in-process transport never loses frames, so the live ARQ shim
    // must be pure overhead: same safety, all threads joined, and no
    // decode or send failures introduced by the envelope layer.
    for alg in LiveAlg::all() {
        let mut cfg = LiveConfig::new(alg, TransportKind::Mpsc, topology::ring(5));
        cfg.duration_ms = 300;
        cfg.rate = 60.0;
        cfg.eat_ms = 1;
        cfg.reliable = true;
        let out = run_live(&cfg).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert!(
            out.violations.is_empty(),
            "{}: {:?}",
            alg.name(),
            out.violations
        );
        assert_eq!(out.threads_joined, 5, "{}: leaked node threads", alg.name());
        assert_eq!(
            out.decode_errors,
            0,
            "{}: envelope decode errors",
            alg.name()
        );
        for (i, s) in out.trace.net_stats(5).iter().enumerate() {
            assert_eq!(s.decode_errors, 0, "{}: node {i} decode errors", alg.name());
            assert_eq!(s.send_failures, 0, "{}: node {i} send failures", alg.name());
        }
    }
}

#[test]
fn crashed_node_recovers_and_rejoins_on_mpsc() {
    // Crash node 0 at 100 ms and recover it at 180 ms of a 500 ms run:
    // the fresh incarnation must rejoin (link flaps to every world
    // neighbor), the run must stay safe, and all threads must join.
    for alg in LiveAlg::all() {
        let mut cfg = LiveConfig::new(alg, TransportKind::Mpsc, topology::clique(4));
        cfg.duration_ms = 500;
        cfg.rate = 60.0;
        cfg.eat_ms = 1;
        cfg.reliable = true;
        cfg.crash = Some((0, 100));
        cfg.recover = Some((0, 180));
        let out = run_live(&cfg).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert!(
            out.violations.is_empty(),
            "{}: {:?}",
            alg.name(),
            out.violations
        );
        assert_eq!(out.threads_joined, 4, "{}: leaked node threads", alg.name());
        assert_eq!(
            out.recoveries,
            1,
            "{}: recovery was not executed",
            alg.name()
        );
        assert_eq!(out.decode_errors, 0, "{}: decode errors", alg.name());
    }
}
