//! The sweep executor's determinism guarantee (tier-1): the JSON-lines
//! report of a fixed `SweepSpec` is byte-identical for 1 worker vs 4
//! workers, and across repeated runs — worker scheduling must never leak
//! into the output. This is what makes parallel sweeps trustworthy as
//! measurement infrastructure.

use manet_local_mutex::harness::{
    par_map, topology, AlgKind, RunSpec, SweepSpec, Topo, WaypointPlan,
};
use manet_local_mutex::sim::NodeId;

fn sweep() -> SweepSpec {
    SweepSpec::new(
        "line6",
        Topo::Geo(topology::line(6)),
        RunSpec {
            horizon: 6_000,
            ..RunSpec::default()
        },
    )
    .kinds([AlgKind::A2, AlgKind::ChandyMisra])
    .seed_range(1, 8)
}

#[test]
fn sweep_jsonl_is_byte_identical_for_jobs_1_vs_4() {
    let serial = sweep().run(1).jsonl();
    let parallel = sweep().run(4).jsonl();
    assert_eq!(serial, parallel);
    // 2 algorithms × 8 seeds, one line per run.
    assert_eq!(serial.lines().count(), 16);
}

#[test]
fn sweep_jsonl_is_byte_identical_across_repeats() {
    let first = sweep().run(4).jsonl();
    let second = sweep().run(4).jsonl();
    assert_eq!(first, second);
}

#[test]
fn aggregate_rows_are_jobs_invariant_too() {
    let a: Vec<String> = sweep()
        .run(1)
        .aggregate()
        .iter()
        .map(|r| r.to_jsonl())
        .collect();
    let b: Vec<String> = sweep()
        .run(4)
        .aggregate()
        .iter()
        .map(|r| r.to_jsonl())
        .collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2, "one aggregate row per (label, alg) group");
}

#[test]
fn mobile_probe_sweeps_are_deterministic() {
    // The hardest cell kind: per-cell waypoint mobility plus a mid-CS
    // crash probe. Everything still derives from the cell seed alone.
    let spec = || {
        SweepSpec::new(
            "line9",
            Topo::Geo(topology::line(9)),
            RunSpec {
                horizon: 12_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seed_range(3, 5)
        .moves(WaypointPlan {
            area_side: 4.0,
            moves: 6,
            window: (2_000, 10_000),
            speed: Some(0.25),
            seed: 0, // overridden per cell
        })
        .probe(NodeId(4), 1_000)
    };
    assert_eq!(spec().run(1).jsonl(), spec().run(4).jsonl());
}

#[test]
fn par_map_matches_serial_map_for_any_worker_count() {
    let items: Vec<u64> = (0..53).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
    for jobs in [1, 2, 4, 16] {
        assert_eq!(
            par_map(&items, jobs, |&x| x.wrapping_mul(2654435761)),
            expect,
            "jobs={jobs}"
        );
    }
}
