//! Differential conformance suite: the timing-wheel event core and the
//! binary-heap reference must be **bit-for-bit indistinguishable** — same
//! `(at, seq)` dispatch order, same traces, same state digests, same
//! EngineStats, same JSONL reports, same structured aborts. The wheel only
//! stays landed because this suite says the semantics are unchanged.
//!
//! Cells cover topology × mobility × fault combinations over at least
//! 8 seeds, plus the model checker's DFS/PCT/replay strategies and the
//! imported-schedule conformance-replay path.

use harness::{
    run_algorithm, run_algorithm_with_strategy, topology, AlgKind, RunOutcome, RunReport, RunSpec,
    SweepSpec, Topo, WaypointPlan,
};
use lme_check::{run_schedule, CheckSpec, Plan};
use local_mutex::Algorithm2;
use manet_sim::{
    Command, CrashWave, Engine, EventQueueKind, FaultPlan, ImportedSchedule, NodeId,
    PartitionWindow, SimConfig, SimTime, Strategy,
};

const SEEDS: std::ops::Range<u64> = 1..9;

/// Run `kind` on `positions` under both event-queue cores and require every
/// observable artifact — engine stats, metrics, final adjacency, crash set,
/// structured abort, and the rendered JSONL line — to match exactly.
fn assert_outcomes_match(
    label: &str,
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
) {
    let run = |queue: EventQueueKind| -> (RunOutcome, String) {
        let mut spec = spec.clone();
        spec.sim.event_queue = queue;
        let out = run_algorithm(kind, &spec, positions, commands);
        let jsonl =
            RunReport::from_outcome(label, kind.name(), spec.sim.seed, spec.horizon, &out, None)
                .to_jsonl();
        (out, jsonl)
    };
    let (heap, heap_jsonl) = run(EventQueueKind::Heap);
    let (wheel, wheel_jsonl) = run(EventQueueKind::Wheel);
    let ctx = format!("{label} / {} / seed {}", kind.name(), spec.sim.seed);
    assert_eq!(heap.stats, wheel.stats, "{ctx}: EngineStats diverged");
    assert_eq!(
        heap.metrics.samples, wheel.metrics.samples,
        "{ctx}: response samples diverged"
    );
    assert_eq!(
        heap.metrics.meals, wheel.metrics.meals,
        "{ctx}: meal counts diverged"
    );
    assert_eq!(
        heap.adjacency, wheel.adjacency,
        "{ctx}: final adjacency diverged"
    );
    assert_eq!(heap.crashed, wheel.crashed, "{ctx}: crash sets diverged");
    assert_eq!(
        heap.violations, wheel.violations,
        "{ctx}: violations diverged"
    );
    assert_eq!(heap.abort, wheel.abort, "{ctx}: aborts diverged");
    assert_eq!(heap_jsonl, wheel_jsonl, "{ctx}: JSONL diverged");
}

fn spec_with_seed(seed: u64, horizon: u64, fault: FaultPlan) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            fault,
            ..SimConfig::default()
        },
        horizon,
        ..RunSpec::default()
    }
}

fn waypoints(n: usize, moves: usize, horizon: u64, seed: u64) -> Vec<(SimTime, Command)> {
    WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt().max(2.0),
        moves,
        window: (horizon / 10, horizon * 9 / 10),
        speed: Some(0.25),
        seed,
    }
    .commands(n)
}

// ---------------------------------------------------------------------
// Engine-level cells: full traces must be byte-identical.
// ---------------------------------------------------------------------

/// Build an A2 engine over `positions` with the given event-queue core,
/// apply `commands`, run, and return the full trace plus digest and stats.
fn traced_run(
    seed: u64,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
    queue: EventQueueKind,
) -> (
    Vec<manet_sim::TraceEntry>,
    Option<u64>,
    manet_sim::EngineStats,
) {
    let cfg = SimConfig {
        seed,
        trace: true,
        event_queue: queue,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, positions.to_vec(), |seed| Algorithm2::new(&seed));
    for i in 0..positions.len() as u32 {
        eng.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
    }
    for (at, cmd) in commands {
        eng.schedule(*at, cmd.clone());
    }
    eng.run_until(SimTime(6_000));
    (
        eng.trace().to_vec(),
        eng.state_digest(),
        eng.stats().clone(),
    )
}

fn assert_traces_match(
    label: &str,
    seed: u64,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
) {
    let (ht, hd, hs) = traced_run(seed, positions, commands, EventQueueKind::Heap);
    let (wt, wd, ws) = traced_run(seed, positions, commands, EventQueueKind::Wheel);
    assert_eq!(ht, wt, "{label} / seed {seed}: traces diverged");
    assert_eq!(hd, wd, "{label} / seed {seed}: state digests diverged");
    assert_eq!(hs, ws, "{label} / seed {seed}: stats diverged");
}

/// Cell 1: line topology with waypoint motion plus a far-future teleport —
/// the command sits beyond the wheel's bucket horizon at schedule time, so
/// it lands in the overflow heap and must still dispatch in exact order.
#[test]
fn cell_line_motion_with_far_overflow_command() {
    let positions = topology::line(12);
    for seed in SEEDS {
        let mut commands = vec![(
            SimTime(5_500), // scheduled at t=0: far outside any bucket window
            Command::Teleport {
                node: NodeId(0),
                dest: manet_sim::Position { x: 3.0, y: 1.5 },
            },
        )];
        commands.extend(waypoints(12, 6, 6_000, seed ^ 0xB0B));
        commands.sort_by_key(|(t, _)| *t);
        assert_traces_match("line:12+overflow", seed, &positions, &commands);
    }
}

/// Cell 2: random deployment with smooth random-waypoint motion — dense
/// same-tick ties (timers, deliveries, link changes) exercise the wheel's
/// per-bucket FIFO against the heap's `(at, seq)` order.
#[test]
fn cell_random_waypoint_smooth_motion() {
    for seed in SEEDS {
        let positions = topology::random_connected(30, seed);
        let commands = waypoints(30, 12, 6_000, seed ^ 0xB0B);
        assert_traces_match("random:30+waypoint", seed, &positions, &commands);
    }
}

// ---------------------------------------------------------------------
// Harness-level cells: stats + metrics + JSONL must be byte-identical.
// ---------------------------------------------------------------------

/// Cell 3: clique under the adaptive max-delay adversary with moves.
#[test]
fn cell_clique_max_delay_adversary() {
    let positions = topology::clique(8);
    for seed in SEEDS {
        let fault = FaultPlan {
            max_delay: Some(manet_sim::DelayAdversary {
                targets: (0..8).map(NodeId).collect(),
                window: Some((100, 3_000)),
            }),
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 8_000, fault);
        let commands = waypoints(8, 4, 8_000, seed);
        assert_outcomes_match("clique:8", AlgKind::A1Greedy, &spec, &positions, &commands);
    }
}

/// Cell 4: ring under message drop + duplication faults with moves —
/// duplicate ghosts are pushed with out-of-order timestamps relative to
/// their originals, the regime that forces wheel re-anchoring.
#[test]
fn cell_ring_loss_and_duplication() {
    let positions = topology::ring(16);
    for seed in SEEDS {
        let fault = FaultPlan {
            link: Some(manet_sim::LinkFaults {
                drop: 0.15,
                duplicate: 0.15,
                ..manet_sim::LinkFaults::default()
            }),
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 8_000, fault);
        let commands = waypoints(16, 5, 8_000, seed);
        assert_outcomes_match("ring:16", AlgKind::A1Linial, &spec, &positions, &commands);
    }
}

/// Cell 5: random deployment with a crash wave and a partition window
/// under waypoint motion.
#[test]
fn cell_random_crash_wave_and_partition() {
    for seed in SEEDS {
        let positions = topology::random_connected(40, seed);
        let fault = FaultPlan {
            crash_waves: vec![CrashWave {
                at: 2_000,
                nodes: vec![NodeId(seed as u32 % 40)],
            }],
            partitions: vec![PartitionWindow {
                at: 3_000,
                side: (0..10).map(NodeId).collect(),
                heal_after: 1_500,
            }],
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 9_000, fault);
        let commands = waypoints(40, 8, 9_000, seed ^ 0xFEED);
        assert_outcomes_match("random:40", AlgKind::A2, &spec, &positions, &commands);
    }
}

// ---------------------------------------------------------------------
// Checker-level cells: every exploration strategy must see the same runs.
// ---------------------------------------------------------------------

fn line_edges(n: usize) -> Vec<(u32, u32)> {
    (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
}

fn checked_verdicts(alg: AlgKind, plan: &Plan, queue: EventQueueKind) -> lme_check::RunVerdict {
    let mut spec = CheckSpec::new(alg, "line:4", 4, line_edges(4));
    spec.event_queue = queue;
    run_schedule(&spec, plan)
}

fn assert_verdicts_match(alg: AlgKind, plan: &Plan) {
    let heap = checked_verdicts(alg, plan, EventQueueKind::Heap);
    let wheel = checked_verdicts(alg, plan, EventQueueKind::Wheel);
    let ctx = format!("{} / {plan:?}", alg.name());
    assert_eq!(heap.choices, wheel.choices, "{ctx}: choice logs diverged");
    assert_eq!(heap.trace, wheel.trace, "{ctx}: traces diverged");
    assert_eq!(heap.violation, wheel.violation, "{ctx}: verdicts diverged");
    assert_eq!(heap.drained, wheel.drained, "{ctx}: drain status diverged");
    assert_eq!(heap.meals, wheel.meals, "{ctx}: meal counts diverged");
    assert_eq!(heap.abort, wheel.abort, "{ctx}: aborts diverged");
}

/// Cell 6: the model checker's DFS, PCT, random-walk, and replay
/// strategies resolve identical branch points on both cores.
#[test]
fn cell_check_strategies_agree_across_cores() {
    for alg in [AlgKind::A1Greedy, AlgKind::A2] {
        assert_verdicts_match(
            alg,
            &Plan::Dfs {
                prefix: vec![],
                dedup: true,
            },
        );
        assert_verdicts_match(
            alg,
            &Plan::Dfs {
                prefix: vec![1, 1, 0],
                dedup: false,
            },
        );
        for seed in SEEDS {
            assert_verdicts_match(alg, &Plan::Pct { seed, changes: 3 });
            assert_verdicts_match(alg, &Plan::Random { seed });
            // Replay the random walk's recorded delays on both cores.
            let sampled = checked_verdicts(alg, &Plan::Random { seed }, EventQueueKind::Heap);
            let delays: Vec<u64> = sampled.choices.iter().map(|c| c.delay).collect();
            assert_verdicts_match(alg, &Plan::Replay { delays });
        }
    }
}

// ---------------------------------------------------------------------
// Imported-schedule cells: the conformance-replay path of live runs.
// ---------------------------------------------------------------------

fn replay_outcome(
    schedule: ImportedSchedule,
    seed: u64,
    queue: EventQueueKind,
) -> (RunOutcome, String) {
    let mut spec = spec_with_seed(seed, 5_000, FaultPlan::default());
    spec.sim.event_queue = queue;
    let positions = topology::clique(6);
    let out = run_algorithm_with_strategy(
        AlgKind::A2,
        &spec,
        &positions,
        &[],
        Some(Box::new(schedule)),
    );
    let jsonl = RunReport::from_outcome(
        "replay:clique6",
        AlgKind::A2.name(),
        spec.sim.seed,
        spec.horizon,
        &out,
        None,
    )
    .to_jsonl();
    (out, jsonl)
}

/// Cell 7: a recorded (synthetic, in-window) live schedule replays to the
/// same outcome and JSONL on both cores.
#[test]
fn cell_imported_schedule_replay_agrees() {
    for seed in SEEDS {
        let build = || {
            let nu = SimConfig::default().max_message_delay;
            let mut sched = ImportedSchedule::new(1);
            let mut k = seed;
            for from in 0..6u32 {
                for to in 0..6u32 {
                    if from == to {
                        continue;
                    }
                    for _ in 0..8 {
                        k = k.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        sched.push(NodeId(from), NodeId(to), 1 + k % nu);
                    }
                }
            }
            sched
        };
        let (heap, heap_jsonl) = replay_outcome(build(), seed, EventQueueKind::Heap);
        let (wheel, wheel_jsonl) = replay_outcome(build(), seed, EventQueueKind::Wheel);
        assert_eq!(heap.abort, None, "seed {seed}: in-window replay aborted");
        assert_eq!(heap.stats, wheel.stats, "seed {seed}: stats diverged");
        assert_eq!(heap_jsonl, wheel_jsonl, "seed {seed}: JSONL diverged");
    }
}

/// Cell 8: a malformed recording (delay below the legal window) is
/// rejected with the *same* structured abort on both cores — the bugfix
/// that replaced silent clamping must not itself depend on the core.
#[test]
fn cell_malformed_replay_rejected_identically() {
    let build = || {
        let mut sched = ImportedSchedule::new(1);
        sched.push(NodeId(0), NodeId(1), 0); // below min_message_delay
        sched
    };
    let (heap, heap_jsonl) = replay_outcome(build(), 3, EventQueueKind::Heap);
    let (wheel, wheel_jsonl) = replay_outcome(build(), 3, EventQueueKind::Wheel);
    assert!(
        heap.abort
            .as_deref()
            .is_some_and(|a| a.contains("outside legal window")),
        "abort: {:?}",
        heap.abort
    );
    assert_eq!(heap.abort, wheel.abort, "aborts diverged");
    assert_eq!(heap_jsonl, wheel_jsonl, "JSONL diverged");
}

// ---------------------------------------------------------------------
// Sweep-level cell: parallel JSONL identical across cores and job counts.
// ---------------------------------------------------------------------

/// Cell 9: a multi-seed sweep renders byte-identical JSONL for any worker
/// count under either core, and across the two cores.
#[test]
fn cell_sweep_jsonl_identical_across_cores_and_jobs() {
    let sweep = |queue: EventQueueKind| {
        SweepSpec::new(
            "line6",
            Topo::Geo(topology::line(6)),
            RunSpec {
                sim: SimConfig {
                    event_queue: queue,
                    ..SimConfig::default()
                },
                horizon: 3_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2, AlgKind::A1Greedy])
        .seed_range(1, 4)
    };
    let heap_serial = sweep(EventQueueKind::Heap).run(1).jsonl();
    let heap_parallel = sweep(EventQueueKind::Heap).run(4).jsonl();
    let wheel_serial = sweep(EventQueueKind::Wheel).run(1).jsonl();
    let wheel_parallel = sweep(EventQueueKind::Wheel).run(4).jsonl();
    assert_eq!(heap_serial, heap_parallel, "heap: jobs changed the JSONL");
    assert_eq!(
        wheel_serial, wheel_parallel,
        "wheel: jobs changed the JSONL"
    );
    assert_eq!(heap_serial, wheel_serial, "cores rendered different JSONL");
    assert_eq!(heap_serial.lines().count(), 8);
}

// ---------------------------------------------------------------------
// Strategy sanity: the suite's own plumbing.
// ---------------------------------------------------------------------

/// The `Strategy` object is what the replay cells inject; double-check the
/// trait-object path sees the same choices the engine validates.
#[test]
fn imported_schedule_strategy_object_is_consulted() {
    let mut sched = ImportedSchedule::new(2);
    sched.push(NodeId(0), NodeId(1), 4);
    let mut boxed: Box<dyn Strategy> = Box::new(sched);
    let choice = manet_sim::DeliveryChoice {
        from: NodeId(0),
        to: NodeId(1),
        kind: "msg",
        now: SimTime(10),
        earliest: 1,
        latest: 10,
        pending_in_window: 0,
        pending_dependent_in_window: 0,
        fifo_floor: None,
        digest: None,
    };
    assert_eq!(boxed.choose_delay(&choice), 4);
    assert_eq!(boxed.choose_delay(&choice), 2);
}
