//! Cross-crate liveness tests: on every topology, under contention, every
//! node keeps entering its critical section — for all five algorithms.

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec};

fn assert_live(kind: AlgKind, name: &str, positions: &[(f64, f64)], horizon: u64, min_meals: u64) {
    let spec = RunSpec {
        horizon,
        ..RunSpec::default()
    };
    let out = run_algorithm(kind, &spec, positions, &[]);
    assert!(
        out.violations.is_empty(),
        "{} on {name}: safety violated",
        kind.name()
    );
    for (i, &m) in out.metrics.meals.iter().enumerate() {
        assert!(
            m >= min_meals,
            "{} on {name}: node {i} ate only {m} times (< {min_meals}); meals = {:?}",
            kind.name(),
            out.metrics.meals
        );
    }
}

#[test]
fn everyone_eats_on_a_line() {
    for kind in AlgKind::all() {
        assert_live(kind, "line-7", &topology::line(7), 40_000, 3);
    }
}

#[test]
fn everyone_eats_on_a_ring() {
    for kind in AlgKind::all() {
        assert_live(kind, "ring-8", &topology::ring(8), 40_000, 3);
    }
}

#[test]
fn everyone_eats_on_a_grid() {
    for kind in AlgKind::all() {
        assert_live(kind, "grid-4x4", &topology::grid(4, 4), 50_000, 3);
    }
}

#[test]
fn everyone_eats_in_a_clique() {
    for kind in AlgKind::all() {
        assert_live(kind, "clique-6", &topology::clique(6), 60_000, 2);
    }
}

#[test]
fn everyone_eats_on_a_random_graph() {
    for kind in AlgKind::all() {
        assert_live(
            kind,
            "random-20",
            &topology::random_connected(20, 5),
            60_000,
            2,
        );
    }
}

#[test]
fn disconnected_components_progress_independently() {
    // Two separate triangles: no cross-component interference.
    let mut positions = topology::clique(3);
    positions.extend(topology::clique(3).into_iter().map(|(x, y)| (x + 100.0, y)));
    for kind in [AlgKind::A1Greedy, AlgKind::A2] {
        assert_live(kind, "two-triangles", &positions, 30_000, 3);
    }
}
