//! Tier-1 tests of the fault-injection adversary: for every fault class
//! the safety invariant must hold unconditionally, crash probes must
//! respect Algorithm 2's failure locality of 2 (Theorem 25), and once an
//! injected fault schedule quiesces, every live node must resume regular
//! progress.

use manet_local_mutex::harness::{
    fault_probe, run_algorithm, topology, AlgKind, FaultClass, RunSpec,
};
use manet_local_mutex::sim::{NodeId, SimTime};

fn spec(horizon: u64) -> RunSpec {
    RunSpec {
        horizon,
        ..RunSpec::default()
    }
}

const CLASSES: [FaultClass; 5] = [
    FaultClass::Crash,
    FaultClass::Loss(0.4),
    FaultClass::Duplication(0.6),
    FaultClass::Partition,
    FaultClass::MaxDelay,
];

#[test]
fn safety_holds_under_every_fault_class() {
    for kind in [AlgKind::A1Greedy, AlgKind::A2] {
        for class in CLASSES {
            let report = fault_probe(
                kind,
                &spec(30_000),
                &topology::line(9),
                NodeId(4),
                class,
                1_500,
            );
            assert!(
                report.fl.outcome.violations.is_empty(),
                "{} under {} faults violated safety: {:?}",
                kind.name(),
                class.label(),
                report.fl.outcome.violations
            );
        }
    }
}

#[test]
fn a2_crash_probe_failure_locality_is_at_most_two() {
    let victim = NodeId(5);
    let report = fault_probe(
        AlgKind::A2,
        &spec(60_000),
        &topology::line(11),
        victim,
        FaultClass::Crash,
        2_000,
    );
    assert!(
        report.fl.outcome.crash_time.is_some(),
        "the victim never ate, so the crash never fired"
    );
    if let Some(m) = report.fl.locality {
        assert!(
            m <= 2,
            "empirical failure locality {m} exceeds Theorem 25's bound of 2: {:?}",
            report.fl.starving
        );
    }
    // Graceful degradation: every node beyond radius 2 keeps eating.
    let dist = report.fl.outcome.distances_from(victim);
    for (i, d) in dist.iter().enumerate() {
        if d.is_some_and(|d| d > 2) {
            assert!(
                report.fl.outcome.metrics.meals[i] >= 3,
                "node {i} at distance {d:?} from the crash stopped eating"
            );
        }
    }
}

#[test]
fn progress_resumes_after_loss_duplication_and_partition_quiesce() {
    for class in [
        FaultClass::Loss(0.5),
        FaultClass::Duplication(1.0),
        FaultClass::Partition,
    ] {
        let n = 9;
        let report = fault_probe(
            AlgKind::A2,
            &spec(40_000),
            &topology::line(n),
            NodeId(4),
            class,
            2_000,
        );
        let out = &report.fl.outcome;
        assert!(
            out.violations.is_empty(),
            "{}: safety violated: {:?}",
            class.label(),
            out.violations
        );
        assert!(
            report.fl.starving.is_empty(),
            "{}: still starving after quiescence at {}: {:?}",
            class.label(),
            report.quiesced_at,
            report.fl.starving
        );
        // Stronger than "not starving": every live node completes a meal
        // in the post-quiescence tail.
        let tail = SimTime(report.quiesced_at);
        for i in 0..n as u32 {
            let node = NodeId(i);
            let tail_meals = out
                .metrics
                .samples
                .iter()
                .filter(|s| s.node == node && s.eat_at >= tail)
                .count();
            assert!(
                tail_meals > 0,
                "{}: node {i} made no progress after the faults quiesced at {}",
                class.label(),
                report.quiesced_at
            );
        }
    }
}

#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let mut s = spec(20_000);
        s.sim.fault = FaultClass::Loss(0.3).plan(NodeId(4), (1_000, 10_000));
        run_algorithm(AlgKind::A2, &s, &topology::line(9), &[])
    };
    let a = run();
    let b = run();
    assert!(a.stats.faults.total() > 0, "the fault window never fired");
    assert_eq!(a.stats.faults, b.stats.faults);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.events, b.events);
    assert_eq!(a.metrics.meals, b.metrics.meals);
}
