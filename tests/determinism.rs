//! Reproducibility: the whole stack is deterministic in the seed. Two runs
//! with identical configuration must agree event-for-event (we compare
//! message counts and the full response-time sample vectors); changing the
//! seed must actually change the schedule.

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec, WaypointPlan};
use manet_local_mutex::sim::SimConfig;

fn spec(seed: u64) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            ..SimConfig::default()
        },
        horizon: 8_000,
        ..RunSpec::default()
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs_for_every_algorithm() {
    let positions = topology::random_connected(14, 5);
    let plan = WaypointPlan {
        area_side: 3.0,
        moves: 5,
        window: (500, 6_000),
        speed: Some(0.3),
        seed: 9,
    };
    let commands = plan.commands(14);
    for kind in AlgKind::extended() {
        let a = run_algorithm(kind, &spec(42), &positions, &commands);
        let b = run_algorithm(kind, &spec(42), &positions, &commands);
        assert_eq!(
            a.messages_sent,
            b.messages_sent,
            "{}: message counts diverged",
            kind.name()
        );
        assert_eq!(a.events, b.events, "{}: event counts diverged", kind.name());
        assert_eq!(
            a.metrics.samples,
            b.metrics.samples,
            "{}: sample streams diverged",
            kind.name()
        );
        assert_eq!(a.metrics.meals, b.metrics.meals);
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let positions = topology::random_connected(14, 5);
    let a = run_algorithm(AlgKind::A2, &spec(1), &positions, &[]);
    let b = run_algorithm(AlgKind::A2, &spec(2), &positions, &[]);
    // Different delay draws must shift at least the sample stream.
    assert_ne!(
        a.metrics.samples, b.metrics.samples,
        "distinct seeds produced identical runs"
    );
}
