//! Integration tests for the repository's extensions beyond the paper's
//! letter: the randomized recoloring variant (suggested in the Discussion
//! chapter) and explicit-graph topologies that unit-disk geometry cannot
//! embed.

use manet_local_mutex::harness::{run_algorithm, run_protocol_graph, topology, AlgKind, RunSpec};
use manet_local_mutex::lme::{Algorithm1, Algorithm2};
use manet_local_mutex::sim::{Command, NodeId, Position, SimTime};

#[test]
fn a1_random_is_safe_and_live_on_static_topologies() {
    for positions in [topology::line(6), topology::ring(6), topology::clique(5)] {
        let spec = RunSpec {
            horizon: 40_000,
            ..RunSpec::default()
        };
        let out = run_algorithm(AlgKind::A1Random, &spec, &positions, &[]);
        assert!(out.violations.is_empty(), "A1-random unsafe");
        assert!(
            out.metrics.meals.iter().all(|&m| m >= 3),
            "A1-random starved: {:?}",
            out.metrics.meals
        );
    }
}

#[test]
fn a1_random_handles_mobility_with_recoloring() {
    // A mover teleports into a triangle; the randomized procedure must
    // deliver a color and the mover must keep eating.
    let mut positions = topology::clique(3);
    positions.push((50.0, 0.0));
    let spec = RunSpec {
        horizon: 40_000,
        ..RunSpec::default()
    };
    let commands = [(
        SimTime(2_000),
        Command::Teleport {
            node: NodeId(3),
            dest: Position { x: 0.1, y: 0.1 },
        },
    )];
    let out = run_algorithm(AlgKind::A1Random, &spec, &positions, &commands);
    assert!(out.violations.is_empty());
    assert!(
        out.metrics.meals[3] >= 3,
        "mover starved: {:?}",
        out.metrics.meals
    );
}

#[test]
fn extended_kinds_cover_all_six_algorithms() {
    let names: Vec<&str> = AlgKind::extended().iter().map(|k| k.name()).collect();
    assert_eq!(names.len(), 6);
    assert!(names.contains(&"A1-random"));
    // `all()` remains the paper's Table 1 set.
    assert_eq!(AlgKind::all().len(), 5);
}

#[test]
fn algorithms_work_on_an_explicit_star() {
    // A 9-leaf star is not embeddable in the unit disk; the explicit-graph
    // engine runs it anyway. The hub conflicts with every leaf; leaves only
    // with the hub — everyone must still eat.
    let (n, edges) = topology::star_edges(9);
    let spec = RunSpec {
        horizon: 60_000,
        ..RunSpec::default()
    };
    let out = run_protocol_graph(&spec, n, &edges, |seed| Algorithm2::new(&seed), |_| {});
    assert!(out.violations.is_empty());
    assert!(
        out.metrics.meals.iter().all(|&m| m >= 3),
        "starvation on the star: {:?}",
        out.metrics.meals
    );
    // Leaves conflict only with the hub, so they eat far more often.
    let hub = out.metrics.meals[0];
    let leaf_min = out.metrics.meals[1..].iter().min().copied().unwrap();
    assert!(leaf_min >= hub, "leaves should out-eat the contended hub");
}

#[test]
fn every_algorithm_runs_on_an_explicit_star() {
    // The graph dispatcher covers all six kinds; a short star run keeps it
    // cheap while touching each code path (incl. the Choy–Singh coloring
    // over an explicit edge list and the Linial schedule for stars).
    let (n, edges) = topology::star_edges(5);
    let spec = RunSpec {
        horizon: 20_000,
        ..RunSpec::default()
    };
    for kind in manet_local_mutex::harness::AlgKind::extended() {
        let out = manet_local_mutex::harness::run_algorithm_graph(kind, &spec, n, &edges, &[]);
        assert!(out.violations.is_empty(), "{} unsafe on star", kind.name());
        assert!(
            out.metrics.meals.iter().all(|&m| m >= 2),
            "{} starved on star: {:?}",
            kind.name(),
            out.metrics.meals
        );
    }
}

#[test]
fn algorithms_work_on_an_explicit_tree() {
    let (n, edges) = topology::binary_tree_edges(15);
    let spec = RunSpec {
        horizon: 60_000,
        ..RunSpec::default()
    };
    let out = run_protocol_graph(&spec, n, &edges, |seed| Algorithm1::greedy(&seed), |_| {});
    assert!(out.violations.is_empty());
    assert!(
        out.metrics.meals.iter().all(|&m| m >= 3),
        "starvation on the tree: {:?}",
        out.metrics.meals
    );
}

#[test]
fn crash_on_explicit_star_blocks_only_the_hub_side() {
    // Crash one leaf mid-CS: only the hub can be blocked (it shares the
    // crashed fork); other leaves keep eating.
    let (n, edges) = topology::star_edges(8);
    let spec = RunSpec {
        horizon: 60_000,
        crash_eating: Some((NodeId(3), 2_000)),
        ..RunSpec::default()
    };
    let out = run_protocol_graph(&spec, n, &edges, |seed| Algorithm2::new(&seed), |_| {});
    assert!(out.violations.is_empty());
    assert!(out.crash_time.is_some(), "the victim leaf must have eaten");
    for i in 1..n {
        if i == 3 {
            continue;
        }
        assert!(
            out.metrics.meals[i] >= 3,
            "leaf {i} starved after a sibling's crash: {:?}",
            out.metrics.meals
        );
    }
}
