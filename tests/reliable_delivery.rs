//! Reliable delivery and recovery (DESIGN.md §13).
//!
//! Four pillars:
//!
//! 1. **Shim off is the bare channel.** With `SimConfig::arq = None` the
//!    engine behaves bit-for-bit as before the shim existed: all shim
//!    counters stay zero, the JSONL report's suffix keys render as zeros,
//!    and a pinned golden run (trace length, message counts, state digest)
//!    guards against the shim ever perturbing the default path.
//! 2. **Shim on, loss-free.** Arming the ARQ shim on a reliable network
//!    must not change the workload's outcome: the same session census,
//!    no safety violations, full quiescence.
//! 3. **Sustained adversity.** Under 30% whole-run loss (no healing
//!    window — only retransmission can restore a dropped fork) every
//!    algorithm still feeds every node and quiesces safely.
//! 4. **Crash → recover.** A node crashed mid-run and recovered as a
//!    fresh incarnation rejoins without duplicating or losing a fork.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use baselines::ChandyMisra;
use coloring::LinialSchedule;
use harness::{run_algorithm, topology, AlgKind, RunReport, RunSpec, SafetyMonitor};
use local_mutex::testutil::AutoExit;
use local_mutex::{Algorithm1, Algorithm2};
use manet_sim::{
    ArqConfig, DiningState, Engine, FaultPlan, Hook, LinkFaults, NodeId, NodeSeed, Protocol,
    ShimStats, SimConfig, SimTime, Sink, View,
};

/// Counts `Eating` transitions per node — the session census of an
/// engine-level run.
struct MealCount(Rc<RefCell<Vec<u64>>>);

impl<M> Hook<M> for MealCount {
    fn on_state_change(
        &mut self,
        _view: &View<'_>,
        node: NodeId,
        _old: DiningState,
        new: DiningState,
        _sink: &mut Sink,
    ) {
        if new == DiningState::Eating {
            self.0.borrow_mut()[node.index()] += 1;
        }
    }
}

/// The sustained-loss fault plan: 30% drops on every link, the whole run,
/// no healing partition.
fn sustained_loss(drop: f64) -> FaultPlan {
    FaultPlan {
        link: Some(LinkFaults {
            drop,
            window: None,
            targets: None,
            ..LinkFaults::default()
        }),
        ..FaultPlan::default()
    }
}

/// Run `factory`'s protocol over `positions` with three hungry waves and
/// an optional ARQ config + fault plan; returns (engine, census,
/// violations observed).
#[allow(clippy::type_complexity)]
fn waved_run<P, F>(
    seed: u64,
    positions: Vec<(f64, f64)>,
    arq: Option<ArqConfig>,
    fault: FaultPlan,
    horizon: u64,
    factory: F,
) -> (Engine<P>, Vec<u64>, Rc<RefCell<Vec<harness::Violation>>>)
where
    P: Protocol,
    F: FnMut(NodeSeed) -> P + 'static,
{
    let n = positions.len();
    let cfg = SimConfig {
        seed,
        arq,
        fault,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, positions, factory);
    engine.add_hook(Box::new(AutoExit::new(8)));
    let meals = Rc::new(RefCell::new(vec![0u64; n]));
    engine.add_hook(Box::new(MealCount(meals.clone())));
    let (monitor, violations) = SafetyMonitor::new(false);
    engine.add_hook(Box::new(monitor));
    for wave in [1u64, 5_000, 10_000] {
        for i in 0..n as u32 {
            engine.set_hungry_at(SimTime(wave + u64::from(i % 7)), NodeId(i));
        }
    }
    engine.run_until(SimTime(horizon));
    let census = meals.borrow().clone();
    (engine, census, violations)
}

/// Assert the `waved_run` quiesced, fed every node all three waves, and
/// stayed safe throughout.
fn assert_live_and_safe<P: Protocol>(
    name: &str,
    seed: u64,
    engine: &Engine<P>,
    census: &[u64],
    violations: &Rc<RefCell<Vec<harness::Violation>>>,
) {
    assert_eq!(
        engine.abort(),
        None,
        "{name} seed {seed}: run aborted: {:?}",
        engine.abort()
    );
    assert_eq!(
        engine.pending_events(),
        0,
        "{name} seed {seed}: run did not quiesce"
    );
    assert!(
        census.iter().all(|&m| m == 3),
        "{name} seed {seed}: census {census:?} != 3 meals per node"
    );
    assert!(
        violations.borrow().is_empty(),
        "{name} seed {seed}: {:?}",
        violations.borrow()
    );
}

/// Fork conservation at quiescence: on every live link the fork sits at
/// exactly one endpoint.
fn assert_forks_conserved<P, H>(name: &str, seed: u64, engine: &Engine<P>, n: usize, holds: H)
where
    P: Protocol,
    H: Fn(&P, NodeId) -> bool,
{
    let world = engine.world();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            let (na, nb) = (NodeId(a), NodeId(b));
            if world.is_crashed(na) || world.is_crashed(nb) || !world.linked(na, nb) {
                continue;
            }
            let at_a = holds(engine.protocol(na), nb);
            let at_b = holds(engine.protocol(nb), na);
            assert!(
                at_a ^ at_b,
                "{name} seed {seed}: fork of link {{{a}, {b}}} is {} at quiescence",
                if at_a { "duplicated" } else { "lost" }
            );
        }
    }
}

// ---------------------------------------------------------------------
// 1. Shim off: the bare channel of the seed, bit for bit.
// ---------------------------------------------------------------------

/// Trace-level fingerprint of one bare-channel A2 run.
fn bare_run_fingerprint() -> (u64, u64, usize, Option<u64>) {
    let cfg = SimConfig {
        seed: 42,
        trace: true,
        ..SimConfig::default()
    };
    let positions: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 0.0)).collect();
    let mut eng = Engine::new(cfg, positions, |seed| Algorithm2::new(&seed));
    eng.add_hook(Box::new(AutoExit::new(8)));
    for i in 0..6u32 {
        eng.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
    }
    eng.run_until(SimTime(6_000));
    let stats = eng.stats();
    (
        stats.events,
        stats.messages_sent,
        eng.trace().len(),
        eng.state_digest(),
    )
}

#[test]
fn shim_off_runs_are_bit_for_bit_the_bare_channel() {
    // Two identical invocations agree on everything, and the run matches
    // the fingerprint pinned when the shim landed: the `arq: None` path
    // must never feel the shim's presence (extra events, RNG draws, or
    // timers would all shift at least one of these numbers).
    let a = bare_run_fingerprint();
    let b = bare_run_fingerprint();
    assert_eq!(a, b, "bare-channel run is not deterministic");
    assert_eq!(
        (a.0, a.1, a.2),
        (GOLDEN_EVENTS, GOLDEN_MESSAGES, GOLDEN_TRACE_LEN),
        "bare-channel fingerprint drifted — the shim-off path changed"
    );
    assert_eq!(
        a.3, GOLDEN_DIGEST,
        "bare-channel state digest drifted — the shim-off path changed"
    );
}

const GOLDEN_EVENTS: u64 = 46;
const GOLDEN_MESSAGES: u64 = 34;
const GOLDEN_TRACE_LEN: usize = 51;
const GOLDEN_DIGEST: Option<u64> = Some(4863837214346979772);

#[test]
fn shim_off_reports_render_zero_suffix_counters() {
    // The JSONL suffix keys (PR-2 discipline: appended after `abort`)
    // exist for every run but stay zero with the shim off and no
    // recoveries scheduled.
    for kind in AlgKind::all() {
        let spec = RunSpec {
            horizon: 6_000,
            ..RunSpec::default()
        };
        let out = run_algorithm(kind, &spec, &topology::line(5), &[]);
        assert_eq!(
            out.stats.shim,
            ShimStats::default(),
            "{}: shim counters moved with the shim off",
            kind.name()
        );
        let jsonl = RunReport::from_outcome(
            "line:5",
            kind.name(),
            spec.sim.seed,
            spec.horizon,
            &out,
            None,
        )
        .to_jsonl();
        assert!(
            jsonl.ends_with(
                "\"abort\":null,\"retransmissions\":0,\"acks_sent\":0,\
                 \"recoveries\":0,\"buffer_high_water\":0,\"frames_queued\":0,\
                 \"queue_peak\":0,\"burst_transitions\":0,\"frames_lost\":0}"
            ),
            "{}: unexpected JSONL suffix: {jsonl}",
            kind.name()
        );
    }
}

// ---------------------------------------------------------------------
// 2. Shim on, loss-free: same census, no overhead on correctness.
// ---------------------------------------------------------------------

#[test]
fn shim_on_without_loss_preserves_census_and_safety() {
    for seed in [3, 19] {
        for arq in [None, Some(ArqConfig::default())] {
            let label = if arq.is_some() { "A2+arq" } else { "A2" };
            let (engine, census, violations) = waved_run(
                seed,
                topology::clique(5),
                arq,
                FaultPlan::default(),
                60_000,
                |s| Algorithm2::new(&s),
            );
            assert_live_and_safe(label, seed, &engine, &census, &violations);
            assert_forks_conserved(label, seed, &engine, 5, Algorithm2::holds_fork);
        }
    }
}

// ---------------------------------------------------------------------
// 3. Sustained loss: liveness through retransmission alone.
// ---------------------------------------------------------------------

fn assert_survives_sustained_loss<P, F, H>(name: &str, factory_of: F, holds: H)
where
    P: Protocol + 'static,
    F: Fn() -> Box<dyn FnMut(NodeSeed) -> P>,
    H: Fn(&P, NodeId) -> bool + Copy,
{
    for (topo, positions) in [
        ("clique:5", topology::clique(5)),
        ("ring:6", topology::ring(6)),
    ] {
        let n = positions.len();
        let seed = 7;
        let label = format!("{name} on {topo}");
        let (engine, census, violations) = waved_run(
            seed,
            positions,
            Some(ArqConfig::default()),
            sustained_loss(0.3),
            400_000,
            factory_of(),
        );
        assert_live_and_safe(&label, seed, &engine, &census, &violations);
        assert_forks_conserved(&label, seed, &engine, n, holds);
    }
}

#[test]
fn alg1_greedy_survives_sustained_loss() {
    assert_survives_sustained_loss(
        "A1-greedy",
        || Box::new(|s| Algorithm1::greedy(&s)),
        Algorithm1::holds_fork,
    );
}

#[test]
fn alg1_linial_survives_sustained_loss() {
    assert_survives_sustained_loss(
        "A1-linial",
        || {
            let schedule = Arc::new(LinialSchedule::compute(6, 5));
            Box::new(move |s| Algorithm1::linial(&s, schedule.clone()))
        },
        Algorithm1::holds_fork,
    );
}

#[test]
fn alg2_survives_sustained_loss() {
    assert_survives_sustained_loss(
        "A2",
        || Box::new(|s| Algorithm2::new(&s)),
        Algorithm2::holds_fork,
    );
}

#[test]
fn chandy_misra_survives_sustained_loss() {
    assert_survives_sustained_loss(
        "chandy-misra",
        || Box::new(|s| ChandyMisra::new(&s)),
        ChandyMisra::holds_fork,
    );
}

#[test]
fn sustained_loss_without_the_shim_is_expected_to_starve() {
    // Negative control: the same adversity with the shim off loses forks
    // for good — at least one node misses a wave. If this ever starts
    // passing the sustained-loss class stopped being a real test.
    let (engine, census, _violations) = waved_run(
        7,
        topology::clique(5),
        None,
        sustained_loss(0.3),
        400_000,
        |s| Algorithm2::new(&s),
    );
    let stalled = engine.pending_events() != 0 || census.iter().any(|&m| m < 3);
    assert!(
        stalled,
        "30% sustained loss with no shim fed everyone ({census:?}) — \
         the adversity is too weak to validate the shim"
    );
}

// ---------------------------------------------------------------------
// 4. Crash → recover: fresh incarnation, conserved forks.
// ---------------------------------------------------------------------

/// Line world: all hungry, a teleport, a crash, a recovery, a second
/// hungry wave that the recovered node must serve, then quiescence.
fn recovery_run<P, F>(
    seed: u64,
    factory: F,
) -> (Engine<P>, Vec<u64>, Rc<RefCell<Vec<harness::Violation>>>)
where
    P: Protocol,
    F: FnMut(NodeSeed) -> P + 'static,
{
    const N: usize = 6;
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let positions: Vec<(f64, f64)> = (0..N).map(|i| (i as f64, 0.0)).collect();
    let mut engine = Engine::new(cfg, positions, factory);
    engine.add_hook(Box::new(AutoExit::new(8)));
    let meals = Rc::new(RefCell::new(vec![0u64; N]));
    engine.add_hook(Box::new(MealCount(meals.clone())));
    let (monitor, violations) = SafetyMonitor::new(false);
    engine.add_hook(Box::new(monitor));
    for i in 0..N as u32 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.teleport_at(SimTime(900), NodeId(5), (0.5, 0.5));
    engine.crash_at(SimTime(1_200), NodeId(2));
    engine.recover_at(SimTime(2_500), NodeId(2));
    engine.teleport_at(SimTime(1_800), NodeId(5), (5.0, 0.0));
    for i in 0..N as u32 {
        engine.set_hungry_at(SimTime(4_000 + u64::from(i)), NodeId(i));
    }
    engine.run_until(SimTime(60_000));
    let census = meals.borrow().clone();
    (engine, census, violations)
}

fn assert_recovery_ok<P, H>(
    name: &str,
    seed: u64,
    engine: &Engine<P>,
    census: &[u64],
    violations: &Rc<RefCell<Vec<harness::Violation>>>,
    holds: H,
) where
    P: Protocol,
    H: Fn(&P, NodeId) -> bool,
{
    assert_eq!(engine.abort(), None, "{name} seed {seed}: aborted");
    assert_eq!(
        engine.pending_events(),
        0,
        "{name} seed {seed}: did not quiesce"
    );
    assert!(
        !engine.world().is_crashed(NodeId(2)),
        "{name} seed {seed}: recovery did not stick"
    );
    assert_eq!(engine.stats().faults.recoveries, 1, "{name} seed {seed}");
    // The recovered node must serve the post-recovery wave.
    assert!(
        census[2] >= 1,
        "{name} seed {seed}: recovered node never ate ({census:?})"
    );
    assert!(
        violations.borrow().is_empty(),
        "{name} seed {seed}: {:?}",
        violations.borrow()
    );
    assert_forks_conserved(name, seed, engine, 6, holds);
}

#[test]
fn alg1_greedy_recovers_with_conserved_forks() {
    for seed in [1, 23] {
        let (engine, census, violations) = recovery_run(seed, |s| Algorithm1::greedy(&s));
        assert_recovery_ok(
            "A1-greedy",
            seed,
            &engine,
            &census,
            &violations,
            Algorithm1::holds_fork,
        );
    }
}

#[test]
fn alg1_linial_recovers_with_conserved_forks() {
    for seed in [2, 29] {
        let schedule = Arc::new(LinialSchedule::compute(6, 4));
        let (engine, census, violations) =
            recovery_run(seed, move |s| Algorithm1::linial(&s, schedule.clone()));
        assert_recovery_ok(
            "A1-linial",
            seed,
            &engine,
            &census,
            &violations,
            Algorithm1::holds_fork,
        );
    }
}

#[test]
fn alg2_recovers_with_conserved_forks() {
    for seed in [3, 31] {
        let (engine, census, violations) = recovery_run(seed, |s| Algorithm2::new(&s));
        assert_recovery_ok(
            "A2",
            seed,
            &engine,
            &census,
            &violations,
            Algorithm2::holds_fork,
        );
    }
}

#[test]
fn chandy_misra_recovers_with_conserved_forks() {
    for seed in [5, 37] {
        let (engine, census, violations) = recovery_run(seed, |s| ChandyMisra::new(&s));
        assert_recovery_ok(
            "chandy-misra",
            seed,
            &engine,
            &census,
            &violations,
            ChandyMisra::holds_fork,
        );
    }
}

#[test]
fn recovery_under_sustained_loss_stays_live_with_the_shim() {
    // The combined wave the nightly soak leans on: 20% whole-run loss,
    // a crash and a recovery, the ARQ shim carrying the difference.
    let n = 6;
    let cfg = SimConfig {
        seed: 11,
        arq: Some(ArqConfig::default()),
        fault: sustained_loss(0.2),
        ..SimConfig::default()
    };
    let mut engine = Engine::new(cfg, topology::ring(n), |s| Algorithm2::new(&s));
    engine.add_hook(Box::new(AutoExit::new(8)));
    let meals = Rc::new(RefCell::new(vec![0u64; n]));
    engine.add_hook(Box::new(MealCount(meals.clone())));
    let (monitor, violations) = SafetyMonitor::new(false);
    engine.add_hook(Box::new(monitor));
    for i in 0..n as u32 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.crash_at(SimTime(1_500), NodeId(1));
    engine.recover_at(SimTime(4_000), NodeId(1));
    for i in 0..n as u32 {
        engine.set_hungry_at(SimTime(8_000 + u64::from(i)), NodeId(i));
    }
    engine.run_until(SimTime(400_000));
    assert_eq!(engine.abort(), None);
    assert_eq!(engine.pending_events(), 0, "did not quiesce");
    assert!(violations.borrow().is_empty(), "{:?}", violations.borrow());
    let census = meals.borrow();
    assert!(
        census.iter().all(|&m| m >= 1) && census[1] >= 1,
        "census {census:?}: someone starved through loss + crash + recovery"
    );
    assert_forks_conserved("A2 loss+recover", 11, &engine, n, Algorithm2::holds_fork);
}
