//! Fork conservation: across transfers, crashes and link churn, the fork
//! of every live link is neither duplicated nor lost — at quiescence it
//! sits at exactly one endpoint. Runs use injected random-delay schedules
//! (the model checker's sampling strategy) rather than the engine's
//! default draw, so the invariant is exercised over adversarial-ish
//! interleavings, not just the historical ones.

use std::sync::Arc;

use manet_local_mutex::baselines::ChandyMisra;
use manet_local_mutex::coloring::LinialSchedule;
use manet_local_mutex::lme::testutil::AutoExit;
use manet_local_mutex::lme::{Algorithm1, Algorithm2};
use manet_local_mutex::sim::{
    Engine, NodeId, NodeSeed, Protocol, RandomDelays, SimConfig, SimTime,
};

const N: usize = 6;

/// Line world, every node hungry, then: a neighborhood-changing teleport,
/// a crash, and a second teleport — all mid-traffic.
fn run_churny<P, F>(seed: u64, factory: F) -> Engine<P>
where
    P: Protocol,
    F: FnMut(NodeSeed) -> P + 'static,
{
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let positions: Vec<(f64, f64)> = (0..N).map(|i| (i as f64, 0.0)).collect();
    let mut engine = Engine::new(cfg, positions, factory);
    engine.set_strategy(Box::new(RandomDelays::new(seed ^ 0xF0_2C)));
    engine.add_hook(Box::new(AutoExit::new(8)));
    for i in 0..N as u32 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.teleport_at(SimTime(900), NodeId(5), (0.5, 0.5));
    engine.crash_at(SimTime(1200), NodeId(2));
    engine.teleport_at(SimTime(1800), NodeId(5), (5.0, 0.0));
    engine.run_until(SimTime(30_000));
    engine
}

fn assert_forks_conserved<P, H>(name: &str, seed: u64, engine: &Engine<P>, holds: H)
where
    P: Protocol,
    H: Fn(&P, NodeId) -> bool,
{
    assert_eq!(
        engine.pending_events(),
        0,
        "{name} seed {seed}: run did not quiesce"
    );
    let world = engine.world();
    let mut live_links = 0;
    for a in 0..N as u32 {
        for b in a + 1..N as u32 {
            let (na, nb) = (NodeId(a), NodeId(b));
            if world.is_crashed(na) || world.is_crashed(nb) || !world.linked(na, nb) {
                continue;
            }
            live_links += 1;
            let at_a = holds(engine.protocol(na), nb);
            let at_b = holds(engine.protocol(nb), na);
            assert!(
                at_a ^ at_b,
                "{name} seed {seed}: fork of link {{{a}, {b}}} is {} at quiescence",
                if at_a { "duplicated" } else { "lost" }
            );
        }
    }
    assert!(
        live_links >= 3,
        "{name} seed {seed}: churn ate the topology"
    );
}

#[test]
fn alg1_greedy_conserves_forks_under_random_schedules() {
    for seed in [1, 7, 23] {
        let engine = run_churny(seed, |s| Algorithm1::greedy(&s));
        assert_forks_conserved("A1-greedy", seed, &engine, Algorithm1::holds_fork);
    }
}

#[test]
fn alg1_linial_conserves_forks_under_random_schedules() {
    for seed in [2, 11, 29] {
        let schedule = Arc::new(LinialSchedule::compute(N as u64, 4));
        let engine = run_churny(seed, move |s| Algorithm1::linial(&s, schedule.clone()));
        assert_forks_conserved("A1-linial", seed, &engine, Algorithm1::holds_fork);
    }
}

#[test]
fn alg2_conserves_forks_under_random_schedules() {
    for seed in [3, 13, 31] {
        let engine = run_churny(seed, |s| Algorithm2::new(&s));
        assert_forks_conserved("A2", seed, &engine, Algorithm2::holds_fork);
    }
}

#[test]
fn chandy_misra_conserves_forks_under_random_schedules() {
    for seed in [5, 17, 37] {
        let engine = run_churny(seed, |s| ChandyMisra::new(&s));
        assert_forks_conserved("chandy-misra", seed, &engine, ChandyMisra::holds_fork);
    }
}
