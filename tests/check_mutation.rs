//! Checker self-validation (mutation sanity): with the behind-SD^f guard
//! of Algorithm 1 deliberately disabled, bounded DFS must find an LME
//! safety violation on a ≤ 4-node topology within the default bounds, the
//! shrunk witness must replay to the same violation deterministically —
//! and with the guard intact the very same exploration must come back
//! clean. A checker that cannot find a planted bug proves nothing.

use manet_local_mutex::check::{
    explore, replay, CheckSpec, ExploreConfig, Mutation, StrategyKind, Witness,
};
use manet_local_mutex::harness::AlgKind;

fn line(n: usize) -> Vec<(u32, u32)> {
    (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
}

fn line_spec(n: usize, mutation: Mutation) -> CheckSpec {
    let mut spec = CheckSpec::new(AlgKind::A1Greedy, format!("line:{n}"), n, line(n));
    spec.mutation = mutation;
    spec
}

#[test]
fn dfs_finds_the_planted_sdf_guard_bug_within_default_bounds() {
    let spec = line_spec(3, Mutation::NoSdfGuard);
    let result = explore(&spec, &ExploreConfig::default());
    let witness = result
        .witness
        .expect("default DFS bounds must find the planted bug on line:3");
    assert_eq!(witness.property, "lme-safety");
    assert!(
        result.schedules <= ExploreConfig::default().max_schedules,
        "found after {} schedules",
        result.schedules
    );
}

#[test]
fn shrunk_witness_replays_to_the_same_violation_deterministically() {
    let spec = line_spec(3, Mutation::NoSdfGuard);
    let result = explore(&spec, &ExploreConfig::default());
    let witness = result.witness.expect("mutation must be found");

    // The witness survives JSON serialization...
    let reparsed = Witness::from_json(&witness.to_json()).expect("witness JSON must parse");
    assert_eq!(reparsed, witness);

    // ...and two independent replays reproduce the identical violation
    // and the identical trace, byte for byte.
    let (_, first) = replay(&reparsed).expect("witness must describe a valid instance");
    let (_, second) = replay(&reparsed).expect("witness must describe a valid instance");
    let violation = first.violation.clone().expect("witness must reproduce");
    assert_eq!(violation.property, witness.property);
    assert_eq!(violation.detail, witness.detail);
    assert_eq!(first.violation, second.violation);
    assert_eq!(first.trace, second.trace);
}

#[test]
fn shrinking_actually_minimized_the_counterexample() {
    let spec = line_spec(3, Mutation::NoSdfGuard);
    let result = explore(&spec, &ExploreConfig::default());
    let witness = result.witness.expect("mutation must be found");
    // The planted bug needs only two contenders; shrinking must have
    // dropped at least one of the three hungry commands.
    assert!(
        witness.hungry.len() <= 2,
        "hungry left: {:?}",
        witness.hungry
    );
    // Dropping the last recorded choice must break the reproduction —
    // otherwise the truncation pass stopped early. (An empty choice list
    // is already minimal: the violation needs no deviation at all.)
    if !witness.choices.is_empty() {
        let mut weaker = witness.clone();
        weaker.choices.pop();
        let (_, verdict) = replay(&weaker).expect("valid instance");
        assert!(
            verdict
                .violation
                .is_none_or(|v| v.property != witness.property),
            "witness is not 1-minimal in its choice suffix"
        );
    }
}

#[test]
fn intact_guard_explores_clean_with_the_same_bounds() {
    for n in [2, 3, 4] {
        let spec = line_spec(n, Mutation::None);
        let result = explore(&spec, &ExploreConfig::default());
        assert!(
            result.witness.is_none(),
            "intact A1-greedy reported a spurious violation on line:{n}: {:?}",
            result.witness
        );
        assert!(result.schedules > 0);
    }
}

#[test]
fn every_strategy_finds_the_planted_bug() {
    for strategy in [StrategyKind::Dfs, StrategyKind::Random, StrategyKind::Pct] {
        let spec = line_spec(3, Mutation::NoSdfGuard);
        let cfg = ExploreConfig {
            strategy,
            max_schedules: 64,
            ..ExploreConfig::default()
        };
        let result = explore(&spec, &cfg);
        assert!(
            result.witness.is_some(),
            "{} missed the planted bug",
            strategy.name()
        );
    }
}

/// Worker count is a throughput knob, never a semantics knob: for every
/// strategy, on a violating and on a clean instance, `jobs: 4` must
/// reproduce the `jobs: 1` exploration byte for byte — same verdict, same
/// counters, and an identical witness JSON line.
#[test]
fn exploration_is_jobs_invariant_byte_for_byte() {
    for strategy in [StrategyKind::Dfs, StrategyKind::Random, StrategyKind::Pct] {
        for mutation in [Mutation::NoSdfGuard, Mutation::None] {
            let spec = line_spec(3, mutation);
            let cfg = ExploreConfig {
                strategy,
                max_schedules: 48,
                max_depth: 6,
                ..ExploreConfig::default()
            };
            let one = explore(
                &spec,
                &ExploreConfig {
                    jobs: 1,
                    ..cfg.clone()
                },
            );
            let four = explore(
                &spec,
                &ExploreConfig {
                    jobs: 4,
                    ..cfg.clone()
                },
            );
            let label = format!("{} / {}", strategy.name(), spec.mutation.name());
            assert_eq!(one.schedules, four.schedules, "{label}");
            assert_eq!(one.complete, four.complete, "{label}");
            assert_eq!(one.max_branch_points, four.max_branch_points, "{label}");
            assert_eq!(one.dedup_prunes, four.dedup_prunes, "{label}");
            assert_eq!(one.dpor_prunes, four.dpor_prunes, "{label}");
            assert_eq!(one.shrink_runs, four.shrink_runs, "{label}");
            assert_eq!(
                one.witness.as_ref().map(Witness::to_json),
                four.witness.as_ref().map(Witness::to_json),
                "{label}: witness JSON must not depend on --jobs"
            );
        }
    }
}
