//! Differential conformance suite: the spatial-grid link engine and the
//! pairwise O(n²) reference must be **bit-for-bit indistinguishable** —
//! same link-change events in the same order, same LinkTable epochs
//! (observable through traces and delivery sequence numbers), same
//! EngineStats, same JSONL reports. The grid rewrite only stays landed
//! because this suite says the semantics are unchanged.
//!
//! Cells cover topology × mobility × fault combinations, including nodes
//! crossing cell boundaries and landing exactly on cell edges, each over
//! at least 8 seeds.

use harness::{run_algorithm, topology, AlgKind, RunOutcome, RunReport, RunSpec, WaypointPlan};
use local_mutex::Algorithm2;
use manet_sim::{
    Command, CrashWave, Engine, FaultPlan, LinkEngine, NodeId, PartitionWindow, Position,
    SimConfig, SimTime, World,
};

const SEEDS: std::ops::Range<u64> = 1..9;

/// Run `kind` on `positions` under both engines and require every
/// observable artifact — engine stats, metrics, final CSR adjacency,
/// crash set, and the rendered JSONL line — to match exactly.
fn assert_outcomes_match(
    label: &str,
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
) {
    let run = |engine: LinkEngine| -> (RunOutcome, String) {
        let mut spec = spec.clone();
        spec.sim.link_engine = engine;
        let out = run_algorithm(kind, &spec, positions, commands);
        let jsonl =
            RunReport::from_outcome(label, kind.name(), spec.sim.seed, spec.horizon, &out, None)
                .to_jsonl();
        (out, jsonl)
    };
    let (grid, grid_jsonl) = run(LinkEngine::Grid);
    let (pair, pair_jsonl) = run(LinkEngine::Pairwise);
    let ctx = format!("{label} / {} / seed {}", kind.name(), spec.sim.seed);
    assert_eq!(grid.stats, pair.stats, "{ctx}: EngineStats diverged");
    assert_eq!(
        grid.metrics.samples, pair.metrics.samples,
        "{ctx}: response samples diverged"
    );
    assert_eq!(
        grid.metrics.meals, pair.metrics.meals,
        "{ctx}: meal counts diverged"
    );
    assert_eq!(
        grid.adjacency, pair.adjacency,
        "{ctx}: final adjacency diverged"
    );
    assert_eq!(grid.crashed, pair.crashed, "{ctx}: crash sets diverged");
    assert_eq!(
        grid.violations, pair.violations,
        "{ctx}: violations diverged"
    );
    assert_eq!(grid_jsonl, pair_jsonl, "{ctx}: JSONL diverged");
}

fn spec_with_seed(seed: u64, horizon: u64, fault: FaultPlan) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed,
            fault,
            ..SimConfig::default()
        },
        horizon,
        ..RunSpec::default()
    }
}

fn waypoints(n: usize, moves: usize, horizon: u64, seed: u64) -> Vec<(SimTime, Command)> {
    WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt().max(2.0),
        moves,
        window: (horizon / 10, horizon * 9 / 10),
        speed: Some(0.25),
        seed,
    }
    .commands(n)
}

// ---------------------------------------------------------------------
// Engine-level cells: full traces must be byte-identical.
// ---------------------------------------------------------------------

/// Build an A2 engine over `positions` with the given link engine, apply
/// `commands`, run, and return the full trace plus digest and stats.
fn traced_run(
    seed: u64,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
    engine: LinkEngine,
) -> (
    Vec<manet_sim::TraceEntry>,
    Option<u64>,
    manet_sim::EngineStats,
) {
    let cfg = SimConfig {
        seed,
        trace: true,
        link_engine: engine,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, positions.to_vec(), |seed| Algorithm2::new(&seed));
    for i in 0..positions.len() as u32 {
        eng.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
    }
    for (at, cmd) in commands {
        eng.schedule(*at, cmd.clone());
    }
    eng.run_until(SimTime(6_000));
    (
        eng.trace().to_vec(),
        eng.state_digest(),
        eng.stats().clone(),
    )
}

fn assert_traces_match(
    label: &str,
    seed: u64,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
) {
    let (gt, gd, gs) = traced_run(seed, positions, commands, LinkEngine::Grid);
    let (pt, pd, ps) = traced_run(seed, positions, commands, LinkEngine::Pairwise);
    assert_eq!(gt, pt, "{label} / seed {seed}: traces diverged");
    assert_eq!(gd, pd, "{label} / seed {seed}: state digests diverged");
    assert_eq!(gs, ps, "{label} / seed {seed}: stats diverged");
}

/// Cell 1: line topology with teleports that cross cell boundaries and
/// land *exactly* on cell edges (x = k · 1.5 = k · radio_range, the
/// worst case for the grid's floor-keying).
#[test]
fn cell_line_teleports_onto_cell_edges() {
    let positions = topology::line(12);
    for seed in SEEDS {
        let k = (seed % 5) as f64;
        let commands = vec![
            (
                SimTime(500),
                Command::Teleport {
                    node: NodeId(0),
                    dest: Position { x: k * 1.5, y: 0.0 },
                },
            ),
            (
                SimTime(1_000),
                Command::Teleport {
                    node: NodeId(11),
                    dest: Position {
                        x: 3.0,
                        y: 1.5, // exactly one cell down, one range away
                    },
                },
            ),
            (
                SimTime(1_500),
                Command::Teleport {
                    node: NodeId(5),
                    dest: Position { x: 0.0, y: 0.0 }, // co-located with node 0's column
                },
            ),
            (
                SimTime(2_000),
                Command::Teleport {
                    node: NodeId(0),
                    dest: Position {
                        x: -1.5, // negative coordinates: floor ≠ truncate
                        y: -1.5,
                    },
                },
            ),
        ];
        assert_traces_match("line:12+edge-teleports", seed, &positions, &commands);
    }
}

/// Cell 2: random deployment with smooth random-waypoint motion — the
/// bread-and-butter mobility workload, nodes migrate cells continuously.
#[test]
fn cell_random_waypoint_smooth_motion() {
    for seed in SEEDS {
        let positions = topology::random_connected(30, seed);
        let commands = waypoints(30, 12, 6_000, seed ^ 0xB0B);
        assert_traces_match("random:30+waypoint", seed, &positions, &commands);
    }
}

/// Cell 3: partition + heal through engine commands while nodes move —
/// exercises the cut mask in both apply_cut and clear_cut fast paths.
#[test]
fn cell_grid_partition_and_heal() {
    let positions = topology::grid(5, 5);
    for seed in SEEDS {
        let side: Vec<NodeId> = (0..8).map(NodeId).collect();
        let mut commands = vec![
            (SimTime(800), Command::Partition { side: side.clone() }),
            (
                SimTime(1_200),
                Command::Teleport {
                    node: NodeId(3), // inside the cut side, walks next to outsiders
                    dest: Position { x: 4.0, y: 4.0 },
                },
            ),
            (SimTime(2_500), Command::Heal),
        ];
        commands.extend(waypoints(25, 6, 6_000, seed));
        commands.sort_by_key(|(t, _)| *t);
        assert_traces_match("grid:5x5+partition", seed, &positions, &commands);
    }
}

// ---------------------------------------------------------------------
// Harness-level cells: stats + metrics + JSONL must be byte-identical.
// ---------------------------------------------------------------------

/// Cell 4: clique under the adaptive max-delay adversary with moves.
#[test]
fn cell_clique_max_delay_adversary() {
    let positions = topology::clique(8);
    for seed in SEEDS {
        let fault = FaultPlan {
            max_delay: Some(manet_sim::DelayAdversary {
                targets: (0..8).map(NodeId).collect(),
                window: Some((100, 3_000)),
            }),
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 8_000, fault);
        let commands = waypoints(8, 4, 8_000, seed);
        assert_outcomes_match("clique:8", AlgKind::A1Greedy, &spec, &positions, &commands);
    }
}

/// Cell 5: ring under message drop + duplication faults with moves.
#[test]
fn cell_ring_loss_and_duplication() {
    let positions = topology::ring(16);
    for seed in SEEDS {
        let fault = FaultPlan {
            link: Some(manet_sim::LinkFaults {
                drop: 0.15,
                duplicate: 0.15,
                ..manet_sim::LinkFaults::default()
            }),
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 8_000, fault);
        let commands = waypoints(16, 5, 8_000, seed);
        assert_outcomes_match("ring:16", AlgKind::A1Linial, &spec, &positions, &commands);
    }
}

/// Cell 6: random deployment with a crash wave and a partition window,
/// under waypoint motion.
#[test]
fn cell_random_crash_wave_and_partition() {
    for seed in SEEDS {
        let positions = topology::random_connected(40, seed);
        let fault = FaultPlan {
            crash_waves: vec![CrashWave {
                at: 2_000,
                nodes: vec![NodeId(seed as u32 % 40)],
            }],
            partitions: vec![PartitionWindow {
                at: 3_000,
                side: (0..10).map(NodeId).collect(),
                heal_after: 1_500,
            }],
            ..FaultPlan::default()
        };
        let spec = spec_with_seed(seed, 9_000, fault);
        let commands = waypoints(40, 8, 9_000, seed ^ 0xFEED);
        assert_outcomes_match("random:40", AlgKind::A2, &spec, &positions, &commands);
    }
}

// ---------------------------------------------------------------------
// World-level fuzz: the relocate/cut primitives themselves.
// ---------------------------------------------------------------------

/// Random relocations (including exact cell-edge landings) must produce
/// identical LinkChange sequences and identical adjacency in both worlds.
#[test]
fn world_level_relocate_fuzz() {
    for seed in SEEDS {
        let n = 24;
        let positions: Vec<Position> = topology::random_connected(n, seed)
            .into_iter()
            .map(Position::from)
            .collect();
        let mut grid = World::with_engine(1.5, positions.clone(), LinkEngine::Grid);
        let mut pair = World::with_engine(1.5, positions, LinkEngine::Pairwise);
        let mut rng = manet_sim::SimRng::seed_from_u64(seed);
        for step in 0..400 {
            let node = NodeId(rng.gen_range(0..n as u32));
            let dest = if step % 5 == 0 {
                // Land exactly on a cell corner (multiples of the range).
                Position {
                    x: f64::from(rng.gen_range(0..4u32)) * 1.5,
                    y: f64::from(rng.gen_range(0..4u32)) * 1.5,
                }
            } else {
                Position {
                    x: rng.gen_f64() * 6.0,
                    y: rng.gen_f64() * 6.0,
                }
            };
            let g = grid.relocate(node, dest);
            let p = pair.relocate(node, dest);
            assert_eq!(g, p, "seed {seed} step {step}: link changes diverged");
        }
        for i in 0..n as u32 {
            assert_eq!(
                grid.neighbors(NodeId(i)),
                pair.neighbors(NodeId(i)),
                "seed {seed}: final adjacency diverged at node {i}"
            );
        }
        assert_eq!(grid.csr_snapshot(), pair.csr_snapshot());
        // The whole point of the grid: it must have examined strictly
        // fewer candidates than the pairwise scan on a sparse world.
        assert!(
            grid.candidates_examined() < pair.candidates_examined(),
            "seed {seed}: grid examined {} candidates, pairwise {}",
            grid.candidates_examined(),
            pair.candidates_examined()
        );
    }
}
