//! Structural invariants from the correctness proofs, checked on live
//! executions:
//!
//! * **Lemma 24** (Algorithm 2): the priority graph `G` — an edge toward
//!   the higher-priority endpoint of every link — is acyclic in every
//!   state. We check antisymmetry + acyclicity at quiescence (when no
//!   switch message can be in transit).
//! * **Lemma 4** (Algorithm 1): two neighbors simultaneously behind `SD^f`
//!   never share a color. We sample the execution every few hundred ticks
//!   and compare the colors of co-resident `Collecting` neighbors.

use manet_local_mutex::harness::{topology, Metrics, SafetyMonitor, Workload};
use manet_local_mutex::lme::{Algorithm1, Algorithm2, Phase};
use manet_local_mutex::sim::{Engine, NodeId, SimConfig, SimTime};

/// Kahn's algorithm over the A2 priority orientation.
fn assert_priority_graph_acyclic(engine: &Engine<Algorithm2>) {
    let world = engine.world();
    let n = world.len();
    // Build edges i -> j when j has priority over i.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_deg = vec![0usize; n];
    for i in 0..n as u32 {
        for &j in world.neighbors(NodeId(i)) {
            if j.0 < i {
                continue; // handle each undirected link once
            }
            let i_sees_j_higher = engine.protocol(NodeId(i)).neighbor_has_priority(j);
            let j_sees_i_higher = engine.protocol(j).neighbor_has_priority(NodeId(i));
            // At quiescence exactly one endpoint defers to the other
            // (both-true only while a switch message is in transit).
            assert!(
                i_sees_j_higher != j_sees_i_higher,
                "link ({i},{j}): priorities inconsistent at quiescence: \
                 {i_sees_j_higher} / {j_sees_i_higher}"
            );
            let (from, to) = if i_sees_j_higher {
                (i as usize, j.index())
            } else {
                (j.index(), i as usize)
            };
            out_edges[from].push(to);
            in_deg[to] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in &out_edges[v] {
            in_deg[w] -= 1;
            if in_deg[w] == 0 {
                queue.push(w);
            }
        }
    }
    assert_eq!(seen, n, "Lemma 24 violated: the priority graph has a cycle");
}

#[test]
fn a2_priority_graph_is_acyclic_at_quiescence() {
    for seed in [3u64, 17, 99] {
        let positions = topology::random_connected(14, seed);
        let mut engine: Engine<Algorithm2> = Engine::new(
            SimConfig {
                seed,
                ..SimConfig::default()
            },
            positions,
            |s| Algorithm2::new(&s),
        );
        let (monitor, _) = SafetyMonitor::new(true);
        engine.add_hook(Box::new(monitor));
        // One-shot workload: after everyone ate once the system drains.
        engine.add_hook(Box::new(Workload::one_shot(10..=30, seed)));
        for i in 0..14 {
            engine.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
        }
        engine.run_until(SimTime(30_000));
        // Long quiet tail: every switch message has long since landed.
        assert_priority_graph_acyclic(&engine);
    }
}

#[test]
fn a1_coresident_sdf_neighbors_have_distinct_colors() {
    // Sample the execution: whenever two neighbors are both behind SD^f
    // (phase Collecting), their colors must differ (Lemma 4).
    for seed in [5u64, 23] {
        let positions = topology::random_connected(16, seed);
        let mut engine: Engine<Algorithm1> = Engine::new(
            SimConfig {
                seed,
                ..SimConfig::default()
            },
            positions,
            |s| Algorithm1::greedy(&s),
        );
        let (metrics, data) = Metrics::new(16);
        engine.add_hook(Box::new(metrics));
        let (monitor, _) = SafetyMonitor::new(true);
        engine.add_hook(Box::new(monitor));
        engine.add_hook(Box::new(Workload::cyclic(10..=30, 30..=90, seed)));
        for i in 0..16 {
            engine.set_hungry_at(SimTime(1 + u64::from(i)), NodeId(i));
        }
        let mut checks = 0u64;
        for step in 1..200u64 {
            engine.run_until(SimTime(step * 150));
            let world = engine.world();
            for i in 0..16u32 {
                if engine.protocol(NodeId(i)).phase() != Phase::Collecting {
                    continue;
                }
                for &j in world.neighbors(NodeId(i)) {
                    if j.0 > i && engine.protocol(j).phase() == Phase::Collecting {
                        checks += 1;
                        assert_ne!(
                            engine.protocol(NodeId(i)).color(),
                            engine.protocol(j).color(),
                            "Lemma 4 violated at t={}: {i} and {} share a color",
                            engine.now(),
                            j.0
                        );
                    }
                }
            }
        }
        assert!(checks > 50, "too few co-resident pairs sampled ({checks})");
        assert!(data.borrow().meals.iter().all(|&m| m > 5));
    }
}
