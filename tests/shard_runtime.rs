//! Sharded live runtime: safety, ticket-range merge, and parity with the
//! thread-per-node runtime (DESIGN.md §15).
//!
//! The sharded runtime runs the same protocol automata on a fixed worker
//! pool, with each shard stamping its own ticket range from a hybrid
//! logical clock and the ranges merged into one total order at export.
//! These tests pin the contract of that merge — the order is dense (no
//! ticket reused or skipped), every shard's stream order survives, and
//! the merged trace satisfies the very same safety monitor that audits
//! thread-per-node runs — plus crash/recovery and the conformance bridge
//! under the new runtime.

use harness::topology;
use lme_net::{
    conformance_replay, merge_stamped, run_live, LiveAlg, LiveConfig, LiveEventKind, LiveRuntime,
    StampedRecord, TransportKind,
};
use manet_sim::{NodeId, SimRng};

fn sharded_cfg(alg: LiveAlg, positions: Vec<(f64, f64)>, workers: usize) -> LiveConfig {
    let mut cfg = LiveConfig::new(alg, TransportKind::Mpsc, positions);
    cfg.duration_ms = 300;
    cfg.rate = 60.0;
    cfg.eat_ms = 1;
    cfg.runtime = LiveRuntime::Sharded { workers };
    cfg
}

/// The merged total order must be dense — `order` is exactly `0..len` —
/// and per-node record sequences must keep their own wall-clock order
/// (each node lives on one shard, so its stream order is the shard's).
fn assert_valid_merge(out: &lme_net::LiveOutcome, n: usize) {
    let mut last_at = vec![0u64; n];
    for (i, r) in out.trace.records().iter().enumerate() {
        assert_eq!(r.order, i as u64, "ticket reused or skipped at {i}");
        let node = match r.kind {
            LiveEventKind::State { node, .. }
            | LiveEventKind::Deliver { to: node, .. }
            | LiveEventKind::Recover { node }
            | LiveEventKind::NetStats { node, .. } => Some(node),
            _ => None,
        };
        if let Some(node) = node {
            assert!(
                r.at_ns >= last_at[node.index()],
                "node {} record at {} ns merged before its own {} ns record",
                node.index(),
                r.at_ns,
                last_at[node.index()]
            );
            last_at[node.index()] = r.at_ns;
        }
    }
}

#[test]
fn crashed_sharded_runs_match_thread_per_node_verdicts() {
    // The satellite property: for seeded sharded runs on clique:4 and
    // ring:5 with one crash, the merged order is a valid interleaving and
    // the safety-monitor verdict matches thread-per-node on the same
    // scenario (both must be clean — and both *run*, which is the part a
    // broken merge would sink).
    for alg in LiveAlg::all() {
        for (name, positions) in [
            ("clique:4", topology::clique(4)),
            ("ring:5", topology::ring(5)),
        ] {
            let n = positions.len();
            let mut sharded = sharded_cfg(alg, positions.clone(), 3);
            sharded.crash = Some((0, 100));
            let out =
                run_live(&sharded).unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
            assert!(
                out.violations.is_empty(),
                "{} on {name} (sharded): {:?}",
                alg.name(),
                out.violations
            );
            assert_eq!(
                out.threads_joined,
                n,
                "{} on {name}: nodes lost",
                alg.name()
            );
            assert_eq!(
                out.decode_errors,
                0,
                "{} on {name}: decode errors",
                alg.name()
            );
            assert!(
                !out.trace.is_empty(),
                "{} on {name}: empty trace",
                alg.name()
            );
            assert_valid_merge(&out, n);

            let mut tpn = sharded.clone();
            tpn.runtime = LiveRuntime::ThreadPerNode;
            let reference =
                run_live(&tpn).unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
            assert_eq!(
                out.violations.is_empty(),
                reference.violations.is_empty(),
                "{} on {name}: runtimes disagree on the safety verdict",
                alg.name()
            );
        }
    }
}

#[test]
fn sharded_one_shot_run_conforms_in_the_simulator() {
    // The conformance bridge must not care which runtime produced the
    // trace: a fault-free one-shot sharded run's delivery timings replay
    // safely in the simulator with the same eating census.
    let mut cfg = LiveConfig::new(LiveAlg::A1Greedy, TransportKind::Mpsc, topology::ring(5));
    cfg.one_shot = true;
    cfg.eat_ms = 1;
    cfg.duration_ms = 5_000;
    cfg.runtime = LiveRuntime::Sharded { workers: 2 };
    let out = run_live(&cfg).expect("sharded one-shot run");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.meals, vec![1; 5], "one-shot run must feed every node");
    assert_valid_merge(&out, 5);
    let report = conformance_replay(&cfg, &out).expect("replay");
    assert_eq!(report.sim_violations, 0, "sim replay was unsafe");
    assert!(
        report.conforms(),
        "sim census {:?} != live census {:?}",
        report.sim_census,
        report.live_census
    );
}

#[test]
fn sharded_udp_smoke_stays_safe() {
    // Same batches, real datagrams: one shard pair per socket on
    // loopback. Loss is possible in principle, so only safety and clean
    // shutdown are asserted, not delivery counts.
    let mut cfg = sharded_cfg(LiveAlg::A2, topology::clique(4), 2);
    cfg.transport = TransportKind::Udp;
    let out = run_live(&cfg).expect("sharded udp run");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.threads_joined, 4);
    assert_valid_merge(&out, 4);
}

#[test]
fn sharded_crash_and_recovery_rejoins() {
    let mut cfg = sharded_cfg(LiveAlg::A2, topology::clique(4), 2);
    cfg.duration_ms = 500;
    cfg.crash = Some((0, 100));
    cfg.recover = Some((0, 180));
    let out = run_live(&cfg).expect("sharded crash/recover run");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.recoveries, 1, "recovery was not executed");
    assert_eq!(out.threads_joined, 4);
    let recovered = out
        .trace
        .records()
        .iter()
        .any(|r| matches!(r.kind, LiveEventKind::Recover { node } if node == NodeId(0)));
    assert!(recovered, "no Recover record in the merged trace");
}

#[test]
fn closed_loop_outruns_the_open_loop_rate_cap() {
    // The saturation blind spot: at rate 60/s a 300 ms open-loop run caps
    // every algorithm near the same meal count. Closed-loop re-requests
    // immediately after eating, so the same cell must eat strictly more.
    let open = sharded_cfg(LiveAlg::A2, topology::clique(4), 2);
    let mut closed = open.clone();
    closed.closed_loop = true;
    let open_out = run_live(&open).expect("open-loop run");
    let closed_out = run_live(&closed).expect("closed-loop run");
    assert!(
        closed_out.violations.is_empty(),
        "{:?}",
        closed_out.violations
    );
    assert!(
        closed_out.total_meals() > open_out.total_meals(),
        "closed loop ({}) did not outrun the open-loop rate cap ({})",
        closed_out.total_meals(),
        open_out.total_meals()
    );
}

#[test]
fn synthetic_ticket_merge_is_a_dense_valid_interleaving() {
    // Property test against the merge itself, no runtime involved: seeded
    // per-shard streams with strictly increasing clocks merge into a
    // dense total order that preserves every stream's internal order.
    let mut rng = SimRng::seed_from_u64(0x5AAD_2008);
    for round in 0..32 {
        let shards = 2 + (round % 4);
        let mut streams: Vec<Vec<StampedRecord>> = Vec::new();
        for s in 0..shards {
            let len = rng.gen_range(0..40u64) as usize;
            let mut clock = 0u64;
            let mut stream = Vec::with_capacity(len);
            for i in 0..len {
                clock += 1 + rng.gen_range(0..5u64);
                // Tag each record with its (stream, index) identity via
                // the NetStats counters so order can be audited after the
                // merge.
                stream.push(StampedRecord {
                    clock,
                    at_ns: clock * 10,
                    kind: LiveEventKind::NetStats {
                        node: NodeId(s as u32),
                        decode_errors: i as u64,
                        send_failures: 0,
                        retransmissions: 0,
                        acks_sent: 0,
                    },
                });
            }
            streams.push(stream);
        }
        let total: usize = streams.iter().map(Vec::len).sum();
        let merged = merge_stamped(streams);
        assert_eq!(merged.len(), total, "round {round}: records lost");
        let mut next_index = vec![0u64; shards];
        for (i, r) in merged.iter().enumerate() {
            assert_eq!(r.order, i as u64, "round {round}: ticket reused or skipped");
            if let LiveEventKind::NetStats {
                node,
                decode_errors,
                ..
            } = r.kind
            {
                assert_eq!(
                    decode_errors,
                    next_index[node.index()],
                    "round {round}: stream {} order broken",
                    node.index()
                );
                next_index[node.index()] += 1;
            }
        }
    }
}
