//! Wire-codec robustness: seeded round-trip coverage of every message
//! variant the live runtime can carry, plus corruption rejection.
//!
//! The codec promises two things (DESIGN.md §11): a faithful round trip
//! for every well-formed message, and a clean `Err` — never a panic, never
//! a bogus decode — for truncated or bit-flipped frames. Both are checked
//! here with `SimRng`-generated messages so the coverage is broad but
//! reproducible from the printed seed.

use baselines::CmMsg;
use doorway::{DoorwayMsg, DoorwaySet, DoorwayTag};
use lme_net::{decode_frame, encode_frame, CodecError, WireMsg};
use local_mutex::{A1Msg, A2Msg, RecolorMsg};
use manet_sim::SimRng;

const SEED: u64 = 0xC0DE_2008;
const ROUNDS: usize = 64;

fn arb_set(rng: &mut SimRng) -> DoorwaySet {
    let mut set = DoorwaySet::EMPTY;
    for i in 0..8u8 {
        if rng.gen_bool(0.4) {
            set.insert(DoorwayTag::new(i));
        }
    }
    set
}

fn arb_doorway(rng: &mut SimRng, variant: usize) -> DoorwayMsg {
    match variant % 4 {
        0 => DoorwayMsg::Cross(DoorwayTag::new(rng.gen_range(0..8u64) as u8)),
        1 => DoorwayMsg::Exit(DoorwayTag::new(rng.gen_range(0..8u64) as u8)),
        2 => DoorwayMsg::ExitAll,
        _ => DoorwayMsg::Status(arb_set(rng)),
    }
}

fn arb_recolor(rng: &mut SimRng, variant: usize) -> RecolorMsg {
    match variant % 4 {
        0 => {
            let count = rng.gen_range(0..6u64) as usize;
            RecolorMsg::Graph {
                edges: (0..count)
                    .map(|_| {
                        (
                            rng.gen_range(0..64u64) as u32,
                            rng.gen_range(0..64u64) as u32,
                        )
                    })
                    .collect(),
                finished: rng.gen_bool(0.5),
            }
        }
        1 => RecolorMsg::TempColor(rng.next_u64()),
        2 => RecolorMsg::Candidate {
            value: rng.next_u64(),
            decided: rng.gen_bool(0.5),
        },
        _ => RecolorMsg::Nack,
    }
}

fn arb_a1(rng: &mut SimRng, variant: usize) -> A1Msg {
    match variant % 6 {
        0 => {
            let v = rng.next_u64() as usize;
            A1Msg::Doorway(arb_doorway(rng, v))
        }
        1 => A1Msg::Req,
        2 => A1Msg::Fork {
            flag: rng.gen_bool(0.5),
            gen: rng.next_u64(),
        },
        3 => A1Msg::UpdateColor(rng.next_u64() as i64),
        4 => A1Msg::Hello {
            color: rng.next_u64() as i64,
            behind: arb_set(rng),
        },
        _ => {
            let v = rng.next_u64() as usize;
            A1Msg::Recolor(arb_recolor(rng, v))
        }
    }
}

fn arb_a2(rng: &mut SimRng, variant: usize) -> A2Msg {
    match variant % 4 {
        0 => A2Msg::Req,
        1 => A2Msg::Fork {
            flag: rng.gen_bool(0.5),
            gen: rng.next_u64(),
        },
        2 => A2Msg::Notification,
        _ => A2Msg::Switch,
    }
}

fn arb_cm(variant: usize) -> CmMsg {
    match variant % 2 {
        0 => CmMsg::ReqToken,
        _ => CmMsg::Fork,
    }
}

/// Round-trip `msg`, then prove every truncation and every single-bit
/// corruption of its frame is rejected with `Err` (not a panic, and never
/// a silent wrong decode).
fn check<M: WireMsg + PartialEq>(msg: M) {
    let frame = encode_frame(&msg);
    assert_eq!(
        decode_frame::<M>(&frame).unwrap(),
        msg,
        "round trip failed for {msg:?}"
    );
    for cut in 0..frame.len() {
        assert!(
            decode_frame::<M>(&frame[..cut]).is_err(),
            "truncation to {cut} bytes decoded for {msg:?}"
        );
    }
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                decode_frame::<M>(&bad).is_err(),
                "bit flip at byte {byte} bit {bit} decoded for {msg:?}"
            );
        }
    }
}

#[test]
fn a1_variants_round_trip_and_reject_corruption() {
    let mut rng = SimRng::seed_from_u64(SEED);
    for i in 0..ROUNDS {
        check(arb_a1(&mut rng, i));
    }
}

#[test]
fn a2_variants_round_trip_and_reject_corruption() {
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xA2);
    for i in 0..ROUNDS {
        check(arb_a2(&mut rng, i));
    }
}

#[test]
fn cm_variants_round_trip_and_reject_corruption() {
    for i in 0..ROUNDS {
        check(arb_cm(i));
    }
}

#[test]
fn a1_random_candidate_stream_round_trips_and_rejects_corruption() {
    // The randomized doorway (a1-random, live-capable since the sharded
    // runtime landed) leans on Candidate/Nack recoloring exchanges; pin
    // the extremes the seeded sweep above is unlikely to hit, then a
    // dedicated seeded recolor stream.
    for value in [0, 1, u64::MAX, 0x8000_0000_0000_0000] {
        for decided in [false, true] {
            check(A1Msg::Recolor(RecolorMsg::Candidate { value, decided }));
        }
    }
    check(A1Msg::Recolor(RecolorMsg::Nack));
    let mut rng = SimRng::seed_from_u64(SEED ^ 0x1A1D);
    for i in 0..ROUNDS {
        check(A1Msg::Recolor(arb_recolor(&mut rng, i)));
    }
}

#[test]
fn cross_algorithm_and_cross_version_frames_are_rejected() {
    let a2 = encode_frame(&A2Msg::Req);
    assert_eq!(
        decode_frame::<A1Msg>(&a2),
        Err(CodecError::BadAlg {
            expected: A1Msg::ALG_ID,
            got: A2Msg::ALG_ID,
        })
    );
    assert_eq!(
        decode_frame::<CmMsg>(&a2),
        Err(CodecError::BadAlg {
            expected: CmMsg::ALG_ID,
            got: A2Msg::ALG_ID,
        })
    );
}

#[test]
fn arbitrary_garbage_never_panics() {
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xBAD);
    for _ in 0..256 {
        let len = rng.gen_range(0..96u64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Random bytes essentially never carry a valid checksum; whatever
        // happens, it must be an Err, not a panic.
        assert!(decode_frame::<A1Msg>(&bytes).is_err());
        assert!(decode_frame::<A2Msg>(&bytes).is_err());
        assert!(decode_frame::<CmMsg>(&bytes).is_err());
    }
}
