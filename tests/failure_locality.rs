//! Integration tests of the failure-locality claims (Definition 1 and
//! Theorems 16/22/25): crash a node and check how far starvation reaches.

use manet_local_mutex::harness::{crash_probe, topology, AlgKind, RunSpec};
use manet_local_mutex::sim::NodeId;

fn spec(horizon: u64) -> RunSpec {
    RunSpec {
        horizon,
        ..RunSpec::default()
    }
}

#[test]
fn a2_failure_locality_is_at_most_two_on_a_line() {
    let n = 15;
    let report = crash_probe(
        AlgKind::A2,
        &spec(60_000),
        &topology::line(n),
        NodeId(n as u32 / 2),
        2_000,
    );
    assert!(report.outcome.violations.is_empty());
    if let Some(m) = report.locality {
        assert!(m <= 2, "Theorem 25 violated: starvation at distance {m}");
    }
    // Endpoints (distance 7) keep eating.
    assert!(report.outcome.metrics.meals[0] >= 5);
    assert!(report.outcome.metrics.meals[n - 1] >= 5);
}

#[test]
fn a2_failure_locality_is_at_most_two_on_a_grid() {
    let report = crash_probe(
        AlgKind::A2,
        &spec(60_000),
        &topology::grid(5, 5),
        NodeId(12),
        2_000,
    );
    assert!(report.outcome.violations.is_empty());
    if let Some(m) = report.locality {
        assert!(m <= 2, "Theorem 25 violated on the grid: distance {m}");
    }
}

#[test]
fn doorway_algorithms_contain_the_figure_six_crash() {
    // On a line, the fork-collection containment argument (Lemma 9) keeps
    // nodes at distance ≥ 3 progressing for the A1 variants too.
    let n = 13;
    for kind in [AlgKind::A1Greedy, AlgKind::A1Linial, AlgKind::ChoySingh] {
        let report = crash_probe(
            kind,
            &spec(60_000),
            &topology::line(n),
            NodeId(n as u32 / 2),
            2_000,
        );
        assert!(report.outcome.violations.is_empty());
        // Far endpoints must keep eating.
        assert!(
            report.outcome.metrics.meals[0] >= 5,
            "{}: far node starved",
            kind.name()
        );
        assert!(
            report.outcome.metrics.meals[n - 1] >= 5,
            "{}: far node starved",
            kind.name()
        );
    }
}

#[test]
fn chandy_misra_starvation_reaches_far() {
    // The contrast row of Table 1: CM's dirty-fork chains let one crash
    // starve nodes arbitrarily far away. On a 13-line with a center crash,
    // starvation reaches beyond distance 2 (where A2 is guaranteed safe).
    let n = 13;
    let report = crash_probe(
        AlgKind::ChandyMisra,
        &spec(60_000),
        &topology::line(n),
        NodeId(n as u32 / 2),
        2_000,
    );
    assert!(report.outcome.violations.is_empty());
    let m = report.locality.unwrap_or(0);
    assert!(
        m > 2,
        "expected CM starvation beyond distance 2, saw {m} ({} starving)",
        report.starving.len()
    );
}

#[test]
fn crash_of_a_leaf_barely_matters() {
    // Crashing an endpoint of the line affects at most its 2-neighborhood
    // for every implemented algorithm.
    let n = 9;
    for kind in AlgKind::all() {
        let report = crash_probe(kind, &spec(40_000), &topology::line(n), NodeId(0), 2_000);
        assert!(report.outcome.violations.is_empty());
        assert!(
            report.outcome.metrics.meals[n - 1] >= 5,
            "{}: far endpoint starved after a leaf crash",
            kind.name()
        );
    }
}

#[test]
fn recoloring_crash_separates_greedy_from_linial() {
    // §5.4.2's scenario, the paper's argument for the Linial procedure:
    // everyone recolors at once with one node pre-crashed. The greedy
    // flood's blockage must reach far beyond the Linial variant's.
    use manet_local_mutex::sim::SimTime;
    let n = 17usize;
    let victim = NodeId(n as u32 / 2);
    let mut localities = Vec::new();
    for greedy in [true, false] {
        let spec = RunSpec {
            horizon: 80_000,
            cyclic: false,
            first_hungry: (5, 5),
            ..RunSpec::default()
        };
        let sched = std::sync::Arc::new(manet_local_mutex::coloring::LinialSchedule::compute(
            n as u64, 2,
        ));
        let out = manet_local_mutex::harness::run_protocol(
            &spec,
            &topology::line(n),
            move |seed| {
                let mut node = if greedy {
                    manet_local_mutex::lme::Algorithm1::greedy(&seed)
                } else {
                    manet_local_mutex::lme::Algorithm1::linial(&seed, sched.clone())
                };
                node.require_initial_recoloring();
                node
            },
            |e| e.crash_at(SimTime(2), victim),
        );
        assert!(out.violations.is_empty());
        let dist = out.distances_from(victim);
        let locality = out
            .metrics
            .starving_since(SimTime(spec.horizon / 2))
            .into_iter()
            .filter(|&s| s != victim)
            .filter_map(|s| dist[s.index()])
            .max()
            .unwrap_or(0);
        localities.push(locality);
    }
    let (greedy_loc, linial_loc) = (localities[0], localities[1]);
    assert!(
        greedy_loc >= 6,
        "greedy recoloring blockage should sweep the line, got {greedy_loc}"
    );
    assert!(
        linial_loc <= 6,
        "Linial recoloring blockage must stay within max(log* n, 4) + 2, got {linial_loc}"
    );
    assert!(greedy_loc > linial_loc, "{greedy_loc} vs {linial_loc}");
}
