//! Chaos tests: heavy link churn plus crashes, then quiescence. Safety
//! must hold throughout; after the churn stops, every live node far from
//! the crashes must return to regular progress (the self-organizing
//! behavior the paper's Discussion chapter attributes to recoloring after
//! topology changes).

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec};
use manet_local_mutex::sim::{Command, NodeId, Position, SimRng, SimTime};

/// Heavy churn for the first 60% of the horizon; quiet afterwards.
fn churn_commands(n: usize, horizon: u64, area: f64, seed: u64) -> Vec<(SimTime, Command)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cmds = Vec::new();
    let churn_end = horizon * 6 / 10;
    for _ in 0..30 {
        let t = rng.gen_range(500..churn_end);
        let node = NodeId(rng.gen_range(0..n as u32));
        let dest = Position {
            x: rng.gen_f64() * area,
            y: rng.gen_f64() * area,
        };
        cmds.push((
            SimTime(t),
            if rng.gen_bool(0.5) {
                Command::Teleport { node, dest }
            } else {
                Command::StartMove {
                    node,
                    dest,
                    speed: 0.4,
                }
            },
        ));
    }
    cmds.sort_by_key(|(t, _)| *t);
    cmds
}

fn run_chaos(kind: AlgKind, seed: u64) {
    let n = 16;
    let horizon = 60_000u64;
    let area = (n as f64 / 1.6).sqrt();
    let positions = topology::random_connected(n, seed);
    let spec = RunSpec {
        horizon,
        sim: manet_local_mutex::sim::SimConfig {
            seed,
            ..manet_local_mutex::sim::SimConfig::default()
        },
        ..RunSpec::default()
    };
    let mut commands = churn_commands(n, horizon, area, seed ^ 0xC0FFEE);
    // One crash mid-churn.
    let victim = NodeId((seed % n as u64) as u32);
    commands.push((SimTime(horizon / 3), Command::Crash(victim)));
    let out = run_algorithm(kind, &spec, &positions, &commands);
    assert!(
        out.violations.is_empty(),
        "{} seed {seed}: safety violated under chaos: {:?}",
        kind.name(),
        out.violations
    );
    // Recovery: every live node farther from the victim than the
    // algorithm's failure locality must have eaten during the quiet tail
    // (40% of the horizon — plenty). The thresholds mirror the paper:
    // A2 has locality 2; A1-Linial max(log* n, 4) + 2 = 6; the greedy and
    // randomized recolorings have no distance guarantee (locality up to
    // n), so for them we only require global progress.
    let threshold = match kind {
        AlgKind::A2 => Some(3),
        AlgKind::A1Linial => Some(7),
        _ => None,
    };
    let dist = out.distances_from(victim);
    let tail_start = SimTime(horizon * 6 / 10);
    let tail_meals_of = |node: NodeId| {
        out.metrics
            .samples
            .iter()
            .filter(|s| s.node == node && s.eat_at >= tail_start)
            .count()
    };
    if let Some(threshold) = threshold {
        for (i, &d) in dist.iter().enumerate().take(n) {
            let node = NodeId(i as u32);
            if node == victim || out.crashed.contains(&node) {
                continue;
            }
            if d.is_some_and(|d| d < threshold) {
                continue;
            }
            assert!(
                tail_meals_of(node) > 0,
                "{} seed {seed}: node {i} (distance {d:?} from crash, locality bound \
                 {threshold}) made no progress after churn",
                kind.name()
            );
        }
    } else {
        let total_tail: usize = (0..n).map(|i| tail_meals_of(NodeId(i as u32))).sum();
        assert!(
            total_tail > 0,
            "{} seed {seed}: the whole system froze after churn",
            kind.name()
        );
    }
}

#[test]
fn a1_greedy_survives_chaos() {
    for seed in [1u64, 7, 23] {
        run_chaos(AlgKind::A1Greedy, seed);
    }
}

#[test]
fn a1_linial_survives_chaos() {
    for seed in [1u64, 7, 23] {
        run_chaos(AlgKind::A1Linial, seed);
    }
}

#[test]
fn a1_random_survives_chaos() {
    for seed in [1u64, 7, 23] {
        run_chaos(AlgKind::A1Random, seed);
    }
}

#[test]
fn a2_survives_chaos() {
    for seed in [1u64, 7, 23] {
        run_chaos(AlgKind::A2, seed);
    }
}
