//! Writing your own protocol against the simulator — the downstream-user
//! path. This example implements a deliberately naive "polite backoff"
//! mutual-exclusion protocol in ~60 lines, runs it next to Algorithm 2 on
//! the same workload, and lets the safety monitor and fairness index show
//! where naivety loses: simultaneous claims race inside the message-delay
//! window (hundreds of violations), and ID-based deference starves the
//! largest IDs — while Algorithm 2 is violation-free with Jain index 1.0.
//!
//! Run with: `cargo run --example custom_protocol`

use manet_local_mutex::harness::{stats::jain_index, topology, Metrics, SafetyMonitor, Workload};
use manet_local_mutex::lme::Algorithm2;
use manet_local_mutex::sim::{
    Context, DiningState, Engine, Event, NodeId, Protocol, SimConfig, SimTime,
};

/// Naive protocol: announce intent; enter only if no *smaller-ID* neighbor
/// announced first; retry on a timer otherwise. Looks plausible, but two
/// nodes whose `Want`s cross in flight can both enter (unsafe), and
/// deference by fixed ID starves the largest IDs.
struct PoliteBackoff {
    me: NodeId,
    state: DiningState,
    /// Neighbors currently claiming the region.
    claims: std::collections::BTreeSet<NodeId>,
}

#[derive(Clone, Debug, PartialEq)]
enum Claim {
    Want,
    Release,
}

impl PoliteBackoff {
    fn try_enter(&mut self, ctx: &mut Context<'_, Claim>) {
        if self.state != DiningState::Hungry {
            return;
        }
        if self.claims.iter().all(|&j| j > self.me) {
            self.state = DiningState::Eating;
        } else {
            ctx.set_timer(17, 0); // back off and retry
        }
    }
}

impl Protocol for PoliteBackoff {
    type Msg = Claim;
    fn on_event(&mut self, ev: Event<Claim>, ctx: &mut Context<'_, Claim>) {
        match ev {
            Event::Hungry => {
                self.state = DiningState::Hungry;
                ctx.broadcast(Claim::Want);
                // Wait one delay bound for conflicting claims to arrive.
                ctx.set_timer(12, 0);
            }
            Event::ExitCs => {
                self.state = DiningState::Thinking;
                ctx.broadcast(Claim::Release);
            }
            Event::Message { from, msg } => {
                match msg {
                    Claim::Want => {
                        self.claims.insert(from);
                    }
                    Claim::Release => {
                        self.claims.remove(&from);
                    }
                }
                // NOTE: deliberately no re-entry attempt here; the timer
                // drives retries (keeps the example minimal).
            }
            Event::Timer { .. } => self.try_enter(ctx),
            Event::LinkDown { peer } => {
                self.claims.remove(&peer);
            }
            _ => {}
        }
    }
    fn dining_state(&self) -> DiningState {
        self.state
    }
}

fn run<P: Protocol + 'static, F: FnMut(manet_local_mutex::sim::NodeSeed) -> P + 'static>(
    factory: F,
) -> (Vec<u64>, usize) {
    let n = 6;
    let mut engine: Engine<P> = Engine::new(SimConfig::default(), topology::clique(n), factory);
    let (metrics, data) = Metrics::new(n);
    engine.add_hook(Box::new(metrics));
    let (monitor, violations) = SafetyMonitor::new(false);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::cyclic(10..=25, 20..=60, 7)));
    for i in 0..n as u32 {
        engine.set_hungry_at(SimTime(1), NodeId(i));
    }
    engine.run_until(SimTime(30_000));
    let meals = data.borrow().meals.clone();
    let n_violations = violations.borrow().len();
    (meals, n_violations)
}

fn main() {
    let (naive_meals, naive_violations) = run(|seed| PoliteBackoff {
        me: seed.id,
        state: DiningState::Thinking,
        claims: std::collections::BTreeSet::new(),
    });
    let (a2_meals, a2_violations) = run(|seed| Algorithm2::new(&seed));

    println!("6-node clique, identical workload, 30 000 ticks\n");
    println!("naive polite-backoff : meals {naive_meals:?}");
    println!(
        "                       violations {naive_violations}, Jain fairness {:.2}",
        jain_index(&naive_meals)
    );
    println!("Algorithm 2          : meals {a2_meals:?}");
    println!(
        "                       violations {a2_violations}, Jain fairness {:.2}",
        jain_index(&a2_meals)
    );

    assert_eq!(a2_violations, 0, "Algorithm 2 must be violation-free");
    assert!(
        a2_meals.iter().all(|&m| m > 0),
        "Algorithm 2 must starve nobody"
    );
    assert!(
        naive_violations > 0,
        "the naive protocol races inside the delay window"
    );
    assert!(
        jain_index(&a2_meals) > jain_index(&naive_meals),
        "Algorithm 2 should distribute the critical section more fairly"
    );
    println!("\nOK: the paper's algorithm dominates the naive one on both safety and fairness.");
}
