//! Channel arbitration — the paper's motivating application.
//!
//! "Nearby nodes can compete for exclusive access to a dedicated wireless
//! channel or to a satellite uplink facility using this algorithm. They
//! will be ensured of all eventually getting a turn to use the
//! communication channel exclusively." (Chapter 1.)
//!
//! Forty sensor nodes are scattered over a field; the critical section
//! models an exclusive transmission slot on the shared channel: no node may
//! transmit while a node in radio range transmits. We run Algorithm 1 with
//! the Linial recoloring procedure — the variant whose response time is
//! essentially independent of the network size — and report per-node
//! airtime fairness.
//!
//! Run with: `cargo run --example channel_arbitration`

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec, Summary};

fn main() {
    let n = 40;
    let positions = topology::random_connected(n, 2024);
    let spec = RunSpec {
        horizon: 60_000,
        eat: 5..=20,     // a transmission burst
        think: 40..=120, // sensing / batching interval
        ..RunSpec::default()
    };

    let out = run_algorithm(AlgKind::A1Linial, &spec, &positions, &[]);

    let meals = &out.metrics.meals;
    let min = meals.iter().min().copied().unwrap_or(0);
    let max = meals.iter().max().copied().unwrap_or(0);
    let total: u64 = meals.iter().sum();

    println!("Channel arbitration among {n} nodes (A1-Linial)");
    println!("  transmission slots granted : {total}");
    println!("  per-node min/max           : {min} / {max}");
    println!(
        "  slot-acquisition latency   : {}",
        Summary::of(&out.metrics.static_responses())
    );
    println!("  collisions (LME violations): {}", out.violations.len());

    assert!(
        out.violations.is_empty(),
        "two in-range nodes transmitted at once"
    );
    assert!(min > 0, "a node never got the channel");
    // Local mutual exclusion gives every node a turn; contention-limited
    // fairness means min and max stay within a small factor.
    assert!(
        max <= min.saturating_mul(8).max(8),
        "grossly unfair: {min}..{max}"
    );
    println!("OK: exclusive channel access with no starvation.");
}
