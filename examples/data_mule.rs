//! Data mule — exclusive access to a shared repository under mobility.
//!
//! The paper's second motivating application: "arbitrate access to some
//! piece of specialized hardware in a region, such as a more powerful
//! computer in the system (e.g., a repository for collected data)". Here
//! two sensor clusters each surround a repository; a *data mule* shuttles
//! between the clusters, and whenever it docks at a cluster it competes
//! with the local sensors for exclusive repository access (the critical
//! section). Mobility exercises the full Algorithm 1 machinery: doorway
//! abandonment, the ⟨update-color, L⟩ handshake, recoloring, and
//! eating→hungry demotion.
//!
//! Run with: `cargo run --example data_mule`

use manet_local_mutex::harness::{run_protocol, topology, RunSpec};
use manet_local_mutex::lme::Algorithm1;
use manet_local_mutex::sim::{Command, NodeId, Position, SimTime};

fn main() {
    // Cluster A around (0, 0), cluster B around (30, 0), mule starts in A.
    let mut positions: Vec<(f64, f64)> = topology::clique(4);
    positions.extend(topology::clique(4).into_iter().map(|(x, y)| (x + 30.0, y)));
    let mule = NodeId(positions.len() as u32);
    positions.push((0.0, 1.0));
    let n = positions.len();

    let spec = RunSpec {
        horizon: 80_000,
        eat: 10..=25,
        think: 60..=150,
        ..RunSpec::default()
    };

    // The mule shuttles: A → B → A → B …, moving at 0.1 units/tick.
    let mut commands: Vec<(SimTime, Command)> = Vec::new();
    for (k, t) in (5_000..spec.horizon).step_by(10_000).enumerate() {
        let dest = if k % 2 == 0 { (30.0, 1.0) } else { (0.0, 1.0) };
        commands.push((
            SimTime(t),
            Command::StartMove {
                node: mule,
                dest: Position::from(dest),
                speed: 0.1,
            },
        ));
    }

    let out = run_protocol(
        &spec,
        &positions,
        |seed| Algorithm1::greedy(&seed),
        |engine| {
            for (at, cmd) in &commands {
                engine.schedule(*at, cmd.clone());
            }
        },
    );

    println!("Data mule among {} nodes (A1-greedy, mobile)", n);
    println!("  repository accesses per node: {:?}", out.metrics.meals);
    println!(
        "  mule accesses               : {}",
        out.metrics.meals[mule.index()]
    );
    println!("  LME violations              : {}", out.violations.len());
    println!("  static-episode latency      : {}", out.static_summary());
    println!("  all-episode latency         : {}", out.all_summary());

    assert!(
        out.violations.is_empty(),
        "repository accessed concurrently"
    );
    assert!(
        out.metrics.meals[mule.index()] > 0,
        "the mule never got the repository"
    );
    assert!(
        out.metrics.meals.iter().all(|&m| m > 0),
        "a cluster node starved"
    );
    println!("OK: exclusive repository access maintained across shuttling.");
}
