//! Meeting room — projector control among co-located devices.
//!
//! The paper's third motivating application: "the control over a projector
//! in a meeting room". All devices are in mutual radio range (a clique), so
//! local mutual exclusion degenerates to classic mutual exclusion — the
//! highest-contention regime. We compare the doorway algorithm (A1-greedy)
//! with the dynamic-priority Algorithm 2 on the same workload and show
//! both serve every participant.
//!
//! Run with: `cargo run --example meeting_room`

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec};

fn main() {
    let n = 8;
    let positions = topology::clique(n);
    let spec = RunSpec {
        horizon: 60_000,
        eat: 20..=50, // a presenter holds the projector for a while
        think: 100..=300,
        ..RunSpec::default()
    };

    println!("Projector arbitration among {n} co-located devices\n");
    for kind in [AlgKind::A1Greedy, AlgKind::A2] {
        let out = run_algorithm(kind, &spec, &positions, &[]);
        let meals = &out.metrics.meals;
        println!("{}:", kind.name());
        println!("  presentations per device : {meals:?}");
        println!("  acquisition latency      : {}", out.static_summary());
        println!(
            "  messages per acquisition : {:.1}",
            out.messages_per_meal()
        );
        println!("  violations               : {}\n", out.violations.len());
        assert!(out.violations.is_empty(), "two devices drove the projector");
        assert!(
            meals.iter().all(|&m| m > 0),
            "{}: a device never presented",
            kind.name()
        );
    }
    println!("OK: both algorithms serialize the projector fairly.");
}
