//! Quickstart: five nodes on a line, Algorithm 2, everyone hungry at once.
//!
//! Run with: `cargo run --example quickstart`

use manet_local_mutex::harness::{run_algorithm, topology, AlgKind, RunSpec};

fn main() {
    // Five nodes in a line; each eats 10–30 ticks, thinks 50–150 ticks,
    // repeats until the 20 000-tick horizon.
    let spec = RunSpec {
        horizon: 20_000,
        ..RunSpec::default()
    };
    let positions = topology::line(5);

    let out = run_algorithm(AlgKind::A2, &spec, &positions, &[]);

    println!(
        "Algorithm 2 on a 5-node line, horizon {} ticks",
        spec.horizon
    );
    println!("  safety violations : {}", out.violations.len());
    println!("  meals per node    : {:?}", out.metrics.meals);
    println!("  response times    : {}", out.static_summary());
    println!("  messages sent     : {}", out.messages_sent);
    println!("  messages per meal : {:.1}", out.messages_per_meal());

    assert!(out.violations.is_empty(), "local mutual exclusion held");
    assert!(
        out.metrics.meals.iter().all(|&m| m > 0),
        "every node entered its critical section"
    );
    println!("OK: no two neighbors ever ate simultaneously, nobody starved.");
}
