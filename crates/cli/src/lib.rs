//! # `lme-cli` — run local-mutual-exclusion experiments from the shell
//!
//! A thin, dependency-free command-line front end over the [`harness`]
//! runner:
//!
//! ```text
//! lme list
//! lme run   --alg a2 --topo line:12 --horizon 40000
//! lme run   --alg a1-linial --topo random:24:7 --moves 20 --csv
//! lme probe --alg chandy-misra --topo line:21 --victim 10
//! ```
//!
//! Argument parsing, topology specs and command execution live here so they
//! are unit-testable; `main.rs` only forwards `std::env::args`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod exec;

pub use args::{parse, Cli, Command, TopoSpec};
pub use exec::execute;

/// Entry point shared by `main.rs` and tests: parse and execute, returning
/// the rendered report.
///
/// # Errors
///
/// Returns a usage/diagnostic message on bad arguments or a failed run.
pub fn run_cli<I: IntoIterator<Item = String>>(argv: I) -> Result<String, String> {
    let cli = parse(argv)?;
    execute(&cli)
}
