//! Hand-rolled argument parsing (the workspace is dependency-minimal by
//! design; see DESIGN.md §6).

use harness::{AlgKind, MobilityMix};
use lme_check::{Mutation, StrategyKind};
use lme_net::{LiveRuntime, TransportKind};
use manet_sim::ChannelConfig;

/// A parsed topology specification.
#[derive(Clone, Debug, PartialEq)]
pub enum TopoSpec {
    /// `line:N`
    Line(usize),
    /// `ring:N`
    Ring(usize),
    /// `grid:WxH`
    Grid(usize, usize),
    /// `clique:N`
    Clique(usize),
    /// `random:N[:SEED]` — random unit-disk graph.
    Random(usize, u64),
    /// `star:LEAVES` — explicit graph (not unit-disk embeddable).
    Star(usize),
    /// `tree:N` — explicit complete binary tree.
    Tree(usize),
}

impl TopoSpec {
    /// Number of nodes this spec produces.
    pub fn len(&self) -> usize {
        match *self {
            TopoSpec::Line(n)
            | TopoSpec::Ring(n)
            | TopoSpec::Clique(n)
            | TopoSpec::Random(n, _)
            | TopoSpec::Tree(n) => n,
            TopoSpec::Grid(w, h) => w * h,
            TopoSpec::Star(leaves) => leaves + 1,
        }
    }

    /// True only for degenerate zero-node specs (rejected by the parser).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for specs that need the explicit-graph engine (no geometry).
    pub fn is_explicit(&self) -> bool {
        matches!(self, TopoSpec::Star(_) | TopoSpec::Tree(_))
    }
}

impl std::fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TopoSpec::Line(n) => write!(f, "line:{n}"),
            TopoSpec::Ring(n) => write!(f, "ring:{n}"),
            TopoSpec::Grid(w, h) => write!(f, "grid:{w}x{h}"),
            TopoSpec::Clique(n) => write!(f, "clique:{n}"),
            TopoSpec::Random(n, seed) => write!(f, "random:{n}:{seed}"),
            TopoSpec::Star(leaves) => write!(f, "star:{leaves}"),
            TopoSpec::Tree(n) => write!(f, "tree:{n}"),
        }
    }
}

/// The parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print the available algorithms and topology syntax.
    List,
    /// Run a workload and report.
    Run,
    /// Crash probe: crash the victim mid-CS and report locality.
    Probe,
    /// Multi-seed sweep: algorithms × seeds in parallel, aggregated.
    Sweep,
    /// Fault-injection matrix: every fault class × seeds, aggregated.
    Chaos,
    /// Bounded schedule-space model checking with witness shrink/replay.
    Check,
    /// Benchmarks (`lme bench scale`, `lme bench live`, `lme bench engine`).
    Bench,
    /// Live thread-per-node run over a real transport (`lme live`).
    Live,
}

/// Which benchmark `lme bench` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// Link-engine scaling ladder (virtual time).
    Scale,
    /// Live-runtime throughput/latency over a real transport (wall time).
    Live,
    /// Event-queue core ladder: ns/event of the heap vs the timing wheel
    /// on a dispatch-bound workload.
    Engine,
    /// Channel-model matrix: every channel model × a clique and a ring,
    /// reporting meals, response times and channel counters.
    Channel,
}

/// Everything the CLI understood.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
    /// Algorithm under test.
    pub alg: AlgKind,
    /// Algorithms a sweep compares (all of Table 1 unless `--alg` narrows
    /// it to one).
    pub algs: Vec<AlgKind>,
    /// Topology specification.
    pub topo: TopoSpec,
    /// Virtual-time horizon.
    pub horizon: u64,
    /// RNG seed.
    pub seed: u64,
    /// Eating-time range.
    pub eat: (u64, u64),
    /// Think-time range.
    pub think: (u64, u64),
    /// Random-waypoint movements to schedule.
    pub moves: usize,
    /// Heterogeneous mobility mix (static-core : highway : group); wins
    /// over `--moves` when both are given.
    pub mix: Option<MobilityMix>,
    /// Channel model messages traverse (`iid` is the historical default).
    pub channel: ChannelConfig,
    /// Crash-probe victim (probe) or optional mid-run crash (run).
    pub victim: Option<u32>,
    /// Arm the reliable-delivery ARQ shim in simulator runs.
    pub arq: bool,
    /// Recover the crashed `--victim`: ticks for `run`, ms for `live`.
    pub recover_at: Option<u64>,
    /// Live: per-link ARQ (retransmit + ack) over the real transport.
    pub reliable: bool,
    /// Emit per-episode samples as CSV instead of the text report.
    pub csv: bool,
    /// Sweep worker threads (`None` = the machine's parallelism).
    pub jobs: Option<usize>,
    /// Number of consecutive seeds a sweep runs, starting at `seed`.
    pub seeds: u64,
    /// Write per-run metrics as JSON lines to this path.
    pub metrics_out: Option<String>,
    /// Per-message drop probability on faulted links.
    pub fault_drop: f64,
    /// Per-message duplication probability on faulted links.
    pub fault_dup: f64,
    /// Extra delay (ticks) added to every message on faulted links
    /// (`0` = off).
    pub fault_skew: u64,
    /// Run the adaptive maximum-delay adversary (every message to or from
    /// a target is charged exactly ν).
    pub fault_delay: bool,
    /// Partition window `at..heal_at`: cut `fault_targets` off at `at`,
    /// heal at `heal_at`.
    pub fault_partition: Option<(u64, u64)>,
    /// Nodes the link faults / adversary / partition aim at
    /// (`None` = every link; the partition requires an explicit side).
    pub fault_targets: Option<Vec<u32>>,
    /// Active window `[a, b)` for link faults and the delay adversary
    /// (`None` = the whole run).
    pub fault_window: Option<(u64, u64)>,
    /// Seed of the fault RNG (`0` = derive from the run seed).
    pub fault_seed: u64,
    /// Check: exploration strategy.
    pub strategy: StrategyKind,
    /// Check: DFS schedule budget.
    pub steps: usize,
    /// Check: DFS flip-depth bound.
    pub depth: usize,
    /// Check: write the (shrunk) witness JSON here when a violation is found.
    pub witness_out: Option<String>,
    /// Check: replay this witness file instead of exploring.
    pub replay_witness: Option<String>,
    /// Check: deliberate algorithm defect for checker self-validation.
    pub mutate: Mutation,
    /// Check: recycling liveness workload — nodes go hungry again after
    /// eating and starvation is checked as a repeated-progress-state lasso.
    pub liveness: bool,
    /// Check: exhaust the extremal schedule space and certify the exact
    /// worst-case response time instead of exploring for violations.
    pub certify: bool,
    /// Every flag the user passed explicitly, in order — used to detect
    /// conflicts between the command line and a replayed witness's
    /// recorded instance.
    pub explicit: Vec<String>,
    /// Bench: which benchmark to run.
    pub bench_mode: BenchMode,
    /// Bench: node counts of the scaling ladder.
    pub bench_ns: Vec<usize>,
    /// Bench: relocation steps measured per node count.
    pub bench_steps: usize,
    /// Bench: where the JSON output is written (`None` = the mode's
    /// default: `BENCH_scale.json` / `BENCH_live.json` /
    /// `BENCH_engine.json`).
    pub bench_out: Option<String>,
    /// Bench: largest n at which the pairwise reference engine also runs
    /// (it is O(n²); past this only the grid engine is measured).
    pub bench_pairwise_cap: usize,
    /// Live: which transport carries the frames.
    pub transport: TransportKind,
    /// Live: wall-clock run length in milliseconds.
    pub duration_ms: u64,
    /// Live: mean hungry-cycle rate per node, in cycles per second.
    pub rate: f64,
    /// Live: eating time per session in milliseconds.
    pub eat_ms: u64,
    /// Live: one hungry cycle per node, stop once everyone has eaten.
    pub one_shot: bool,
    /// Live: after the run, replay its delivery timing in the simulator
    /// and check safety + census conformance (needs `--oneshot`).
    pub conformance: bool,
    /// Live: run the full algorithm × {clique, ring} matrix instead of a
    /// single cell.
    pub matrix: bool,
    /// Live: which execution model runs the node automata
    /// (`thread-per-node` or `sharded`).
    pub runtime: LiveRuntime,
    /// Live: worker-thread count for the sharded runtime (`None` = size
    /// to the machine's parallelism).
    pub workers: Option<usize>,
    /// Live / bench live: closed-loop workload — a node goes hungry again
    /// immediately after eating instead of drawing an open-loop think
    /// time from `--rate`.
    pub closed_loop: bool,
}

impl Cli {
    /// Whether the user passed `flag` explicitly on the command line.
    pub fn explicitly_set(&self, flag: &str) -> bool {
        self.explicit.iter().any(|f| f == flag)
    }
}

impl Default for Cli {
    fn default() -> Cli {
        Cli {
            command: Command::Run,
            alg: AlgKind::A2,
            algs: AlgKind::all().to_vec(),
            topo: TopoSpec::Line(8),
            horizon: 40_000,
            seed: 0xA77D_2008,
            eat: (10, 30),
            think: (50, 150),
            moves: 0,
            mix: None,
            channel: ChannelConfig::default(),
            victim: None,
            arq: false,
            recover_at: None,
            reliable: false,
            csv: false,
            jobs: None,
            seeds: 8,
            metrics_out: None,
            fault_drop: 0.0,
            fault_dup: 0.0,
            fault_skew: 0,
            fault_delay: false,
            fault_partition: None,
            fault_targets: None,
            fault_window: None,
            fault_seed: 0,
            strategy: StrategyKind::Dfs,
            steps: 256,
            depth: 12,
            witness_out: None,
            replay_witness: None,
            mutate: Mutation::None,
            liveness: false,
            certify: false,
            explicit: Vec::new(),
            bench_mode: BenchMode::Scale,
            bench_ns: vec![1_000, 2_500, 5_000, 10_000],
            bench_steps: 20_000,
            bench_out: None,
            bench_pairwise_cap: 2_500,
            transport: TransportKind::Mpsc,
            duration_ms: 2_000,
            rate: 25.0,
            eat_ms: 2,
            one_shot: false,
            conformance: false,
            matrix: false,
            runtime: LiveRuntime::ThreadPerNode,
            workers: None,
            closed_loop: false,
        }
    }
}

/// Usage text shown for `lme list` and on errors.
pub const USAGE: &str = "\
usage: lme <list|run|probe|sweep|chaos|check|bench|live> [options]

commands:
  list    print algorithms and topology syntax
  run     one workload run, full report
  probe   crash the victim mid-CS, report failure locality
  sweep   algorithms x seeds grid in parallel, aggregated report
  chaos   fault classes x seeds matrix (crash, recover, windowed-loss,
          sustained-loss, windowed-duplication, partition, max-delay),
          aggregated report; sustained-loss arms the ARQ shim and the
          command exits nonzero if that class stalls
  check   explore the legal delivery schedules of a small model for
          safety/liveness violations; shrink and replay witnesses
  bench   `bench scale`: random-waypoint link-derivation cost of the
          spatial-grid engine vs the pairwise reference across a node
          ladder, written as a JSON trajectory
          `bench live`: wall-clock throughput (eating sessions/sec) and
          hungry->eat latency percentiles of every live-capable
          algorithm over a real transport, written as BENCH_live.json
          `bench engine`: ns/event of the binary-heap vs timing-wheel
          event cores on a dispatch-bound workload across a node
          ladder, written as BENCH_engine.json
          `bench channel`: every channel model x {clique:8, ring:8},
          reporting meals, response percentiles and channel counters,
          written as BENCH_channel.json
  live    real message passing (mpsc channels or UDP on loopback) under
          one of two execution models — one thread per node, or an M:N
          sharded worker pool (--runtime sharded) that scales the same
          automata to tens of thousands of nodes; the live trace is
          validated by the safety monitor either way

options:
  --alg <name>       a1-greedy | a1-linial | a1-random | a2 |
                     chandy-misra | choy-singh              (default a2;
                     sweep compares all Table 1 algorithms unless given)
  --topo <spec>      line:N | ring:N | grid:WxH | clique:N |
                     random:N[:SEED] | star:LEAVES | tree:N (default line:8)
  --horizon <ticks>  run length                             (default 40000)
  --seed <n>         RNG seed (sweep: first seed of the range)
  --eat <a..b>       eating-time range in ticks             (default 10..30)
  --think <a..b>     think-time range in ticks              (default 50..150)
  --moves <k>        random-waypoint movements              (default 0)
  --mix <s:h>        heterogeneous mobility mix: fraction of static-core
                     and highway nodes (rest wander in groups), e.g.
                     0.4:0.3; wins over --moves    (default: homogeneous)
  --channel <spec>   channel model: iid | bandwidth:TPF[:QUEUE] |
                     shared:TPF[:INFLIGHT] | gilbert:PG2B:PB2G[:LG:LB]
                     (default iid — the historical i.i.d. delay draw)
  --victim <node>    probe: node to crash mid-CS            (default center)
  --csv              emit per-episode samples as CSV
  --jobs <n>         sweep worker threads         (default: all cores;
                     results are identical for every value)
  --seeds <n>        sweep: consecutive seeds to run        (default 8)
  --metrics-out <p>  write per-run metrics as JSON lines to <p>

fault injection (run/sweep; chaos builds its own schedule):
  --fault-drop <p>       drop probability per message          (default 0)
  --fault-dup <p>        duplication probability per message   (default 0)
  --fault-skew <ticks>   extra delay added to every message    (default 0)
  --fault-delay          charge every message the max legal delay
  --fault-partition a..b cut --fault-targets off at a, heal at b
  --fault-targets <ids>  comma-separated nodes to aim faults at
                         (default: every link; required for partitions)
  --fault-window <a..b>  restrict link faults / delay adversary to [a,b)
  --fault-seed <n>       fault RNG seed (default: derived from --seed)

reliable delivery and recovery:
  --arq                  run/sweep/probe: arm the per-link ARQ shim
                         (retransmit + cumulative ack) between every
                         protocol and its channel
  --recover <t>          run/sweep: crash --victim at horizon/4 and
                         recover it as a fresh incarnation at tick <t>
                         live: recover the crashed --victim at <t> ms
  --reliable             live: per-link ARQ (retransmit + ack) over the
                         real transport

model checking (check):
  --strategy <s>       dfs | random | pct                  (default dfs)
  --steps <n>          dfs: schedule budget (default 256; with --certify
                       the budget defaults to 2000000)
  --seeds <n>          random/pct: number of walks         (default 8)
  --depth <n>          dfs: branch points eligible to flip (default 12)
  --jobs <n>           exploration worker threads (default 1; verdicts,
                       prune counts and witnesses are byte-identical for
                       every value)
  --nodes <n>          shorthand for --topo line:N
  --mutate <m>         none | no-sdf-guard | unfair-fork — deliberately
                       break the algorithm to validate the checker
                       (default none)
  --liveness           recycling workload: every node goes hungry again
                       --think ticks after eating, and starvation is
                       checked directly as a repeated-progress-state
                       lasso (property starvation-lasso)
  --certify            exhaust the extremal schedule space and report the
                       exact worst-case response time as a machine-
                       readable certificate (written to --out if given)
  --witness-out <p>    write the shrunk witness JSON to <p>
  --replay <p>         replay a witness file instead of exploring; any
                       explicitly-passed instance flag that conflicts
                       with the witness is a structured error

scaling benchmark (bench scale):
  --ns <a,b,...>       node-count ladder        (default 1000,2500,5000,10000)
  --steps-per-n <k>    relocation steps per n   (default 20000)
  --out <p>            JSON trajectory path     (default BENCH_scale.json)
  --pairwise-cap <n>   largest n that also runs the O(n^2) reference
                       engine                   (default 2500)

event-core benchmark (bench engine):
  --ns <a,b,...>       node-count ladder        (default 1000,2500,5000,10000)
  --steps-per-n <k>    minimum events per cell  (default 20000; at least
                       50 x n events are always dispatched)
  --out <p>            JSON path                (default BENCH_engine.json)

live runtime (live, bench live):
  --transport <t>      mpsc | udp               (default mpsc)
  --duration <ms>      wall-clock run length    (default 2000)
  --rate <r>           hungry cycles per node-second        (default 25)
  --eat-ms <ms>        eating time per session  (default 2; must fit
                       under the model's tau)
  --oneshot            one hungry cycle per node, stop when everyone ate
  --conformance        after the run, replay its delivery timing in the
                       simulator and check safety + census (needs
                       --oneshot on a fault-free static topology)
  --matrix             run every live algorithm x {clique:5, ring:6}
                       instead of a single cell; nonzero exit on any
                       safety violation
  --victim <node>      crash this node a quarter into the run
  --moves <k>          teleport waypoints pushed by the driver
  --runtime <r>        thread-per-node | sharded    (default thread-per-node;
                       sharded runs every node on a fixed worker pool of
                       contiguous shards with batched cross-shard frames
                       and per-shard ticket ranges merged at export;
                       --reliable is thread-per-node only)
  --workers <n>        sharded: worker-pool size    (default: the machine's
                       parallelism, clamped to 2..16)
  --closed-loop        nodes go hungry again immediately after eating
                       (saturation workload; --rate only staggers the
                       first cycle)
  --out <p>            bench live: JSON path    (default BENCH_live.json)
";

fn parse_alg(s: &str) -> Result<AlgKind, String> {
    AlgKind::extended()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown algorithm '{s}'; try `lme list`"))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid {what} '{s}'"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid {what} '{s}'"))
}

fn parse_pos_f64(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("invalid {what} '{s}'"))?;
    if v <= 0.0 || !v.is_finite() {
        return Err(format!("{what} '{s}' must be a positive number"));
    }
    Ok(v)
}

fn parse_prob(s: &str, what: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("invalid {what} '{s}'"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what} '{s}' must be a probability in [0, 1]"));
    }
    Ok(p)
}

/// Parse a half-open tick window `a..b` with `a < b` (zero start allowed,
/// unlike the eat/think ranges).
fn parse_window(s: &str, what: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("{what} '{s}' must look like 100..900"))?;
    let a = parse_u64(a, what)?;
    let b = parse_u64(b, what)?;
    if b <= a {
        return Err(format!("{what} '{s}' must satisfy a < b"));
    }
    Ok((a, b))
}

fn parse_nodes(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(|id| {
            id.trim()
                .parse()
                .map_err(|_| format!("invalid node id '{id}' in '{s}'"))
        })
        .collect()
}

fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("range '{s}' must look like 10..30"))?;
    let a = parse_u64(a, "range start")?;
    let b = parse_u64(b, "range end")?;
    if a == 0 || b < a {
        return Err(format!("range '{s}' must satisfy 1 ≤ a ≤ b"));
    }
    Ok((a, b))
}

/// Parse a topology spec like `grid:4x5` or `random:24:7`.
pub fn parse_topo(s: &str) -> Result<TopoSpec, String> {
    let mut parts = s.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts
        .next()
        .ok_or_else(|| format!("topology '{s}' needs a size, e.g. line:8"))?;
    let spec = match kind {
        "line" => TopoSpec::Line(parse_usize(arg, "size")?),
        "ring" => TopoSpec::Ring(parse_usize(arg, "size")?),
        "clique" => TopoSpec::Clique(parse_usize(arg, "size")?),
        "star" => TopoSpec::Star(parse_usize(arg, "leaf count")?),
        "tree" => TopoSpec::Tree(parse_usize(arg, "size")?),
        "grid" => {
            let (w, h) = arg
                .split_once('x')
                .ok_or_else(|| format!("grid spec '{arg}' must look like 4x5"))?;
            TopoSpec::Grid(
                parse_usize(w, "grid width")?,
                parse_usize(h, "grid height")?,
            )
        }
        "random" => {
            let n = parse_usize(arg, "size")?;
            let seed = match parts.next() {
                Some(s) => parse_u64(s, "topology seed")?,
                None => 7,
            };
            TopoSpec::Random(n, seed)
        }
        other => return Err(format!("unknown topology kind '{other}'; try `lme list`")),
    };
    if spec.is_empty() {
        return Err("topology must have at least one node".to_string());
    }
    if let Some(extra) = parts.next() {
        if !matches!(spec, TopoSpec::Random(..)) || !extra.is_empty() {
            // random consumed its optional seed above; anything else is junk
            if !matches!(spec, TopoSpec::Random(..)) {
                return Err(format!("trailing topology arguments: '{extra}'"));
            }
        }
    }
    Ok(spec)
}

/// Parse full argv (excluding the binary name is fine too — `list`, `run`
/// or `probe` is located positionally).
///
/// # Errors
///
/// Returns a diagnostic (often including [`USAGE`]) on malformed input.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Cli, String> {
    let mut args: Vec<String> = argv.into_iter().collect();
    if args
        .first()
        .is_some_and(|a| a.ends_with("lme") || a.ends_with("lme.exe"))
    {
        args.remove(0);
    }
    let mut cli = Cli::default();
    let mut it = args.into_iter().peekable();
    let cmd = it
        .next()
        .ok_or_else(|| format!("missing command\n{USAGE}"))?;
    cli.command = match cmd.as_str() {
        "list" => Command::List,
        "run" => Command::Run,
        "probe" => Command::Probe,
        "sweep" => Command::Sweep,
        "chaos" => Command::Chaos,
        "check" => Command::Check,
        "bench" => Command::Bench,
        "live" => Command::Live,
        other => return Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    if cli.command == Command::Bench {
        // `bench` takes a positional mode; `scale` is the default when
        // omitted.
        if it.peek().is_some_and(|a| !a.starts_with("--")) {
            let mode = it.next().expect("peeked");
            cli.bench_mode = match mode.as_str() {
                "scale" => BenchMode::Scale,
                "live" => BenchMode::Live,
                "engine" => BenchMode::Engine,
                "channel" => BenchMode::Channel,
                _ => {
                    return Err(format!(
                        "unknown bench mode '{mode}'; try `lme bench scale`, \
                         `lme bench live`, `lme bench engine`, or `lme bench channel`"
                    ))
                }
            };
        }
    }
    while let Some(flag) = it.next() {
        if flag.starts_with("--") {
            cli.explicit.push(flag.clone());
        }
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--alg" => {
                cli.alg = parse_alg(&value("--alg")?)?;
                cli.algs = vec![cli.alg];
            }
            "--topo" => cli.topo = parse_topo(&value("--topo")?)?,
            "--horizon" => cli.horizon = parse_u64(&value("--horizon")?, "horizon")?,
            "--seed" => cli.seed = parse_u64(&value("--seed")?, "seed")?,
            "--eat" => cli.eat = parse_range(&value("--eat")?)?,
            "--think" => cli.think = parse_range(&value("--think")?)?,
            "--moves" => cli.moves = parse_usize(&value("--moves")?, "move count")?,
            "--mix" => cli.mix = Some(MobilityMix::parse(&value("--mix")?)?),
            "--channel" => cli.channel = ChannelConfig::parse(&value("--channel")?)?,
            "--victim" => {
                cli.victim = Some(parse_u64(&value("--victim")?, "victim")? as u32);
            }
            "--arq" => cli.arq = true,
            "--recover" => {
                cli.recover_at = Some(parse_u64(&value("--recover")?, "recover time")?);
            }
            "--reliable" => cli.reliable = true,
            "--csv" => cli.csv = true,
            "--jobs" => {
                let jobs = parse_usize(&value("--jobs")?, "job count")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                cli.jobs = Some(jobs);
            }
            "--seeds" => {
                cli.seeds = parse_u64(&value("--seeds")?, "seed count")?;
                if cli.seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--metrics-out" => cli.metrics_out = Some(value("--metrics-out")?),
            "--fault-drop" => {
                cli.fault_drop = parse_prob(&value("--fault-drop")?, "drop probability")?;
            }
            "--fault-dup" => {
                cli.fault_dup = parse_prob(&value("--fault-dup")?, "duplication probability")?;
            }
            "--fault-skew" => {
                cli.fault_skew = parse_u64(&value("--fault-skew")?, "skew ticks")?;
            }
            "--fault-delay" => cli.fault_delay = true,
            "--fault-partition" => {
                cli.fault_partition = Some(parse_window(
                    &value("--fault-partition")?,
                    "partition window",
                )?);
            }
            "--fault-targets" => {
                let nodes = parse_nodes(&value("--fault-targets")?)?;
                if nodes.is_empty() {
                    return Err("--fault-targets needs at least one node".to_string());
                }
                cli.fault_targets = Some(nodes);
            }
            "--fault-window" => {
                cli.fault_window = Some(parse_window(&value("--fault-window")?, "fault window")?);
            }
            "--fault-seed" => {
                cli.fault_seed = parse_u64(&value("--fault-seed")?, "fault seed")?;
            }
            "--strategy" => cli.strategy = StrategyKind::parse(&value("--strategy")?)?,
            "--steps" => {
                cli.steps = parse_usize(&value("--steps")?, "step budget")?;
                if cli.steps == 0 {
                    return Err("--steps must be at least 1".to_string());
                }
            }
            "--depth" => cli.depth = parse_usize(&value("--depth")?, "depth bound")?,
            "--nodes" => {
                let n = parse_usize(&value("--nodes")?, "node count")?;
                if n == 0 {
                    return Err("--nodes must be at least 1".to_string());
                }
                cli.topo = TopoSpec::Line(n);
            }
            "--mutate" => cli.mutate = Mutation::parse(&value("--mutate")?)?,
            "--liveness" => cli.liveness = true,
            "--certify" => cli.certify = true,
            "--witness-out" => cli.witness_out = Some(value("--witness-out")?),
            "--replay" => cli.replay_witness = Some(value("--replay")?),
            "--ns" => {
                let ns: Result<Vec<usize>, String> = value("--ns")?
                    .split(',')
                    .map(|s| parse_usize(s.trim(), "node count"))
                    .collect();
                cli.bench_ns = ns?;
                if cli.bench_ns.is_empty() || cli.bench_ns.contains(&0) {
                    return Err("--ns needs at least one positive node count".to_string());
                }
            }
            "--steps-per-n" => {
                cli.bench_steps = parse_usize(&value("--steps-per-n")?, "step count")?;
                if cli.bench_steps == 0 {
                    return Err("--steps-per-n must be at least 1".to_string());
                }
            }
            "--out" => cli.bench_out = Some(value("--out")?),
            "--pairwise-cap" => {
                cli.bench_pairwise_cap = parse_usize(&value("--pairwise-cap")?, "pairwise cap")?;
            }
            "--transport" => cli.transport = TransportKind::parse(&value("--transport")?)?,
            "--duration" => {
                cli.duration_ms = parse_u64(&value("--duration")?, "duration")?;
                if cli.duration_ms == 0 {
                    return Err("--duration must be at least 1 ms".to_string());
                }
            }
            "--rate" => cli.rate = parse_pos_f64(&value("--rate")?, "rate")?,
            "--eat-ms" => {
                cli.eat_ms = parse_u64(&value("--eat-ms")?, "eating time")?;
                if cli.eat_ms == 0 {
                    return Err("--eat-ms must be at least 1 ms".to_string());
                }
            }
            "--oneshot" => cli.one_shot = true,
            "--conformance" => cli.conformance = true,
            "--matrix" => cli.matrix = true,
            "--runtime" => cli.runtime = LiveRuntime::parse(&value("--runtime")?)?,
            "--workers" => {
                let workers = parse_usize(&value("--workers")?, "worker count")?;
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                cli.workers = Some(workers);
            }
            "--closed-loop" => cli.closed_loop = true,
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if (cli.liveness || cli.certify) && cli.command != Command::Check {
        return Err("--liveness and --certify only apply to `lme check`".to_string());
    }
    if cli.certify {
        if cli.liveness {
            return Err(
                "--certify measures one hungry cycle per node; the recycling \
                 --liveness workload never quiesces"
                    .to_string(),
            );
        }
        if cli.strategy != StrategyKind::Dfs {
            return Err("--certify exhausts the schedule space; --strategy does not apply".into());
        }
        if cli.replay_witness.is_some() {
            return Err("--certify and --replay are mutually exclusive".to_string());
        }
    }
    if (cli.moves > 0 || cli.mix.is_some()) && cli.topo.is_explicit() {
        return Err("star/tree topologies are explicit graphs: movement is not supported".into());
    }
    if let Some(v) = cli.victim {
        if v as usize >= cli.topo.len() {
            return Err(format!(
                "victim {v} out of range for a {}-node topology",
                cli.topo.len()
            ));
        }
    }
    if cli.recover_at.is_some() && cli.victim.is_none() {
        return Err("--recover needs --victim (the node that crashes)".to_string());
    }
    if cli.recover_at.is_some() && cli.command == Command::Probe {
        return Err("probe crashes the victim mid-CS for good; --recover is not supported".into());
    }
    if cli.fault_partition.is_some() && cli.fault_targets.is_none() {
        return Err("--fault-partition needs --fault-targets (the side to cut off)".to_string());
    }
    if let Some(targets) = &cli.fault_targets {
        let n = cli.topo.len();
        if let Some(&bad) = targets.iter().find(|&&t| t as usize >= n) {
            return Err(format!(
                "fault target {bad} out of range for a {n}-node topology"
            ));
        }
        if cli.fault_partition.is_some() && targets.len() >= n {
            return Err("a partition side must leave at least one node outside".to_string());
        }
    }
    if cli.workers.is_some() && matches!(cli.runtime, LiveRuntime::ThreadPerNode) {
        return Err("--workers sizes the sharded worker pool; pass --runtime sharded".to_string());
    }
    if cli.command == Command::Live {
        if cli.topo.is_explicit() {
            return Err(
                "live runs need a geometric topology (the driver owns positions)".to_string(),
            );
        }
        if cli.conformance {
            if !cli.one_shot {
                return Err("--conformance needs --oneshot (see `lme list`)".to_string());
            }
            if cli.victim.is_some() || cli.moves > 0 {
                return Err(
                    "--conformance needs a fault-free, static run (drop --victim/--moves)"
                        .to_string(),
                );
            }
        }
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn parses_run_with_defaults() {
        let cli = parse(argv("run")).unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.alg, AlgKind::A2);
        assert_eq!(cli.topo, TopoSpec::Line(8));
    }

    #[test]
    fn parses_full_flag_set() {
        let cli = parse(argv(
            "run --alg a1-linial --topo grid:4x5 --horizon 9000 --seed 3 \
             --eat 5..9 --think 11..20 --moves 4 --csv",
        ))
        .unwrap();
        assert_eq!(cli.alg, AlgKind::A1Linial);
        assert_eq!(cli.topo, TopoSpec::Grid(4, 5));
        assert_eq!(cli.topo.len(), 20);
        assert_eq!(cli.horizon, 9000);
        assert_eq!(cli.seed, 3);
        assert_eq!(cli.eat, (5, 9));
        assert_eq!(cli.think, (11, 20));
        assert_eq!(cli.moves, 4);
        assert!(cli.csv);
    }

    #[test]
    fn parses_every_topology_kind() {
        assert_eq!(parse_topo("line:3").unwrap(), TopoSpec::Line(3));
        assert_eq!(parse_topo("ring:9").unwrap(), TopoSpec::Ring(9));
        assert_eq!(parse_topo("clique:4").unwrap(), TopoSpec::Clique(4));
        assert_eq!(parse_topo("random:24:9").unwrap(), TopoSpec::Random(24, 9));
        assert_eq!(parse_topo("random:24").unwrap(), TopoSpec::Random(24, 7));
        assert_eq!(parse_topo("star:6").unwrap(), TopoSpec::Star(6));
        assert_eq!(parse_topo("tree:15").unwrap(), TopoSpec::Tree(15));
    }

    #[test]
    fn parses_sweep_flags() {
        let cli = parse(argv(
            "sweep --topo line:6 --seeds 12 --jobs 3 --metrics-out m.jsonl",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Sweep);
        assert_eq!(cli.seeds, 12);
        assert_eq!(cli.jobs, Some(3));
        assert_eq!(cli.metrics_out.as_deref(), Some("m.jsonl"));
        // No --alg: the sweep compares the whole Table 1 field.
        assert_eq!(cli.algs, AlgKind::all().to_vec());
        let one = parse(argv("sweep --alg a2")).unwrap();
        assert_eq!(one.algs, vec![AlgKind::A2]);
    }

    #[test]
    fn topo_specs_display_round_trip() {
        for s in [
            "line:3",
            "ring:9",
            "grid:4x5",
            "clique:4",
            "random:24:9",
            "star:6",
            "tree:15",
        ] {
            assert_eq!(parse_topo(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(argv("bogus")).is_err());
        assert!(parse(argv("sweep --jobs 0")).is_err());
        assert!(parse(argv("sweep --seeds 0")).is_err());
        assert!(parse(argv("sweep --metrics-out")).is_err());
        assert!(parse(argv("run --alg nope")).is_err());
        assert!(parse(argv("run --topo blob:3")).is_err());
        assert!(parse(argv("run --topo grid:4")).is_err());
        assert!(parse(argv("run --eat 30..10")).is_err());
        assert!(parse(argv("run --eat 0..10")).is_err());
        assert!(parse(argv("run --horizon")).is_err());
        assert!(parse(argv("run --topo star:4 --moves 2")).is_err());
        assert!(parse(argv("probe --topo line:5 --victim 9")).is_err());
    }

    #[test]
    fn parses_reliability_flags() {
        let cli = parse(argv("run --topo line:5 --arq --victim 2 --recover 5000")).unwrap();
        assert!(cli.arq);
        assert_eq!(cli.victim, Some(2));
        assert_eq!(cli.recover_at, Some(5000));
        assert!(!cli.reliable);
        let live = parse(argv(
            "live --topo ring:6 --reliable --victim 1 --recover 800",
        ))
        .unwrap();
        assert!(live.reliable);
        assert_eq!(live.recover_at, Some(800));
        assert!(parse(argv("run --topo line:5 --recover 5000")).is_err()); // no victim
        assert!(parse(argv("probe --topo line:5 --victim 2 --recover 5000")).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let cli = parse(argv(
            "run --topo line:6 --fault-drop 0.25 --fault-dup 0.1 --fault-skew 40 \
             --fault-delay --fault-partition 100..900 --fault-targets 2,3 \
             --fault-window 50..5000 --fault-seed 99",
        ))
        .unwrap();
        assert_eq!(cli.fault_drop, 0.25);
        assert_eq!(cli.fault_dup, 0.1);
        assert_eq!(cli.fault_skew, 40);
        assert!(cli.fault_delay);
        assert_eq!(cli.fault_partition, Some((100, 900)));
        assert_eq!(cli.fault_targets, Some(vec![2, 3]));
        assert_eq!(cli.fault_window, Some((50, 5000)));
        assert_eq!(cli.fault_seed, 99);
        let chaos = parse(argv("chaos --topo line:9 --seeds 4")).unwrap();
        assert_eq!(chaos.command, Command::Chaos);
    }

    #[test]
    fn rejects_malformed_fault_flags() {
        assert!(parse(argv("run --fault-drop 1.5")).is_err());
        assert!(parse(argv("run --fault-drop -0.1")).is_err());
        assert!(parse(argv("run --fault-window 10..10")).is_err());
        assert!(parse(argv("run --fault-partition 100..900")).is_err()); // no targets
        assert!(parse(argv("run --topo line:4 --fault-targets 9")).is_err());
        assert!(parse(argv(
            "run --topo line:3 --fault-partition 1..2 --fault-targets 0,1,2"
        ))
        .is_err()); // nobody left outside the cut
        assert!(parse(argv("run --fault-targets")).is_err());
    }

    #[test]
    fn parses_check_flags() {
        let cli = parse(argv(
            "check --alg a1-greedy --strategy pct --steps 99 --depth 7 \
             --nodes 4 --mutate no-sdf-guard --witness-out w.json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Check);
        assert_eq!(cli.strategy, StrategyKind::Pct);
        assert_eq!(cli.steps, 99);
        assert_eq!(cli.depth, 7);
        assert_eq!(cli.topo, TopoSpec::Line(4));
        assert_eq!(cli.mutate, Mutation::NoSdfGuard);
        assert_eq!(cli.witness_out.as_deref(), Some("w.json"));
        let replay = parse(argv("check --replay w.json")).unwrap();
        assert_eq!(replay.replay_witness.as_deref(), Some("w.json"));
    }

    #[test]
    fn rejects_malformed_check_flags() {
        assert!(parse(argv("check --strategy bfs")).is_err());
        assert!(parse(argv("check --steps 0")).is_err());
        assert!(parse(argv("check --nodes 0")).is_err());
        assert!(parse(argv("check --mutate frobnicate")).is_err());
        assert!(parse(argv("check --witness-out")).is_err());
    }

    #[test]
    fn parses_bench_flags() {
        let cli = parse(argv(
            "bench scale --ns 100,200 --steps-per-n 500 --out b.json --pairwise-cap 150",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Bench);
        assert_eq!(cli.bench_mode, BenchMode::Scale);
        assert_eq!(cli.bench_ns, vec![100, 200]);
        assert_eq!(cli.bench_steps, 500);
        assert_eq!(cli.bench_out.as_deref(), Some("b.json"));
        assert_eq!(cli.bench_pairwise_cap, 150);
        // The mode word is optional (scale is the default).
        let default = parse(argv("bench")).unwrap();
        assert_eq!(default.command, Command::Bench);
        assert_eq!(default.bench_mode, BenchMode::Scale);
        assert_eq!(default.bench_ns, vec![1_000, 2_500, 5_000, 10_000]);
        assert_eq!(default.bench_out, None);
        let engine = parse(argv("bench engine --ns 50 --steps-per-n 2000 --out e.json")).unwrap();
        assert_eq!(engine.bench_mode, BenchMode::Engine);
        assert_eq!(engine.bench_ns, vec![50]);
        assert_eq!(engine.bench_steps, 2000);
        assert_eq!(engine.bench_out.as_deref(), Some("e.json"));
    }

    #[test]
    fn parses_channel_and_mix_flags() {
        let cli = parse(argv("run --topo ring:6 --channel bandwidth:3:16")).unwrap();
        assert_eq!(
            cli.channel,
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 3,
                max_queue: 16
            }
        );
        let cli = parse(argv("sweep --topo line:8 --mix 0.5:0.25")).unwrap();
        let mix = cli.mix.expect("mix parsed");
        assert_eq!(mix.static_frac, 0.5);
        assert_eq!(mix.highway_frac, 0.25);
        // Default stays the historical i.i.d. draw.
        assert_eq!(parse(argv("run")).unwrap().channel, ChannelConfig::Iid);
        assert!(parse(argv("run")).unwrap().mix.is_none());
        let bench = parse(argv("bench channel --out c.json")).unwrap();
        assert_eq!(bench.bench_mode, BenchMode::Channel);
        assert_eq!(bench.bench_out.as_deref(), Some("c.json"));
    }

    #[test]
    fn rejects_malformed_channel_and_mix_flags() {
        assert!(parse(argv("run --channel warp")).is_err());
        assert!(parse(argv("run --channel bandwidth:0")).is_err());
        assert!(parse(argv("run --channel gilbert:2:0.5")).is_err());
        assert!(parse(argv("run --mix 0.7:0.7")).is_err());
        assert!(parse(argv("run --topo star:4 --mix 0.4:0.3")).is_err());
        assert!(parse(argv("run --channel")).is_err());
    }

    #[test]
    fn rejects_malformed_bench_flags() {
        assert!(parse(argv("bench warp")).is_err());
        assert!(parse(argv("bench engine --ns 0")).is_err());
        assert!(parse(argv("bench engine --steps-per-n 0")).is_err());
        assert!(parse(argv("bench scale --ns")).is_err());
        assert!(parse(argv("bench scale --ns 0")).is_err());
        assert!(parse(argv("bench scale --ns 10,x")).is_err());
        assert!(parse(argv("bench scale --steps-per-n 0")).is_err());
    }

    #[test]
    fn parses_live_flags() {
        let cli = parse(argv(
            "live --transport udp --alg a1-greedy --topo ring:6 --duration 500 \
             --rate 40 --eat-ms 1 --oneshot --conformance --seed 9",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Live);
        assert_eq!(cli.transport, TransportKind::Udp);
        assert_eq!(cli.alg, AlgKind::A1Greedy);
        assert_eq!(cli.topo, TopoSpec::Ring(6));
        assert_eq!(cli.duration_ms, 500);
        assert_eq!(cli.rate, 40.0);
        assert_eq!(cli.eat_ms, 1);
        assert!(cli.one_shot && cli.conformance);
        assert_eq!(cli.seed, 9);
        let matrix = parse(argv("live --matrix --duration 250")).unwrap();
        assert!(matrix.matrix);
        let bench = parse(argv("bench live --duration 300 --rate 50")).unwrap();
        assert_eq!(bench.command, Command::Bench);
        assert_eq!(bench.bench_mode, BenchMode::Live);
        assert_eq!(bench.duration_ms, 300);
    }

    #[test]
    fn parses_runtime_flags() {
        let cli = parse(argv("live --runtime sharded --workers 4 --closed-loop")).unwrap();
        assert!(matches!(cli.runtime, LiveRuntime::Sharded { .. }));
        assert_eq!(cli.workers, Some(4));
        assert!(cli.closed_loop);
        let default = parse(argv("live")).unwrap();
        assert!(matches!(default.runtime, LiveRuntime::ThreadPerNode));
        assert_eq!(default.workers, None);
        assert!(!default.closed_loop);
        let bench = parse(argv("bench live --runtime sharded --workers 2")).unwrap();
        assert!(matches!(bench.runtime, LiveRuntime::Sharded { .. }));
    }

    #[test]
    fn rejects_malformed_live_flags() {
        assert!(parse(argv("live --transport tcp")).is_err());
        assert!(parse(argv("live --runtime fibers")).is_err());
        assert!(parse(argv("live --workers 0 --runtime sharded")).is_err());
        assert!(parse(argv("live --workers 4")).is_err()); // needs --runtime sharded
        assert!(parse(argv("live --duration 0")).is_err());
        assert!(parse(argv("live --rate 0")).is_err());
        assert!(parse(argv("live --rate -3")).is_err());
        assert!(parse(argv("live --eat-ms 0")).is_err());
        assert!(parse(argv("live --topo star:4")).is_err());
        assert!(parse(argv("live --conformance")).is_err()); // needs --oneshot
        assert!(parse(argv("live --conformance --oneshot --victim 0")).is_err());
        assert!(parse(argv("live --conformance --oneshot --moves 2")).is_err());
    }

    #[test]
    fn every_algorithm_name_round_trips() {
        for k in AlgKind::extended() {
            assert_eq!(parse_alg(k.name()).unwrap(), k);
        }
    }
}
