//! Command execution: turn a parsed [`Cli`] into a run and render the
//! report.

use harness::{
    crash_probe, run_algorithm, run_algorithm_graph, stats::jain_index, topology, AlgKind,
    RunOutcome, RunSpec, Table, WaypointPlan,
};
use manet_sim::{NodeId, SimConfig, SimTime};

use crate::args::{Cli, Command, TopoSpec, USAGE};

fn spec_of(cli: &Cli) -> RunSpec {
    RunSpec {
        sim: SimConfig {
            seed: cli.seed,
            ..SimConfig::default()
        },
        horizon: cli.horizon,
        eat: cli.eat.0..=cli.eat.1,
        think: cli.think.0..=cli.think.1,
        ..RunSpec::default()
    }
}

fn run_outcome(cli: &Cli, spec: &RunSpec) -> RunOutcome {
    match cli.topo {
        TopoSpec::Star(leaves) => {
            let (n, edges) = topology::star_edges(leaves);
            run_algorithm_graph(cli.alg, spec, n, &edges, &[])
        }
        TopoSpec::Tree(n) => {
            let (n, edges) = topology::binary_tree_edges(n);
            run_algorithm_graph(cli.alg, spec, n, &edges, &[])
        }
        ref geo => {
            let positions = match *geo {
                TopoSpec::Line(n) => topology::line(n),
                TopoSpec::Ring(n) => topology::ring(n),
                TopoSpec::Grid(w, h) => topology::grid(w, h),
                TopoSpec::Clique(n) => topology::clique(n),
                TopoSpec::Random(n, seed) => topology::random_connected(n, seed),
                TopoSpec::Star(_) | TopoSpec::Tree(_) => unreachable!("handled above"),
            };
            let commands = if cli.moves > 0 {
                WaypointPlan {
                    area_side: (positions.len() as f64 / 1.6).sqrt().max(2.0),
                    moves: cli.moves,
                    window: (cli.horizon / 10, cli.horizon * 9 / 10),
                    speed: Some(0.25),
                    seed: cli.seed ^ 0xB0B,
                }
                .commands(positions.len())
            } else {
                Vec::new()
            };
            run_algorithm(cli.alg, spec, &positions, &commands)
        }
    }
}

fn render_run(cli: &Cli, out: &RunOutcome) -> String {
    if cli.csv {
        let mut t = Table::new(&["node", "hungry_at", "eat_at", "response", "moved"]);
        for s in &out.metrics.samples {
            t.row([
                s.node.0.to_string(),
                s.hungry_at.to_string(),
                s.eat_at.to_string(),
                s.response().to_string(),
                s.moved.to_string(),
            ]);
        }
        return t.to_csv();
    }
    let mut report = String::new();
    report.push_str(&format!(
        "{} on {:?} (n = {}), horizon {}, seed {}\n",
        cli.alg.name(),
        cli.topo,
        cli.topo.len(),
        cli.horizon,
        cli.seed
    ));
    report.push_str(&format!(
        "  safety violations : {}\n",
        out.violations.len()
    ));
    report.push_str(&format!("  total meals       : {}\n", out.total_meals()));
    report.push_str(&format!(
        "  meals fairness    : {:.3} (Jain index)\n",
        jain_index(&out.metrics.meals)
    ));
    report.push_str(&format!("  response (static) : {}\n", out.static_summary()));
    report.push_str(&format!("  response (all)    : {}\n", out.all_summary()));
    report.push_str(&format!(
        "  messages          : {} ({:.1} per meal)\n",
        out.messages_sent,
        out.messages_per_meal()
    ));
    let starving = out.metrics.starving_since(SimTime(cli.horizon / 2));
    if starving.is_empty() {
        report.push_str("  starvation        : none\n");
    } else {
        report.push_str(&format!("  starvation        : {starving:?}\n"));
    }
    report
}

fn render_probe(cli: &Cli) -> Result<String, String> {
    let spec = spec_of(cli);
    if cli.topo.is_explicit() {
        return Err("probe currently supports geometric topologies only".into());
    }
    let positions = match cli.topo {
        TopoSpec::Line(n) => topology::line(n),
        TopoSpec::Ring(n) => topology::ring(n),
        TopoSpec::Grid(w, h) => topology::grid(w, h),
        TopoSpec::Clique(n) => topology::clique(n),
        TopoSpec::Random(n, seed) => topology::random_connected(n, seed),
        TopoSpec::Star(_) | TopoSpec::Tree(_) => unreachable!("checked above"),
    };
    let victim = NodeId(cli.victim.unwrap_or(cli.topo.len() as u32 / 2));
    let report = crash_probe(cli.alg, &spec, &positions, victim, spec.horizon / 20);
    let mut s = String::new();
    s.push_str(&format!(
        "crash probe: {} on {:?}, victim {victim} crashed mid-CS\n",
        cli.alg.name(),
        cli.topo
    ));
    s.push_str(&format!(
        "  crash fired at    : {}\n",
        report
            .outcome
            .crash_time
            .map_or("never (victim never ate)".to_string(), |t| t.to_string())
    ));
    s.push_str(&format!(
        "  safety violations : {}\n",
        report.outcome.violations.len()
    ));
    match report.locality {
        None => s.push_str("  starvation        : none observed\n"),
        Some(m) => {
            s.push_str(&format!(
                "  starving nodes    : {:?}\n",
                report.starving
            ));
            s.push_str(&format!("  empirical locality: {m}\n"));
        }
    }
    Ok(s)
}

/// Execute a parsed command and return the rendered report.
///
/// # Errors
///
/// Returns a diagnostic on unsupported combinations.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command {
        Command::List => {
            let mut s = String::from("algorithms:\n");
            for k in AlgKind::extended() {
                s.push_str(&format!(
                    "  {:<14} FL {:<22} RT {}\n",
                    k.name(),
                    k.paper_failure_locality(),
                    k.paper_response_time()
                ));
            }
            s.push('\n');
            s.push_str(USAGE);
            Ok(s)
        }
        Command::Run => {
            let spec = spec_of(cli);
            let out = run_outcome(cli, &spec);
            Ok(render_run(cli, &out))
        }
        Command::Probe => render_probe(cli),
    }
}

#[cfg(test)]
mod tests {
    use crate::run_cli;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn list_shows_all_algorithms() {
        let out = run_cli(argv("list")).unwrap();
        for name in ["a1-greedy", "a1-linial", "a1-random", "a2", "chandy-misra", "choy-singh"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn run_reports_liveness_on_a_line() {
        let out = run_cli(argv("run --alg a2 --topo line:5 --horizon 15000")).unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
        assert!(out.contains("starvation        : none"), "{out}");
    }

    #[test]
    fn run_supports_explicit_stars() {
        let out = run_cli(argv("run --alg a1-greedy --topo star:6 --horizon 15000")).unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
    }

    #[test]
    fn run_csv_emits_samples() {
        let out = run_cli(argv("run --alg a2 --topo line:3 --horizon 5000 --csv")).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("node,hungry_at,eat_at,response,moved"));
        assert!(lines.count() > 10);
    }

    #[test]
    fn probe_reports_locality() {
        let out = run_cli(argv("probe --alg chandy-misra --topo line:9 --horizon 30000")).unwrap();
        assert!(out.contains("crash probe"), "{out}");
        assert!(out.contains("crash fired at"), "{out}");
    }

    #[test]
    fn mobile_run_stays_safe() {
        let out =
            run_cli(argv("run --alg a1-linial --topo random:12:3 --moves 4 --horizon 12000"))
                .unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
    }
}
