//! Command execution: turn a parsed [`Cli`] into a run and render the
//! report.

use harness::{
    crash_probe, default_jobs, run_algorithm, run_algorithm_graph, run_cells, stats::jain_index,
    topology, AlgKind, FaultClass, Job, MobilityMix, RunOutcome, RunReport, RunSpec, Summary,
    SweepCell, SweepReport, SweepSpec, Table, Topo, WaypointPlan,
};
use lme_check::{
    certify, explore, replay, CertifyConfig, CheckSpec, ExploreConfig, StrategyKind, Witness,
};
use lme_net::{conformance_replay, run_live, LiveAlg, LiveConfig, LiveOutcome, LiveRuntime};
use manet_sim::{
    ArqConfig, ChannelConfig, Context, CrashWave, DelayAdversary, DiningState, Engine, Event,
    EventQueueKind, FaultPlan, LinkEngine, LinkFaults, NodeId, PartitionWindow, Position, Protocol,
    SimConfig, SimRng, SimTime, World,
};

use crate::args::{BenchMode, Cli, Command, TopoSpec, USAGE};

fn spec_of(cli: &Cli) -> Result<RunSpec, String> {
    Ok(RunSpec {
        sim: SimConfig {
            seed: cli.seed,
            fault: fault_plan_of(cli)?,
            arq: cli.arq.then(ArqConfig::default),
            channel: cli.channel.clone(),
            ..SimConfig::default()
        },
        horizon: cli.horizon,
        eat: cli.eat.0..=cli.eat.1,
        think: cli.think.0..=cli.think.1,
        ..RunSpec::default()
    })
}

/// Assemble the [`FaultPlan`] the `--fault-*` flags describe (empty when
/// none were given).
fn fault_plan_of(cli: &Cli) -> Result<FaultPlan, String> {
    let targets: Option<Vec<NodeId>> = cli
        .fault_targets
        .as_ref()
        .map(|ts| ts.iter().map(|&t| NodeId(t)).collect());
    let mut plan = FaultPlan {
        seed: cli.fault_seed,
        ..FaultPlan::default()
    };
    if cli.fault_drop > 0.0 || cli.fault_dup > 0.0 || cli.fault_skew > 0 {
        plan.link = Some(LinkFaults {
            drop: cli.fault_drop,
            duplicate: cli.fault_dup,
            skew: if cli.fault_skew > 0 { 1.0 } else { 0.0 },
            skew_ticks: cli.fault_skew,
            window: cli.fault_window,
            targets: targets.clone(),
            ..LinkFaults::default()
        });
    }
    if cli.fault_delay {
        let adversary_targets = targets
            .clone()
            .unwrap_or_else(|| (0..cli.topo.len() as u32).map(NodeId).collect());
        plan.max_delay = Some(DelayAdversary {
            targets: adversary_targets,
            window: cli.fault_window,
        });
    }
    if let Some((at, heal_at)) = cli.fault_partition {
        let side = targets.ok_or("--fault-partition needs --fault-targets")?;
        plan.partitions = vec![PartitionWindow {
            at,
            side,
            heal_after: heal_at - at,
        }];
    }
    if let Some(at) = cli.recover_at {
        // `live` interprets --recover itself (in ms); here it is a tick
        // against the sim fault plan: crash --victim at horizon/4,
        // restart it as a fresh incarnation at the given tick.
        let victim = cli.victim.ok_or("--recover needs --victim")?;
        let crash_at = (cli.horizon / 4).max(1);
        if at <= crash_at {
            return Err(format!(
                "--recover {at} must come after the crash at tick {crash_at} (horizon/4)"
            ));
        }
        plan.crash_waves.push(CrashWave {
            at: crash_at,
            nodes: vec![NodeId(victim)],
        });
        plan.recovers.push(CrashWave {
            at,
            nodes: vec![NodeId(victim)],
        });
    }
    plan.validate(cli.topo.len())
        .map_err(|e| format!("invalid fault plan: {e}"))?;
    Ok(plan)
}

fn geo_positions(topo: &TopoSpec) -> Vec<(f64, f64)> {
    match *topo {
        TopoSpec::Line(n) => topology::line(n),
        TopoSpec::Ring(n) => topology::ring(n),
        TopoSpec::Grid(w, h) => topology::grid(w, h),
        TopoSpec::Clique(n) => topology::clique(n),
        TopoSpec::Random(n, seed) => topology::random_connected(n, seed),
        TopoSpec::Star(_) | TopoSpec::Tree(_) => unreachable!("explicit graphs have no geometry"),
    }
}

fn waypoint_plan(cli: &Cli, n: usize) -> WaypointPlan {
    WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt().max(2.0),
        moves: cli.moves,
        window: (cli.horizon / 10, cli.horizon * 9 / 10),
        speed: Some(0.25),
        seed: cli.seed ^ 0xB0B,
    }
}

/// Ground a parsed `--mix` (class fractions only) in this run's geometry:
/// same area, window, and seed derivation as [`waypoint_plan`].
fn mobility_mix_of(cli: &Cli, mix: &MobilityMix, n: usize) -> MobilityMix {
    MobilityMix {
        area_side: (n as f64 / 1.6).sqrt().max(2.0),
        window: (cli.horizon / 10, cli.horizon * 9 / 10),
        seed: cli.seed ^ 0xB0B,
        ..mix.clone()
    }
}

/// Write the JSONL metrics file when `--metrics-out` was given.
fn emit_metrics(cli: &Cli, report: &SweepReport) -> Result<(), String> {
    if let Some(path) = &cli.metrics_out {
        report
            .write_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    }
    Ok(())
}

fn run_outcome(cli: &Cli, spec: &RunSpec) -> RunOutcome {
    match cli.topo {
        TopoSpec::Star(leaves) => {
            let (n, edges) = topology::star_edges(leaves);
            run_algorithm_graph(cli.alg, spec, n, &edges, &[])
        }
        TopoSpec::Tree(n) => {
            let (n, edges) = topology::binary_tree_edges(n);
            run_algorithm_graph(cli.alg, spec, n, &edges, &[])
        }
        ref geo => {
            let positions = geo_positions(geo);
            let n = positions.len();
            let commands = if let Some(mix) = &cli.mix {
                mobility_mix_of(cli, mix, n).commands(n)
            } else if cli.moves > 0 {
                waypoint_plan(cli, n).commands(n)
            } else {
                Vec::new()
            };
            run_algorithm(cli.alg, spec, &positions, &commands)
        }
    }
}

fn render_run(cli: &Cli, out: &RunOutcome) -> String {
    if cli.csv {
        let mut t = Table::new(&["node", "hungry_at", "eat_at", "response", "moved", "msgs"]);
        for s in &out.metrics.samples {
            t.row([
                s.node.0.to_string(),
                s.hungry_at.to_string(),
                s.eat_at.to_string(),
                s.response().to_string(),
                s.moved.to_string(),
                s.msgs.to_string(),
            ]);
        }
        return t.to_csv();
    }
    let mut report = String::new();
    report.push_str(&format!(
        "{} on {:?} (n = {}), horizon {}, seed {}\n",
        cli.alg.name(),
        cli.topo,
        cli.topo.len(),
        cli.horizon,
        cli.seed
    ));
    report.push_str(&format!("  safety violations : {}\n", out.violations.len()));
    report.push_str(&format!("  total meals       : {}\n", out.total_meals()));
    report.push_str(&format!(
        "  meals fairness    : {:.3} (Jain index)\n",
        jain_index(&out.metrics.meals)
    ));
    report.push_str(&format!("  response (static) : {}\n", out.static_summary()));
    report.push_str(&format!("  response (all)    : {}\n", out.all_summary()));
    report.push_str(&format!(
        "  messages          : {} ({:.1} per meal)\n",
        out.messages_sent,
        out.messages_per_meal()
    ));
    if cli.arq {
        report.push_str(&format!(
            "  arq shim          : {} retransmissions, {} acks, buffer high water {}\n",
            out.stats.shim.retransmissions,
            out.stats.shim.acks_sent,
            out.stats.shim.buffer_high_water
        ));
    }
    if out.stats.faults.recoveries > 0 {
        report.push_str(&format!(
            "  recoveries        : {}\n",
            out.stats.faults.recoveries
        ));
    }
    let starving = out.metrics.starving_since(SimTime(cli.horizon / 2));
    if starving.is_empty() {
        report.push_str("  starvation        : none\n");
    } else {
        report.push_str(&format!("  starvation        : {starving:?}\n"));
    }
    report
}

fn render_probe(cli: &Cli) -> Result<String, String> {
    let spec = spec_of(cli)?;
    if cli.topo.is_explicit() {
        return Err("probe currently supports geometric topologies only".into());
    }
    let positions = geo_positions(&cli.topo);
    let victim = NodeId(cli.victim.unwrap_or(cli.topo.len() as u32 / 2));
    let report = crash_probe(cli.alg, &spec, &positions, victim, spec.horizon / 20);
    emit_metrics(
        cli,
        &SweepReport {
            runs: vec![RunReport::from_outcome(
                &cli.topo.to_string(),
                cli.alg.name(),
                cli.seed,
                spec.horizon,
                &report.outcome,
                Some((report.starving.len(), report.locality)),
            )],
        },
    )?;
    let mut s = String::new();
    s.push_str(&format!(
        "crash probe: {} on {:?}, victim {victim} crashed mid-CS\n",
        cli.alg.name(),
        cli.topo
    ));
    s.push_str(&format!(
        "  crash fired at    : {}\n",
        report
            .outcome
            .crash_time
            .map_or("never (victim never ate)".to_string(), |t| t.to_string())
    ));
    s.push_str(&format!(
        "  safety violations : {}\n",
        report.outcome.violations.len()
    ));
    match report.locality {
        None => s.push_str("  starvation        : none observed\n"),
        Some(m) => {
            s.push_str(&format!("  starving nodes    : {:?}\n", report.starving));
            s.push_str(&format!("  empirical locality: {m}\n"));
        }
    }
    Ok(s)
}

fn topo_of(cli: &Cli) -> Topo {
    match cli.topo {
        TopoSpec::Star(leaves) => {
            let (n, edges) = topology::star_edges(leaves);
            Topo::Graph { n, edges }
        }
        TopoSpec::Tree(n) => {
            let (n, edges) = topology::binary_tree_edges(n);
            Topo::Graph { n, edges }
        }
        ref geo => Topo::Geo(geo_positions(geo)),
    }
}

fn render_sweep(cli: &Cli) -> Result<String, String> {
    let base = spec_of(cli)?;
    let topo = topo_of(cli);
    let n = topo.len();
    let mut sweep = SweepSpec::new(cli.topo.to_string(), topo, base)
        .kinds(cli.algs.iter().copied())
        .seed_range(cli.seed, cli.seeds);
    if let Some(mix) = &cli.mix {
        sweep = sweep.mix(mobility_mix_of(cli, mix, n));
    } else if cli.moves > 0 {
        sweep = sweep.moves(waypoint_plan(cli, n));
    }
    let jobs = cli.jobs.unwrap_or_else(default_jobs);
    let report = sweep.run(jobs);
    emit_metrics(cli, &report)?;

    let mut s = format!(
        "sweep: {} on {} (n = {}), seeds {}..{}, horizon {}, {} jobs\n",
        if cli.algs.len() == 1 {
            cli.algs[0].name()
        } else {
            "all algorithms"
        },
        cli.topo,
        n,
        cli.seed,
        cli.seed + cli.seeds,
        cli.horizon,
        jobs,
    );
    let mut table = Table::new(&[
        "algorithm",
        "runs",
        "static p50/p95/max",
        "meals",
        "msg/meal",
        "dropped send/flight",
        "unsafe",
    ]);
    for row in report.aggregate() {
        table.row([
            row.alg.to_string(),
            row.runs.to_string(),
            format!(
                "{}/{}/{}",
                row.rt_static.p50, row.rt_static.p95, row.rt_static.max
            ),
            row.meals.to_string(),
            format!("{:.1}", row.messages_per_meal()),
            format!("{}/{}", row.dropped_at_send, row.dropped_in_flight),
            row.violations.to_string(),
        ]);
    }
    s.push_str(&table.to_string());
    if let Some(path) = &cli.metrics_out {
        s.push_str(&format!("per-run metrics written to {path}\n"));
    }
    Ok(s)
}

/// The fixed fault matrix the `chaos` subcommand sweeps: one column per
/// fault class, crash and crash→recover first (matching the paper's fault
/// model), then the out-of-model link faults, then partition and the
/// ν-adversary. Sustained loss and burst loss run with the ARQ shim
/// armed — they are the classes whose liveness depends on reliable
/// delivery (burst loss rides the Gilbert–Elliott channel model rather
/// than a fault plan).
const CHAOS_CLASSES: [FaultClass; 8] = [
    FaultClass::Crash,
    FaultClass::Recover,
    FaultClass::Loss(0.3),
    FaultClass::SustainedLoss(0.3),
    FaultClass::BurstLoss,
    FaultClass::Duplication(0.3),
    FaultClass::Partition,
    FaultClass::MaxDelay,
];

fn render_chaos(cli: &Cli) -> Result<String, String> {
    if !fault_plan_of(cli)?.is_empty() {
        return Err("chaos builds its own fault schedule; drop the --fault-* flags".to_string());
    }
    if !cli.channel.is_iid() {
        return Err(
            "chaos owns the channel (burst-loss runs Gilbert–Elliott); drop --channel".to_string(),
        );
    }
    let topo = topo_of(cli);
    let n = topo.len();
    if n < 2 {
        return Err("chaos needs at least two nodes".to_string());
    }
    let victim = NodeId(cli.victim.unwrap_or(n as u32 / 2));
    let fault_at = (cli.horizon / 20).max(1);
    let quiesce = fault_at + (cli.horizon - fault_at) / 2;
    let mut cells = Vec::with_capacity(CHAOS_CLASSES.len() * cli.seeds as usize);
    for &class in &CHAOS_CLASSES {
        for seed in cli.seed..cli.seed + cli.seeds {
            let mut spec = RunSpec {
                sim: SimConfig {
                    seed,
                    ..SimConfig::default()
                },
                horizon: cli.horizon,
                eat: cli.eat.0..=cli.eat.1,
                think: cli.think.0..=cli.think.1,
                ..RunSpec::default()
            };
            let job = match class {
                FaultClass::Crash => Job::Probe {
                    victim,
                    crash_at: fault_at,
                },
                _ => {
                    spec.sim.fault = class.plan(victim, (fault_at, quiesce));
                    if matches!(class, FaultClass::SustainedLoss(_)) {
                        spec.sim.arq = Some(ArqConfig::default());
                    }
                    if matches!(class, FaultClass::BurstLoss) {
                        // Correlated loss comes from the channel model, not
                        // the fault adversary; the shim restores liveness.
                        spec.sim.channel = ChannelConfig::burst_loss_default();
                        spec.sim.arq = Some(ArqConfig::default());
                    }
                    Job::Run
                }
            };
            cells.push(SweepCell {
                label: format!("{}/{}", cli.topo, class.label()),
                kind: cli.alg,
                spec,
                topo: topo.clone(),
                commands: Vec::new(),
                job,
            });
        }
    }
    let jobs = cli.jobs.unwrap_or_else(default_jobs);
    let report = run_cells(&cells, jobs);
    emit_metrics(cli, &report)?;

    // The job count is deliberately absent from the output: the chaos
    // report (and its JSONL) is byte-identical for every --jobs value.
    let mut s = format!(
        "chaos: {} on {} (n = {}), victim {victim}, seeds {}..{}, horizon {}\n\
         faults strike at {fault_at}, quiesce by {quiesce}\n",
        cli.alg.name(),
        cli.topo,
        n,
        cli.seed,
        cli.seed + cli.seeds,
        cli.horizon,
    );
    let mut table = Table::new(&[
        "fault class",
        "in-model",
        "runs",
        "meals",
        "faults",
        "unsafe",
        "starving",
        "locality",
    ]);
    for (row, class) in report.aggregate().iter().zip(CHAOS_CLASSES) {
        table.row([
            class.label().to_string(),
            if class.in_model() { "yes" } else { "no" }.to_string(),
            row.runs.to_string(),
            row.meals.to_string(),
            row.faults_injected.to_string(),
            row.violations.to_string(),
            row.starving.to_string(),
            row.locality
                .map_or_else(|| "-".to_string(), |d| d.to_string()),
        ]);
    }
    s.push_str(&table.to_string());
    if let Some(path) = &cli.metrics_out {
        s.push_str(&format!("per-run metrics written to {path}\n"));
    }
    // Sustained and burst loss are survivable only through the ARQ shim;
    // a stall there means reliable delivery is broken, so the command
    // fails.
    for (row, class) in report.aggregate().iter().zip(CHAOS_CLASSES) {
        if matches!(class, FaultClass::SustainedLoss(_) | FaultClass::BurstLoss) && row.starving > 0
        {
            return Err(format!(
                "{} stalled: {} starving node-run(s) despite the ARQ shim\n{s}",
                class.label(),
                row.starving
            ));
        }
    }
    Ok(s)
}

/// Undirected edge list of the chosen topology (unit-disk edges for the
/// geometric kinds, explicit edges for star/tree).
fn check_edges(cli: &Cli) -> (usize, Vec<(u32, u32)>) {
    match cli.topo {
        TopoSpec::Star(leaves) => topology::star_edges(leaves),
        TopoSpec::Tree(n) => topology::binary_tree_edges(n),
        ref geo => {
            let positions = geo_positions(geo);
            let n = positions.len();
            let world = World::new(
                SimConfig::default().radio_range,
                positions.into_iter().map(Position::from).collect(),
            );
            (n, world.csr_snapshot().edges().collect())
        }
    }
}

fn check_spec_of(cli: &Cli) -> Result<CheckSpec, String> {
    let (n, edges) = check_edges(cli);
    let mut spec = CheckSpec::new(cli.alg, cli.topo.to_string(), n, edges);
    spec.seed = cli.seed;
    spec.horizon = cli.horizon;
    spec.eat = cli.eat.0;
    spec.mutation = cli.mutate;
    spec.liveness = cli.liveness;
    spec.think = cli.think.0;
    spec.validate()?;
    Ok(spec)
}

/// Explicitly-passed CLI flags that contradict the instance a witness
/// records. Flags left at their defaults never conflict: the witness is
/// the authority on its own instance.
fn witness_flag_conflicts(cli: &Cli, witness: &Witness) -> Vec<String> {
    let mut out = Vec::new();
    let mut check = |flags: &[&str], same: bool, asked: String, recorded: String| {
        if !same && flags.iter().any(|f| cli.explicitly_set(f)) {
            out.push(format!(
                "{} asks for {asked} but the witness records {recorded}",
                flags[0]
            ));
        }
    };
    check(
        &["--alg"],
        cli.alg.name() == witness.alg,
        cli.alg.name().to_string(),
        witness.alg.clone(),
    );
    check(
        &["--topo", "--nodes"],
        cli.topo.to_string() == witness.topo,
        cli.topo.to_string(),
        witness.topo.clone(),
    );
    check(
        &["--seed"],
        cli.seed == witness.seed,
        cli.seed.to_string(),
        witness.seed.to_string(),
    );
    check(
        &["--horizon"],
        cli.horizon == witness.horizon,
        cli.horizon.to_string(),
        witness.horizon.to_string(),
    );
    check(
        &["--eat"],
        cli.eat.0 == witness.eat,
        cli.eat.0.to_string(),
        witness.eat.to_string(),
    );
    check(
        &["--think"],
        !witness.liveness || cli.think.0 == witness.think,
        cli.think.0.to_string(),
        witness.think.to_string(),
    );
    check(
        &["--mutate"],
        cli.mutate.name() == witness.mutation,
        cli.mutate.name().to_string(),
        witness.mutation.clone(),
    );
    check(
        &["--liveness"],
        cli.liveness == witness.liveness,
        "a liveness run".to_string(),
        "a safety-only run".to_string(),
    );
    out
}

/// Replay a witness file: the rendered report (including the full trace) is
/// a pure function of the file, byte-identical across machines and `--jobs`.
/// Explicitly-passed instance flags that contradict the witness are a
/// structured error (exit 2), never silently ignored.
fn render_replay(cli: &Cli, path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read witness {path}: {e}"))?;
    let witness = Witness::from_json(text.trim())?;
    let conflicts = witness_flag_conflicts(cli, &witness);
    if !conflicts.is_empty() {
        return Err(format!(
            "replay: witness {path} conflicts with the command line:\n  {}\n\
             drop the conflicting flags or replay a matching witness",
            conflicts.join("\n  ")
        ));
    }
    let (_spec, verdict) = replay(&witness)?;
    let mut s = format!(
        "replay: {} on {} (n = {}), seed {}, mutation {}, {} recorded choices\n",
        witness.alg,
        witness.topo,
        witness.n,
        witness.seed,
        witness.mutation,
        witness.choices.len(),
    );
    match &verdict.violation {
        Some(v) if v.property == witness.property && v.detail == witness.detail => {
            s.push_str(&format!("  violation reproduced: {}\n", v.property));
            s.push_str(&format!("  detail              : {}\n", v.detail));
        }
        Some(v) => {
            s.push_str(&format!(
                "  MISMATCH: witness claims '{}' ({}) but replay found '{}' ({})\n",
                witness.property, witness.detail, v.property, v.detail
            ));
        }
        None => {
            s.push_str(&format!(
                "  MISMATCH: witness claims '{}' but replay found no violation\n",
                witness.property
            ));
        }
    }
    s.push_str(&format!(
        "  meals {}, drained {}, trace ({} entries):\n",
        verdict.meals,
        verdict.drained,
        verdict.trace.len()
    ));
    for entry in &verdict.trace {
        s.push_str(&format!("    t={:<6} {:?}\n", entry.at.0, entry.kind));
    }
    Ok(s)
}

fn render_check(cli: &Cli) -> Result<String, String> {
    if let Some(path) = &cli.replay_witness {
        return render_replay(cli, path);
    }
    if cli.certify {
        return render_certify(cli);
    }
    let spec = check_spec_of(cli)?;
    let cfg = ExploreConfig {
        strategy: cli.strategy,
        max_schedules: match cli.strategy {
            StrategyKind::Dfs => cli.steps,
            StrategyKind::Random | StrategyKind::Pct => cli.seeds as usize,
        },
        max_depth: cli.depth,
        jobs: cli.jobs.unwrap_or(1),
        ..ExploreConfig::default()
    };
    let result = explore(&spec, &cfg);
    let mut s = format!(
        "check: {} on {} (n = {}), strategy {}, seed {}, mutation {}\n",
        spec.alg.name(),
        spec.topo,
        spec.n,
        cli.strategy.name(),
        spec.seed,
        spec.mutation.name(),
    );
    if spec.liveness {
        s.push_str(&format!(
            "  liveness workload : recycling (think {})\n",
            spec.think
        ));
    }
    s.push_str(&format!(
        "  schedules run     : {}{}\n",
        result.schedules,
        if result.complete {
            match cli.strategy {
                StrategyKind::Dfs => " (bounded schedule space exhausted)",
                _ => " (all requested walks)",
            }
        } else {
            " (budget exhausted before the space)"
        }
    ));
    s.push_str(&format!(
        "  max branch points : {}\n",
        result.max_branch_points
    ));
    if cli.strategy == StrategyKind::Dfs {
        s.push_str(&format!("  dedup prunes      : {}\n", result.dedup_prunes));
        s.push_str(&format!("  dpor prunes       : {}\n", result.dpor_prunes));
    }
    match &result.witness {
        None => s.push_str("  result            : no property violations\n"),
        Some(w) => {
            s.push_str(&format!("  result            : VIOLATION {}\n", w.property));
            s.push_str(&format!("  detail            : {}\n", w.detail));
            s.push_str(&format!(
                "  shrunk witness    : {} choices, {} hungry nodes ({} shrink replays)\n",
                w.choices.len(),
                w.hungry.len(),
                result.shrink_runs
            ));
            if let Some(path) = &cli.witness_out {
                std::fs::write(path, w.to_json() + "\n")
                    .map_err(|e| format!("cannot write witness to {path}: {e}"))?;
                s.push_str(&format!("  witness written to: {path}\n"));
            }
        }
    }
    Ok(s)
}

/// `lme check --certify`: exhaust the extremal schedule space and report
/// the exact worst-case response time as a machine-readable certificate.
fn render_certify(cli: &Cli) -> Result<String, String> {
    let spec = check_spec_of(cli)?;
    let cfg = CertifyConfig {
        max_schedules: if cli.explicitly_set("--steps") {
            cli.steps
        } else {
            CertifyConfig::default().max_schedules
        },
        jobs: cli.jobs.unwrap_or(1),
        ..CertifyConfig::default()
    };
    let cert = certify(&spec, &cfg);
    let mut s = format!(
        "certify: {} on {} (n = {}), seed {}, nu {}, eat {}, horizon {}\n",
        cert.alg, cert.topo, cert.n, cert.seed, cert.nu, cert.eat, cert.horizon,
    );
    s.push_str(&format!(
        "  schedules run     : {}{}\n",
        cert.schedules,
        if cert.complete {
            " (extremal schedule space exhausted)"
        } else {
            " (budget exhausted before the space)"
        }
    ));
    s.push_str(&format!(
        "  max branch points : {}\n",
        cert.max_branch_points
    ));
    s.push_str(&format!("  dedup prunes      : {}\n", cert.dedup_prunes));
    if let Some(v) = &cert.violation {
        s.push_str(&format!("  VIOLATION         : {v}\n"));
    }
    if cert.unfed_runs > 0 {
        s.push_str(&format!("  unfed runs        : {}\n", cert.unfed_runs));
    }
    if cert.holds() {
        s.push_str(&format!(
            "  worst response    : {} ticks (node {}, over {} branch delays)\n",
            cert.worst_rt,
            cert.worst_rt_node,
            cert.worst_schedule.len(),
        ));
        s.push_str("  certificate       : holds (exact over the extremal space)\n");
    } else {
        s.push_str("  certificate       : VOID (see above)\n");
    }
    if let Some(path) = &cli.bench_out {
        std::fs::write(path, cert.to_json() + "\n")
            .map_err(|e| format!("cannot write certificate to {path}: {e}"))?;
        s.push_str(&format!("  certificate written to: {path}\n"));
    }
    Ok(s)
}

/// One measured cell of the scaling benchmark.
struct BenchRow {
    n: usize,
    engine: &'static str,
    steps: usize,
    elapsed_ns: u128,
    /// Candidate peers examined across all relocations — the
    /// machine-independent cost witness ([`World::candidates_examined`]).
    candidates: u64,
    link_changes: u64,
    avg_degree: f64,
}

impl BenchRow {
    fn ns_per_step(&self) -> f64 {
        self.elapsed_ns as f64 / self.steps as f64
    }

    fn candidates_per_step(&self) -> f64 {
        self.candidates as f64 / self.steps as f64
    }
}

/// Measure `steps` random local motions on an `n`-node constant-density
/// random deployment under one link engine. Constant density (the
/// `random_connected` convention: ≈ 1.6 nodes per unit square) is the
/// regime where the grid's cost stays flat while the pairwise scan grows
/// linearly with n.
fn bench_cell(n: usize, seed: u64, steps: usize, engine: LinkEngine) -> BenchRow {
    let side = (n as f64 / 1.6).sqrt().max(2.0);
    let positions: Vec<Position> = topology::random_points(n, side, seed)
        .into_iter()
        .map(Position::from)
        .collect();
    let mut world = World::with_engine(SimConfig::default().radio_range, positions, engine);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5CA1_E000);
    let step_len = 0.25;
    let mut link_changes = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..steps {
        let node = NodeId(rng.gen_range(0..=(n as u64 - 1)) as u32);
        let p = world.position(node);
        let angle = rng.gen_f64() * std::f64::consts::TAU;
        let next = Position {
            x: (p.x + angle.cos() * step_len).clamp(0.0, side),
            y: (p.y + angle.sin() * step_len).clamp(0.0, side),
        };
        link_changes += world.relocate(node, next).len() as u64;
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let degree_total: usize = (0..n as u32)
        .map(|i| world.neighbors(NodeId(i)).len())
        .sum();
    BenchRow {
        n,
        engine: match engine {
            LinkEngine::Grid => "grid",
            LinkEngine::Pairwise => "pairwise",
        },
        steps,
        elapsed_ns,
        candidates: world.candidates_examined(),
        link_changes,
        avg_degree: degree_total as f64 / n as f64,
    }
}

/// Dispatch-bound workload for the event-core benchmark: every node runs a
/// self-rescheduling timer chain and pings one neighbor per firing. The
/// handlers do (almost) no work, so wall time is dominated by event-queue
/// push/pop/dispatch — the quantity `bench engine` measures.
struct Ticker {
    token: u64,
    pings: u64,
}

impl Protocol for Ticker {
    type Msg = u8;

    fn on_event(&mut self, ev: Event<u8>, ctx: &mut Context<'_, u8>) {
        match ev {
            Event::Hungry => {
                // Fan out four independent timer chains per node so the
                // pending set is a few times n — the regime where the
                // O(log n) heap pays per event and the wheel does not.
                for lane in 0..4 {
                    ctx.set_timer(1 + lane, lane);
                }
            }
            Event::Timer { token } => {
                self.token = self.token.wrapping_add(1);
                // Varying short delays spread the chain across nearby
                // buckets instead of hammering a single tick.
                ctx.set_timer(1 + (self.token & 7), token);
                // Ping a neighbor on a quarter of the firings: enough to
                // keep the delivery path honest without letting the O(n)
                // world machinery swamp the queue cost under measurement.
                if self.token & 3 == 0 {
                    let nbrs = ctx.neighbors();
                    let to = nbrs.get(self.token as usize % nbrs.len().max(1)).copied();
                    if let Some(to) = to {
                        ctx.send(to, 0);
                    }
                }
            }
            Event::Message { .. } => self.pings = self.pings.wrapping_add(1),
            _ => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        DiningState::Thinking
    }
}

/// One measured cell of the event-core benchmark.
struct BenchEngineRow {
    n: usize,
    core: &'static str,
    events: u64,
    elapsed_ns: u128,
}

impl BenchEngineRow {
    fn ns_per_event(&self) -> f64 {
        self.elapsed_ns as f64 / self.events as f64
    }
}

/// Run the ticker workload on an `n`-node constant-density deployment
/// under one event-queue core until at least `min_events` events have
/// dispatched. Only the run loop is timed (world construction is core-
/// independent and excluded).
fn bench_engine_cell(
    n: usize,
    seed: u64,
    min_events: u64,
    queue: EventQueueKind,
) -> Result<(BenchEngineRow, manet_sim::EngineStats), String> {
    let side = (n as f64 / 1.6).sqrt().max(2.0);
    let positions = topology::random_points(n, side, seed);
    let cfg = SimConfig {
        seed,
        event_queue: queue,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, positions, |_| Ticker { token: 0, pings: 0 });
    for i in 0..n as u32 {
        eng.set_hungry_at(SimTime(1 + u64::from(i % 7)), NodeId(i));
    }
    let start = std::time::Instant::now();
    let mut horizon = 0u64;
    while eng.stats().events < min_events {
        horizon += 500;
        eng.run_until(SimTime(horizon));
        if let Some(abort) = eng.abort() {
            return Err(format!("bench engine: n = {n} aborted: {abort}"));
        }
        if eng.pending_events() == 0 {
            return Err(format!("bench engine: n = {n} drained unexpectedly"));
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let stats = eng.stats().clone();
    Ok((
        BenchEngineRow {
            n,
            core: queue.name(),
            events: stats.events,
            elapsed_ns,
        },
        stats,
    ))
}

/// `lme bench engine`: ns/event of the binary-heap vs timing-wheel event
/// cores on the dispatch-bound ticker workload, written as JSON. The two
/// cores must agree on every [`manet_sim::EngineStats`] counter — the
/// benchmark doubles as a cheap conformance check.
fn render_bench_engine(cli: &Cli) -> Result<String, String> {
    let out_path = cli
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut rows = Vec::new();
    let mut pairs = Vec::new();
    for &n in &cli.bench_ns {
        let target = (cli.bench_steps as u64).max(50 * n as u64);
        let (heap, heap_stats) = bench_engine_cell(n, cli.seed, target, EventQueueKind::Heap)?;
        let (wheel, wheel_stats) = bench_engine_cell(n, cli.seed, target, EventQueueKind::Wheel)?;
        if heap_stats != wheel_stats {
            return Err(format!(
                "bench engine: cores diverged at n = {n}\n  heap:  {heap_stats:?}\n  wheel: {wheel_stats:?}"
            ));
        }
        pairs.push((n, heap.ns_per_event(), wheel.ns_per_event()));
        rows.push(heap);
        rows.push(wheel);
    }
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"engine\",\n");
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"min_events_per_n\": {},\n", cli.bench_steps));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"core\": \"{}\", \"events\": {}, \"elapsed_ns\": {}, \
             \"ns_per_event\": {:.1}}}{}\n",
            r.n,
            r.core,
            r.events,
            r.elapsed_ns,
            r.ns_per_event(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup\": [\n");
    for (i, (n, heap_ns, wheel_ns)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {n}, \"heap_ns_per_event\": {heap_ns:.1}, \
             \"wheel_ns_per_event\": {wheel_ns:.1}, \"wheel_speedup\": {:.2}}}{}\n",
            heap_ns / wheel_ns,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut s = format!(
        "bench engine: dispatch-bound ticker workload, seed {}, >= max({}, 50n) events per cell\n",
        cli.seed, cli.bench_steps
    );
    let mut table = Table::new(&["n", "core", "events", "ns/event", "wheel speedup"]);
    for r in &rows {
        let speedup = pairs
            .iter()
            .find(|(n, _, _)| *n == r.n)
            .map(|(_, h, w)| h / w)
            .unwrap_or(1.0);
        table.row([
            r.n.to_string(),
            r.core.to_string(),
            r.events.to_string(),
            format!("{:.0}", r.ns_per_event()),
            if r.core == "wheel" {
                format!("{speedup:.2}x")
            } else {
                String::new()
            },
        ]);
    }
    s.push_str(&table.to_string());
    s.push_str(&format!("results written to {out_path}\n"));
    Ok(s)
}

/// Map the generic `--alg` flag onto the live-capable subset (everything
/// but `choy-singh`, whose shared coloring cannot cross threads, and
/// `a1-random`, whose RNG stream is engine-owned).
fn live_alg_of(kind: AlgKind) -> Result<LiveAlg, String> {
    LiveAlg::parse(kind.name())
}

/// Assemble one live-run configuration from the flags. `--victim` crashes
/// a quarter into the run; `--moves` reuses the harness random-waypoint
/// generator as driver-pushed teleports.
fn live_config_of(cli: &Cli, alg: LiveAlg, positions: Vec<(f64, f64)>) -> LiveConfig {
    let n = positions.len();
    let mut cfg = LiveConfig::new(alg, cli.transport, positions);
    cfg.duration_ms = cli.duration_ms;
    cfg.rate = cli.rate;
    cfg.eat_ms = cli.eat_ms;
    cfg.one_shot = cli.one_shot;
    cfg.seed = cli.seed;
    cfg.reliable = cli.reliable;
    cfg.closed_loop = cli.closed_loop;
    cfg.runtime = match cli.runtime {
        LiveRuntime::ThreadPerNode => LiveRuntime::ThreadPerNode,
        LiveRuntime::Sharded { .. } => LiveRuntime::Sharded {
            workers: cli.workers.unwrap_or(0),
        },
    };
    if let Some(v) = cli.victim {
        cfg.crash = Some((v, (cli.duration_ms / 4).max(1)));
        if let Some(at) = cli.recover_at {
            cfg.recover = Some((v, at));
        }
    }
    if cli.moves > 0 {
        let plan = WaypointPlan {
            area_side: (n as f64 / 1.6).sqrt().max(2.0),
            moves: cli.moves,
            window: (cli.duration_ms / 10, (cli.duration_ms * 9 / 10).max(1)),
            speed: None,
            seed: cli.seed ^ 0xB0B,
        };
        for (t, cmd) in plan.commands(n) {
            if let manet_sim::Command::Teleport { node, dest } = cmd {
                cfg.moves.push((t.0, node.0, (dest.x, dest.y)));
            }
        }
    }
    cfg
}

/// Render a pooled hungry→eat latency summary in milliseconds.
fn fmt_latency_ms(s: &Summary) -> String {
    if s.count == 0 {
        return "n=0".to_string();
    }
    format!(
        "n={} p50={:.2} p95={:.2} max={:.2} ms",
        s.count,
        s.p50 as f64 / 1e6,
        s.p95 as f64 / 1e6,
        s.max as f64 / 1e6
    )
}

fn render_live(cli: &Cli) -> Result<String, String> {
    if cli.matrix {
        return render_live_matrix(cli);
    }
    let alg = live_alg_of(cli.alg)?;
    let positions = geo_positions(&cli.topo);
    let cfg = live_config_of(cli, alg, positions);
    let out = run_live(&cfg)?;
    let lat = Summary::of(&out.latencies_ns);
    let mut s = format!(
        "live: {} over {} on {} (n = {}), {} ms, rate {}/s, seed {}, {} runtime{}\n",
        alg.name(),
        cli.transport.name(),
        cli.topo,
        cli.topo.len(),
        out.elapsed_ms,
        cli.rate,
        cli.seed,
        cfg.runtime.name(),
        if cli.closed_loop { ", closed loop" } else { "" },
    );
    s.push_str(&format!("  safety violations : {}\n", out.violations.len()));
    s.push_str(&format!(
        "  eating sessions   : {} ({:.1}/s)\n",
        out.total_meals(),
        out.sessions_per_sec()
    ));
    s.push_str(&format!("  hungry→eat        : {}\n", fmt_latency_ms(&lat)));
    s.push_str(&format!(
        "  messages          : {} sent, {} delivered, {} decode errors, \
         {} send failures\n",
        out.messages_sent, out.messages_delivered, out.decode_errors, out.send_failures
    ));
    if cli.reliable || cli.recover_at.is_some() {
        s.push_str(&format!(
            "  reliability       : {} retransmissions, {} acks, {} recoveries\n",
            out.retransmissions, out.acks_sent, out.recoveries
        ));
    }
    s.push_str(&format!(
        "  threads joined    : {}/{}\n",
        out.threads_joined,
        cli.topo.len()
    ));
    if cli.conformance {
        let report = conformance_replay(&cfg, &out)?;
        s.push_str(&format!(
            "  conformance       : {} delays imported, sim census {:?} vs live {:?}, \
             {} sim violations\n",
            report.imported_delays, report.sim_census, report.live_census, report.sim_violations
        ));
        if !report.conforms() {
            return Err(format!("conformance replay diverged\n{s}"));
        }
        s.push_str("  conformance       : PASS (replay safe, census match)\n");
    }
    Ok(s)
}

/// The fixed algorithm × topology acceptance matrix: every live-capable
/// algorithm over a clique and a ring, each cell validated by the safety
/// monitor. Nonzero exit on any violation. `--runtime sharded` runs the
/// same matrix on the sharded worker pool.
fn render_live_matrix(cli: &Cli) -> Result<String, String> {
    let topos = [TopoSpec::Clique(5), TopoSpec::Ring(6)];
    let algs = LiveAlg::all();
    if let Some(v) = cli.victim {
        if v as usize >= 5 {
            return Err(format!(
                "matrix cells have 5–6 nodes; victim {v} out of range"
            ));
        }
    }
    let mut s = format!(
        "live matrix: {} algorithms x {} topologies{} over {} ({} runtime), \
         {} ms per cell, rate {}/s, seed {}\n",
        algs.len(),
        topos.len(),
        if cli.victim.is_some() { " + crash" } else { "" },
        cli.transport.name(),
        cli.runtime.name(),
        cli.duration_ms,
        cli.rate,
        cli.seed,
    );
    let mut table = Table::new(&[
        "algorithm",
        "topology",
        "meals",
        "sessions/s",
        "hungry→eat p95",
        "delivered",
        "unsafe",
        "joined",
    ]);
    let mut bad_cells = 0;
    for alg in algs {
        for topo in &topos {
            let cfg = live_config_of(cli, alg, geo_positions(topo));
            let n = cfg.positions.len();
            let out = run_live(&cfg)?;
            let lat = Summary::of(&out.latencies_ns);
            if !out.violations.is_empty() || out.threads_joined != n {
                bad_cells += 1;
            }
            table.row([
                alg.name().to_string(),
                topo.to_string(),
                out.total_meals().to_string(),
                format!("{:.1}", out.sessions_per_sec()),
                format!("{:.2} ms", lat.p95 as f64 / 1e6),
                out.messages_delivered.to_string(),
                out.violations.len().to_string(),
                format!("{}/{n}", out.threads_joined),
            ]);
        }
    }
    s.push_str(&table.to_string());
    if bad_cells > 0 {
        return Err(format!(
            "{bad_cells} live matrix cell(s) violated safety or leaked threads\n{s}"
        ));
    }
    s.push_str(&format!(
        "matrix: all {} cells safe, all threads joined\n",
        algs.len() * topos.len()
    ));
    Ok(s)
}

/// Largest n `bench live` will attempt with one OS thread per node; past
/// this the scale ladder records the cell as skipped rather than risk
/// exhausting the machine's thread and stack budget, which is exactly the
/// regime the sharded runtime exists for.
const THREAD_PER_NODE_SCALE_CAP: usize = 2_048;

/// One `bench live` result row as a JSON object, including the per-node
/// network-health suffix keys (`net_*`) aggregated from the trace's
/// [`lme_net::NodeNetStats`] records — previously collected by every node
/// and dropped at aggregation.
fn bench_live_row_json(
    alg: &str,
    runtime: &str,
    n: usize,
    topo: &str,
    out: &LiveOutcome,
) -> String {
    let lat = Summary::of(&out.latencies_ns);
    let net = out.trace.net_stats(n);
    let nodes_with_errors = net
        .iter()
        .filter(|s| s.decode_errors + s.send_failures > 0)
        .count();
    let max_decode = net.iter().map(|s| s.decode_errors).max().unwrap_or(0);
    let max_send = net.iter().map(|s| s.send_failures).max().unwrap_or(0);
    let max_rtx = net.iter().map(|s| s.retransmissions).max().unwrap_or(0);
    let max_acks = net.iter().map(|s| s.acks_sent).max().unwrap_or(0);
    format!(
        "{{\"alg\": \"{alg}\", \"runtime\": \"{runtime}\", \"n\": {n}, \
         \"topo\": \"{topo}\", \"elapsed_ms\": {}, \"meals\": {}, \
         \"sessions_per_sec\": {:.2}, \"latency_ns\": {{\"count\": {}, \
         \"mean\": {:.0}, \"p50\": {}, \"p95\": {}, \"max\": {}}}, \
         \"messages_sent\": {}, \"messages_delivered\": {}, \
         \"decode_errors\": {}, \"violations\": {}, \
         \"send_failures\": {}, \"retransmissions\": {}, \
         \"acks_sent\": {}, \"recoveries\": {}, \
         \"net_nodes_with_errors\": {nodes_with_errors}, \
         \"net_max_node_decode_errors\": {max_decode}, \
         \"net_max_node_send_failures\": {max_send}, \
         \"net_max_node_retransmissions\": {max_rtx}, \
         \"net_max_node_acks\": {max_acks}}}",
        out.elapsed_ms,
        out.total_meals(),
        out.sessions_per_sec(),
        lat.count,
        lat.mean,
        lat.p50,
        lat.p95,
        lat.max,
        out.messages_sent,
        out.messages_delivered,
        out.decode_errors,
        out.violations.len(),
        out.send_failures,
        out.retransmissions,
        out.acks_sent,
        out.recoveries,
    )
}

/// `lme bench live`: wall-clock throughput and pooled hungry→eat latency
/// percentiles for every live-capable algorithm, written as JSON. With an
/// explicit `--ns` ladder it also runs `--alg` on `ring:n` per rung under
/// both runtimes (thread-per-node capped at
/// [`THREAD_PER_NODE_SCALE_CAP`]) and records the rungs as `scale_rows`.
fn render_bench_live(cli: &Cli) -> Result<String, String> {
    let out_path = cli
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_live.json".to_string());
    let positions = geo_positions(&cli.topo);
    let n = positions.len();
    let mut results: Vec<(LiveAlg, LiveOutcome, Summary)> = Vec::new();
    for alg in LiveAlg::all() {
        let cfg = live_config_of(cli, alg, positions.clone());
        let out = run_live(&cfg)?;
        if !out.violations.is_empty() {
            return Err(format!(
                "bench live: {} on {} had {} safety violations",
                alg.name(),
                cli.topo,
                out.violations.len()
            ));
        }
        let lat = Summary::of(&out.latencies_ns);
        results.push((alg, out, lat));
    }
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"live\",\n");
    json.push_str(&format!("  \"transport\": \"{}\",\n", cli.transport.name()));
    json.push_str(&format!("  \"topo\": \"{}\",\n", cli.topo));
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"duration_ms\": {},\n", cli.duration_ms));
    json.push_str(&format!("  \"rate_per_node_sec\": {},\n", cli.rate));
    json.push_str(&format!("  \"eat_ms\": {},\n", cli.eat_ms));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"runtime\": \"{}\",\n", cli.runtime.name()));
    json.push_str(&format!("  \"closed_loop\": {},\n", cli.closed_loop));
    json.push_str(&format!(
        "  \"thread_per_node_scale_cap\": {THREAD_PER_NODE_SCALE_CAP},\n"
    ));
    let mut jsonl: Vec<String> = Vec::new();
    json.push_str("  \"rows\": [\n");
    for (i, (alg, out, _lat)) in results.iter().enumerate() {
        let row = bench_live_row_json(
            alg.name(),
            cli.runtime.name(),
            n,
            &cli.topo.to_string(),
            out,
        );
        jsonl.push(row.clone());
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    // The `--ns` scale ladder: `--alg` on `ring:n` per rung, sharded
    // always, thread-per-node only under the cap (recorded as a skipped
    // rung above it, honestly, rather than silently absent).
    let mut scale_results: Vec<(String, usize, Option<LiveOutcome>)> = Vec::new();
    if cli.explicitly_set("--ns") {
        let alg = live_alg_of(cli.alg)?;
        for &sn in &cli.bench_ns {
            let topo = TopoSpec::Ring(sn);
            for runtime in [
                LiveRuntime::ThreadPerNode,
                LiveRuntime::Sharded {
                    workers: cli.workers.unwrap_or(0),
                },
            ] {
                if matches!(runtime, LiveRuntime::ThreadPerNode) && sn > THREAD_PER_NODE_SCALE_CAP {
                    scale_results.push((runtime.name().to_string(), sn, None));
                    continue;
                }
                let mut cfg = live_config_of(cli, alg, geo_positions(&topo));
                cfg.runtime = runtime;
                let out = run_live(&cfg)?;
                if !out.violations.is_empty() {
                    return Err(format!(
                        "bench live scale: {} ({}) on {topo} had {} safety violations",
                        alg.name(),
                        cfg.runtime.name(),
                        out.violations.len()
                    ));
                }
                scale_results.push((cfg.runtime.name().to_string(), sn, Some(out)));
            }
        }
    }
    json.push_str("  \"scale_rows\": [\n");
    for (i, (runtime, sn, out)) in scale_results.iter().enumerate() {
        let row = match out {
            Some(out) => {
                bench_live_row_json(cli.alg.name(), runtime, *sn, &format!("ring:{sn}"), out)
            }
            None => format!(
                "{{\"alg\": \"{}\", \"runtime\": \"{runtime}\", \"n\": {sn}, \
                 \"topo\": \"ring:{sn}\", \"skipped\": \
                 \"n exceeds the {THREAD_PER_NODE_SCALE_CAP}-thread cap\"}}",
                cli.alg.name()
            ),
        };
        jsonl.push(row.clone());
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < scale_results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(path) = &cli.metrics_out {
        std::fs::write(path, jsonl.join("\n") + "\n")
            .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    }
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut s = format!(
        "bench live: {} on {} (n = {n}, {} runtime{}), {} ms per algorithm, rate {}/s\n",
        cli.transport.name(),
        cli.topo,
        cli.runtime.name(),
        if cli.closed_loop { ", closed loop" } else { "" },
        cli.duration_ms,
        cli.rate,
    );
    let mut table = Table::new(&[
        "algorithm",
        "meals",
        "sessions/s",
        "hungry→eat (pooled)",
        "delivered",
    ]);
    for (alg, out, lat) in &results {
        table.row([
            alg.name().to_string(),
            out.total_meals().to_string(),
            format!("{:.1}", out.sessions_per_sec()),
            fmt_latency_ms(lat),
            out.messages_delivered.to_string(),
        ]);
    }
    s.push_str(&table.to_string());
    if !scale_results.is_empty() {
        s.push_str(&format!("scale ladder: {} on ring:n\n", cli.alg.name()));
        let mut scale_table = Table::new(&["n", "runtime", "meals", "sessions/s", "p95"]);
        for (runtime, sn, out) in &scale_results {
            match out {
                Some(out) => {
                    let lat = Summary::of(&out.latencies_ns);
                    scale_table.row([
                        sn.to_string(),
                        runtime.clone(),
                        out.total_meals().to_string(),
                        format!("{:.1}", out.sessions_per_sec()),
                        format!("{:.2} ms", lat.p95 as f64 / 1e6),
                    ]);
                }
                None => {
                    scale_table.row([
                        sn.to_string(),
                        runtime.clone(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("skipped (> {THREAD_PER_NODE_SCALE_CAP} threads)"),
                    ]);
                }
            }
        }
        s.push_str(&scale_table.to_string());
    }
    s.push_str(&format!("results written to {out_path}\n"));
    Ok(s)
}

fn render_bench_scale(cli: &Cli) -> Result<String, String> {
    let out_path = cli
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let mut rows = Vec::new();
    for &n in &cli.bench_ns {
        rows.push(bench_cell(n, cli.seed, cli.bench_steps, LinkEngine::Grid));
        if n <= cli.bench_pairwise_cap {
            rows.push(bench_cell(
                n,
                cli.seed,
                cli.bench_steps,
                LinkEngine::Pairwise,
            ));
        }
    }
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"scale\",\n");
    json.push_str(&format!(
        "  \"radio_range\": {},\n",
        SimConfig::default().radio_range
    ));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"steps_per_n\": {},\n", cli.bench_steps));
    json.push_str(&format!(
        "  \"pairwise_cap\": {},\n",
        cli.bench_pairwise_cap
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"engine\": \"{}\", \"steps\": {}, \"elapsed_ns\": {}, \
             \"ns_per_step\": {:.1}, \"candidates_per_step\": {:.2}, \
             \"avg_degree\": {:.2}, \"link_changes\": {}}}{}\n",
            r.n,
            r.engine,
            r.steps,
            r.elapsed_ns,
            r.ns_per_step(),
            r.candidates_per_step(),
            r.avg_degree,
            r.link_changes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut s = format!(
        "bench scale: {} relocation steps per n, seed {}, radio range {}\n",
        cli.bench_steps,
        cli.seed,
        SimConfig::default().radio_range
    );
    let mut table = Table::new(&[
        "n",
        "engine",
        "ns/step",
        "candidates/step",
        "avg degree",
        "link changes",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.engine.to_string(),
            format!("{:.0}", r.ns_per_step()),
            format!("{:.2}", r.candidates_per_step()),
            format!("{:.2}", r.avg_degree),
            r.link_changes.to_string(),
        ]);
    }
    s.push_str(&table.to_string());
    s.push_str(&format!("trajectory written to {out_path}\n"));
    Ok(s)
}

/// The fixed channel-model matrix `lme bench channel` sweeps: every
/// model over a dense (clique) and a sparse (ring) topology. The
/// Gilbert–Elliott cells arm the ARQ shim — burst loss without
/// retransmission starves by design.
fn bench_channel_models() -> Vec<(&'static str, ChannelConfig, bool)> {
    vec![
        ("iid", ChannelConfig::Iid, false),
        (
            "constant-bandwidth",
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 2,
                max_queue: 64,
            },
            false,
        ),
        (
            "shared-medium",
            ChannelConfig::SharedMedium {
                ticks_per_frame: 2,
                max_inflight: 64,
            },
            false,
        ),
        ("gilbert-elliott", ChannelConfig::burst_loss_default(), true),
    ]
}

/// `lme bench channel`: run the algorithm under every channel model on a
/// clique and a ring, reporting meals, response percentiles and the
/// channel counters, written as JSON. This is the degradation matrix in
/// miniature: the i.i.d. rows are the paper's assumption-satisfying
/// baseline, everything below shows what contention and burst loss cost.
/// A cell whose offered load exceeds channel capacity (a dense clique on
/// one shared medium) ends in a structured queue-overflow abort; the row
/// is kept with its `abort` recorded — saturation is the result, not an
/// error. Only safety violations fail the bench.
fn render_bench_channel(cli: &Cli) -> Result<String, String> {
    let out_path = cli
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_channel.json".to_string());
    let topos = [TopoSpec::Clique(8), TopoSpec::Ring(8)];
    struct Row {
        model: &'static str,
        topo: String,
        arq: bool,
        meals: u64,
        rt: Summary,
        messages: u64,
        stats: manet_sim::ChannelStats,
        violations: usize,
        abort: Option<String>,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (model, channel, arq) in bench_channel_models() {
        for topo in &topos {
            let spec = RunSpec {
                sim: SimConfig {
                    seed: cli.seed,
                    channel: channel.clone(),
                    arq: arq.then(ArqConfig::default),
                    ..SimConfig::default()
                },
                horizon: cli.horizon,
                eat: cli.eat.0..=cli.eat.1,
                think: cli.think.0..=cli.think.1,
                ..RunSpec::default()
            };
            let positions = geo_positions(topo);
            let out = run_algorithm(cli.alg, &spec, &positions, &[]);
            if !out.violations.is_empty() {
                return Err(format!(
                    "bench channel: {} under {model} on {topo} had {} safety violations",
                    cli.alg.name(),
                    out.violations.len()
                ));
            }
            rows.push(Row {
                model,
                topo: topo.to_string(),
                arq,
                meals: out.total_meals(),
                rt: out.all_summary(),
                messages: out.messages_sent,
                stats: out.stats.channel.clone(),
                violations: out.violations.len(),
                abort: out.abort.clone(),
            });
        }
    }
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"channel\",\n");
    json.push_str(&format!("  \"alg\": \"{}\",\n", cli.alg.name()));
    json.push_str(&format!("  \"seed\": {},\n", cli.seed));
    json.push_str(&format!("  \"horizon\": {},\n", cli.horizon));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let abort = match &r.abort {
            Some(a) => format!("\"{}\"", a.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"topo\": \"{}\", \"arq\": {}, \"meals\": {}, \
             \"rt\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}, \
             \"messages\": {}, \"frames_queued\": {}, \"queue_peak\": {}, \
             \"burst_transitions\": {}, \"frames_lost\": {}, \"violations\": {}, \
             \"abort\": {abort}}}{}\n",
            r.model,
            r.topo,
            r.arq,
            r.meals,
            r.rt.count,
            r.rt.p50,
            r.rt.p95,
            r.rt.max,
            r.messages,
            r.stats.frames_queued,
            r.stats.queue_peak,
            r.stats.burst_transitions,
            r.stats.frames_lost,
            r.violations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut s = format!(
        "bench channel: {} x {{clique:8, ring:8}}, horizon {}, seed {}\n",
        cli.alg.name(),
        cli.horizon,
        cli.seed
    );
    let mut table = Table::new(&[
        "model",
        "topology",
        "meals",
        "rt p50/p95/max",
        "messages",
        "queued/peak",
        "transitions/lost",
        "outcome",
    ]);
    for r in &rows {
        table.row([
            r.model.to_string(),
            r.topo.clone(),
            r.meals.to_string(),
            format!("{}/{}/{}", r.rt.p50, r.rt.p95, r.rt.max),
            r.messages.to_string(),
            format!("{}/{}", r.stats.frames_queued, r.stats.queue_peak),
            format!("{}/{}", r.stats.burst_transitions, r.stats.frames_lost),
            if r.abort.is_some() {
                "saturated".to_string()
            } else {
                "ok".to_string()
            },
        ]);
    }
    s.push_str(&table.to_string());
    s.push_str(&format!("results written to {out_path}\n"));
    Ok(s)
}

/// Execute a parsed command and return the rendered report.
///
/// # Errors
///
/// Returns a diagnostic on unsupported combinations.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command {
        Command::List => {
            let mut s = String::from("algorithms:\n");
            for k in AlgKind::extended() {
                s.push_str(&format!(
                    "  {:<14} FL {:<22} RT {}\n",
                    k.name(),
                    k.paper_failure_locality(),
                    k.paper_response_time()
                ));
            }
            s.push('\n');
            s.push_str(USAGE);
            Ok(s)
        }
        Command::Run => {
            let spec = spec_of(cli)?;
            let out = run_outcome(cli, &spec);
            emit_metrics(
                cli,
                &SweepReport {
                    runs: vec![RunReport::from_outcome(
                        &cli.topo.to_string(),
                        cli.alg.name(),
                        cli.seed,
                        spec.horizon,
                        &out,
                        None,
                    )],
                },
            )?;
            Ok(render_run(cli, &out))
        }
        Command::Probe => render_probe(cli),
        Command::Sweep => render_sweep(cli),
        Command::Chaos => render_chaos(cli),
        Command::Check => render_check(cli),
        Command::Bench => match cli.bench_mode {
            BenchMode::Scale => render_bench_scale(cli),
            BenchMode::Live => render_bench_live(cli),
            BenchMode::Engine => render_bench_engine(cli),
            BenchMode::Channel => render_bench_channel(cli),
        },
        Command::Live => render_live(cli),
    }
}

#[cfg(test)]
mod tests {
    use crate::run_cli;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn unwritable_output_paths_are_errors_not_panics() {
        // `run --metrics-out` and `bench live --out` both surface write
        // failures as Err (main exits 2), never a panic.
        let err = run_cli(argv(
            "run --alg a2 --topo line:3 --horizon 5000 --metrics-out /nonexistent-dir/m.json",
        ))
        .unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
        let err = run_cli(argv(
            "bench live --topo line:2 --duration 120 --rate 40 --eat-ms 1 \
             --out /nonexistent-dir/b.json",
        ))
        .unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
    }

    #[test]
    fn live_sharded_runs_safe_and_renders() {
        let out = run_cli(argv(
            "live --alg a2 --topo clique:4 --runtime sharded --workers 2 \
             --duration 300 --rate 40 --eat-ms 1 --closed-loop --seed 5",
        ))
        .unwrap();
        assert!(out.contains("sharded runtime"), "{out}");
        assert!(out.contains("closed loop"), "{out}");
        assert!(out.contains("safety violations : 0"), "{out}");
        assert!(out.contains("threads joined    : 4/4"), "{out}");
    }

    #[test]
    fn bench_live_scale_rows_cover_both_runtimes_with_net_stats() {
        let dir = std::env::temp_dir().join("lme-cli-test-bench-live");
        std::fs::create_dir_all(&dir).unwrap();
        let out_p = dir.join("b.json");
        let jsonl_p = dir.join("b.jsonl");
        let out = run_cli(argv(&format!(
            "bench live --alg a2 --topo line:2 --duration 150 --rate 40 \
             --eat-ms 1 --ns 3 --out {} --metrics-out {}",
            out_p.display(),
            jsonl_p.display()
        )))
        .unwrap();
        assert!(out.contains("scale ladder"), "{out}");
        let json = std::fs::read_to_string(&out_p).unwrap();
        assert!(json.contains("\"scale_rows\""), "{json}");
        assert!(json.contains("\"runtime\": \"sharded\""), "{json}");
        assert!(json.contains("\"runtime\": \"thread-per-node\""), "{json}");
        assert!(json.contains("\"net_max_node_decode_errors\""), "{json}");
        assert!(json.contains("\"net_nodes_with_errors\""), "{json}");
        let jsonl = std::fs::read_to_string(&jsonl_p).unwrap();
        // One line per main row (5 algorithms) + 2 scale rungs at n=3.
        assert_eq!(jsonl.lines().count(), 7, "{jsonl}");
        std::fs::remove_file(&out_p).ok();
        std::fs::remove_file(&jsonl_p).ok();
    }

    #[test]
    fn list_shows_all_algorithms() {
        let out = run_cli(argv("list")).unwrap();
        for name in [
            "a1-greedy",
            "a1-linial",
            "a1-random",
            "a2",
            "chandy-misra",
            "choy-singh",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn run_reports_liveness_on_a_line() {
        let out = run_cli(argv("run --alg a2 --topo line:5 --horizon 15000")).unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
        assert!(out.contains("starvation        : none"), "{out}");
    }

    #[test]
    fn run_supports_explicit_stars() {
        let out = run_cli(argv("run --alg a1-greedy --topo star:6 --horizon 15000")).unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
    }

    #[test]
    fn run_csv_emits_samples() {
        let out = run_cli(argv("run --alg a2 --topo line:3 --horizon 5000 --csv")).unwrap();
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("node,hungry_at,eat_at,response,moved,msgs")
        );
        assert!(lines.count() > 10);
    }

    #[test]
    fn probe_reports_locality() {
        let out = run_cli(argv(
            "probe --alg chandy-misra --topo line:9 --horizon 30000",
        ))
        .unwrap();
        assert!(out.contains("crash probe"), "{out}");
        assert!(out.contains("crash fired at"), "{out}");
    }

    #[test]
    fn sweep_aggregates_and_is_jobs_invariant() {
        let a = run_cli(argv(
            "sweep --alg a2 --topo line:4 --horizon 6000 --seeds 3 --jobs 1",
        ))
        .unwrap();
        let b = run_cli(argv(
            "sweep --alg a2 --topo line:4 --horizon 6000 --seeds 3 --jobs 4",
        ))
        .unwrap();
        // The rendered report names its job count; everything else must
        // be byte-identical.
        assert_eq!(a.replace("1 jobs", "N jobs"), b.replace("4 jobs", "N jobs"));
        assert!(a.contains("runs"), "{a}");
        assert!(a.contains("A2"), "{a}");
    }

    #[test]
    fn sweep_writes_metrics_jsonl() {
        let dir = std::env::temp_dir().join("lme-cli-test-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let out = run_cli(argv(&format!(
            "sweep --alg chandy-misra --topo line:3 --horizon 4000 --seeds 2 --metrics-out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("per-run metrics written"), "{out}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written.lines().count(), 2);
        assert!(written.starts_with("{\"label\":\"line:3\",\"alg\":\"chandy-misra\",\"seed\":"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_with_fault_flags_stays_safe() {
        let out = run_cli(argv(
            "run --alg a2 --topo line:5 --horizon 10000 --fault-drop 0.2 \
             --fault-dup 0.2 --fault-window 500..4000 --fault-targets 2",
        ))
        .unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
    }

    #[test]
    fn run_rejects_partition_without_targets_side() {
        // Parser-level: partition needs a side.
        assert!(crate::args::parse(argv("run --fault-partition 10..20")).is_err());
    }

    #[test]
    fn sweep_accepts_fault_flags() {
        let out = run_cli(argv(
            "sweep --alg a2 --topo line:4 --horizon 6000 --seeds 2 \
             --fault-delay --fault-targets 1",
        ))
        .unwrap();
        assert!(out.contains("A2"), "{out}");
    }

    #[test]
    fn chaos_reports_every_fault_class() {
        let out = run_cli(argv(
            "chaos --alg a2 --topo line:5 --horizon 8000 --seeds 2",
        ))
        .unwrap();
        for class in [
            "crash",
            "recover",
            "windowed-loss",
            "sustained-loss",
            "burst-loss",
            "windowed-duplication",
            "partition",
            "max-delay",
        ] {
            assert!(out.contains(class), "missing {class} in:\n{out}");
        }
        assert!(out.contains("in-model"), "{out}");
    }

    #[test]
    fn run_with_arq_and_recover_stays_safe() {
        let out = run_cli(argv(
            "run --alg a2 --topo line:5 --horizon 12000 --arq --victim 2 --recover 6000",
        ))
        .unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
        assert!(out.contains("arq shim"), "{out}");
        assert!(out.contains("recoveries        : 1"), "{out}");
    }

    #[test]
    fn chaos_jsonl_is_byte_identical_across_job_counts() {
        let dir = std::env::temp_dir().join("lme-cli-test-chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("j1.jsonl");
        let p4 = dir.join("j4.jsonl");
        let a = run_cli(argv(&format!(
            "chaos --alg a2 --topo line:5 --horizon 6000 --seed 11 --seeds 2 \
             --jobs 1 --metrics-out {}",
            p1.display()
        )))
        .unwrap();
        let b = run_cli(argv(&format!(
            "chaos --alg a2 --topo line:5 --horizon 6000 --seed 11 --seeds 2 \
             --jobs 4 --metrics-out {}",
            p4.display()
        )))
        .unwrap();
        // Neither the rendered report nor the JSONL may depend on --jobs.
        assert_eq!(
            a.replace(&p1.display().to_string(), "<out>"),
            b.replace(&p4.display().to_string(), "<out>")
        );
        let j1 = std::fs::read(&p1).unwrap();
        let j4 = std::fs::read(&p4).unwrap();
        assert!(!j1.is_empty());
        assert_eq!(j1, j4, "chaos JSONL must be byte-identical across --jobs");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn chaos_rejects_manual_fault_flags() {
        assert!(run_cli(argv("chaos --topo line:5 --fault-drop 0.5")).is_err());
        // The channel belongs to chaos too (burst-loss arms it).
        assert!(run_cli(argv("chaos --topo line:5 --channel bandwidth:2")).is_err());
    }

    #[test]
    fn run_under_every_channel_model_stays_safe() {
        for channel in ["bandwidth:2", "shared:2", "gilbert:0.05:0.25"] {
            let arq = if channel.starts_with("gilbert") {
                " --arq"
            } else {
                ""
            };
            let out = run_cli(argv(&format!(
                "run --alg a2 --topo ring:5 --horizon 8000 --channel {channel}{arq}"
            )))
            .unwrap();
            assert!(out.contains("safety violations : 0"), "{channel}: {out}");
        }
    }

    #[test]
    fn sweep_with_mix_is_jobs_invariant() {
        let a = run_cli(argv(
            "sweep --alg a2 --topo random:10:3 --horizon 6000 --seeds 2 --mix 0.5:0.25 --jobs 1",
        ))
        .unwrap();
        let b = run_cli(argv(
            "sweep --alg a2 --topo random:10:3 --horizon 6000 --seeds 2 --mix 0.5:0.25 --jobs 4",
        ))
        .unwrap();
        assert_eq!(a.replace("1 jobs", "N jobs"), b.replace("4 jobs", "N jobs"));
        assert!(a.contains("A2"), "{a}");
    }

    #[test]
    fn bench_channel_writes_the_matrix() {
        let dir = std::env::temp_dir().join("lme-cli-test-bench-channel");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("channel.json");
        let out = run_cli(argv(&format!(
            "bench channel --alg a2 --horizon 6000 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("results written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        for model in [
            "iid",
            "constant-bandwidth",
            "shared-medium",
            "gilbert-elliott",
        ] {
            assert!(json.contains(&format!("\"model\": \"{model}\"")), "{json}");
        }
        for topo in ["clique:8", "ring:8"] {
            assert!(json.contains(&format!("\"topo\": \"{topo}\"")), "{json}");
        }
        assert!(json.matches("\"violations\": 0").count() == 8, "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_intact_algorithm_is_clean() {
        let out = run_cli(argv(
            "check --alg a1-greedy --nodes 2 --steps 64 --depth 6 --horizon 4000",
        ))
        .unwrap();
        assert!(out.contains("no property violations"), "{out}");
        assert!(out.contains("strategy dfs"), "{out}");
    }

    #[test]
    fn check_finds_the_mutation_and_replays_it_jobs_invariant() {
        let dir = std::env::temp_dir().join("lme-cli-test-check");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("witness.json");
        let out = run_cli(argv(&format!(
            "check --alg a1-greedy --topo line:3 --mutate no-sdf-guard \
             --horizon 4000 --witness-out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("VIOLATION lme-safety"), "{out}");
        assert!(out.contains("witness written to"), "{out}");
        let a = run_cli(argv(&format!("check --replay {} --jobs 1", path.display()))).unwrap();
        let b = run_cli(argv(&format!("check --replay {} --jobs 4", path.display()))).unwrap();
        assert!(a.contains("violation reproduced: lme-safety"), "{a}");
        assert!(a.contains("trace ("), "{a}");
        assert_eq!(a, b, "witness replay must not depend on --jobs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_sampling_strategies_run_via_the_cli() {
        for strategy in ["random", "pct"] {
            let out = run_cli(argv(&format!(
                "check --alg a2 --nodes 3 --strategy {strategy} --seeds 2 --horizon 4000",
            )))
            .unwrap();
            assert!(out.contains("no property violations"), "{strategy}: {out}");
            assert!(out.contains("(all requested walks)"), "{strategy}: {out}");
        }
    }

    #[test]
    fn check_rejects_mutation_on_non_a1_algorithms() {
        assert!(run_cli(argv("check --alg a2 --nodes 2 --mutate no-sdf-guard")).is_err());
    }

    #[test]
    fn check_replay_rejects_conflicting_flags_with_a_structured_error() {
        let dir = std::env::temp_dir().join("lme-cli-test-replay-conflict");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("witness.json");
        run_cli(argv(&format!(
            "check --alg a1-greedy --topo line:3 --mutate no-sdf-guard \
             --horizon 4000 --witness-out {}",
            path.display()
        )))
        .unwrap();
        // Explicit flags that MATCH the witness replay fine.
        let ok = run_cli(argv(&format!(
            "check --alg a1-greedy --horizon 4000 --replay {}",
            path.display()
        )))
        .unwrap();
        assert!(ok.contains("violation reproduced: lme-safety"), "{ok}");
        // Conflicting flags are a structured error naming each flag.
        let err =
            run_cli(argv(&format!("check --alg a2 --replay {}", path.display()))).unwrap_err();
        assert!(err.contains("--alg"), "{err}");
        assert!(err.contains("witness"), "{err}");
        let err = run_cli(argv(&format!(
            "check --topo line:4 --seed 99 --replay {}",
            path.display()
        )))
        .unwrap_err();
        assert!(err.contains("--topo") && err.contains("--seed"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_certify_writes_a_holding_certificate() {
        let dir = std::env::temp_dir().join("lme-cli-test-certify");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cert.json");
        let out = run_cli(argv(&format!(
            "check --alg a2 --topo line:2 --certify --horizon 300 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("extremal schedule space exhausted"), "{out}");
        assert!(out.contains("certificate       : holds"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"holds\":true"), "{json}");
        assert!(json.contains("\"space\":\"extremal\""), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_liveness_lasso_is_found_for_the_unfair_fork_mutation_only() {
        let starved = run_cli(argv(
            "check --alg a2 --topo clique:3 --mutate unfair-fork --liveness \
             --think 10..10 --steps 8 --horizon 4000",
        ))
        .unwrap();
        assert!(starved.contains("VIOLATION starvation-lasso"), "{starved}");
        let intact = run_cli(argv(
            "check --alg a2 --topo clique:3 --liveness --think 10..10 \
             --steps 8 --horizon 4000",
        ))
        .unwrap();
        assert!(intact.contains("no property violations"), "{intact}");
    }

    #[test]
    fn bench_scale_records_sublinear_grid_cost() {
        let dir = std::env::temp_dir().join("lme-cli-test-bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scale.json");
        let out = run_cli(argv(&format!(
            "bench scale --ns 64,256 --steps-per-n 200 --pairwise-cap 256 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("trajectory written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        // The pairwise engine examines exactly n − 1 candidates per step.
        assert!(json.contains("\"candidates_per_step\": 63.00"), "{json}");
        assert!(json.contains("\"candidates_per_step\": 255.00"), "{json}");
        // The grid engine's candidate count tracks local density (≈ 30 at
        // 1.6 nodes per unit² and range 1.5), independent of n.
        for line in json.lines().filter(|l| l.contains("\"engine\": \"grid\"")) {
            let c = line
                .split("\"candidates_per_step\": ")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap();
            assert!(c < 64.0, "grid candidates/step {c} not local:\n{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mobile_run_stays_safe() {
        let out = run_cli(argv(
            "run --alg a1-linial --topo random:12:3 --moves 4 --horizon 12000",
        ))
        .unwrap();
        assert!(out.contains("safety violations : 0"), "{out}");
    }
}
