//! `lme` — command-line front end; see `lme list`.

fn main() {
    match lme_cli::run_cli(std::env::args()) {
        Ok(report) => print!("{report}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}
