//! Tiny summary statistics for experiment reporting.

use std::fmt;

/// Five-number-ish summary of a sample of tick counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarize `values` (empty input yields the zero summary).
    pub fn of(values: &[u64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        let count = v.len();
        let mean = v.iter().sum::<u64>() as f64 / count as f64;
        Summary {
            count,
            mean,
            p50: v[(count - 1) / 2],
            p95: v[((count - 1) * 95) / 100],
            max: *v.last().expect("non-empty"),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.0} p50={} p95={} max={}",
            self.count, self.mean, self.p50, self.p95, self.max
        )
    }
}

/// Jain's fairness index of a per-node allocation: `(Σx)² / (n·Σx²)`.
/// 1.0 = perfectly even; `1/n` = one node got everything. Used to report
/// how evenly critical sections are distributed.
///
/// ```
/// assert_eq!(harness::stats::jain_index(&[5, 5, 5]), 1.0);
/// assert!(harness::stats::jain_index(&[9, 0, 0]) < 0.36);
/// ```
pub fn jain_index(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|&v| v as f64).sum();
    let sum_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[3, 3, 3, 3]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[10, 0, 0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[5, 1, 3, 2, 4]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
    }

    #[test]
    fn percentile_bounds() {
        let v: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&v);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.max, 100);
    }
}
