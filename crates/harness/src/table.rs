//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple left-aligned text table.
///
/// ```
/// use harness::table::Table;
/// let mut t = Table::new(&["algorithm", "RT p50"]);
/// t.row(["A2", "142"]);
/// let s = t.to_string();
/// assert!(s.contains("algorithm"));
/// assert!(s.contains("A2"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: ToString>(headers: &[S]) -> Table {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let mut r: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Render as CSV (RFC-4180-style quoting) for downstream plotting.
    ///
    /// ```
    /// use harness::table::Table;
    /// let mut t = Table::new(&["a", "b"]);
    /// t.row(["x,y", "2"]);
    /// assert_eq!(t.to_csv(), "a,b\n\"x,y\",2\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let rendered: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&rendered.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = w.iter().map(|&n| "-".repeat(n)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(&["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with \"quotes\"", "2,3"]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,value\nplain,1\n\"with \"\"quotes\"\"\",\"2,3\"\n"
        );
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(["wide-cell", "x"]);
        t.row(["y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines
            .windows(2)
            .all(|w| w[0].len() == w[1].len() || w[1].trim_end().len() <= w[0].len()));
        assert!(lines[1].starts_with("---"));
    }
}
