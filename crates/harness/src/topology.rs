//! Topology generators for experiments.
//!
//! All generators target the default radio range of 1.5 distance units: they
//! place nodes so that exactly the intended pairs fall within range.

use manet_sim::SimRng;

/// A line (path graph): `p_i — p_{i+1}`, unit spacing.
pub fn line(n: usize) -> Vec<(f64, f64)> {
    (0..n).map(|i| (i as f64, 0.0)).collect()
}

/// A ring (cycle graph): adjacent members at distance 1.0.
///
/// # Panics
///
/// Panics if `n < 3` (smaller rings are not cycles).
pub fn ring(n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let radius = 1.0 / (2.0 * (std::f64::consts::PI / n as f64).sin());
    (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            (radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// A `w × h` grid with 4-neighbor connectivity (spacing 1.2: the diagonal
/// `1.2·√2 ≈ 1.70` exceeds the 1.5 radio range).
pub fn grid(w: usize, h: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            out.push((x as f64 * 1.2, y as f64 * 1.2));
        }
    }
    out
}

/// A clique: `n` nodes packed into a disc of diameter < 1.5 so everyone
/// hears everyone (maximum-contention topology, δ = n − 1).
pub fn clique(n: usize) -> Vec<(f64, f64)> {
    if n == 1 {
        return vec![(0.0, 0.0)];
    }
    let radius = 0.6;
    (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            (radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// `n` points uniform in a square of side `side` (a random unit-disk graph
/// once the 1.5 radio range is applied). Deterministic in `seed`.
pub fn random_points(n: usize, side: f64, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_f64() * side, rng.gen_f64() * side))
        .collect()
}

/// A random unit-disk graph with average density tuned to be connected with
/// high probability: side = √(n / 1.6), i.e. ≈ 1.6 nodes per unit square
/// against the 1.5 radio range (≈ 11 expected neighbors).
pub fn random_connected(n: usize, seed: u64) -> Vec<(f64, f64)> {
    random_points(n, (n as f64 / 1.6).sqrt().max(1.0), seed)
}

/// Edge list of a true star: node 0 is the hub, nodes `1..=leaves` are
/// leaves adjacent only to the hub. Unit-disk geometry cannot embed stars
/// with more than five leaves, so star experiments use the explicit-graph
/// engine ([`manet_sim::World::from_adjacency`]). Returns `(n, edges)`.
pub fn star_edges(leaves: usize) -> (usize, Vec<(u32, u32)>) {
    (leaves + 1, (1..=leaves as u32).map(|i| (0, i)).collect())
}

/// Edge list of a complete binary tree on `n` nodes (node 0 the root,
/// children of `i` at `2i+1`, `2i+2`). Returns `(n, edges)`.
pub fn binary_tree_edges(n: usize) -> (usize, Vec<(u32, u32)>) {
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for c in [2 * i + 1, 2 * i + 2] {
            if (c as usize) < n {
                edges.push((i, c));
            }
        }
    }
    (n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{NodeId, World};

    fn world(pos: Vec<(f64, f64)>) -> World {
        World::new(1.5, pos.into_iter().map(Into::into).collect())
    }

    #[test]
    fn line_is_a_path() {
        let w = world(line(5));
        assert_eq!(w.max_degree(), 2);
        assert_eq!(w.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(w.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
    }

    #[test]
    fn ring_is_a_cycle() {
        for n in [3usize, 5, 8, 16] {
            let w = world(ring(n));
            for i in 0..n as u32 {
                assert_eq!(w.neighbors(NodeId(i)).len(), 2, "ring({n}) node {i}");
            }
        }
    }

    #[test]
    fn grid_is_four_connected() {
        let w = world(grid(4, 4));
        assert_eq!(w.max_degree(), 4);
        // Corner has 2 neighbors.
        assert_eq!(w.neighbors(NodeId(0)).len(), 2);
        // Center has 4.
        assert_eq!(w.neighbors(NodeId(5)).len(), 4);
    }

    #[test]
    fn clique_is_complete() {
        for n in [1usize, 2, 5, 10] {
            let w = world(clique(n));
            for i in 0..n as u32 {
                assert_eq!(w.neighbors(NodeId(i)).len(), n - 1, "clique({n})");
            }
        }
    }

    #[test]
    fn star_and_tree_edges() {
        let (n, edges) = star_edges(6);
        assert_eq!(n, 7);
        assert_eq!(edges.len(), 6);
        let w = World::from_adjacency(n, &edges);
        assert_eq!(w.neighbors(NodeId(0)).len(), 6);
        assert_eq!(w.neighbors(NodeId(3)), &[NodeId(0)]);

        let (n, edges) = binary_tree_edges(7);
        let w = World::from_adjacency(n, &edges);
        assert_eq!(w.neighbors(NodeId(0)).len(), 2);
        assert_eq!(w.neighbors(NodeId(1)).len(), 3); // parent + 2 children
        assert_eq!(w.neighbors(NodeId(6)), &[NodeId(2)]);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        assert_eq!(random_points(10, 5.0, 42), random_points(10, 5.0, 42));
        assert_ne!(random_points(10, 5.0, 42), random_points(10, 5.0, 43));
    }

    #[test]
    fn random_connected_is_usually_connected() {
        let w = world(random_connected(40, 7));
        let reachable = (1..40u32)
            .filter(|&i| w.hop_distance(NodeId(0), NodeId(i)).is_some())
            .count();
        assert!(reachable >= 35, "only {reachable}/39 reachable");
    }
}
