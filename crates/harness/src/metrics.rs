//! Response-time and progress metrics.

use std::cell::RefCell;
use std::rc::Rc;

use manet_sim::{DiningState, Hook, NodeId, SimTime, Sink, View};

/// One completed hungry→eating episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The node that ate.
    pub node: NodeId,
    /// When it became hungry.
    pub hungry_at: SimTime,
    /// When it started eating.
    pub eat_at: SimTime,
    /// Whether the node moved (or was demoted by mobility) during the
    /// episode. Definition 1 of the paper bounds response time only for
    /// nodes that stay static, so experiments usually filter on this.
    pub moved: bool,
    /// Messages delivered to or from the node during the episode — the
    /// empirical message complexity of this CS entry (Section 5 of the
    /// paper counts messages per eating session the same way).
    pub msgs: u64,
}

impl Sample {
    /// The episode's response time in ticks.
    pub fn response(&self) -> u64 {
        self.eat_at - self.hungry_at
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    since: SimTime,
    moved: bool,
    msgs: u64,
}

/// Data collected by the [`Metrics`] hook, shared via `Rc<RefCell<_>>`.
#[derive(Clone, Debug, Default)]
pub struct MetricsData {
    /// All completed episodes in completion order.
    pub samples: Vec<Sample>,
    /// Completed critical sections per node.
    pub meals: Vec<u64>,
    pending: Vec<Option<Pending>>,
}

impl MetricsData {
    /// Response times of episodes where the node stayed static.
    pub fn static_responses(&self) -> Vec<u64> {
        self.samples
            .iter()
            .filter(|s| !s.moved)
            .map(Sample::response)
            .collect()
    }

    /// Response times of all episodes.
    pub fn all_responses(&self) -> Vec<u64> {
        self.samples.iter().map(Sample::response).collect()
    }

    /// Per-episode message counts (the message complexity of each CS
    /// entry), in completion order.
    pub fn msg_complexities(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.msgs).collect()
    }

    /// Nodes still hungry, with the time they became hungry; sorted by ID.
    pub fn still_hungry(&self) -> Vec<(NodeId, SimTime)> {
        self.pending
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (NodeId(i as u32), p.since)))
            .collect()
    }

    /// Nodes that have been hungry since before `deadline` — the empirical
    /// notion of starvation used by the failure-locality probes.
    pub fn starving_since(&self, deadline: SimTime) -> Vec<NodeId> {
        self.still_hungry()
            .into_iter()
            .filter(|&(_, since)| since <= deadline)
            .map(|(n, _)| n)
            .collect()
    }
}

/// Hook recording hungry→eating latencies, meals, and mobility flags.
#[derive(Debug)]
pub struct Metrics {
    data: Rc<RefCell<MetricsData>>,
}

impl Metrics {
    /// Create the hook and the shared handle to its data.
    pub fn new(n_nodes: usize) -> (Metrics, Rc<RefCell<MetricsData>>) {
        let data = Rc::new(RefCell::new(MetricsData {
            samples: Vec::new(),
            meals: vec![0; n_nodes],
            pending: vec![None; n_nodes],
        }));
        (Metrics { data: data.clone() }, data)
    }
}

impl<M> Hook<M> for Metrics {
    fn on_state_change(
        &mut self,
        view: &View<'_>,
        node: NodeId,
        old: DiningState,
        new: DiningState,
        _sink: &mut Sink,
    ) {
        let mut d = self.data.borrow_mut();
        match (old, new) {
            (DiningState::Thinking, DiningState::Hungry) => {
                d.pending[node.index()] = Some(Pending {
                    since: view.time(),
                    moved: view.world().is_moving(node),
                    msgs: 0,
                });
            }
            (DiningState::Eating, DiningState::Hungry) => {
                // Mobility demotion: the node restarts its quest; count the
                // new episode as a moved one.
                d.pending[node.index()] = Some(Pending {
                    since: view.time(),
                    moved: true,
                    msgs: 0,
                });
            }
            (DiningState::Hungry, DiningState::Eating) => {
                if let Some(p) = d.pending[node.index()].take() {
                    d.samples.push(Sample {
                        node,
                        hungry_at: p.since,
                        eat_at: view.time(),
                        moved: p.moved,
                        msgs: p.msgs,
                    });
                }
            }
            (DiningState::Thinking, DiningState::Eating) => {
                // The node got hungry and ate within a single handler (all
                // forks already in hand): a zero-latency episode.
                d.samples.push(Sample {
                    node,
                    hungry_at: view.time(),
                    eat_at: view.time(),
                    moved: view.world().is_moving(node),
                    msgs: 0,
                });
            }
            (DiningState::Eating, DiningState::Thinking) => {
                d.meals[node.index()] += 1;
            }
            _ => {}
        }
    }

    fn on_deliver(
        &mut self,
        _view: &View<'_>,
        from: NodeId,
        to: NodeId,
        _msg: &M,
        _sink: &mut Sink,
    ) {
        // Every delivery is charged to the open episodes of both endpoints:
        // a hungry node pays for the traffic its quest causes in either
        // direction.
        let mut d = self.data.borrow_mut();
        for node in [from, to] {
            if let Some(p) = d.pending[node.index()].as_mut() {
                p.msgs += 1;
            }
        }
    }

    fn on_recover(&mut self, _view: &View<'_>, node: NodeId, _sink: &mut Sink) {
        // Any episode left open by the dead incarnation belongs to it, not
        // to the fresh protocol instance (which starts Thinking).
        self.data.borrow_mut().pending[node.index()] = None;
    }

    fn on_move(&mut self, _view: &View<'_>, node: NodeId, started: bool, _sink: &mut Sink) {
        if started {
            let mut d = self.data.borrow_mut();
            if let Some(p) = d.pending[node.index()].as_mut() {
                p.moved = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Command, Context, Engine, Event, Protocol, SimConfig};

    struct Instant(DiningState);
    impl Protocol for Instant {
        type Msg = ();
        fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
            match ev {
                Event::Hungry => self.0 = DiningState::Eating,
                Event::ExitCs => self.0 = DiningState::Thinking,
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.0
        }
    }

    #[test]
    fn records_episodes_and_meals() {
        let mut e: Engine<Instant> = Engine::new(SimConfig::default(), vec![(0.0, 0.0)], |_| {
            Instant(DiningState::Thinking)
        });
        let (hook, data) = Metrics::new(1);
        e.add_hook(Box::new(hook));
        e.set_hungry_at(SimTime(5), NodeId(0));
        e.schedule(
            SimTime(25),
            Command::ExitCs {
                node: NodeId(0),
                session: 1,
            },
        );
        e.run_until(SimTime(100));
        let d = data.borrow();
        assert_eq!(d.samples.len(), 1);
        assert_eq!(d.samples[0].response(), 0); // Instant eats at once
        assert_eq!(d.meals[0], 1);
        assert!(d.still_hungry().is_empty());
    }

    #[test]
    fn starving_detection() {
        let mut e: Engine<Instant> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (100.0, 0.0)], |_| {
                Instant(DiningState::Thinking)
            });
        let (hook, data) = Metrics::new(2);
        e.add_hook(Box::new(hook));
        // Crash p1 first: its Hungry command is then ignored, so p1 never
        // transitions and (trivially) never registers as hungry; p0 becomes
        // hungry and "starves" only until it eats instantly. Use p0 as the
        // still-hungry probe by never letting it eat: crash it right after
        // it is made hungry? Simpler: make p0 hungry and check bookkeeping.
        e.set_hungry_at(SimTime(5), NodeId(0));
        e.run_until(SimTime(50));
        let d = data.borrow();
        // Instant protocol eats immediately, so nothing is starving.
        assert!(d.starving_since(SimTime(10)).is_empty());
        assert_eq!(d.samples.len(), 1);
    }
}
