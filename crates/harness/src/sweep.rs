//! Parallel, deterministic sweep executor.
//!
//! A sweep fans a grid of `(algorithm, seed)` cells over a fixed topology
//! across `std::thread::scope` workers. Each cell is one independent,
//! single-threaded [`Engine`](manet_sim::Engine) run — embarrassingly
//! parallel, zero dependencies. Determinism is by construction:
//!
//! * the cell grid (and therefore the report order) is a pure function of
//!   the [`SweepSpec`], computed before any worker starts;
//! * every cell derives all of its randomness from its own seed;
//! * workers claim cells through an atomic cursor and return `(index,
//!   report)` pairs over a channel; results are slotted back by index,
//!   so the output order never depends on worker scheduling.
//!
//! Hence [`SweepReport::jsonl`] is byte-identical for any `jobs` value and
//! across repeated runs of the same spec.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use manet_sim::{Command, NodeId, SimConfig, SimTime};

use crate::failure_locality::analyze_crash;
use crate::mobility::{MobilityMix, WaypointPlan};
use crate::report::{RunReport, SweepReport};
use crate::runner::{run_algorithm, run_algorithm_graph, AlgKind, RunSpec};

/// A topology a sweep cell runs on.
#[derive(Clone, Debug)]
pub enum Topo {
    /// Unit-disk geometry: node positions (links follow the radio range).
    Geo(Vec<(f64, f64)>),
    /// Explicit graph: `n` nodes wired exactly by `edges` (movement
    /// commands are rejected by such worlds).
    Graph {
        /// Node count.
        n: usize,
        /// Undirected edges.
        edges: Vec<(u32, u32)>,
    },
}

impl Topo {
    /// Node count of the topology.
    pub fn len(&self) -> usize {
        match self {
            Topo::Geo(p) => p.len(),
            Topo::Graph { n, .. } => *n,
        }
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a sweep cell measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Job {
    /// A plain run: workload only.
    Run,
    /// A failure-locality probe: crash `victim` the first time it eats at
    /// or after `crash_at`, then report starvation distances.
    Probe {
        /// The node to crash mid-CS.
        victim: NodeId,
        /// Earliest crash time.
        crash_at: u64,
    },
}

/// One independent unit of sweep work: an algorithm, a fully-seeded
/// [`RunSpec`], a topology, and optional pre-scheduled commands.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Group label carried into the report (e.g. the topology name).
    pub label: String,
    /// Algorithm under test.
    pub kind: AlgKind,
    /// Run parameters; `spec.sim.seed` is this cell's seed.
    pub spec: RunSpec,
    /// Topology to run on.
    pub topo: Topo,
    /// Commands (mobility, crashes) scheduled before the run starts.
    pub commands: Vec<(SimTime, Command)>,
    /// Plain run or crash probe.
    pub job: Job,
}

impl SweepCell {
    /// Execute the cell to completion and report it.
    pub fn run(&self) -> RunReport {
        let spec = match self.job {
            Job::Run => self.spec.clone(),
            Job::Probe { victim, crash_at } => RunSpec {
                crash_eating: Some((victim, crash_at)),
                ..self.spec.clone()
            },
        };
        let outcome = match &self.topo {
            Topo::Geo(positions) => run_algorithm(self.kind, &spec, positions, &self.commands),
            Topo::Graph { n, edges } => {
                run_algorithm_graph(self.kind, &spec, *n, edges, &self.commands)
            }
        };
        let probe = match self.job {
            // Plain runs still report starvation (continuously hungry
            // through the back half of the horizon) so fault sweeps can
            // flag stalls; locality stays probe-only.
            Job::Run => {
                let starving = outcome
                    .metrics
                    .starving_since(SimTime(spec.horizon / 2))
                    .len();
                Some((starving, None))
            }
            Job::Probe { victim, crash_at } => {
                let fl = analyze_crash(outcome, victim, crash_at, spec.horizon);
                let probe = (fl.starving.len(), fl.locality);
                return RunReport::from_outcome(
                    &self.label,
                    self.kind.name(),
                    spec.sim.seed,
                    spec.horizon,
                    &fl.outcome,
                    Some(probe),
                );
            }
        };
        RunReport::from_outcome(
            &self.label,
            self.kind.name(),
            spec.sim.seed,
            spec.horizon,
            &outcome,
            probe,
        )
    }
}

/// A declarative sweep: `kinds × seeds` cells over one topology.
///
/// Build with [`SweepSpec::new`], chain the setters, then [`run`]
/// (parallel) or [`cells`] (inspect the grid). Cell order — and therefore
/// report and JSONL order — is kind-major, seed-minor.
///
/// [`run`]: SweepSpec::run
/// [`cells`]: SweepSpec::cells
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Group label stamped on every report.
    pub label: String,
    /// Topology shared by all cells.
    pub topo: Topo,
    /// Template run parameters; each cell overrides `sim.seed`.
    pub base: RunSpec,
    /// Algorithms to sweep (grid's major axis).
    pub kinds: Vec<AlgKind>,
    /// Seeds to sweep (grid's minor axis).
    pub seeds: Vec<u64>,
    /// Random-waypoint template; each cell re-seeds it with its own seed.
    pub moves: Option<WaypointPlan>,
    /// Heterogeneous mobility-mix template; each cell re-seeds it with its
    /// own seed. Takes precedence over `moves` when both are set.
    pub mix: Option<MobilityMix>,
    /// Plain runs or crash probes.
    pub job: Job,
}

impl SweepSpec {
    /// A sweep of `base` over `topo`, initially with no algorithms and the
    /// single seed of `base.sim`.
    pub fn new(label: impl Into<String>, topo: Topo, base: RunSpec) -> SweepSpec {
        SweepSpec {
            label: label.into(),
            seeds: vec![base.sim.seed],
            topo,
            base,
            kinds: Vec::new(),
            moves: None,
            mix: None,
            job: Job::Run,
        }
    }

    /// Set the algorithms to sweep.
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = AlgKind>) -> SweepSpec {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Set the seeds to sweep.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// `count` consecutive seeds starting at `first`.
    pub fn seed_range(self, first: u64, count: u64) -> SweepSpec {
        self.seeds(first..first + count)
    }

    /// Attach a random-waypoint mobility script; its RNG is re-seeded from
    /// each cell's seed so every cell gets its own (deterministic)
    /// movement schedule.
    pub fn moves(mut self, plan: WaypointPlan) -> SweepSpec {
        self.moves = Some(plan);
        self
    }

    /// Attach a heterogeneous mobility mix; like [`SweepSpec::moves`], its
    /// RNG is re-seeded from each cell's seed. Wins over `moves` when both
    /// are set.
    pub fn mix(mut self, mix: MobilityMix) -> SweepSpec {
        self.mix = Some(mix);
        self
    }

    /// Turn every cell into a crash probe.
    pub fn probe(mut self, victim: NodeId, crash_at: u64) -> SweepSpec {
        self.job = Job::Probe { victim, crash_at };
        self
    }

    /// Materialize the cell grid (kind-major, seed-minor) — a pure
    /// function of the spec.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.kinds.len() * self.seeds.len());
        for &kind in &self.kinds {
            for &seed in &self.seeds {
                let spec = RunSpec {
                    sim: SimConfig {
                        seed,
                        ..self.base.sim.clone()
                    },
                    ..self.base.clone()
                };
                let commands = match (&self.mix, &self.moves) {
                    (Some(mix), _) => {
                        let mix = MobilityMix {
                            seed,
                            ..mix.clone()
                        };
                        mix.commands(self.topo.len())
                    }
                    (None, Some(plan)) => {
                        let plan = WaypointPlan {
                            seed,
                            ..plan.clone()
                        };
                        plan.commands(self.topo.len())
                    }
                    (None, None) => Vec::new(),
                };
                cells.push(SweepCell {
                    label: self.label.clone(),
                    kind,
                    spec,
                    topo: self.topo.clone(),
                    commands,
                    job: self.job,
                });
            }
        }
        cells
    }

    /// Run the whole grid across `jobs` workers. The report is in cell
    /// order no matter the worker count; `jobs = 1` runs inline.
    pub fn run(&self, jobs: usize) -> SweepReport {
        run_cells(&self.cells(), jobs)
    }
}

/// Run pre-built cells across `jobs` workers, reports in input order.
pub fn run_cells(cells: &[SweepCell], jobs: usize) -> SweepReport {
    SweepReport {
        runs: par_map(cells, jobs, SweepCell::run),
    }
}

/// Number of workers to default to: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` using `jobs` scoped worker threads, returning
/// results in input order.
///
/// Workers claim indices from an atomic cursor (dynamic load balancing —
/// long cells don't stall a fixed stripe) and send `(index, result)` pairs
/// through a channel; the collector slots them back by index. As long as
/// `f` is a pure function of its item, the output is identical for every
/// `jobs` value. With `jobs <= 1` the items are mapped inline on the
/// calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A send only fails if the collector hung up, which it
                // cannot before all workers finish.
                let _ = tx.send((i, f(item)));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn par_map_preserves_order_and_results() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(&items, 1, |&x| x * x);
        for jobs in [2, 3, 8] {
            assert_eq!(par_map(&items, jobs, |&x| x * x), serial, "jobs={jobs}");
        }
        assert_eq!(serial[36], 36 * 36);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn grid_order_is_kind_major_seed_minor() {
        let spec = SweepSpec::new("g", Topo::Geo(topology::line(3)), RunSpec::default())
            .kinds([AlgKind::A2, AlgKind::ChandyMisra])
            .seeds([10, 11]);
        let cells = spec.cells();
        let grid: Vec<(&'static str, u64)> = cells
            .iter()
            .map(|c| (c.kind.name(), c.spec.sim.seed))
            .collect();
        assert_eq!(
            grid,
            vec![
                ("A2", 10),
                ("A2", 11),
                ("chandy-misra", 10),
                ("chandy-misra", 11)
            ]
        );
    }

    #[test]
    fn sweep_jsonl_is_identical_across_job_counts() {
        let spec = SweepSpec::new(
            "line5",
            Topo::Geo(topology::line(5)),
            RunSpec {
                horizon: 3_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seed_range(1, 4);
        let serial = spec.run(1).jsonl();
        let parallel = spec.run(4).jsonl();
        assert_eq!(serial, parallel);
        assert_eq!(serial.lines().count(), 4);
    }

    #[test]
    fn probe_cells_report_locality_fields() {
        let spec = SweepSpec::new(
            "line7",
            Topo::Geo(topology::line(7)),
            RunSpec {
                horizon: 20_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seeds([5])
        .probe(NodeId(3), 1_000);
        let report = spec.run(2);
        assert_eq!(report.runs.len(), 1);
        // A2's locality is at most 2 whenever anyone starves at all.
        if let Some(m) = report.runs[0].locality {
            assert!(m <= 2, "locality {m}");
        }
        assert!(report.runs[0].to_jsonl().contains("\"starving\""));
    }

    #[test]
    fn budget_overrun_cell_aborts_without_sinking_its_siblings() {
        // Three identical cells except the middle one's event budget is far
        // too small to finish. The old engine panicked there, and par_map
        // propagates worker panics — the whole sweep would have died. Now
        // the overrun is a structured abort on that one report.
        let spec = SweepSpec::new(
            "line5",
            Topo::Geo(topology::line(5)),
            RunSpec {
                horizon: 3_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seeds([1, 2, 3]);
        let mut cells = spec.cells();
        cells[1].spec.sim.max_events = 40;
        let report = run_cells(&cells, 2);
        assert_eq!(report.runs.len(), 3);
        let aborted = &report.runs[1];
        assert!(
            aborted
                .abort
                .as_deref()
                .is_some_and(|a| a.contains("event budget exceeded")),
            "abort: {:?}",
            aborted.abort
        );
        assert!(aborted
            .to_jsonl()
            .contains("\"abort\":\"event budget exceeded"));
        for sibling in [&report.runs[0], &report.runs[2]] {
            assert_eq!(sibling.abort, None);
            assert!(sibling.meals > 0);
            assert!(sibling.to_jsonl().ends_with(
                "\"abort\":null,\"retransmissions\":0,\"acks_sent\":0,\
                 \"recoveries\":0,\"buffer_high_water\":0,\"frames_queued\":0,\
                 \"queue_peak\":0,\"burst_transitions\":0,\"frames_lost\":0}"
            ));
        }
    }

    #[test]
    fn mix_cells_run_deterministically_and_stay_safe() {
        let spec = SweepSpec::new(
            "line6",
            Topo::Geo(topology::line(6)),
            RunSpec {
                horizon: 5_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seeds([1, 2])
        .mix(MobilityMix {
            static_frac: 0.5,
            highway_frac: 0.25,
            ..MobilityMix::default()
        });
        let serial = spec.run(1);
        assert_eq!(serial.jsonl(), spec.run(4).jsonl());
        assert!(serial.runs.iter().all(|r| r.violations == 0));
        // The mix is re-seeded per cell, so the two seeds see different
        // movement schedules.
        let cells = spec.cells();
        assert_ne!(cells[0].commands, cells[1].commands);
        assert!(!cells[0].commands.is_empty());
    }

    #[test]
    fn graph_topology_cells_run() {
        let (n, edges) = topology::star_edges(5);
        let spec = SweepSpec::new(
            "star5",
            Topo::Graph { n, edges },
            RunSpec {
                horizon: 3_000,
                ..RunSpec::default()
            },
        )
        .kinds([AlgKind::A2])
        .seeds([1, 2]);
        let report = spec.run(2);
        assert_eq!(report.runs.len(), 2);
        assert!(report.runs.iter().all(|r| r.violations == 0));
        assert!(report.runs.iter().all(|r| r.meals > 0));
    }
}
