//! Workload hooks: the "application layer" of the paper's model.

use std::ops::RangeInclusive;

use manet_sim::{Command, DiningState, Hook, NodeId, SimRng, Sink, View};

/// Drives the thinking→hungry and eating→thinking transitions: every node
/// eats for a time drawn from `eat` (≤ τ) and, when `cyclic`, becomes
/// hungry again after a think time drawn from `think`.
///
/// Initial hungry times are injected by the runner (or tests) via
/// [`manet_sim::Engine::set_hungry_at`]; this hook takes over afterwards.
#[derive(Debug)]
pub struct Workload {
    eat: RangeInclusive<u64>,
    think: RangeInclusive<u64>,
    cyclic: bool,
    rng: SimRng,
}

impl Workload {
    /// A cyclic workload: eat `eat` ticks, think `think` ticks, repeat.
    pub fn cyclic(eat: RangeInclusive<u64>, think: RangeInclusive<u64>, seed: u64) -> Workload {
        Workload {
            eat,
            think,
            cyclic: true,
            rng: SimRng::seed_from_u64(seed ^ 0x574b_4c44),
        }
    }

    /// A one-shot workload: each node eats once per external `SetHungry`.
    pub fn one_shot(eat: RangeInclusive<u64>, seed: u64) -> Workload {
        Workload {
            eat,
            think: 0..=0,
            cyclic: false,
            rng: SimRng::seed_from_u64(seed ^ 0x574b_4c44),
        }
    }
}

impl<M> Hook<M> for Workload {
    fn on_state_change(
        &mut self,
        view: &View<'_>,
        node: NodeId,
        _old: DiningState,
        new: DiningState,
        sink: &mut Sink,
    ) {
        match new {
            DiningState::Eating => {
                let eat = self.rng.gen_range(self.eat.clone()).max(1);
                sink.at(
                    view.time() + eat,
                    Command::ExitCs {
                        node,
                        session: view.eating_session(node),
                    },
                );
            }
            DiningState::Thinking if self.cyclic => {
                let think = self.rng.gen_range(self.think.clone()).max(1);
                sink.at(view.time() + think, Command::SetHungry(node));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Context, Engine, Event, Protocol, SimConfig, SimTime};

    struct Instant(DiningState);
    impl Protocol for Instant {
        type Msg = ();
        fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
            match ev {
                Event::Hungry => self.0 = DiningState::Eating,
                Event::ExitCs => self.0 = DiningState::Thinking,
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.0
        }
    }

    #[test]
    fn cyclic_workload_keeps_cycling() {
        let mut e: Engine<Instant> = Engine::new(SimConfig::default(), vec![(0.0, 0.0)], |_| {
            Instant(DiningState::Thinking)
        });
        let (metrics, data) = crate::metrics::Metrics::new(1);
        e.add_hook(Box::new(metrics));
        e.add_hook(Box::new(Workload::cyclic(5..=10, 5..=10, 1)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(1_000));
        assert!(
            data.borrow().meals[0] >= 20,
            "got {}",
            data.borrow().meals[0]
        );
    }

    #[test]
    fn one_shot_workload_eats_once() {
        let mut e: Engine<Instant> = Engine::new(SimConfig::default(), vec![(0.0, 0.0)], |_| {
            Instant(DiningState::Thinking)
        });
        let (metrics, data) = crate::metrics::Metrics::new(1);
        e.add_hook(Box::new(metrics));
        e.add_hook(Box::new(Workload::one_shot(5..=10, 1)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(1_000));
        assert_eq!(data.borrow().meals[0], 1);
    }
}
