//! One-call experiment runner, generic over the algorithm under test.

use std::ops::RangeInclusive;
use std::rc::Rc;
use std::sync::Arc;

use baselines::{choy_singh, ChandyMisra, StaticColoring};
use coloring::LinialSchedule;
use local_mutex::{Algorithm1, Algorithm2};
use manet_sim::{
    Command, CsrAdjacency, Engine, EngineStats, NodeId, Position, Protocol, SimConfig, SimRng,
    SimTime, Strategy, World,
};

use crate::metrics::{Metrics, MetricsData};
use crate::safety::{SafetyMonitor, Violation};
use crate::stats::Summary;
use crate::workload::Workload;

/// What to run and for how long.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Engine configuration (seed, ν, τ, radio range…).
    pub sim: SimConfig,
    /// Virtual-time horizon of the run.
    pub horizon: u64,
    /// Eating-time range (must respect τ).
    pub eat: RangeInclusive<u64>,
    /// Think-time range between meals (cyclic workloads).
    pub think: RangeInclusive<u64>,
    /// Whether nodes become hungry again after each meal.
    pub cyclic: bool,
    /// Window `[a, b]` in which each node's first `SetHungry` is sampled.
    pub first_hungry: (u64, u64),
    /// Override for the δ bound handed to the Linial schedule (default:
    /// the initial topology's maximum degree).
    pub delta_bound: Option<usize>,
    /// Panic on the first safety violation instead of recording it.
    pub panic_on_violation: bool,
    /// Crash this node the first time it eats at or after the given time —
    /// the adversarial fault of the failure-locality probes (a node that
    /// crashes mid-CS provably holds every shared fork). `None` = no crash.
    pub crash_eating: Option<(NodeId, u64)>,
}

impl Default for RunSpec {
    fn default() -> RunSpec {
        RunSpec {
            sim: SimConfig::default(),
            horizon: 50_000,
            eat: 10..=30,
            think: 50..=150,
            cyclic: true,
            first_hungry: (1, 20),
            delta_bound: None,
            panic_on_violation: false,
            crash_eating: None,
        }
    }
}

/// Everything an experiment needs from one finished run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Response-time samples, meals, and still-hungry bookkeeping.
    pub metrics: MetricsData,
    /// Safety violations observed (empty for correct algorithms).
    pub violations: Vec<Violation>,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Full engine counters (deliveries and the two drop classes).
    pub stats: EngineStats,
    /// Final adjacency as an immutable CSR snapshot (sorted rows).
    pub adjacency: CsrAdjacency,
    /// Nodes crashed during the run.
    pub crashed: Vec<NodeId>,
    /// When the [`RunSpec::crash_eating`] fault fired, if it did.
    pub crash_time: Option<SimTime>,
    /// The time the run ended.
    pub end: SimTime,
    /// Why the engine stopped early, if it did (rendered
    /// [`manet_sim::RunAbort`]): the event-budget livelock guard or a
    /// malformed injected schedule. `None` for healthy runs.
    pub abort: Option<String>,
}

impl RunOutcome {
    /// Summary of response times of episodes where the node stayed static
    /// (the paper's Definition 1 regime).
    pub fn static_summary(&self) -> Summary {
        Summary::of(&self.metrics.static_responses())
    }

    /// Summary over *all* episodes, including mobile ones.
    pub fn all_summary(&self) -> Summary {
        Summary::of(&self.metrics.all_responses())
    }

    /// Total completed critical sections.
    pub fn total_meals(&self) -> u64 {
        self.metrics.meals.iter().sum()
    }

    /// Messages per completed critical section.
    pub fn messages_per_meal(&self) -> f64 {
        let meals = self.total_meals();
        if meals == 0 {
            f64::INFINITY
        } else {
            self.messages_sent as f64 / meals as f64
        }
    }

    /// Hop distances from `src` in the final topology (`None` =
    /// unreachable).
    pub fn distances_from(&self, src: NodeId) -> Vec<Option<usize>> {
        let n = self.adjacency.len();
        let mut dist = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued implies visited");
            for &v in self.adjacency.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

/// Run `spec` with one protocol instance per position, built by `factory`;
/// `setup` may schedule extra commands (crashes, mobility) on the engine
/// before it runs.
pub fn run_protocol<P, F, S>(
    spec: &RunSpec,
    positions: &[(f64, f64)],
    factory: F,
    setup: S,
) -> RunOutcome
where
    P: Protocol,
    F: FnMut(manet_sim::NodeSeed) -> P + 'static,
    S: FnOnce(&mut Engine<P>),
{
    let engine = Engine::new(spec.sim.clone(), positions.to_vec(), factory);
    drive(engine, spec, setup)
}

/// Like [`run_protocol`], but over an *explicit* topology (see
/// [`manet_sim::World::from_adjacency`]): `n` nodes wired exactly by
/// `edges`. Movement commands are rejected in such worlds.
pub fn run_protocol_graph<P, F, S>(
    spec: &RunSpec,
    n: usize,
    edges: &[(u32, u32)],
    factory: F,
    setup: S,
) -> RunOutcome
where
    P: Protocol,
    F: FnMut(manet_sim::NodeSeed) -> P + 'static,
    S: FnOnce(&mut Engine<P>),
{
    let engine = Engine::new_graph(spec.sim.clone(), n, edges, factory);
    drive(engine, spec, setup)
}

/// Attach the standard hooks and workload, inject initial hungers, run to
/// the horizon, and collect the outcome.
fn drive<P, S>(mut engine: Engine<P>, spec: &RunSpec, setup: S) -> RunOutcome
where
    P: Protocol,
    S: FnOnce(&mut Engine<P>),
{
    let n = engine.world().len();
    let (metrics, data) = Metrics::new(n);
    engine.add_hook(Box::new(metrics));
    let (monitor, violations) = SafetyMonitor::new(spec.panic_on_violation);
    engine.add_hook(Box::new(monitor));
    let crash_time: Rc<std::cell::RefCell<Option<SimTime>>> =
        Rc::new(std::cell::RefCell::new(None));
    if let Some((victim, not_before)) = spec.crash_eating {
        engine.add_hook(Box::new(CrashWhenEating {
            victim,
            not_before: SimTime(not_before),
            fired: crash_time.clone(),
        }));
    }
    let workload = if spec.cyclic {
        Workload::cyclic(spec.eat.clone(), spec.think.clone(), spec.sim.seed)
    } else {
        Workload::one_shot(spec.eat.clone(), spec.sim.seed)
    };
    engine.add_hook(Box::new(workload));
    let mut rng = SimRng::seed_from_u64(spec.sim.seed ^ 0x4655_4747);
    let (a, b) = spec.first_hungry;
    for i in 0..n as u32 {
        let t = rng.gen_range(a..=b.max(a));
        engine.set_hungry_at(SimTime(t), NodeId(i));
    }
    setup(&mut engine);
    engine.run_until(SimTime(spec.horizon));
    let world = engine.world();
    let adjacency = world.csr_snapshot();
    let crashed = (0..n as u32)
        .map(NodeId)
        .filter(|&i| world.is_crashed(i))
        .collect();
    let metrics = data.borrow().clone();
    let violations = violations.borrow().clone();
    let crash_time = *crash_time.borrow();
    RunOutcome {
        metrics,
        violations,
        messages_sent: engine.stats().messages_sent,
        events: engine.stats().events,
        stats: engine.stats().clone(),
        adjacency,
        crashed,
        crash_time,
        end: engine.now(),
        abort: engine.abort().map(|a| a.to_string()),
    }
}

/// Crashes `victim` the first time it eats at or after `not_before` —
/// mid-critical-section, when it provably holds all its forks.
struct CrashWhenEating {
    victim: NodeId,
    not_before: SimTime,
    fired: Rc<std::cell::RefCell<Option<SimTime>>>,
}

impl<M> manet_sim::Hook<M> for CrashWhenEating {
    fn on_state_change(
        &mut self,
        view: &manet_sim::View<'_>,
        node: NodeId,
        _old: manet_sim::DiningState,
        new: manet_sim::DiningState,
        sink: &mut manet_sim::Sink,
    ) {
        if node == self.victim
            && new == manet_sim::DiningState::Eating
            && view.time() >= self.not_before
            && self.fired.borrow().is_none()
        {
            *self.fired.borrow_mut() = Some(view.time());
            sink.at(view.time() + 1, Command::Crash(self.victim));
        }
    }
}

/// The algorithms the head-to-head experiments compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgKind {
    /// Algorithm 1 with the greedy recoloring procedure (Theorem 16).
    A1Greedy,
    /// Algorithm 1 with the Linial recoloring procedure (Theorem 22).
    A1Linial,
    /// Algorithm 1 with the randomized recoloring procedure (the
    /// Kuhn–Wattenhofer-style extension from the Discussion chapter).
    A1Random,
    /// Algorithm 2, optimal failure locality (Theorems 25–26).
    A2,
    /// Chandy–Misra baseline (failure locality `n`).
    ChandyMisra,
    /// Choy–Singh-style static-color baseline (no recoloring).
    ChoySingh,
}

impl AlgKind {
    /// The five algorithms of the paper's Table 1, in its order.
    pub fn all() -> [AlgKind; 5] {
        [
            AlgKind::ChandyMisra,
            AlgKind::ChoySingh,
            AlgKind::A1Greedy,
            AlgKind::A1Linial,
            AlgKind::A2,
        ]
    }

    /// Every implemented algorithm, including the randomized-recoloring
    /// extension.
    pub fn extended() -> [AlgKind; 6] {
        [
            AlgKind::ChandyMisra,
            AlgKind::ChoySingh,
            AlgKind::A1Greedy,
            AlgKind::A1Linial,
            AlgKind::A1Random,
            AlgKind::A2,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgKind::A1Greedy => "A1-greedy",
            AlgKind::A1Linial => "A1-linial",
            AlgKind::A1Random => "A1-random",
            AlgKind::A2 => "A2",
            AlgKind::ChandyMisra => "chandy-misra",
            AlgKind::ChoySingh => "choy-singh",
        }
    }

    /// Theoretical failure locality, as reported in Table 1 of the paper.
    pub fn paper_failure_locality(self) -> &'static str {
        match self {
            AlgKind::A1Greedy => "n",
            AlgKind::A1Linial => "max(log* n, 4) + 2",
            AlgKind::A1Random => "O(log n) whp",
            AlgKind::A2 => "2",
            AlgKind::ChandyMisra => "n",
            AlgKind::ChoySingh => "4",
        }
    }

    /// Theoretical response time, as reported in Table 1 of the paper.
    pub fn paper_response_time(self) -> &'static str {
        match self {
            AlgKind::A1Greedy => "O((n + δ³)δ)",
            AlgKind::A1Linial => "O((log* n + δ⁴)δ)",
            AlgKind::A1Random => "O((log n + δ³)δ) whp",
            AlgKind::A2 => "O(n²), O(n) static",
            AlgKind::ChandyMisra => "unbounded chains",
            AlgKind::ChoySingh => "O(δ²) (static only)",
        }
    }
}

/// Run one of the five algorithms on `positions` under `spec`, after
/// scheduling `commands` (crashes / mobility).
pub fn run_algorithm(
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
) -> RunOutcome {
    run_algorithm_with_strategy(kind, spec, positions, commands, None)
}

/// Like [`run_algorithm`], but with an injectable delivery-delay
/// [`Strategy`] (see `manet_sim::Strategy`) installed on the engine before
/// the run — the hook through which a recorded live execution is replayed
/// deterministically in the simulator for conformance checking.
pub fn run_algorithm_with_strategy(
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    commands: &[(SimTime, Command)],
    strategy: Option<Box<dyn Strategy>>,
) -> RunOutcome {
    let n = positions.len();
    let init_world = World::new(
        spec.sim.radio_range,
        positions.iter().map(|&p| Position::from(p)).collect(),
    );
    let delta = spec
        .delta_bound
        .unwrap_or_else(|| init_world.max_degree())
        .max(1);
    match kind {
        AlgKind::A1Greedy => run_protocol(
            spec,
            positions,
            |seed| Algorithm1::greedy(&seed),
            |e| install_and_schedule(e, commands, strategy),
        ),
        AlgKind::A1Linial => {
            let sched = Arc::new(LinialSchedule::compute(n as u64, delta as u64));
            run_protocol(
                spec,
                positions,
                move |seed| Algorithm1::linial(&seed, sched.clone()),
                |e| install_and_schedule(e, commands, strategy),
            )
        }
        AlgKind::A1Random => {
            let delta = delta as u64;
            let rng_seed = spec.sim.seed;
            run_protocol(
                spec,
                positions,
                move |seed| Algorithm1::randomized(&seed, delta, rng_seed),
                |e| install_and_schedule(e, commands, strategy),
            )
        }
        AlgKind::A2 => run_protocol(
            spec,
            positions,
            |seed| Algorithm2::new(&seed),
            |e| install_and_schedule(e, commands, strategy),
        ),
        AlgKind::ChandyMisra => run_protocol(
            spec,
            positions,
            |seed| ChandyMisra::new(&seed),
            |e| install_and_schedule(e, commands, strategy),
        ),
        AlgKind::ChoySingh => {
            let edges: Vec<(u32, u32)> = init_world.csr_snapshot().edges().collect();
            let coloring = Rc::new(StaticColoring::compute(n, edges));
            run_protocol(
                spec,
                positions,
                move |seed| choy_singh(&seed, &coloring),
                |e| install_and_schedule(e, commands, strategy),
            )
        }
    }
}

fn install_and_schedule<P: Protocol>(
    engine: &mut Engine<P>,
    commands: &[(SimTime, Command)],
    strategy: Option<Box<dyn Strategy>>,
) {
    if let Some(s) = strategy {
        engine.set_strategy(s);
    }
    schedule_all(engine, commands);
}

/// Run one of the implemented algorithms over an *explicit* topology (`n`
/// nodes wired exactly by `edges`); movement commands are rejected by such
/// worlds, crashes work normally.
pub fn run_algorithm_graph(
    kind: AlgKind,
    spec: &RunSpec,
    n: usize,
    edges: &[(u32, u32)],
    commands: &[(SimTime, Command)],
) -> RunOutcome {
    let init_world = World::from_adjacency(n, edges);
    let delta = spec
        .delta_bound
        .unwrap_or_else(|| init_world.max_degree())
        .max(1);
    match kind {
        AlgKind::A1Greedy => run_protocol_graph(
            spec,
            n,
            edges,
            |seed| Algorithm1::greedy(&seed),
            |e| schedule_all(e, commands),
        ),
        AlgKind::A1Linial => {
            let sched = Arc::new(LinialSchedule::compute(n as u64, delta as u64));
            run_protocol_graph(
                spec,
                n,
                edges,
                move |seed| Algorithm1::linial(&seed, sched.clone()),
                |e| schedule_all(e, commands),
            )
        }
        AlgKind::A1Random => {
            let delta = delta as u64;
            let rng_seed = spec.sim.seed;
            run_protocol_graph(
                spec,
                n,
                edges,
                move |seed| Algorithm1::randomized(&seed, delta, rng_seed),
                |e| schedule_all(e, commands),
            )
        }
        AlgKind::A2 => run_protocol_graph(
            spec,
            n,
            edges,
            |seed| Algorithm2::new(&seed),
            |e| schedule_all(e, commands),
        ),
        AlgKind::ChandyMisra => run_protocol_graph(
            spec,
            n,
            edges,
            |seed| ChandyMisra::new(&seed),
            |e| schedule_all(e, commands),
        ),
        AlgKind::ChoySingh => {
            let coloring = Rc::new(StaticColoring::compute(n, edges.iter().copied()));
            run_protocol_graph(
                spec,
                n,
                edges,
                move |seed| choy_singh(&seed, &coloring),
                |e| schedule_all(e, commands),
            )
        }
    }
}

fn schedule_all<P: Protocol>(engine: &mut Engine<P>, commands: &[(SimTime, Command)]) {
    for (at, cmd) in commands {
        engine.schedule(*at, cmd.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn all_algorithms_complete_a_static_line() {
        let spec = RunSpec {
            horizon: 30_000,
            ..RunSpec::default()
        };
        let positions = topology::line(5);
        for kind in AlgKind::all() {
            let out = run_algorithm(kind, &spec, &positions, &[]);
            assert!(out.violations.is_empty(), "{}: unsafe", kind.name());
            assert!(
                out.metrics.meals.iter().all(|&m| m >= 3),
                "{}: starvation on a static line: {:?}",
                kind.name(),
                out.metrics.meals
            );
        }
    }

    #[test]
    fn outcome_distances_use_final_topology() {
        let spec = RunSpec {
            horizon: 2_000,
            ..RunSpec::default()
        };
        let out = run_algorithm(AlgKind::A2, &spec, &topology::line(4), &[]);
        let d = out.distances_from(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn deterministic_outcomes_per_seed() {
        let spec = RunSpec {
            horizon: 5_000,
            ..RunSpec::default()
        };
        let positions = topology::ring(6);
        let a = run_algorithm(AlgKind::A1Greedy, &spec, &positions, &[]);
        let b = run_algorithm(AlgKind::A1Greedy, &spec, &positions, &[]);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.metrics.samples, b.metrics.samples);
    }
}
