//! Empirical failure-locality probes.
//!
//! Definition 1 of the paper: an algorithm has failure locality `m` if any
//! node with no failures in its `m`-neighborhood makes progress. The probe
//! inverts this into a measurement: crash one node mid-run under a cyclic
//! workload and record *how far from the crash* starving nodes are found.
//! An algorithm with failure locality `m` must show starvation only at
//! hop distance ≤ `m`; the farthest starving node is the empirical
//! locality.

use manet_sim::{
    ChannelConfig, CrashWave, DelayAdversary, FaultPlan, LinkFaults, NodeId, PartitionWindow,
    SimTime,
};

use crate::runner::{run_algorithm, AlgKind, RunOutcome, RunSpec};

/// Result of one crash probe.
#[derive(Clone, Debug)]
pub struct FlReport {
    /// Starving nodes with their hop distance from the crashed node
    /// (`None` = disconnected from it).
    pub starving: Vec<(NodeId, Option<usize>)>,
    /// The farthest observed starvation distance — the empirical failure
    /// locality. `Some(0)` can only be the crashed node itself (excluded),
    /// so values start at 1; `None` means nobody starved.
    pub locality: Option<usize>,
    /// The full run outcome, for further inspection.
    pub outcome: RunOutcome,
}

/// Crash `victim` *while it is eating* (first meal at or after `crash_at`)
/// and measure which nodes starve afterwards. Crashing mid-CS is the
/// adversarial fault: the victim provably holds every shared fork, so its
/// neighbors' requests go unanswered and blocking chains get their best
/// chance to form.
///
/// A node "starves" if it has been continuously hungry for the entire
/// second half of the post-crash window. The spec should use a horizon much
/// larger than the crash time plus the algorithm's normal response time.
pub fn crash_probe(
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    victim: NodeId,
    crash_at: u64,
) -> FlReport {
    assert!(
        crash_at < spec.horizon,
        "crash_at {} must precede the horizon {}",
        crash_at,
        spec.horizon
    );
    let spec = RunSpec {
        crash_eating: Some((victim, crash_at)),
        ..spec.clone()
    };
    let outcome = run_algorithm(kind, &spec, positions, &[]);
    analyze_crash(outcome, victim, crash_at, spec.horizon)
}

/// Post-process a finished run that carried a [`RunSpec::crash_eating`]
/// fault into an [`FlReport`]: find the starving nodes and the farthest
/// starvation distance. Split out of [`crash_probe`] so callers that run
/// the engine themselves (explicit-graph topologies, the sweep executor)
/// can reuse the analysis.
pub fn analyze_crash(outcome: RunOutcome, victim: NodeId, crash_at: u64, horizon: u64) -> FlReport {
    let crash_at = outcome.crash_time.map_or(crash_at, |t| t.0);
    // Starvation deadline: hungry since before the midpoint of the
    // post-crash window.
    let deadline = SimTime(crash_at + horizon.saturating_sub(crash_at) / 2);
    let dist = outcome.distances_from(victim);
    let starving: Vec<(NodeId, Option<usize>)> = outcome
        .metrics
        .starving_since(deadline)
        .into_iter()
        .filter(|&node| node != victim && !outcome.crashed.contains(&node))
        .map(|node| (node, dist[node.index()]))
        .collect();
    let locality = starving.iter().filter_map(|&(_, d)| d).max();
    FlReport {
        starving,
        locality,
        outcome,
    }
}

/// Mean post-crash response time of static episodes, bucketed by hop
/// distance from `victim` (index = distance; distance 0 = the victim
/// itself, normally empty). Visualizes the locality gradient: algorithms
/// with small failure locality show elevated latencies only in the first
/// one or two buckets.
pub fn response_by_distance(
    outcome: &RunOutcome,
    victim: NodeId,
    after: SimTime,
) -> Vec<Option<f64>> {
    let dist = outcome.distances_from(victim);
    let max_d = dist.iter().flatten().copied().max().unwrap_or(0);
    let mut sum = vec![0u64; max_d + 1];
    let mut count = vec![0u64; max_d + 1];
    for s in &outcome.metrics.samples {
        if s.moved || s.hungry_at < after {
            continue;
        }
        if let Some(d) = dist[s.node.index()] {
            sum[d] += s.response();
            count[d] += 1;
        }
    }
    sum.into_iter()
        .zip(count)
        .map(|(s, c)| {
            if c == 0 {
                None
            } else {
                Some(s as f64 / c as f64)
            }
        })
        .collect()
}

/// A fault class the generalized probe can inject around a victim node.
///
/// `Crash`, `Partition`, and `MaxDelay` are **in-model** faults (the paper
/// assumes reliable FIFO links whose delay is bounded by ν and a link layer
/// that reports failures); `Loss` and `Duplication` violate the link
/// contract and are probed only to measure *graceful degradation*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultClass {
    /// Crash the victim mid-eating (the adversarial crash of Definition 1).
    Crash,
    /// Crash the victim at the window start and recover it as a fresh
    /// incarnation at the window end (crash → rejoin handshake).
    Recover,
    /// Drop each message on the victim's links with this probability,
    /// within a bounded window (a partition/heal at the window end
    /// re-incarnates the links, restoring any forks lost in flight).
    Loss(f64),
    /// Drop each message on the victim's links with this probability for
    /// the *entire run* — no window, no healing partition. Only an ARQ
    /// shim (see `manet_sim::ArqConfig`) can restore liveness under this
    /// class; without it, runs are expected to stall.
    SustainedLoss(f64),
    /// Correlated (bursty) loss on *every* link for the entire run: the
    /// Gilbert–Elliott channel model with its chaos defaults (see
    /// `manet_sim::ChannelConfig::burst_loss_default`). Where
    /// `SustainedLoss` drops frames independently, bursts black a link out
    /// for several consecutive frames — the regime ARQ retransmission
    /// timers find hardest. Not expressible as a [`FaultPlan`]; probes and
    /// the chaos runner arm the channel model instead.
    BurstLoss,
    /// Duplicate each message on the victim's links with this probability.
    Duplication(f64),
    /// Sever every link between the victim and the rest, then heal.
    Partition,
    /// Force every message on the victim's links to the maximum legal
    /// delay ν (the adaptive worst-case delay adversary).
    MaxDelay,
}

impl FaultClass {
    /// Stable label for reports and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Crash => "crash",
            FaultClass::Recover => "recover",
            FaultClass::Loss(_) => "windowed-loss",
            FaultClass::SustainedLoss(_) => "sustained-loss",
            FaultClass::BurstLoss => "burst-loss",
            FaultClass::Duplication(_) => "windowed-duplication",
            FaultClass::Partition => "partition",
            FaultClass::MaxDelay => "max-delay",
        }
    }

    /// Whether the paper's system model admits this fault (reliable FIFO
    /// links rule out loss and duplication).
    pub fn in_model(&self) -> bool {
        !matches!(
            self,
            FaultClass::Loss(_)
                | FaultClass::SustainedLoss(_)
                | FaultClass::BurstLoss
                | FaultClass::Duplication(_)
        )
    }

    /// Build the [`FaultPlan`] that realizes this class against `victim`
    /// over the active window `[start, end)`. `Crash` returns an empty
    /// plan: the probe arms [`RunSpec::crash_eating`] instead, so the
    /// victim dies mid-CS (the worst case) rather than at a fixed time.
    pub fn plan(&self, victim: NodeId, window: (u64, u64)) -> FaultPlan {
        let targets = Some(vec![victim]);
        match *self {
            FaultClass::Crash => FaultPlan::default(),
            // Burst loss lives in the channel model, not the fault plan;
            // callers arm `SimConfig::channel` instead (see `fault_probe`).
            FaultClass::BurstLoss => FaultPlan::default(),
            FaultClass::Recover => FaultPlan {
                crash_waves: vec![CrashWave {
                    at: window.0,
                    nodes: vec![victim],
                }],
                recovers: vec![CrashWave {
                    at: window.1,
                    nodes: vec![victim],
                }],
                ..FaultPlan::default()
            },
            FaultClass::Loss(p) => FaultPlan {
                link: Some(LinkFaults {
                    drop: p,
                    window: Some(window),
                    targets,
                    ..LinkFaults::default()
                }),
                // A dropped fork is gone for good on a surviving link
                // incarnation, so loss probes end with a one-tick
                // partition/heal of the victim: healing re-derives the
                // links as fresh incarnations with freshly minted forks.
                partitions: vec![PartitionWindow {
                    at: window.1,
                    side: vec![victim],
                    heal_after: 1,
                }],
                ..FaultPlan::default()
            },
            // Sustained loss runs unbounded and gets no healing partition:
            // recovery is the ARQ shim's job, not the fault schedule's.
            FaultClass::SustainedLoss(p) => FaultPlan {
                link: Some(LinkFaults {
                    drop: p,
                    window: None,
                    targets,
                    ..LinkFaults::default()
                }),
                ..FaultPlan::default()
            },
            FaultClass::Duplication(p) => FaultPlan {
                link: Some(LinkFaults {
                    duplicate: p,
                    window: Some(window),
                    targets,
                    ..LinkFaults::default()
                }),
                ..FaultPlan::default()
            },
            FaultClass::Partition => FaultPlan {
                partitions: vec![PartitionWindow {
                    at: window.0,
                    side: vec![victim],
                    heal_after: (window.1 - window.0).max(1),
                }],
                ..FaultPlan::default()
            },
            FaultClass::MaxDelay => FaultPlan {
                max_delay: Some(DelayAdversary {
                    targets: vec![victim],
                    window: Some(window),
                }),
                ..FaultPlan::default()
            },
        }
    }
}

/// Result of one [`fault_probe`]: a baseline run and a faulted run of the
/// same spec, compared per hop distance from the victim.
#[derive(Clone, Debug)]
pub struct FaultProbeReport {
    /// The injected fault class.
    pub class: FaultClass,
    /// When the fault schedule went quiet (faults stop; partitions healed).
    pub quiesced_at: u64,
    /// Mean post-`fault_at` response time by hop distance, fault-free run.
    pub baseline_response: Vec<Option<f64>>,
    /// Mean post-`fault_at` response time by hop distance, faulted run.
    pub faulted_response: Vec<Option<f64>>,
    /// Starvation analysis of the faulted run (starving = continuously
    /// hungry since before the quiescence point).
    pub fl: FlReport,
}

impl FaultProbeReport {
    /// Per-distance degradation: faulted mean response ÷ baseline mean
    /// response (`None` where either run has no samples at that distance).
    pub fn degradation(&self) -> Vec<Option<f64>> {
        let len = self
            .baseline_response
            .len()
            .max(self.faulted_response.len());
        (0..len)
            .map(|d| {
                match (
                    self.baseline_response.get(d).copied().flatten(),
                    self.faulted_response.get(d).copied().flatten(),
                ) {
                    (Some(b), Some(f)) if b > 0.0 => Some(f / b),
                    _ => None,
                }
            })
            .collect()
    }

    /// Graceful-degradation check: every distance bucket strictly beyond
    /// `radius` (with data in both runs) stayed within `factor`× the
    /// baseline mean response, and no node beyond `radius` starved.
    pub fn graceful_beyond(&self, radius: usize, factor: f64) -> bool {
        let slow = self
            .degradation()
            .into_iter()
            .skip(radius + 1)
            .flatten()
            .any(|r| r > factor);
        let starved = self
            .fl
            .starving
            .iter()
            .any(|&(_, d)| d.is_none_or(|d| d > radius));
        !slow && !starved
    }
}

/// Generalized fault probe: run `spec` once fault-free and once with
/// `class` injected around `victim` starting at `fault_at`, and compare.
///
/// The fault window is `[fault_at, midpoint)` where the midpoint splits
/// the post-`fault_at` part of the horizon, so every class (except the
/// crash, which is permanent) has quiesced by `quiesced_at` and the whole
/// second half of the window measures recovery. Starvation is judged
/// against the quiescence point, matching [`analyze_crash`].
pub fn fault_probe(
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    victim: NodeId,
    class: FaultClass,
    fault_at: u64,
) -> FaultProbeReport {
    assert!(
        fault_at < spec.horizon,
        "fault_at {} must precede the horizon {}",
        fault_at,
        spec.horizon
    );
    let quiesce = fault_at + (spec.horizon - fault_at) / 2;
    let baseline = run_algorithm(kind, spec, positions, &[]);
    let baseline_response = response_by_distance(&baseline, victim, SimTime(fault_at));

    let mut faulted = spec.clone();
    match class {
        FaultClass::Crash => faulted.crash_eating = Some((victim, fault_at)),
        FaultClass::BurstLoss => faulted.sim.channel = ChannelConfig::burst_loss_default(),
        _ => faulted.sim.fault = class.plan(victim, (fault_at, quiesce)),
    }
    let outcome = run_algorithm(kind, &faulted, positions, &[]);
    let faulted_response = response_by_distance(&outcome, victim, SimTime(fault_at));
    let fl = analyze_crash(outcome, victim, fault_at, spec.horizon);
    FaultProbeReport {
        class,
        quiesced_at: quiesce,
        baseline_response,
        faulted_response,
        fl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn a2_starvation_stays_within_two_hops_of_a_crash() {
        let spec = RunSpec {
            horizon: 60_000,
            ..RunSpec::default()
        };
        let positions = topology::line(9);
        let report = crash_probe(AlgKind::A2, &spec, &positions, NodeId(4), 2_000);
        assert!(report.outcome.violations.is_empty());
        if let Some(m) = report.locality {
            assert!(
                m <= 2,
                "Algorithm 2 must have failure locality 2, saw starvation at distance {m}: {:?}",
                report.starving
            );
        }
        // Nodes far from the crash keep eating.
        assert!(report.outcome.metrics.meals[0] >= 3);
        assert!(report.outcome.metrics.meals[8] >= 3);
    }

    #[test]
    fn response_by_distance_buckets_samples() {
        let spec = RunSpec {
            horizon: 30_000,
            ..RunSpec::default()
        };
        let report = crash_probe(AlgKind::A2, &spec, &topology::line(7), NodeId(3), 1_000);
        let curve = response_by_distance(
            &report.outcome,
            NodeId(3),
            report.outcome.crash_time.unwrap_or(SimTime(1_000)),
        );
        // Distance 0 = the crashed node itself: no post-crash samples.
        assert!(curve[0].is_none());
        // Far nodes have samples.
        assert!(curve.last().expect("non-empty").is_some());
    }

    #[test]
    fn loss_probe_recovers_after_quiescence() {
        let spec = RunSpec {
            horizon: 40_000,
            ..RunSpec::default()
        };
        let report = fault_probe(
            AlgKind::A2,
            &spec,
            &topology::line(7),
            NodeId(3),
            FaultClass::Loss(0.5),
            2_000,
        );
        let out = &report.fl.outcome;
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.stats.faults.msgs_dropped > 0, "loss window never hit");
        // The heal at quiescence re-incarnates the victim's links; nobody
        // stays hungry through the whole recovery half of the run.
        assert!(
            report.fl.starving.is_empty(),
            "starving after quiescence: {:?}",
            report.fl.starving
        );
    }

    #[test]
    fn duplication_probe_is_safe_and_live() {
        let spec = RunSpec {
            horizon: 40_000,
            ..RunSpec::default()
        };
        let report = fault_probe(
            AlgKind::A2,
            &spec,
            &topology::line(7),
            NodeId(3),
            FaultClass::Duplication(1.0),
            2_000,
        );
        let out = &report.fl.outcome;
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.stats.faults.msgs_duplicated > 0);
        assert!(report.fl.starving.is_empty(), "{:?}", report.fl.starving);
    }

    #[test]
    fn max_delay_adversary_slows_but_never_starves() {
        let spec = RunSpec {
            horizon: 40_000,
            ..RunSpec::default()
        };
        let report = fault_probe(
            AlgKind::A2,
            &spec,
            &topology::line(7),
            NodeId(3),
            FaultClass::MaxDelay,
            2_000,
        );
        let out = &report.fl.outcome;
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.stats.faults.max_delay_forced > 0);
        // ν is a legal delay: liveness must be untouched.
        assert!(report.fl.starving.is_empty(), "{:?}", report.fl.starving);
    }

    #[test]
    fn partition_probe_heals_and_victim_rejoins() {
        let spec = RunSpec {
            horizon: 40_000,
            ..RunSpec::default()
        };
        let report = fault_probe(
            AlgKind::A2,
            &spec,
            &topology::line(7),
            NodeId(3),
            FaultClass::Partition,
            2_000,
        );
        let out = &report.fl.outcome;
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.stats.faults.partitions, 1);
        assert_eq!(out.stats.faults.heals, 1);
        assert!(report.fl.starving.is_empty(), "{:?}", report.fl.starving);
        // The victim itself eats again after the heal.
        assert!(out.metrics.meals[3] >= 1);
    }

    #[test]
    fn crash_probe_class_matches_the_dedicated_probe() {
        let spec = RunSpec {
            horizon: 30_000,
            ..RunSpec::default()
        };
        let report = fault_probe(
            AlgKind::A2,
            &spec,
            &topology::line(7),
            NodeId(3),
            FaultClass::Crash,
            1_000,
        );
        assert!(report.fl.outcome.crash_time.is_some());
        if let Some(m) = report.fl.locality {
            assert!(m <= 2, "{:?}", report.fl.starving);
        }
        assert!(!FaultClass::Loss(0.1).in_model());
        assert!(!FaultClass::SustainedLoss(0.3).in_model());
        assert!(!FaultClass::BurstLoss.in_model());
        assert!(FaultClass::Partition.in_model());
        assert_eq!(FaultClass::Loss(0.1).label(), "windowed-loss");
        assert_eq!(FaultClass::SustainedLoss(0.3).label(), "sustained-loss");
        assert_eq!(FaultClass::BurstLoss.label(), "burst-loss");
        assert!(FaultClass::SustainedLoss(0.3)
            .plan(NodeId(3), (0, 100))
            .partitions
            .is_empty());
        // Burst loss is channel-armed, not plan-armed.
        assert_eq!(
            FaultClass::BurstLoss.plan(NodeId(3), (0, 100)),
            FaultPlan::default()
        );
    }

    #[test]
    fn probe_without_contention_reports_no_starvation() {
        // Crash an isolated node: nobody else is affected.
        let mut positions = topology::line(3);
        positions.push((100.0, 100.0));
        let spec = RunSpec {
            horizon: 20_000,
            ..RunSpec::default()
        };
        let report = crash_probe(AlgKind::A2, &spec, &positions, NodeId(3), 1_000);
        assert_eq!(report.locality, None);
        assert!(report.starving.is_empty());
    }
}
