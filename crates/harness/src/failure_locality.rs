//! Empirical failure-locality probes.
//!
//! Definition 1 of the paper: an algorithm has failure locality `m` if any
//! node with no failures in its `m`-neighborhood makes progress. The probe
//! inverts this into a measurement: crash one node mid-run under a cyclic
//! workload and record *how far from the crash* starving nodes are found.
//! An algorithm with failure locality `m` must show starvation only at
//! hop distance ≤ `m`; the farthest starving node is the empirical
//! locality.

use manet_sim::{NodeId, SimTime};

use crate::runner::{run_algorithm, AlgKind, RunOutcome, RunSpec};

/// Result of one crash probe.
#[derive(Clone, Debug)]
pub struct FlReport {
    /// Starving nodes with their hop distance from the crashed node
    /// (`None` = disconnected from it).
    pub starving: Vec<(NodeId, Option<usize>)>,
    /// The farthest observed starvation distance — the empirical failure
    /// locality. `Some(0)` can only be the crashed node itself (excluded),
    /// so values start at 1; `None` means nobody starved.
    pub locality: Option<usize>,
    /// The full run outcome, for further inspection.
    pub outcome: RunOutcome,
}

/// Crash `victim` *while it is eating* (first meal at or after `crash_at`)
/// and measure which nodes starve afterwards. Crashing mid-CS is the
/// adversarial fault: the victim provably holds every shared fork, so its
/// neighbors' requests go unanswered and blocking chains get their best
/// chance to form.
///
/// A node "starves" if it has been continuously hungry for the entire
/// second half of the post-crash window. The spec should use a horizon much
/// larger than the crash time plus the algorithm's normal response time.
pub fn crash_probe(
    kind: AlgKind,
    spec: &RunSpec,
    positions: &[(f64, f64)],
    victim: NodeId,
    crash_at: u64,
) -> FlReport {
    assert!(
        crash_at < spec.horizon,
        "crash_at {} must precede the horizon {}",
        crash_at,
        spec.horizon
    );
    let spec = RunSpec {
        crash_eating: Some((victim, crash_at)),
        ..spec.clone()
    };
    let outcome = run_algorithm(kind, &spec, positions, &[]);
    analyze_crash(outcome, victim, crash_at, spec.horizon)
}

/// Post-process a finished run that carried a [`RunSpec::crash_eating`]
/// fault into an [`FlReport`]: find the starving nodes and the farthest
/// starvation distance. Split out of [`crash_probe`] so callers that run
/// the engine themselves (explicit-graph topologies, the sweep executor)
/// can reuse the analysis.
pub fn analyze_crash(outcome: RunOutcome, victim: NodeId, crash_at: u64, horizon: u64) -> FlReport {
    let crash_at = outcome.crash_time.map_or(crash_at, |t| t.0);
    // Starvation deadline: hungry since before the midpoint of the
    // post-crash window.
    let deadline = SimTime(crash_at + horizon.saturating_sub(crash_at) / 2);
    let dist = outcome.distances_from(victim);
    let starving: Vec<(NodeId, Option<usize>)> = outcome
        .metrics
        .starving_since(deadline)
        .into_iter()
        .filter(|&node| node != victim && !outcome.crashed.contains(&node))
        .map(|node| (node, dist[node.index()]))
        .collect();
    let locality = starving.iter().filter_map(|&(_, d)| d).max();
    FlReport {
        starving,
        locality,
        outcome,
    }
}

/// Mean post-crash response time of static episodes, bucketed by hop
/// distance from `victim` (index = distance; distance 0 = the victim
/// itself, normally empty). Visualizes the locality gradient: algorithms
/// with small failure locality show elevated latencies only in the first
/// one or two buckets.
pub fn response_by_distance(
    outcome: &RunOutcome,
    victim: NodeId,
    after: SimTime,
) -> Vec<Option<f64>> {
    let dist = outcome.distances_from(victim);
    let max_d = dist.iter().flatten().copied().max().unwrap_or(0);
    let mut sum = vec![0u64; max_d + 1];
    let mut count = vec![0u64; max_d + 1];
    for s in &outcome.metrics.samples {
        if s.moved || s.hungry_at < after {
            continue;
        }
        if let Some(d) = dist[s.node.index()] {
            sum[d] += s.response();
            count[d] += 1;
        }
    }
    sum.into_iter()
        .zip(count)
        .map(|(s, c)| {
            if c == 0 {
                None
            } else {
                Some(s as f64 / c as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn a2_starvation_stays_within_two_hops_of_a_crash() {
        let spec = RunSpec {
            horizon: 60_000,
            ..RunSpec::default()
        };
        let positions = topology::line(9);
        let report = crash_probe(AlgKind::A2, &spec, &positions, NodeId(4), 2_000);
        assert!(report.outcome.violations.is_empty());
        if let Some(m) = report.locality {
            assert!(
                m <= 2,
                "Algorithm 2 must have failure locality 2, saw starvation at distance {m}: {:?}",
                report.starving
            );
        }
        // Nodes far from the crash keep eating.
        assert!(report.outcome.metrics.meals[0] >= 3);
        assert!(report.outcome.metrics.meals[8] >= 3);
    }

    #[test]
    fn response_by_distance_buckets_samples() {
        let spec = RunSpec {
            horizon: 30_000,
            ..RunSpec::default()
        };
        let report = crash_probe(AlgKind::A2, &spec, &topology::line(7), NodeId(3), 1_000);
        let curve = response_by_distance(
            &report.outcome,
            NodeId(3),
            report.outcome.crash_time.unwrap_or(SimTime(1_000)),
        );
        // Distance 0 = the crashed node itself: no post-crash samples.
        assert!(curve[0].is_none());
        // Far nodes have samples.
        assert!(curve.last().expect("non-empty").is_some());
    }

    #[test]
    fn probe_without_contention_reports_no_starvation() {
        // Crash an isolated node: nobody else is affected.
        let mut positions = topology::line(3);
        positions.push((100.0, 100.0));
        let spec = RunSpec {
            horizon: 20_000,
            ..RunSpec::default()
        };
        let report = crash_probe(AlgKind::A2, &spec, &positions, NodeId(3), 1_000);
        assert_eq!(report.locality, None);
        assert!(report.starving.is_empty());
    }
}
