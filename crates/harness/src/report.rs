//! Run-level observability: per-run reports, JSON-lines emission, and
//! cross-run aggregation for the sweep executor.
//!
//! Every finished sweep cell becomes one [`RunReport`] — a flat record of
//! what happened in that run (meals, messages, drops, violations, response
//! -time summaries, probe results). Reports serialize to one JSON line each
//! with a fixed key order and deterministic number formatting, so a sweep's
//! JSONL output is byte-identical across repetitions and worker counts.
//! [`SweepReport`] groups runs and pools their raw response samples into
//! [`AggregateRow`]s (p50/p95/max over *all* pooled episodes, not summaries
//! of summaries).

use std::fmt;

use manet_sim::{FaultStats, NodeId};

use crate::runner::RunOutcome;
use crate::stats::{jain_index, Summary};

/// Flat record of one finished run (one sweep cell).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Sweep/topology label, e.g. `"line16"` (groups runs in aggregates).
    pub label: String,
    /// Algorithm display name (see [`crate::runner::AlgKind::name`]).
    pub alg: &'static str,
    /// The engine seed of this run.
    pub seed: u64,
    /// Node count.
    pub n: usize,
    /// Virtual-time horizon of the run.
    pub horizon: u64,
    /// Total completed critical sections.
    pub meals: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped at send time (no live link).
    pub dropped_at_send: u64,
    /// Messages dropped in flight (link died under them).
    pub dropped_in_flight: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Safety violations observed (0 for correct algorithms).
    pub violations: usize,
    /// Response-time summary of static episodes (Definition 1 regime).
    pub rt_static: Summary,
    /// Response-time summary over all episodes.
    pub rt_all: Summary,
    /// Jain fairness index of per-node meal counts.
    pub jain: f64,
    /// Starving nodes found by a crash probe (0 for plain runs).
    pub starving: usize,
    /// Empirical failure locality from a crash probe (`None` = no
    /// starvation observed, or not a probe).
    pub locality: Option<usize>,
    /// Injected-fault counters, by kind (all zero for fault-free runs).
    pub faults: FaultStats,
    /// Summary of per-episode message counts — the empirical message
    /// complexity of a CS entry under this algorithm.
    pub msg_complexity: Summary,
    /// Why the engine stopped early, if it did (e.g. the event-budget
    /// livelock guard): the rendered `manet_sim::RunAbort`. `None` for
    /// healthy runs. A cell carrying an abort failed gracefully — its
    /// siblings in a parallel sweep still complete.
    pub abort: Option<String>,
    /// Data frames retransmitted by the ARQ shim (0 when the shim is off).
    pub retransmissions: u64,
    /// Standalone acknowledgment frames emitted by the ARQ shim.
    pub acks_sent: u64,
    /// Crash recoveries executed during the run.
    pub recoveries: u64,
    /// Largest number of unacknowledged frames buffered on any directed
    /// link by the ARQ shim.
    pub buffer_high_water: u64,
    /// Frames the channel model queued behind other traffic (0 with the
    /// default i.i.d. channel).
    pub frames_queued: u64,
    /// Peak channel transmit-queue depth (per directed link or per
    /// neighborhood, depending on the model).
    pub queue_peak: u64,
    /// Gilbert–Elliott burst-chain state transitions.
    pub burst_transitions: u64,
    /// Frames lost by the channel itself (burst loss).
    pub frames_lost: u64,
    /// Raw static-episode response times, kept for pooled aggregation
    /// (not serialized).
    pub static_responses: Vec<u64>,
    /// Raw response times of all episodes, kept for pooled aggregation
    /// (not serialized).
    pub all_responses: Vec<u64>,
}

impl RunReport {
    /// Build a report from a finished run. `probe` carries
    /// `(starving_count, locality)` when the run was a crash probe.
    pub fn from_outcome(
        label: &str,
        alg: &'static str,
        seed: u64,
        horizon: u64,
        outcome: &RunOutcome,
        probe: Option<(usize, Option<usize>)>,
    ) -> RunReport {
        let static_responses = outcome.metrics.static_responses();
        let all_responses = outcome.metrics.all_responses();
        let msg_complexity = Summary::of(&outcome.metrics.msg_complexities());
        let (starving, locality) = probe.unwrap_or((0, None));
        RunReport {
            label: label.to_string(),
            alg,
            seed,
            n: outcome.adjacency.len(),
            horizon,
            meals: outcome.total_meals(),
            messages_sent: outcome.messages_sent,
            messages_delivered: outcome.stats.messages_delivered,
            dropped_at_send: outcome.stats.dropped_at_send,
            dropped_in_flight: outcome.stats.dropped_in_flight,
            events: outcome.events,
            violations: outcome.violations.len(),
            rt_static: Summary::of(&static_responses),
            rt_all: Summary::of(&all_responses),
            jain: jain_index(&outcome.metrics.meals),
            starving,
            locality,
            faults: outcome.stats.faults.clone(),
            msg_complexity,
            abort: outcome.abort.clone(),
            retransmissions: outcome.stats.shim.retransmissions,
            acks_sent: outcome.stats.shim.acks_sent,
            recoveries: outcome.stats.faults.recoveries,
            buffer_high_water: outcome.stats.shim.buffer_high_water,
            frames_queued: outcome.stats.channel.frames_queued,
            queue_peak: outcome.stats.channel.queue_peak,
            burst_transitions: outcome.stats.channel.burst_transitions,
            frames_lost: outcome.stats.channel.frames_lost,
            static_responses,
            all_responses,
        }
    }

    /// One JSON line (no trailing newline), fixed key order, deterministic
    /// number formatting.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"label\":{},\"alg\":{},\"seed\":{},\"n\":{},\"horizon\":{},\
             \"meals\":{},\"messages_sent\":{},\"messages_delivered\":{},\
             \"dropped_at_send\":{},\"dropped_in_flight\":{},\"events\":{},\
             \"violations\":{},\"rt_static\":{},\"rt_all\":{},\"jain\":{},\
             \"starving\":{},\"locality\":{},\"faults\":{},\"msg_complexity\":{},\
             \"abort\":{},\"retransmissions\":{},\"acks_sent\":{},\
             \"recoveries\":{},\"buffer_high_water\":{},\"frames_queued\":{},\
             \"queue_peak\":{},\"burst_transitions\":{},\"frames_lost\":{}}}",
            json_str(&self.label),
            json_str(self.alg),
            self.seed,
            self.n,
            self.horizon,
            self.meals,
            self.messages_sent,
            self.messages_delivered,
            self.dropped_at_send,
            self.dropped_in_flight,
            self.events,
            self.violations,
            json_summary(&self.rt_static),
            json_summary(&self.rt_all),
            json_num(self.jain),
            self.starving,
            match self.locality {
                Some(d) => d.to_string(),
                None => "null".to_string(),
            },
            json_faults(&self.faults),
            json_summary(&self.msg_complexity),
            match &self.abort {
                Some(reason) => json_str(reason),
                None => "null".to_string(),
            },
            self.retransmissions,
            self.acks_sent,
            self.recoveries,
            self.buffer_high_water,
            self.frames_queued,
            self.queue_peak,
            self.burst_transitions,
            self.frames_lost,
        )
    }
}

/// Everything a finished sweep produced, in cell order (seed-major inside
/// each `(label, alg)` group) — the order is a pure function of the sweep
/// spec, never of worker scheduling.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// One report per cell, in cell order.
    pub runs: Vec<RunReport>,
}

impl SweepReport {
    /// The full JSONL document: one line per run, in cell order, newline
    /// after every line. Byte-identical across repetitions and `--jobs`
    /// values.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL document to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.jsonl())
    }

    /// Pool runs by `(label, alg)` in first-seen order.
    pub fn aggregate(&self) -> Vec<AggregateRow> {
        let mut rows: Vec<AggregateRow> = Vec::new();
        for r in &self.runs {
            let row = match rows
                .iter_mut()
                .find(|row| row.label == r.label && row.alg == r.alg)
            {
                Some(row) => row,
                None => {
                    rows.push(AggregateRow::empty(&r.label, r.alg));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.absorb(r);
        }
        for row in &mut rows {
            row.finish();
        }
        rows
    }
}

/// Pooled statistics over every run of one `(label, alg)` group.
#[derive(Clone, Debug)]
pub struct AggregateRow {
    /// Group label.
    pub label: String,
    /// Algorithm display name.
    pub alg: &'static str,
    /// Number of runs pooled.
    pub runs: usize,
    /// Response-time summary over the *pooled* static episodes of every
    /// run (not a summary of per-run summaries).
    pub rt_static: Summary,
    /// Response-time summary over all pooled episodes.
    pub rt_all: Summary,
    /// Total meals across runs.
    pub meals: u64,
    /// Total messages sent across runs.
    pub messages_sent: u64,
    /// Total messages dropped at send time.
    pub dropped_at_send: u64,
    /// Total messages dropped in flight.
    pub dropped_in_flight: u64,
    /// Total safety violations (must be 0).
    pub violations: usize,
    /// Total starving nodes across probe runs.
    pub starving: usize,
    /// Worst empirical failure locality across probe runs.
    pub locality: Option<usize>,
    /// Total injected faults (all kinds) across runs.
    pub faults_injected: u64,
    pooled_static: Vec<u64>,
    pooled_all: Vec<u64>,
}

impl AggregateRow {
    fn empty(label: &str, alg: &'static str) -> AggregateRow {
        AggregateRow {
            label: label.to_string(),
            alg,
            runs: 0,
            rt_static: Summary::default(),
            rt_all: Summary::default(),
            meals: 0,
            messages_sent: 0,
            dropped_at_send: 0,
            dropped_in_flight: 0,
            violations: 0,
            starving: 0,
            locality: None,
            faults_injected: 0,
            pooled_static: Vec::new(),
            pooled_all: Vec::new(),
        }
    }

    fn absorb(&mut self, r: &RunReport) {
        self.runs += 1;
        self.meals += r.meals;
        self.messages_sent += r.messages_sent;
        self.dropped_at_send += r.dropped_at_send;
        self.dropped_in_flight += r.dropped_in_flight;
        self.violations += r.violations;
        self.starving += r.starving;
        self.locality = self.locality.max(r.locality);
        self.faults_injected += r.faults.total();
        self.pooled_static.extend_from_slice(&r.static_responses);
        self.pooled_all.extend_from_slice(&r.all_responses);
    }

    fn finish(&mut self) {
        self.rt_static = Summary::of(&self.pooled_static);
        self.rt_all = Summary::of(&self.pooled_all);
    }

    /// Messages per completed critical section across the group.
    pub fn messages_per_meal(&self) -> f64 {
        if self.meals == 0 {
            f64::INFINITY
        } else {
            self.messages_sent as f64 / self.meals as f64
        }
    }

    /// One JSON line (no trailing newline) for the aggregate, fixed key
    /// order.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"label\":{},\"alg\":{},\"runs\":{},\"rt_static\":{},\"rt_all\":{},\
             \"meals\":{},\"messages_sent\":{},\"dropped_at_send\":{},\
             \"dropped_in_flight\":{},\"violations\":{},\"starving\":{},\
             \"locality\":{},\"faults_injected\":{}}}",
            json_str(&self.label),
            json_str(self.alg),
            self.runs,
            json_summary(&self.rt_static),
            json_summary(&self.rt_all),
            self.meals,
            self.messages_sent,
            self.dropped_at_send,
            self.dropped_in_flight,
            self.violations,
            self.starving,
            match self.locality {
                Some(d) => d.to_string(),
                None => "null".to_string(),
            },
            self.faults_injected,
        )
    }
}

impl fmt::Display for AggregateRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:<13} runs={:<3} static[{}] meals={} msg/meal={:.1} viol={}",
            self.label,
            self.alg,
            self.runs,
            self.rt_static,
            self.meals,
            self.messages_per_meal(),
            self.violations,
        )?;
        if self.starving > 0 || self.locality.is_some() {
            write!(
                f,
                " starving={} locality={}",
                self.starving,
                self.locality
                    .map_or_else(|| "-".to_string(), |d| d.to_string())
            )?;
        }
        Ok(())
    }
}

/// JSON string escaping for labels (ASCII control chars, quotes,
/// backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON number: shortest round-trip formatting; non-finite
/// values become `null` (JSON has no NaN/Infinity).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Fixed-key-order JSON object for the per-kind fault counters.
fn json_faults(f: &FaultStats) -> String {
    format!(
        "{{\"dropped\":{},\"duplicated\":{},\"delayed\":{},\
         \"max_delay_forced\":{},\"crashes\":{},\"partitions\":{},\
         \"heals\":{}}}",
        f.msgs_dropped,
        f.msgs_duplicated,
        f.msgs_delayed,
        f.max_delay_forced,
        f.crashes_injected,
        f.partitions,
        f.heals,
    )
}

fn json_summary(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
        s.count,
        json_num(s.mean),
        s.p50,
        s.p95,
        s.max
    )
}

/// Convenience: hop-distance helper re-exported for probe reports.
pub fn distance_of(outcome: &RunOutcome, from: NodeId, to: NodeId) -> Option<usize> {
    outcome.distances_from(from)[to.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\tend"), "\"tab\\u0009end\"");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NAN), "null");
    }

    #[test]
    fn aggregate_pools_raw_samples() {
        let mk = |seed: u64, responses: Vec<u64>| RunReport {
            label: "g".into(),
            alg: "A2",
            seed,
            n: 4,
            horizon: 100,
            meals: responses.len() as u64,
            messages_sent: 10,
            messages_delivered: 9,
            dropped_at_send: 1,
            dropped_in_flight: 0,
            events: 50,
            violations: 0,
            rt_static: Summary::of(&responses),
            rt_all: Summary::of(&responses),
            jain: 1.0,
            starving: 0,
            locality: None,
            faults: FaultStats::default(),
            msg_complexity: Summary::default(),
            abort: None,
            retransmissions: 0,
            acks_sent: 0,
            recoveries: 0,
            buffer_high_water: 0,
            frames_queued: 0,
            queue_peak: 0,
            burst_transitions: 0,
            frames_lost: 0,
            static_responses: responses.clone(),
            all_responses: responses,
        };
        let report = SweepReport {
            runs: vec![mk(1, vec![1, 2, 3]), mk(2, vec![100])],
        };
        let agg = report.aggregate();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].runs, 2);
        // Pooled max comes from the second run — a summary-of-summaries
        // would have averaged it away.
        assert_eq!(agg[0].rt_static.max, 100);
        assert_eq!(agg[0].rt_static.count, 4);
        assert_eq!(agg[0].meals, 4);
    }

    #[test]
    fn jsonl_lines_are_valid_and_stable() {
        let r = RunReport {
            label: "line8".into(),
            alg: "A2",
            seed: 7,
            n: 8,
            horizon: 1000,
            meals: 3,
            messages_sent: 12,
            messages_delivered: 11,
            dropped_at_send: 1,
            dropped_in_flight: 0,
            events: 99,
            violations: 0,
            rt_static: Summary::of(&[4, 6]),
            rt_all: Summary::of(&[4, 6]),
            jain: 0.5,
            starving: 0,
            locality: None,
            faults: FaultStats::default(),
            msg_complexity: Summary::of(&[5, 9]),
            abort: None,
            retransmissions: 2,
            acks_sent: 1,
            recoveries: 1,
            buffer_high_water: 3,
            frames_queued: 0,
            queue_peak: 0,
            burst_transitions: 0,
            frames_lost: 0,
            static_responses: vec![4, 6],
            all_responses: vec![4, 6],
        };
        let line = r.to_jsonl();
        assert_eq!(line, r.to_jsonl(), "serialization must be stable");
        assert!(line.starts_with("{\"label\":\"line8\",\"alg\":\"A2\",\"seed\":7,"));
        assert!(line.contains("\"locality\":null"));
        assert!(line.contains(
            "\"faults\":{\"dropped\":0,\"duplicated\":0,\"delayed\":0,\
             \"max_delay_forced\":0,\"crashes\":0,\"partitions\":0,\"heals\":0}"
        ));
        // p95 of a 2-sample set floors to the first element (nearest-rank).
        assert!(
            line.contains("\"rt_static\":{\"count\":2,\"mean\":5,\"p50\":4,\"p95\":4,\"max\":6}")
        );
        // New keys are suffix-appended (msg_complexity, abort, then the
        // reliability counters), so pre-existing consumers keyed on the
        // prefix keep working.
        assert!(line.contains(
            ",\"msg_complexity\":{\"count\":2,\"mean\":7,\"p50\":5,\"p95\":5,\"max\":9},\
             \"abort\":null"
        ));
        assert!(line.ends_with(
            ",\"abort\":null,\"retransmissions\":2,\"acks_sent\":1,\
             \"recoveries\":1,\"buffer_high_water\":3,\"frames_queued\":0,\
             \"queue_peak\":0,\"burst_transitions\":0,\"frames_lost\":0}"
        ));
        let aborted = RunReport {
            abort: Some("event budget exceeded (100 events): livelock?".into()),
            ..r.clone()
        };
        assert!(aborted.to_jsonl().contains(
            ",\"abort\":\"event budget exceeded (100 events): livelock?\",\
             \"retransmissions\":"
        ));

        // Prefix-stability against the PR-7 on-disk format: the exact line
        // the previous release emitted for this report must reappear
        // verbatim as a prefix, with the channel counters suffix-appended —
        // consumers keyed on the old keys keep working untouched.
        let pr7_fixture = "{\"label\":\"line8\",\"alg\":\"A2\",\"seed\":7,\"n\":8,\
             \"horizon\":1000,\"meals\":3,\"messages_sent\":12,\"messages_delivered\":11,\
             \"dropped_at_send\":1,\"dropped_in_flight\":0,\"events\":99,\"violations\":0,\
             \"rt_static\":{\"count\":2,\"mean\":5,\"p50\":4,\"p95\":4,\"max\":6},\
             \"rt_all\":{\"count\":2,\"mean\":5,\"p50\":4,\"p95\":4,\"max\":6},\"jain\":0.5,\
             \"starving\":0,\"locality\":null,\"faults\":{\"dropped\":0,\"duplicated\":0,\
             \"delayed\":0,\"max_delay_forced\":0,\"crashes\":0,\"partitions\":0,\"heals\":0},\
             \"msg_complexity\":{\"count\":2,\"mean\":7,\"p50\":5,\"p95\":5,\"max\":9},\
             \"abort\":null,\"retransmissions\":2,\"acks_sent\":1,\"recoveries\":1,\
             \"buffer_high_water\":3}";
        let pr7_prefix = pr7_fixture.strip_suffix('}').unwrap();
        assert!(
            line.starts_with(pr7_prefix),
            "PR-7 JSONL keys must survive byte-for-byte as a prefix"
        );
        assert_eq!(
            &line[pr7_prefix.len()..],
            ",\"frames_queued\":0,\"queue_peak\":0,\"burst_transitions\":0,\"frames_lost\":0}",
            "channel keys must be appended strictly after the PR-7 suffix"
        );
    }
}
