//! Mobility scripts: random-waypoint and heterogeneous-mix command
//! generators.

use manet_sim::{Command, NodeId, Position, SimRng, SimTime};

/// Parameters of a random-waypoint mobility script.
#[derive(Clone, Debug)]
pub struct WaypointPlan {
    /// Side of the square area nodes roam in.
    pub area_side: f64,
    /// Number of movement events over the horizon.
    pub moves: usize,
    /// Time window movements are sampled from.
    pub window: (u64, u64),
    /// Movement speed (distance units per tick); `None` teleports instead.
    pub speed: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl WaypointPlan {
    /// Generate the movement commands for `n` nodes, sorted by time.
    pub fn commands(&self, n: usize) -> Vec<(SimTime, Command)> {
        assert!(n > 0, "no nodes to move");
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x4d4f_4245);
        let (a, b) = self.window;
        let mut out: Vec<(SimTime, Command)> = (0..self.moves)
            .map(|_| {
                let t = SimTime(rng.gen_range(a..=b.max(a)));
                let node = NodeId(rng.gen_range(0..n as u32));
                let dest = Position {
                    x: rng.gen_f64() * self.area_side,
                    y: rng.gen_f64() * self.area_side,
                };
                let cmd = match self.speed {
                    Some(speed) => Command::StartMove { node, dest, speed },
                    None => Command::Teleport { node, dest },
                };
                (t, cmd)
            })
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

/// The mobility class a node belongs to under a [`MobilityMix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Never moves: the stable backbone of the topology.
    StaticCore,
    /// Commutes back and forth across the area on a fixed lane —
    /// long-range, link-churning motion.
    Highway,
    /// Wanders with its cluster: members of one group share a waypoint
    /// center and jitter around it, so the group's internal links survive
    /// while its external links churn.
    Group,
}

/// Heterogeneous mobility: a per-node-class mix of static-core, highway
/// and group-waypoint motion — the three regimes real MANET traces blend,
/// where uniform random waypoint is homogeneous.
///
/// Node classes are assigned by index: the first `static_frac · n` nodes
/// form the static core, the next `highway_frac · n` commute on highway
/// lanes, and the rest wander in clusters of [`MobilityMix::GROUP_SIZE`].
/// All randomness comes from a dedicated stream seeded from
/// [`MobilityMix::seed`]; like [`WaypointPlan`], the same spec always
/// produces the same command list.
#[derive(Clone, Debug, PartialEq)]
pub struct MobilityMix {
    /// Side of the square area nodes roam in.
    pub area_side: f64,
    /// Fraction of nodes (by index, from 0) that never move.
    pub static_frac: f64,
    /// Fraction of nodes commuting on highway lanes.
    pub highway_frac: f64,
    /// Movement events per mobile node over the window.
    pub moves_per_node: usize,
    /// Time window movements are sampled from.
    pub window: (u64, u64),
    /// Movement speed (distance units per tick).
    pub speed: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MobilityMix {
    fn default() -> MobilityMix {
        MobilityMix {
            area_side: 8.0,
            static_frac: 0.4,
            highway_frac: 0.3,
            moves_per_node: 4,
            window: (100, 4_000),
            speed: 0.2,
            seed: 0,
        }
    }
}

impl MobilityMix {
    /// Cluster size of the group-waypoint class.
    pub const GROUP_SIZE: usize = 4;

    /// Parse a CLI mix spec `"<static_frac>:<highway_frac>"` (the rest of
    /// the nodes are group-waypoint), e.g. `"0.4:0.3"`. Other fields take
    /// their defaults; callers override them afterwards.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the fractions are malformed, outside
    /// `[0, 1]`, or sum past 1.
    pub fn parse(spec: &str) -> Result<MobilityMix, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 2 {
            return Err("mix spec: <static_frac>:<highway_frac>, e.g. 0.4:0.3".into());
        }
        let frac = |s: &str, name: &str| -> Result<f64, String> {
            let v: f64 = s
                .parse()
                .map_err(|_| format!("mix spec: bad {name} '{s}'"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("mix spec: {name} ({v}) must be in [0, 1]"));
            }
            Ok(v)
        };
        let static_frac = frac(parts[0], "static_frac")?;
        let highway_frac = frac(parts[1], "highway_frac")?;
        if static_frac + highway_frac > 1.0 {
            return Err(format!(
                "mix spec: fractions sum to {} > 1",
                static_frac + highway_frac
            ));
        }
        Ok(MobilityMix {
            static_frac,
            highway_frac,
            ..MobilityMix::default()
        })
    }

    /// The class of every node, by index — a pure function of the spec
    /// and `n`.
    pub fn classes(&self, n: usize) -> Vec<NodeClass> {
        let n_static = ((n as f64 * self.static_frac).round() as usize).min(n);
        let n_highway = ((n as f64 * self.highway_frac).round() as usize).min(n - n_static);
        (0..n)
            .map(|i| {
                if i < n_static {
                    NodeClass::StaticCore
                } else if i < n_static + n_highway {
                    NodeClass::Highway
                } else {
                    NodeClass::Group
                }
            })
            .collect()
    }

    /// Generate the movement commands for `n` nodes, sorted by time.
    /// Static-core nodes get none; highway nodes alternate ends of their
    /// lane; each group cluster shares a per-round waypoint center with
    /// per-member jitter.
    pub fn commands(&self, n: usize) -> Vec<(SimTime, Command)> {
        assert!(n > 0, "no nodes to move");
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x4d49_5845);
        let classes = self.classes(n);
        let (a, b) = self.window;
        let b = b.max(a);
        let side = self.area_side;
        let mut out: Vec<(SimTime, Command)> = Vec::new();
        let highway: Vec<NodeId> = (0..n)
            .filter(|&i| classes[i] == NodeClass::Highway)
            .map(|i| NodeId(i as u32))
            .collect();
        for (lane, &node) in highway.iter().enumerate() {
            let lane_y = side * (lane + 1) as f64 / (highway.len() + 1) as f64;
            let mut times: Vec<u64> = (0..self.moves_per_node)
                .map(|_| rng.gen_range(a..=b))
                .collect();
            times.sort_unstable();
            for (m, t) in times.into_iter().enumerate() {
                let x = if m % 2 == 0 { side } else { 0.0 };
                out.push((
                    SimTime(t),
                    Command::StartMove {
                        node,
                        dest: Position { x, y: lane_y },
                        speed: self.speed,
                    },
                ));
            }
        }
        let group: Vec<NodeId> = (0..n)
            .filter(|&i| classes[i] == NodeClass::Group)
            .map(|i| NodeId(i as u32))
            .collect();
        for cluster in group.chunks(Self::GROUP_SIZE) {
            for _ in 0..self.moves_per_node {
                let t0 = rng.gen_range(a..=b);
                let cx = rng.gen_f64() * side;
                let cy = rng.gen_f64() * side;
                for &node in cluster {
                    let jitter = side * 0.05;
                    let dx = (rng.gen_f64() - 0.5) * 2.0 * jitter;
                    let dy = (rng.gen_f64() - 0.5) * 2.0 * jitter;
                    let lag = rng.gen_range(0u64..=5);
                    out.push((
                        SimTime(t0.saturating_add(lag)),
                        Command::StartMove {
                            node,
                            dest: Position {
                                x: (cx + dx).clamp(0.0, side),
                                y: (cy + dy).clamp(0.0, side),
                            },
                            speed: self.speed,
                        },
                    ));
                }
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let plan = WaypointPlan {
            area_side: 10.0,
            moves: 20,
            window: (100, 900),
            speed: Some(0.3),
            seed: 5,
        };
        let a = plan.commands(8);
        let b = plan.commands(8);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        for (t, cmd) in &a {
            assert!(t.0 >= 100 && t.0 <= 900);
            assert!(matches!(cmd, Command::StartMove { .. }));
        }
    }

    #[test]
    fn mix_classes_partition_by_fraction() {
        let mix = MobilityMix {
            static_frac: 0.5,
            highway_frac: 0.25,
            ..MobilityMix::default()
        };
        let classes = mix.classes(8);
        assert_eq!(
            classes
                .iter()
                .filter(|c| **c == NodeClass::StaticCore)
                .count(),
            4
        );
        assert_eq!(
            classes.iter().filter(|c| **c == NodeClass::Highway).count(),
            2
        );
        assert_eq!(
            classes.iter().filter(|c| **c == NodeClass::Group).count(),
            2
        );
        // All-static mix: nobody moves.
        let frozen = MobilityMix {
            static_frac: 1.0,
            highway_frac: 0.0,
            ..MobilityMix::default()
        };
        assert!(frozen.commands(8).is_empty());
    }

    #[test]
    fn mix_commands_are_deterministic_and_spare_the_core() {
        let mix = MobilityMix {
            static_frac: 0.5,
            highway_frac: 0.25,
            seed: 11,
            ..MobilityMix::default()
        };
        let a = mix.commands(8);
        assert_eq!(a, mix.commands(8));
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
        let classes = mix.classes(8);
        for (_, cmd) in &a {
            let Command::StartMove { node, dest, .. } = cmd else {
                panic!("mix emits StartMove only");
            };
            assert_ne!(
                classes[node.index()],
                NodeClass::StaticCore,
                "static-core nodes must never move"
            );
            assert!(dest.x >= 0.0 && dest.x <= mix.area_side);
            assert!(dest.y >= 0.0 && dest.y <= mix.area_side);
        }
        // A different seed reshuffles the schedule.
        let b = MobilityMix { seed: 12, ..mix }.commands(8);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_parse_validates() {
        let mix = MobilityMix::parse("0.4:0.3").unwrap();
        assert_eq!(mix.static_frac, 0.4);
        assert_eq!(mix.highway_frac, 0.3);
        for bad in ["0.4", "x:0.3", "0.7:0.7", "-0.1:0.5", "1:2:3"] {
            assert!(MobilityMix::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn teleport_variant() {
        let plan = WaypointPlan {
            area_side: 5.0,
            moves: 3,
            window: (1, 10),
            speed: None,
            seed: 9,
        };
        assert!(plan
            .commands(4)
            .iter()
            .all(|(_, c)| matches!(c, Command::Teleport { .. })));
    }
}
