//! Mobility scripts: random-waypoint command generators.

use manet_sim::{Command, NodeId, Position, SimRng, SimTime};

/// Parameters of a random-waypoint mobility script.
#[derive(Clone, Debug)]
pub struct WaypointPlan {
    /// Side of the square area nodes roam in.
    pub area_side: f64,
    /// Number of movement events over the horizon.
    pub moves: usize,
    /// Time window movements are sampled from.
    pub window: (u64, u64),
    /// Movement speed (distance units per tick); `None` teleports instead.
    pub speed: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl WaypointPlan {
    /// Generate the movement commands for `n` nodes, sorted by time.
    pub fn commands(&self, n: usize) -> Vec<(SimTime, Command)> {
        assert!(n > 0, "no nodes to move");
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x4d4f_4245);
        let (a, b) = self.window;
        let mut out: Vec<(SimTime, Command)> = (0..self.moves)
            .map(|_| {
                let t = SimTime(rng.gen_range(a..=b.max(a)));
                let node = NodeId(rng.gen_range(0..n as u32));
                let dest = Position {
                    x: rng.gen_f64() * self.area_side,
                    y: rng.gen_f64() * self.area_side,
                };
                let cmd = match self.speed {
                    Some(speed) => Command::StartMove { node, dest, speed },
                    None => Command::Teleport { node, dest },
                };
                (t, cmd)
            })
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let plan = WaypointPlan {
            area_side: 10.0,
            moves: 20,
            window: (100, 900),
            speed: Some(0.3),
            seed: 5,
        };
        let a = plan.commands(8);
        let b = plan.commands(8);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        for (t, cmd) in &a {
            assert!(t.0 >= 100 && t.0 <= 900);
            assert!(matches!(cmd, Command::StartMove { .. }));
        }
    }

    #[test]
    fn teleport_variant() {
        let plan = WaypointPlan {
            area_side: 5.0,
            moves: 3,
            window: (1, 10),
            speed: None,
            seed: 9,
        };
        assert!(plan
            .commands(4)
            .iter()
            .all(|(_, c)| matches!(c, Command::Teleport { .. })));
    }
}
