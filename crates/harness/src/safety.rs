//! The local mutual exclusion safety monitor.

use std::cell::RefCell;
use std::rc::Rc;

use manet_sim::{DiningState, Hook, NodeId, SimTime, Sink, View};

/// A recorded safety violation: two neighbors eating at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// When it was observed.
    pub at: SimTime,
    /// The lower-ID eater.
    pub a: NodeId,
    /// The higher-ID eater.
    pub b: NodeId,
}

/// Checks the LME invariant — *no two current neighbors eating* — after
/// every instant of virtual time (Section 3.2 of the paper).
///
/// In `panic_on_violation` mode the first violation aborts the run (the
/// right default for tests); otherwise violations are recorded for the
/// caller to assert on, and consecutive duplicates are deduplicated.
#[derive(Debug)]
pub struct SafetyMonitor {
    violations: Rc<RefCell<Vec<Violation>>>,
    panic_on_violation: bool,
}

impl SafetyMonitor {
    /// Create the monitor and the shared handle to its violation log.
    pub fn new(panic_on_violation: bool) -> (SafetyMonitor, Rc<RefCell<Vec<Violation>>>) {
        let v = Rc::new(RefCell::new(Vec::new()));
        (
            SafetyMonitor {
                violations: v.clone(),
                panic_on_violation,
            },
            v,
        )
    }
}

impl<M> Hook<M> for SafetyMonitor {
    fn on_quantum_end(&mut self, view: &View<'_>, _sink: &mut Sink) {
        for a in view.nodes() {
            if view.dining(a) != DiningState::Eating {
                continue;
            }
            for &b in view.world().neighbors(a) {
                if b > a && view.dining(b) == DiningState::Eating {
                    if self.panic_on_violation {
                        panic!(
                            "local mutual exclusion violated at {}: {a} and {b} both eating",
                            view.time()
                        );
                    }
                    let mut log = self.violations.borrow_mut();
                    let dup = log.last().is_some_and(|v: &Violation| v.a == a && v.b == b);
                    if !dup {
                        log.push(Violation {
                            at: view.time(),
                            a,
                            b,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Context, Engine, Event, Protocol, SimConfig};

    struct Rogue(DiningState);
    impl Protocol for Rogue {
        type Msg = ();
        fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
            if matches!(ev, Event::Hungry) {
                self.0 = DiningState::Eating;
            }
        }
        fn dining_state(&self) -> DiningState {
            self.0
        }
    }

    #[test]
    fn records_violations_without_panicking() {
        let mut e: Engine<Rogue> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |_| {
                Rogue(DiningState::Thinking)
            });
        let (monitor, log) = SafetyMonitor::new(false);
        e.add_hook(Box::new(monitor));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(10));
        let log = log.borrow();
        assert!(!log.is_empty());
        assert_eq!((log[0].a, log[0].b), (NodeId(0), NodeId(1)));
        // Deduplicated: one entry despite many quanta.
        assert_eq!(log.len(), 1);
    }
}
