//! The local mutual exclusion safety monitor.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use manet_sim::{DiningState, Hook, NodeId, SimTime, Sink, View};

/// A recorded safety violation: two neighbors eating at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// When it was observed.
    pub at: SimTime,
    /// The lower-ID eater.
    pub a: NodeId,
    /// The higher-ID eater.
    pub b: NodeId,
}

/// Checks the LME invariant — *no two current neighbors eating* — after
/// every instant of virtual time (Section 3.2 of the paper).
///
/// A node that crashes **mid-eating** never leaves the critical section:
/// it provably holds every shared fork, so a neighbor that eats afterwards
/// is a genuine violation. The monitor tracks such crashed eaters
/// explicitly (their engine-cached dining state is frozen at crash time
/// and must not be trusted as a live reading), and de-duplicates repeated
/// observations by *eating session*, not just by pair — otherwise a new
/// violating session against the same frozen crashed eater would be
/// swallowed as a consecutive duplicate (a stale-session false negative).
///
/// In `panic_on_violation` mode the first violation aborts the run (the
/// right default for tests); otherwise violations are recorded for the
/// caller to assert on.
#[derive(Debug)]
pub struct SafetyMonitor {
    violations: Rc<RefCell<Vec<Violation>>>,
    panic_on_violation: bool,
    /// Nodes that crashed while eating: permanent CS occupants.
    crashed_eating: BTreeSet<NodeId>,
    /// Dedup key of the last logged violation:
    /// `(a, b, session_of_a, session_of_b)`.
    last_key: Option<(NodeId, NodeId, u64, u64)>,
}

impl SafetyMonitor {
    /// Create the monitor and the shared handle to its violation log.
    pub fn new(panic_on_violation: bool) -> (SafetyMonitor, Rc<RefCell<Vec<Violation>>>) {
        let v = Rc::new(RefCell::new(Vec::new()));
        (
            SafetyMonitor {
                violations: v.clone(),
                panic_on_violation,
                crashed_eating: BTreeSet::new(),
                last_key: None,
            },
            v,
        )
    }

    fn record(&mut self, view: &View<'_>, x: NodeId, y: NodeId) {
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        if self.panic_on_violation {
            panic!(
                "local mutual exclusion violated at {}: {a} and {b} both eating",
                view.time()
            );
        }
        // Eating sessions key the dedup: a *new* session of either
        // participant is a new violation, even against the same pair.
        let key = (a, b, view.eating_session(a), view.eating_session(b));
        if self.last_key == Some(key) {
            return;
        }
        self.last_key = Some(key);
        self.violations.borrow_mut().push(Violation {
            at: view.time(),
            a,
            b,
        });
    }
}

impl<M> Hook<M> for SafetyMonitor {
    fn on_crash(&mut self, view: &View<'_>, node: NodeId, _sink: &mut Sink) {
        // The cached dining state is still accurate at the crash instant.
        if view.dining(node) == DiningState::Eating {
            self.crashed_eating.insert(node);
        }
    }

    fn on_recover(&mut self, _view: &View<'_>, node: NodeId, _sink: &mut Sink) {
        // The new incarnation starts Thinking: it no longer occupies the CS,
        // so the frozen-eater record of the dead incarnation must not keep
        // flagging its neighbors. The dedup key is also dropped if it names
        // the node — a post-recovery re-violation is a fresh violation.
        self.crashed_eating.remove(&node);
        if let Some((a, b, _, _)) = self.last_key {
            if a == node || b == node {
                self.last_key = None;
            }
        }
    }

    fn on_quantum_end(&mut self, view: &View<'_>, _sink: &mut Sink) {
        let world = view.world();
        for a in view.nodes() {
            // Crashed nodes are handled via `crashed_eating`; their cached
            // dining state is frozen and not a live reading.
            if world.is_crashed(a) || view.dining(a) != DiningState::Eating {
                continue;
            }
            for &b in world.neighbors(a) {
                if world.is_crashed(b) {
                    if self.crashed_eating.contains(&b) {
                        // Eating while a crashed neighbor died mid-CS.
                        self.record(view, a, b);
                    }
                } else if b > a && view.dining(b) == DiningState::Eating {
                    self.record(view, a, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Command, Context, Engine, Event, Protocol, SimConfig};

    struct Rogue(DiningState);
    impl Protocol for Rogue {
        type Msg = ();
        fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
            match ev {
                Event::Hungry => self.0 = DiningState::Eating,
                Event::ExitCs => self.0 = DiningState::Thinking,
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.0
        }
    }

    fn rogue_pair() -> Engine<Rogue> {
        Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |_| {
            Rogue(DiningState::Thinking)
        })
    }

    #[test]
    fn records_violations_without_panicking() {
        let mut e = rogue_pair();
        let (monitor, log) = SafetyMonitor::new(false);
        e.add_hook(Box::new(monitor));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(10));
        let log = log.borrow();
        assert!(!log.is_empty());
        assert_eq!((log[0].a, log[0].b), (NodeId(0), NodeId(1)));
        // Deduplicated: one entry despite many quanta.
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn eating_next_to_a_neighbor_that_crashed_mid_eating_is_flagged() {
        // Regression: node 1 crashes while eating (it holds every shared
        // fork forever); each later eating session of node 0 is a distinct
        // violation. The old pair-keyed dedup logged the first and
        // swallowed every subsequent session as a "consecutive duplicate".
        let mut e = rogue_pair();
        let (monitor, log) = SafetyMonitor::new(false);
        e.add_hook(Box::new(monitor));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.crash_at(SimTime(5), NodeId(1)); // mid-eating
                                           // Two separate eating sessions of node 0, both after the crash.
        e.set_hungry_at(SimTime(10), NodeId(0));
        e.schedule(
            SimTime(20),
            Command::ExitCs {
                node: NodeId(0),
                session: 1,
            },
        );
        e.set_hungry_at(SimTime(30), NodeId(0));
        e.run_until(SimTime(40));
        let log = log.borrow();
        assert_eq!(
            log.len(),
            2,
            "each session against the crashed eater is a new violation: {log:?}"
        );
        assert!(log.iter().all(|v| (v.a, v.b) == (NodeId(0), NodeId(1))));
        assert!(
            log[0].at < SimTime(20) && log[1].at >= SimTime(30),
            "{log:?}"
        );
    }

    #[test]
    fn crashing_outside_the_cs_is_benign() {
        let mut e = rogue_pair();
        let (monitor, log) = SafetyMonitor::new(false);
        e.add_hook(Box::new(monitor));
        e.crash_at(SimTime(2), NodeId(1)); // thinking at crash time
        e.set_hungry_at(SimTime(10), NodeId(0));
        e.run_until(SimTime(40));
        assert!(log.borrow().is_empty());
    }
}
