//! Message-complexity accounting.
//!
//! The paper names message complexity as future work (Chapter 7); the
//! census hook makes it measurable: it classifies every delivered message
//! with a caller-supplied labeler and counts per label.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use manet_sim::{Hook, NodeId, Sink, View};

/// Per-label delivery counts, shared via `Rc<RefCell<_>>`.
pub type CensusCounts = Rc<RefCell<BTreeMap<&'static str, u64>>>;

/// Hook counting delivered messages by kind.
///
/// ```
/// use harness::census::MessageCensus;
/// use local_mutex::A2Msg;
///
/// let (hook, counts) = MessageCensus::new(A2Msg::kind as fn(&A2Msg) -> &'static str);
/// // … engine.add_hook(Box::new(hook)); run …
/// assert!(counts.borrow().is_empty());
/// ```
pub struct MessageCensus<M> {
    classify: fn(&M) -> &'static str,
    counts: CensusCounts,
}

impl<M> MessageCensus<M> {
    /// Create the hook and the shared handle to its counters.
    pub fn new(classify: fn(&M) -> &'static str) -> (MessageCensus<M>, CensusCounts) {
        let counts: CensusCounts = Rc::new(RefCell::new(BTreeMap::new()));
        (
            MessageCensus {
                classify,
                counts: counts.clone(),
            },
            counts,
        )
    }
}

impl<M> Hook<M> for MessageCensus<M> {
    fn on_deliver(
        &mut self,
        _view: &View<'_>,
        _from: NodeId,
        _to: NodeId,
        msg: &M,
        _sink: &mut Sink,
    ) {
        *self
            .counts
            .borrow_mut()
            .entry((self.classify)(msg))
            .or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_mutex::testutil::AutoExit;
    use local_mutex::{A2Msg, Algorithm2};
    use manet_sim::{Engine, SimConfig, SimTime};

    #[test]
    fn census_counts_a2_traffic_by_kind() {
        let mut e: Engine<Algorithm2> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |seed| {
                Algorithm2::new(&seed)
            });
        let (census, counts) = MessageCensus::new(A2Msg::kind as fn(&A2Msg) -> &'static str);
        e.add_hook(Box::new(census));
        e.add_hook(Box::new(AutoExit::new(10)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(2_000));
        let counts = counts.borrow();
        assert!(counts.get("notification").copied().unwrap_or(0) >= 2);
        assert!(counts.get("fork").copied().unwrap_or(0) >= 1);
        let total: u64 = counts.values().sum();
        assert!(total >= 5, "{counts:?}");
    }
}
