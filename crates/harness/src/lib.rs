//! # `harness` — experiment substrate for the reproduction
//!
//! Everything needed to turn the algorithm crates into measurements:
//!
//! * [`topology`] — line / ring / grid / clique / random unit-disk layouts;
//! * [`workload`] — cyclic and one-shot hungry/eat drivers (the model's
//!   application layer, with eating time ≤ τ);
//! * [`mobility`] — random-waypoint movement scripts;
//! * [`metrics`] — response-time samples (with per-episode static/moved
//!   flags, matching Definition 1 of the paper), meals, starvation probes;
//! * [`safety`] — the local-mutual-exclusion invariant checker, evaluated
//!   after **every** instant of virtual time;
//! * [`failure_locality`] — crash probes that measure how far from a
//!   crashed node starvation reaches;
//! * [`census`] — message-complexity accounting by message kind;
//! * [`runner`] — one-call execution of any implemented algorithm
//!   ([`runner::AlgKind`]) on any layout, returning a [`runner::RunOutcome`];
//! * [`stats`] / [`table`] — reporting helpers for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod failure_locality;
pub mod metrics;
pub mod mobility;
pub mod runner;
pub mod safety;
pub mod stats;
pub mod table;
pub mod topology;
pub mod workload;

pub use census::{CensusCounts, MessageCensus};
pub use failure_locality::{crash_probe, response_by_distance, FlReport};
pub use metrics::{Metrics, MetricsData, Sample};
pub use mobility::WaypointPlan;
pub use runner::{run_algorithm, run_algorithm_graph, run_protocol, run_protocol_graph, AlgKind, RunOutcome, RunSpec};
pub use safety::{SafetyMonitor, Violation};
pub use stats::Summary;
pub use table::Table;
pub use workload::Workload;
