//! # `harness` — experiment substrate for the reproduction
//!
//! Everything needed to turn the algorithm crates into measurements:
//!
//! * [`topology`] — line / ring / grid / clique / random unit-disk layouts;
//! * [`workload`] — cyclic and one-shot hungry/eat drivers (the model's
//!   application layer, with eating time ≤ τ);
//! * [`mobility`] — random-waypoint movement scripts and heterogeneous
//!   mobility mixes (static-core + highway + group waypoint);
//! * [`metrics`] — response-time samples (with per-episode static/moved
//!   flags, matching Definition 1 of the paper), meals, starvation probes;
//! * [`safety`] — the local-mutual-exclusion invariant checker, evaluated
//!   after **every** instant of virtual time;
//! * [`failure_locality`] — crash probes that measure how far from a
//!   crashed node starvation reaches;
//! * [`census`] — message-complexity accounting by message kind;
//! * [`runner`] — one-call execution of any implemented algorithm
//!   ([`runner::AlgKind`]) on any layout, returning a [`runner::RunOutcome`];
//! * [`sweep`] — the parallel, deterministic sweep executor: fans a grid of
//!   `(algorithm, seed)` cells across scoped worker threads, each cell an
//!   independent single-threaded engine run, with output order (and bytes)
//!   independent of the worker count;
//! * [`report`] — run-level observability: per-run [`report::RunReport`]
//!   records, stable JSON-lines emission, and pooled percentile aggregation
//!   across seeds ([`report::AggregateRow`]);
//! * [`stats`] / [`table`] — reporting helpers for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod failure_locality;
pub mod metrics;
pub mod mobility;
pub mod report;
pub mod runner;
pub mod safety;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod topology;
pub mod workload;

pub use census::{CensusCounts, MessageCensus};
pub use failure_locality::{
    analyze_crash, crash_probe, fault_probe, response_by_distance, FaultClass, FaultProbeReport,
    FlReport,
};
pub use metrics::{Metrics, MetricsData, Sample};
pub use mobility::{MobilityMix, NodeClass, WaypointPlan};
pub use report::{AggregateRow, RunReport, SweepReport};
pub use runner::{
    run_algorithm, run_algorithm_graph, run_algorithm_with_strategy, run_protocol,
    run_protocol_graph, AlgKind, RunOutcome, RunSpec,
};
pub use safety::{SafetyMonitor, Violation};
pub use stats::Summary;
pub use sweep::{default_jobs, par_map, run_cells, Job, SweepCell, SweepSpec, Topo};
pub use table::Table;
pub use workload::Workload;
