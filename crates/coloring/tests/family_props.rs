//! Property tests for the cover-free families and the Linial schedule —
//! the combinatorial backbone of the fast recoloring procedure.

use std::collections::BTreeSet;

use coloring::{greedy_color_graph, AdjGraph, CoverFreeFamily, LinialSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The defining property of Theorem 18's families: no member set is
    /// covered by the union of δ others.
    #[test]
    fn no_set_covered_by_delta_others(
        m in 2u64..1500,
        delta in 1u64..6,
        picks in prop::collection::vec(any::<u64>(), 1..7),
        target in any::<u64>(),
    ) {
        let fam = CoverFreeFamily::construct(m, delta);
        let i = target % m;
        let others: Vec<u64> = picks
            .iter()
            .take(delta as usize)
            .map(|p| p % m)
            .collect();
        let free = fam.free_element(i, &others);
        prop_assert!(free.is_some(), "F_{i} covered by {others:?} (m={m}, δ={delta})");
        let x = free.unwrap();
        let mine: BTreeSet<u64> = fam.set(i).into_iter().collect();
        prop_assert!(mine.contains(&x));
        for &j in &others {
            if j == i {
                continue;
            }
            let theirs: BTreeSet<u64> = fam.set(j).into_iter().collect();
            prop_assert!(!theirs.contains(&x), "free element {x} appears in F_{j}");
        }
        prop_assert!(x < fam.range());
    }

    /// Every member set has exactly q elements inside the ground set.
    #[test]
    fn sets_well_formed(m in 1u64..2000, delta in 1u64..6, target in any::<u64>()) {
        let fam = CoverFreeFamily::construct(m, delta);
        let i = target % m;
        let s = fam.set(i);
        prop_assert_eq!(s.len() as u64, fam.q());
        let uniq: BTreeSet<u64> = s.iter().copied().collect();
        prop_assert_eq!(uniq.len(), s.len(), "duplicate elements");
        prop_assert!(s.iter().all(|&x| x < fam.range()));
        // Sorted ascending (documented contract).
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    /// Running the full Linial schedule synchronously on a random graph of
    /// bounded degree always produces a legal coloring inside the final
    /// range, no matter the topology.
    #[test]
    fn schedule_legal_on_random_bounded_graphs(
        n in 4usize..60,
        delta in 2u64..6,
        edge_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 0..150),
    ) {
        // Build a random graph, dropping edges that would exceed δ.
        let mut g = AdjGraph::new();
        for v in 0..n as u32 {
            g.add_vertex(v);
        }
        for (a, b) in edge_picks {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b
                && !g.adjacent(a, b)
                && g.degree(a) < delta as usize
                && g.degree(b) < delta as usize
            {
                g.add_edge(a, b);
            }
        }
        let sched = LinialSchedule::compute(n as u64, delta);
        let mut colors: Vec<u64> = (0..n as u64).collect();
        for t in 0..sched.rounds() {
            let next: Vec<u64> = (0..n as u32)
                .map(|v| {
                    let nbr: Vec<u64> =
                        g.neighbors(v).map(|u| colors[u as usize]).collect();
                    sched.step(t, colors[v as usize], &nbr)
                })
                .collect();
            colors = next;
            for v in 0..n as u32 {
                for u in g.neighbors(v) {
                    prop_assert_ne!(
                        colors[v as usize],
                        colors[u as usize],
                        "illegal after round {}", t
                    );
                }
            }
        }
        prop_assert!(colors.iter().all(|&c| c < sched.final_range()));
    }

    /// Greedy coloring of an arbitrary graph is always legal and within
    /// each vertex's degree.
    #[test]
    fn greedy_always_legal(
        n in 1usize..60,
        edge_picks in prop::collection::vec((any::<u32>(), any::<u32>()), 0..200),
    ) {
        let mut g = AdjGraph::new();
        for v in 0..n as u32 {
            g.add_vertex(v);
        }
        for (a, b) in edge_picks {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                g.add_edge(a, b);
            }
        }
        let colors = greedy_color_graph(&g);
        prop_assert!(g.is_legal_coloring(|v| colors.get(&v).copied()));
        for v in g.vertices() {
            prop_assert!(colors[&v] <= g.degree(v) as i64);
        }
    }
}
