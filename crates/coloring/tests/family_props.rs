//! Randomized tests for the cover-free families and the Linial schedule —
//! the combinatorial backbone of the fast recoloring procedure.
//!
//! Formerly proptest properties; now seeded batteries over the simulator's
//! own deterministic RNG so the suite builds offline. Each test runs the
//! same 64-case budget the proptest config used.

use std::collections::BTreeSet;

use coloring::{greedy_color_graph, AdjGraph, CoverFreeFamily, LinialSchedule};
use manet_sim::SimRng;

/// The defining property of Theorem 18's families: no member set is
/// covered by the union of δ others.
#[test]
fn no_set_covered_by_delta_others() {
    let mut rng = SimRng::seed_from_u64(0xC0FE_0001);
    for _ in 0..64 {
        let m = rng.gen_range(2..1500u64);
        let delta = rng.gen_range(1..6u64);
        let picks: Vec<u64> = (0..rng.gen_range(1..7usize))
            .map(|_| rng.next_u64())
            .collect();
        let target = rng.next_u64();

        let fam = CoverFreeFamily::construct(m, delta);
        let i = target % m;
        let others: Vec<u64> = picks.iter().take(delta as usize).map(|p| p % m).collect();
        let free = fam.free_element(i, &others);
        assert!(
            free.is_some(),
            "F_{i} covered by {others:?} (m={m}, δ={delta})"
        );
        let x = free.unwrap();
        let mine: BTreeSet<u64> = fam.set(i).into_iter().collect();
        assert!(mine.contains(&x));
        for &j in &others {
            if j == i {
                continue;
            }
            let theirs: BTreeSet<u64> = fam.set(j).into_iter().collect();
            assert!(!theirs.contains(&x), "free element {x} appears in F_{j}");
        }
        assert!(x < fam.range());
    }
}

/// Every member set has exactly q elements inside the ground set.
#[test]
fn sets_well_formed() {
    let mut rng = SimRng::seed_from_u64(0xC0FE_0002);
    for _ in 0..64 {
        let m = rng.gen_range(1..2000u64);
        let delta = rng.gen_range(1..6u64);
        let target = rng.next_u64();

        let fam = CoverFreeFamily::construct(m, delta);
        let i = target % m;
        let s = fam.set(i);
        assert_eq!(s.len() as u64, fam.q());
        let uniq: BTreeSet<u64> = s.iter().copied().collect();
        assert_eq!(uniq.len(), s.len(), "duplicate elements");
        assert!(s.iter().all(|&x| x < fam.range()));
        // Sorted ascending (documented contract).
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}

/// Running the full Linial schedule synchronously on a random graph of
/// bounded degree always produces a legal coloring inside the final
/// range, no matter the topology.
#[test]
fn schedule_legal_on_random_bounded_graphs() {
    let mut rng = SimRng::seed_from_u64(0xC0FE_0003);
    for _ in 0..64 {
        let n = rng.gen_range(4..60usize);
        let delta = rng.gen_range(2..6u64);
        let edge_picks: Vec<(u32, u32)> = (0..rng.gen_range(0..150usize))
            .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32))
            .collect();

        // Build a random graph, dropping edges that would exceed δ.
        let mut g = AdjGraph::new();
        for v in 0..n as u32 {
            g.add_vertex(v);
        }
        for (a, b) in edge_picks {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b
                && !g.adjacent(a, b)
                && g.degree(a) < delta as usize
                && g.degree(b) < delta as usize
            {
                g.add_edge(a, b);
            }
        }
        let sched = LinialSchedule::compute(n as u64, delta);
        let mut colors: Vec<u64> = (0..n as u64).collect();
        for t in 0..sched.rounds() {
            let next: Vec<u64> = (0..n as u32)
                .map(|v| {
                    let nbr: Vec<u64> = g.neighbors(v).map(|u| colors[u as usize]).collect();
                    sched.step(t, colors[v as usize], &nbr)
                })
                .collect();
            colors = next;
            for v in 0..n as u32 {
                for u in g.neighbors(v) {
                    assert_ne!(
                        colors[v as usize], colors[u as usize],
                        "illegal after round {t}"
                    );
                }
            }
        }
        assert!(colors.iter().all(|&c| c < sched.final_range()));
    }
}

/// Greedy coloring of an arbitrary graph is always legal and within
/// each vertex's degree.
#[test]
fn greedy_always_legal() {
    let mut rng = SimRng::seed_from_u64(0xC0FE_0004);
    for _ in 0..64 {
        let n = rng.gen_range(1..60usize);
        let edge_picks: Vec<(u32, u32)> = (0..rng.gen_range(0..200usize))
            .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32))
            .collect();

        let mut g = AdjGraph::new();
        for v in 0..n as u32 {
            g.add_vertex(v);
        }
        for (a, b) in edge_picks {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                g.add_edge(a, b);
            }
        }
        let colors = greedy_color_graph(&g);
        assert!(g.is_legal_coloring(|v| colors.get(&v).copied()));
        for v in g.vertices() {
            assert!(colors[&v] <= g.degree(v) as i64);
        }
    }
}
