//! # `coloring` — graph-coloring procedures for the recoloring module
//!
//! Algorithm 1 of the paper resolves fork-collection conflicts with node
//! colors and *recolors* nodes that moved. This crate supplies the pure
//! (deterministic, message-free) parts of the two coloring procedures:
//!
//! * [`greedy`] — greedy coloring of an explicit conflict graph, shared by
//!   all participants of the greedy recoloring procedure (Algorithm 4,
//!   Line 72): every node runs the same traversal on the same collected
//!   graph `G` and reads off its own color.
//! * [`cover_free`] — a *constructive* δ-cover-free set family replacing the
//!   probabilistic Erdős–Frankl–Füredi families of Theorem 18 (which the
//!   paper's nodes would find by exhaustive search). Built from
//!   Reed–Solomon-style polynomial codes: distinct degree-≤k polynomials
//!   over `F_q` agree on at most `k` points, so with `q > δ·k` no set is
//!   covered by the union of δ others. Same guarantee, slightly larger
//!   (polylog) range.
//! * [`linial`] — the iterated color-reduction schedule of Linial's
//!   algorithm (Algorithm 5): starting from colors in `[0, n)` (unique IDs),
//!   each round maps colors through a cover-free family into a smaller
//!   range; after `O(log* n)` rounds the range reaches a fixed point of
//!   size `O(δ² log² δ)`.
//!
//! The message-driven wrappers that run these procedures behind doorways
//! live in the `local-mutex` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover_free;
pub mod graph;
pub mod greedy;
pub mod linial;

pub use cover_free::CoverFreeFamily;
pub use graph::AdjGraph;
pub use greedy::{greedy_color_graph, smallest_free_color};
pub use linial::LinialSchedule;
