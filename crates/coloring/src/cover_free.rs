//! Constructive δ-cover-free set families.
//!
//! Theorem 18 of the paper (Erdős–Frankl–Füredi) guarantees, for any `n > δ`,
//! a family of `n` subsets of `{1, …, ⌈5δ²·log n⌉}` in which no set is
//! covered by the union of δ others. The proof is probabilistic, and the
//! paper has nodes find such families by local exhaustive search — which is
//! super-exponential. We substitute the classical *Kautz–Singleton*
//! construction from Reed–Solomon codes:
//!
//! * pick a prime `q` and a degree bound `k` with `q^(k+1) ≥ n` (enough
//!   polynomials) and `q > δ·k` (the cover-free margin);
//! * identify index `i` with the polynomial `p_i` over `F_q` whose
//!   coefficients are the base-`q` digits of `i`;
//! * let `F_i = { x·q + p_i(x) : x ∈ [0, q) } ⊆ [0, q²)`.
//!
//! Distinct degree-≤k polynomials agree on at most `k` points, so
//! `|F_i ∩ F_j| ≤ k`, and a union of δ other sets meets `F_i` in at most
//! `δ·k < q = |F_i|` points — hence no set is covered. The ground-set size
//! `q² = O((δ·log n / log δ)²)` matches EFF up to a polylog factor, and every
//! node derives the *same* family from `(n, δ)` alone, exactly as the paper
//! assumes.

/// A δ-cover-free family of `m` subsets of `[0, range())`, computed lazily:
/// member sets are derived on demand from their index.
///
/// ```
/// use coloring::CoverFreeFamily;
/// let fam = CoverFreeFamily::construct(100, 3);
/// let s = fam.set(42);
/// assert_eq!(s.len(), fam.q() as usize);
/// assert!(s.iter().all(|&x| x < fam.range()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverFreeFamily {
    m: u64,
    delta: u64,
    q: u64,
    k: u64,
}

impl CoverFreeFamily {
    /// Construct a family of `m ≥ 1` sets that is `delta`-cover-free,
    /// choosing `(q, k)` to minimize the ground-set size `q²`.
    pub fn construct(m: u64, delta: u64) -> CoverFreeFamily {
        let m = m.max(1);
        let mut best: Option<(u64, u64)> = None;
        // k beyond log2(m) cannot help: q ≥ 2 already gives q^(k+1) ≥ m.
        let k_cap = 64 - m.leading_zeros() as u64 + 1;
        for k in 1..=k_cap {
            let q_min_poly = int_root_ceil(m, k + 1);
            let q_min_cover = delta.saturating_mul(k) + 1;
            let q = next_prime(q_min_poly.max(q_min_cover).max(2));
            match best {
                Some((bq, _)) if bq <= q => {}
                _ => best = Some((q, k)),
            }
        }
        let (q, k) = best.expect("k_cap >= 1");
        CoverFreeFamily { m, delta, q, k }
    }

    /// Number of sets in the family.
    pub fn len(&self) -> u64 {
        self.m
    }

    /// True only for the degenerate empty family (never constructed).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The cover parameter δ: no member is covered by the union of δ others.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The field size / per-set cardinality.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Ground-set size: member sets are subsets of `[0, range())`.
    pub fn range(&self) -> u64 {
        self.q * self.q
    }

    /// The `i`-th member set, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, i: u64) -> Vec<u64> {
        assert!(i < self.m, "set index {i} out of range (m = {})", self.m);
        // Coefficients of p_i: base-q digits of i (low to high).
        let mut coeffs = Vec::with_capacity(self.k as usize + 1);
        let mut rest = i;
        for _ in 0..=self.k {
            coeffs.push(rest % self.q);
            rest /= self.q;
        }
        debug_assert_eq!(rest, 0, "q^(k+1) >= m violated");
        (0..self.q)
            .map(|x| {
                let mut acc: u64 = 0;
                for &c in coeffs.iter().rev() {
                    acc = (acc * x + c) % self.q;
                }
                x * self.q + acc
            })
            .collect()
    }

    /// An element of `F_i` not in `∪ F_j` for the given other indices.
    /// Guaranteed to exist when at most δ distinct other indices (≠ i) are
    /// supplied; returns `None` otherwise (caller bug or over-degree graph).
    pub fn free_element(&self, i: u64, others: &[u64]) -> Option<u64> {
        let mine = self.set(i);
        let mut covered: Vec<u64> = others
            .iter()
            .filter(|&&j| j != i)
            .flat_map(|&j| self.set(j))
            .collect();
        covered.sort_unstable();
        mine.into_iter().find(|x| covered.binary_search(x).is_err())
    }
}

/// Smallest integer `r` with `r^e ≥ m`.
fn int_root_ceil(m: u64, e: u64) -> u64 {
    if m <= 1 {
        return 1;
    }
    let mut r = (m as f64).powf(1.0 / e as f64).floor() as u64;
    while checked_pow(r, e).is_some_and(|p| p >= m) {
        r -= 1;
        if r == 0 {
            break;
        }
    }
    loop {
        r += 1;
        if checked_pow(r, e).is_none_or(|p| p >= m) {
            return r;
        }
    }
}

fn checked_pow(base: u64, exp: u64) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// Smallest prime ≥ `n`.
fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c += 1;
    }
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn primes_and_roots() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(14), 17);
        assert!(is_prime(101));
        assert!(!is_prime(1001)); // 7 × 11 × 13
        assert_eq!(int_root_ceil(100, 2), 10);
        assert_eq!(int_root_ceil(101, 2), 11);
        assert_eq!(int_root_ceil(1, 5), 1);
        assert_eq!(int_root_ceil(u64::MAX, 1), u64::MAX);
    }

    #[test]
    fn parameters_satisfy_constraints() {
        for &(m, delta) in &[(10u64, 2u64), (1000, 5), (1 << 16, 8), (3, 1)] {
            let f = CoverFreeFamily::construct(m, delta);
            assert!(checked_pow(f.q(), f.k + 1).is_none_or(|p| p >= m));
            assert!(f.q() > delta * f.k, "q must exceed δk");
        }
    }

    #[test]
    fn sets_have_cardinality_q_and_small_intersections() {
        let f = CoverFreeFamily::construct(200, 3);
        for i in [0u64, 1, 57, 199] {
            let s: BTreeSet<u64> = f.set(i).into_iter().collect();
            assert_eq!(s.len(), f.q() as usize, "evaluations must be distinct rows");
            assert!(s.iter().all(|&x| x < f.range()));
        }
        for (i, j) in [(0u64, 1u64), (3, 77), (120, 121)] {
            let a: BTreeSet<u64> = f.set(i).into_iter().collect();
            let b: BTreeSet<u64> = f.set(j).into_iter().collect();
            assert!(
                a.intersection(&b).count() as u64 <= f.k,
                "polynomials agree on more than k points"
            );
        }
    }

    #[test]
    fn cover_free_property_exhaustive_small() {
        // m = 50, δ = 2: check every set against many δ-subsets.
        let f = CoverFreeFamily::construct(50, 2);
        for i in 0..50 {
            for a in 0..50 {
                for b in (a + 1)..50 {
                    if a == i || b == i {
                        continue;
                    }
                    assert!(
                        f.free_element(i, &[a, b]).is_some(),
                        "F_{i} covered by F_{a} ∪ F_{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn free_element_ignores_self_index() {
        let f = CoverFreeFamily::construct(10, 2);
        assert!(f.free_element(3, &[3, 3]).is_some());
    }

    #[test]
    fn range_grows_slower_than_identity() {
        // The whole point of a round: for large m the new range is smaller.
        let f = CoverFreeFamily::construct(1 << 20, 4);
        assert!(f.range() < 1 << 20, "range {} not reducing", f.range());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_index_bounds_checked() {
        let f = CoverFreeFamily::construct(10, 2);
        let _ = f.set(10);
    }
}
