//! A small undirected-graph helper used by the coloring procedures.

use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over `u32` vertex labels, stored as sorted adjacency
/// sets for deterministic traversal.
///
/// ```
/// use coloring::AdjGraph;
/// let g = AdjGraph::from_edges([(0, 1), (1, 2)]);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.adjacent(0, 1));
/// assert!(!g.adjacent(0, 2));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdjGraph {
    adj: BTreeMap<u32, BTreeSet<u32>>,
}

impl AdjGraph {
    /// An empty graph.
    pub fn new() -> AdjGraph {
        AdjGraph::default()
    }

    /// Build from an edge list; self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop.
    pub fn from_edges<I: IntoIterator<Item = (u32, u32)>>(edges: I) -> AdjGraph {
        let mut g = AdjGraph::new();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Ensure vertex `v` exists (possibly isolated).
    pub fn add_vertex(&mut self, v: u32) {
        self.adj.entry(v).or_default();
    }

    /// Add the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "self-loop");
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Whether the edge `{a, b}` exists.
    pub fn adjacent(&self, a: u32, b: u32) -> bool {
        self.adj.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Degree of `v` (0 if absent).
    pub fn degree(&self, v: u32) -> usize {
        self.adj.get(&v).map_or(0, BTreeSet::len)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Vertices in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        self.adj.keys().copied()
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj.get(&v).into_iter().flatten().copied()
    }

    /// All edges `(a, b)` with `a < b`, in lexicographic order.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (&a, nbrs) in &self.adj {
            for &b in nbrs {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Check that `color` assigns every vertex a color differing from all
    /// its neighbors'. Missing vertices fail the check.
    pub fn is_legal_coloring<F: Fn(u32) -> Option<i64>>(&self, color: F) -> bool {
        for (&v, nbrs) in &self.adj {
            let Some(cv) = color(v) else { return false };
            for &u in nbrs {
                if color(u) == Some(cv) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_undirected_and_sorted() {
        let g = AdjGraph::from_edges([(2, 1), (0, 2)]);
        assert_eq!(g.edges(), vec![(0, 2), (1, 2)]);
        assert!(g.adjacent(1, 2) && g.adjacent(2, 1));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn isolated_vertices_count() {
        let mut g = AdjGraph::new();
        g.add_vertex(7);
        assert_eq!(g.len(), 1);
        assert_eq!(g.degree(7), 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = AdjGraph::new();
        g.add_edge(1, 1);
    }

    #[test]
    fn legality_check() {
        let g = AdjGraph::from_edges([(0, 1), (1, 2)]);
        assert!(g.is_legal_coloring(|v| Some(i64::from(v % 2))));
        assert!(!g.is_legal_coloring(|_| Some(1)));
        assert!(!g.is_legal_coloring(|v| if v == 0 { None } else { Some(0) }));
    }
}
