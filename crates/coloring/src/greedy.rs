//! Greedy coloring of a collected conflict graph.

use std::collections::BTreeMap;

use crate::graph::AdjGraph;

/// The smallest non-negative integer not present in `used`.
///
/// This is the rule a node applies when it leaves the critical section
/// (Algorithm 1, Line 6): pick the smallest non-negative color not used by
/// any neighbor. With at most δ neighbors the result is in `[0, δ]`.
///
/// ```
/// assert_eq!(coloring::smallest_free_color([0, 1, 3].into_iter()), 2);
/// assert_eq!(coloring::smallest_free_color(std::iter::empty()), 0);
/// ```
pub fn smallest_free_color<I: Iterator<Item = i64>>(used: I) -> i64 {
    let mut taken: Vec<i64> = used.filter(|&c| c >= 0).collect();
    taken.sort_unstable();
    taken.dedup();
    let mut c = 0;
    for t in taken {
        if t == c {
            c += 1;
        } else if t > c {
            break;
        }
    }
    c
}

/// Deterministic greedy coloring of `g`, shared by every participant of the
/// greedy recoloring procedure (Algorithm 4, Line 72).
///
/// The traversal is the paper's suggested "DFS starting from a node with
/// smallest ID", restarted at the smallest unvisited vertex for each
/// component and visiting neighbors in ascending ID order; each visited
/// vertex takes the smallest color unused by its already-colored neighbors.
/// Because the traversal is a pure function of the graph, any two nodes that
/// collected the same graph compute the same coloring — this is what makes
/// the distributed procedure's Assumption 1 hold.
///
/// The returned colors are legal and each vertex's color is at most its
/// degree (so the range is `[0, δ]`).
///
/// ```
/// use coloring::{greedy_color_graph, AdjGraph};
/// let g = AdjGraph::from_edges([(0, 1), (1, 2)]);
/// let colors = greedy_color_graph(&g);
/// assert_ne!(colors[&0], colors[&1]);
/// assert_ne!(colors[&1], colors[&2]);
/// ```
pub fn greedy_color_graph(g: &AdjGraph) -> BTreeMap<u32, i64> {
    let mut colors: BTreeMap<u32, i64> = BTreeMap::new();
    let mut stack: Vec<u32> = Vec::new();
    for root in g.vertices() {
        if colors.contains_key(&root) {
            continue;
        }
        stack.push(root);
        while let Some(v) = stack.pop() {
            if colors.contains_key(&v) {
                continue;
            }
            let c = smallest_free_color(g.neighbors(v).filter_map(|u| colors.get(&u).copied()));
            colors.insert(v, c);
            // Push in reverse so the smallest neighbor is visited first.
            let mut nbrs: Vec<u32> = g.neighbors(v).filter(|u| !colors.contains_key(u)).collect();
            nbrs.reverse();
            stack.extend(nbrs);
        }
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_free_skips_negatives() {
        assert_eq!(smallest_free_color([-3, 0, 2].into_iter()), 1);
        assert_eq!(smallest_free_color([-1, -2].into_iter()), 0);
        assert_eq!(smallest_free_color([0, 0, 1].into_iter()), 2);
    }

    #[test]
    fn coloring_is_legal_on_paths_and_cliques() {
        let path = AdjGraph::from_edges((0..9).map(|i| (i, i + 1)));
        let colors = greedy_color_graph(&path);
        assert!(path.is_legal_coloring(|v| colors.get(&v).copied()));
        assert!(colors.values().all(|&c| (0..=1).contains(&c)), "{colors:?}");

        let mut clique = AdjGraph::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                clique.add_edge(a, b);
            }
        }
        let colors = greedy_color_graph(&clique);
        assert!(clique.is_legal_coloring(|v| colors.get(&v).copied()));
        assert_eq!(colors.values().max(), Some(&4));
    }

    #[test]
    fn color_bounded_by_degree() {
        let star = AdjGraph::from_edges((1..8).map(|i| (0, i)));
        let colors = greedy_color_graph(&star);
        for v in star.vertices() {
            assert!(colors[&v] <= star.degree(v) as i64);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let g = AdjGraph::from_edges([(3, 1), (1, 4), (4, 0), (0, 3), (2, 4)]);
        assert_eq!(greedy_color_graph(&g), greedy_color_graph(&g));
    }

    #[test]
    fn handles_disconnected_components() {
        let mut g = AdjGraph::from_edges([(0, 1), (5, 6)]);
        g.add_vertex(9);
        let colors = greedy_color_graph(&g);
        assert_eq!(colors.len(), 5);
        assert_eq!(colors[&9], 0);
        assert!(g.is_legal_coloring(|v| colors.get(&v).copied()));
    }
}
