//! The iterated color-reduction schedule of Linial's coloring algorithm.

use crate::cover_free::CoverFreeFamily;

/// The precomputed round structure of the fast coloring procedure
/// (Algorithm 5).
///
/// Round `t` assumes the nodes' temporary colors are legal and lie in
/// `[0, input_range(t))`; each node then picks, from the round's cover-free
/// family, an element of its own set not covered by the union of its (≤ δ)
/// participating neighbors' sets. The result is a legal coloring in the
/// strictly smaller `[0, input_range(t+1))`. The chain is iterated until the
/// range stops shrinking — a fixed point of size `O(δ² log² δ)` reached
/// after `O(log* n)` rounds (the paper's loop bound).
///
/// The schedule depends only on `(n, δ)`, so — as the paper assumes — every
/// node derives the identical schedule locally.
///
/// ```
/// use coloring::LinialSchedule;
/// let sched = LinialSchedule::compute(1 << 16, 4);
/// assert!(sched.rounds() <= 6); // "log* n" in practice
/// assert!(sched.final_range() < 1 << 16);
/// // A node with color 77 whose neighbors have colors 5 and 1000:
/// let c1 = sched.step(0, 77, &[5, 1000]);
/// assert!(c1 < sched.input_range(1));
/// ```
#[derive(Clone, Debug)]
pub struct LinialSchedule {
    n: u64,
    delta: u64,
    families: Vec<CoverFreeFamily>,
}

impl LinialSchedule {
    /// Compute the schedule for `n` nodes and maximum degree `delta`.
    pub fn compute(n: u64, delta: u64) -> LinialSchedule {
        let n = n.max(2);
        let mut families = Vec::new();
        let mut range = n;
        loop {
            let fam = CoverFreeFamily::construct(range, delta);
            if fam.range() >= range {
                break;
            }
            range = fam.range();
            families.push(fam);
        }
        LinialSchedule { n, delta, families }
    }

    /// Number of color-reduction rounds (the paper's `log* n` loop bound).
    pub fn rounds(&self) -> usize {
        self.families.len()
    }

    /// The maximum degree this schedule supports.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Size of the color space *entering* round `t` (round 0 takes node IDs
    /// in `[0, n)`); `input_range(rounds())` is the final color range.
    pub fn input_range(&self, t: usize) -> u64 {
        if t == 0 {
            self.n
        } else {
            self.families[t - 1].range()
        }
    }

    /// The final color range after all rounds.
    pub fn final_range(&self) -> u64 {
        self.input_range(self.rounds())
    }

    /// The paper's `calc-new-color`: given this node's temporary color and
    /// the temporary colors of its participating neighbors (all in
    /// `input_range(round)`, all distinct from `my_color`), produce the
    /// node's color for the next round.
    ///
    /// # Panics
    ///
    /// Panics if `round ≥ rounds()`, if a color is out of range, or if more
    /// than δ distinct neighbor colors are supplied (the guarantee of
    /// Theorem 18 needs ≤ δ other sets).
    pub fn step(&self, round: usize, my_color: u64, neighbor_colors: &[u64]) -> u64 {
        let fam = &self.families[round];
        assert!(my_color < fam.len(), "color {my_color} out of round range");
        let mut others: Vec<u64> = neighbor_colors
            .iter()
            .copied()
            .filter(|&c| c != my_color)
            .collect();
        others.sort_unstable();
        others.dedup();
        assert!(
            others.len() as u64 <= self.delta,
            "more than δ = {} neighbor colors",
            self.delta
        );
        fam.free_element(my_color, &others)
            .expect("cover-free family must yield a free element for ≤ δ neighbors")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the schedule synchronously on an explicit graph, starting from
    /// ID colors, asserting legality after every round.
    fn run_sync(adj: &[Vec<usize>], delta: u64) -> Vec<u64> {
        let n = adj.len() as u64;
        let sched = LinialSchedule::compute(n, delta);
        let mut colors: Vec<u64> = (0..n).collect();
        for t in 0..sched.rounds() {
            let next: Vec<u64> = (0..adj.len())
                .map(|v| {
                    let nbr: Vec<u64> = adj[v].iter().map(|&u| colors[u]).collect();
                    sched.step(t, colors[v], &nbr)
                })
                .collect();
            colors = next;
            for v in 0..adj.len() {
                for &u in &adj[v] {
                    assert_ne!(colors[v], colors[u], "illegal after round {t}");
                }
                assert!(colors[v] < sched.input_range(t + 1));
            }
        }
        assert!(colors.iter().all(|&c| c < sched.final_range()));
        colors
    }

    fn ring(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn ring_colors_reduce_legally() {
        run_sync(&ring(64), 2);
        run_sync(&ring(257), 2);
    }

    #[test]
    fn grid_colors_reduce_legally() {
        let (w, h) = (8, 8);
        let idx = |x: usize, y: usize| y * w + x;
        let mut adj = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    adj[idx(x, y)].push(idx(x + 1, y));
                    adj[idx(x + 1, y)].push(idx(x, y));
                }
                if y + 1 < h {
                    adj[idx(x, y)].push(idx(x, y + 1));
                    adj[idx(x, y + 1)].push(idx(x, y));
                }
            }
        }
        run_sync(&adj, 4);
    }

    #[test]
    fn round_count_grows_very_slowly() {
        let r10 = LinialSchedule::compute(1 << 10, 4).rounds();
        let r20 = LinialSchedule::compute(1 << 20, 4).rounds();
        let r40 = LinialSchedule::compute(1 << 40, 4).rounds();
        assert!(r10 <= r20 && r20 <= r40);
        assert!(r40 <= 8, "log*-like growth expected, got {r40}");
    }

    #[test]
    fn final_range_is_polynomial_in_delta() {
        for delta in [2u64, 4, 8, 16] {
            let sched = LinialSchedule::compute(1 << 20, delta);
            let bound = 40 * delta * delta * (64 - delta.leading_zeros() as u64).pow(2);
            assert!(
                sched.final_range() <= bound.max(100),
                "δ = {delta}: final range {} too large",
                sched.final_range()
            );
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = LinialSchedule::compute(5000, 6);
        let b = LinialSchedule::compute(5000, 6);
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.final_range(), b.final_range());
        assert_eq!(a.step(0, 123, &[5, 6]), b.step(0, 123, &[5, 6]));
    }

    #[test]
    fn tiny_systems_may_need_zero_rounds() {
        let sched = LinialSchedule::compute(4, 2);
        // With n = 4 no cover-free family can shrink the range; IDs stand.
        assert_eq!(sched.final_range(), 4);
        assert_eq!(sched.rounds(), 0);
    }
}
