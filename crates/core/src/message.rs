//! Wire messages of the two algorithms.

use doorway::{DoorwayMsg, DoorwaySet};

/// Messages of the recoloring procedures (Algorithms 4 and 5).
#[derive(Clone, Debug, PartialEq)]
pub enum RecolorMsg {
    /// Greedy procedure: one iteration's view of the conflict graph, with
    /// the `finished` flag of Algorithm 4 (Line 65 / Line 71).
    Graph {
        /// Edges of the sender's collected graph `G` (vertex = node ID).
        edges: Vec<(u32, u32)>,
        /// True when this is the sender's final graph (its loop ended).
        finished: bool,
    },
    /// Linial procedure: the sender's temporary color for the current round
    /// (Algorithm 5, Line 65).
    TempColor(u64),
    /// Randomized procedure (the Kuhn–Wattenhofer-style extension suggested
    /// in the paper's Discussion): the sender's candidate color for the
    /// current round, and whether the sender has committed to it.
    Candidate {
        /// The proposed color.
        value: u64,
        /// True when the sender decided on this color (its final round).
        decided: bool,
    },
    /// Response by a node that is not participating in recoloring
    /// (Algorithm 2, Lines 40–43): the sender drops the responder from `R`.
    Nack,
}

/// All messages of Algorithm 1, multiplexed on one channel.
#[derive(Clone, Debug, PartialEq)]
pub enum A1Msg {
    /// Doorway crossing/exit/status traffic for the four doorways.
    Doorway(DoorwayMsg),
    /// Request for the shared fork (`req`).
    Req,
    /// The shared fork; `flag` asks for it back (Line 31).
    Fork {
        /// The sender wants this (low) fork returned once the receiver has
        /// all its low forks.
        flag: bool,
        /// Transfer generation on this link incarnation (strictly
        /// increasing per transfer); receivers discard stale generations,
        /// which makes fork transfer idempotent under the duplication
        /// fault adversary. Not part of the paper (its links never
        /// duplicate).
        gen: u64,
    },
    /// `update-color(c)`: the sender's color changed to `c`.
    UpdateColor(i64),
    /// The ⟨update-color, L⟩ message a static node sends to a newly arrived
    /// neighbor (Algorithm 3, Line 46): its color plus its position
    /// relative to every doorway.
    Hello {
        /// The sender's current color.
        color: i64,
        /// The doorways the sender is currently behind.
        behind: DoorwaySet,
    },
    /// Recoloring traffic.
    Recolor(RecolorMsg),
}

/// All messages of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum A2Msg {
    /// Request for the shared fork.
    Req,
    /// The shared fork; `flag` asks for it back.
    Fork {
        /// The sender wants this (low) fork returned once the receiver has
        /// all its low forks.
        flag: bool,
        /// Transfer generation on this link incarnation; see
        /// [`A1Msg::Fork`].
        gen: u64,
    },
    /// A newly hungry node announces itself (Algorithm 6, Line 2).
    Notification,
    /// The sender lowers its priority below the receiver (Line 8 / 25).
    Switch,
}

impl A1Msg {
    /// Coarse label for message-complexity accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            A1Msg::Doorway(_) => "doorway",
            A1Msg::Req => "req",
            A1Msg::Fork { .. } => "fork",
            A1Msg::UpdateColor(_) => "update-color",
            A1Msg::Hello { .. } => "hello",
            A1Msg::Recolor(_) => "recolor",
        }
    }
}

impl A2Msg {
    /// Coarse label for message-complexity accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            A2Msg::Req => "req",
            A2Msg::Fork { .. } => "fork",
            A2Msg::Notification => "notification",
            A2Msg::Switch => "switch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_compare_structurally() {
        assert_eq!(A2Msg::Req, A2Msg::Req);
        assert_ne!(
            A2Msg::Fork { flag: true, gen: 1 },
            A2Msg::Fork {
                flag: false,
                gen: 1
            }
        );
        assert_ne!(
            A2Msg::Fork { flag: true, gen: 1 },
            A2Msg::Fork { flag: true, gen: 2 }
        );
        let g = RecolorMsg::Graph {
            edges: vec![(0, 1)],
            finished: false,
        };
        assert_eq!(g.clone(), g);
        assert_ne!(
            A1Msg::Req,
            A1Msg::Fork {
                flag: false,
                gen: 1
            }
        );
    }
}
