//! Minimal simulation hooks for tests: an auto-exit workload and the local
//! mutual exclusion safety checker.
//!
//! The `harness` crate provides full-featured versions with metrics; these
//! exist so the algorithm crates can test themselves without a dependency
//! cycle.

use manet_sim::{Command, DiningState, Hook, NodeId, Sink, View};

/// Schedules [`Command::ExitCs`] a fixed number of ticks after every node
/// starts eating (the application layer of the paper's model, with eating
/// time ≤ τ).
#[derive(Clone, Debug)]
pub struct AutoExit {
    eat_ticks: u64,
}

impl AutoExit {
    /// Exit `eat_ticks` after entering the critical section.
    pub fn new(eat_ticks: u64) -> AutoExit {
        AutoExit { eat_ticks }
    }
}

impl<M> Hook<M> for AutoExit {
    fn on_state_change(
        &mut self,
        view: &View<'_>,
        node: NodeId,
        _old: DiningState,
        new: DiningState,
        sink: &mut Sink,
    ) {
        if new == DiningState::Eating {
            sink.at(
                view.time() + self.eat_ticks,
                Command::ExitCs {
                    node,
                    session: view.eating_session(node),
                },
            );
        }
    }
}

/// Asserts the local mutual exclusion invariant — no two *current* neighbors
/// eating — after every instant of virtual time.
///
/// # Panics
///
/// Panics (failing the test) on the first violation.
#[derive(Clone, Debug, Default)]
pub struct SafetyCheck {
    /// Number of configurations checked (for test assertions).
    pub checked: u64,
}

impl<M> Hook<M> for SafetyCheck {
    fn on_quantum_end(&mut self, view: &View<'_>, _sink: &mut Sink) {
        self.checked += 1;
        for a in view.nodes() {
            if view.dining(a) != DiningState::Eating {
                continue;
            }
            for &b in view.world().neighbors(a) {
                if b > a && view.dining(b) == DiningState::Eating {
                    panic!(
                        "local mutual exclusion violated at {}: {a} and {b} both eating",
                        view.time()
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Context, Engine, Event, Protocol, SimConfig, SimTime};

    /// Deliberately unsafe protocol: eats whenever told.
    struct Rogue(DiningState);
    impl Protocol for Rogue {
        type Msg = ();
        fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
            match ev {
                Event::Hungry => self.0 = DiningState::Eating,
                Event::ExitCs => self.0 = DiningState::Thinking,
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.0
        }
    }

    #[test]
    #[should_panic(expected = "local mutual exclusion violated")]
    fn safety_check_catches_violations() {
        let mut e: Engine<Rogue> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |_| {
                Rogue(DiningState::Thinking)
            });
        e.add_hook(Box::new(SafetyCheck::default()));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(10));
    }

    #[test]
    fn auto_exit_ends_meals() {
        let mut e: Engine<Rogue> = Engine::new(SimConfig::default(), vec![(0.0, 0.0)], |_| {
            Rogue(DiningState::Thinking)
        });
        e.add_hook(Box::new(AutoExit::new(5)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(100));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Thinking);
    }
}
