//! Algorithm 1: local mutual exclusion with recoloring and doorway-guarded
//! fork collection (Chapter 5 of the paper).
//!
//! The algorithm pipelines two modules, each behind a double doorway
//! (Figure 5):
//!
//! 1. the **recoloring module** — run by a hungry node that moved into a new
//!    neighborhood, behind the double doorway `AD^r`/`SD^r`; it picks a new
//!    legal (negative) color via one of the procedures of
//!    [`crate::recolor`];
//! 2. the **fork collection module** — behind the double doorway
//!    `AD^f`/`SD^f` *with a return path*; a node first collects the forks
//!    shared with its *low* neighbors (smaller color ⇒ higher priority),
//!    then its *high* forks, suspending lower-priority requests while it
//!    holds all low forks.
//!
//! The doorways interleave: a recolored node crosses `AD^f` *before*
//! exiting `SD^r`/`AD^r` (this ordering, plus FIFO links, is what makes
//! Lemma 4's legality argument work). A node that did not move since it last
//! ate skips the first double doorway entirely and enters at `AD^f`.
//!
//! Mobility handling follows Algorithm 3: on arriving in a new neighborhood
//! a node abandons every doorway, releases suspended forks, demotes itself
//! from eating to hungry, waits for each new static neighbor's
//! ⟨update-color, L⟩ summary, and then (when hungry) restarts at `AD^r`.
//! A node that loses a low neighbor holding their shared fork while behind
//! `SD^f` takes the **return path**: it exits `SD^f`, releases suspended
//! forks, and re-executes the `SD^f` entry code (the Figure 6 scenario).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use coloring::{smallest_free_color, LinialSchedule};
use doorway::{Doorway, DoorwayKind, DoorwayMsg, DoorwaySet, DoorwayTag};
use manet_sim::{Context, DiningState, Event, LinkUpKind, NodeId, NodeSeed, Protocol, SimTime};

use crate::forks::ForkTable;
use crate::message::{A1Msg, RecolorMsg};
use crate::recolor::{
    GreedyRecolor, LinialRecolor, RandomizedRecolor, RecolorOutcome, RecolorProcedure,
};

/// Tag of the recoloring module's asynchronous doorway `AD^r`.
pub const ADR: DoorwayTag = DoorwayTag::new(0);
/// Tag of the recoloring module's synchronous doorway `SD^r`.
pub const SDR: DoorwayTag = DoorwayTag::new(1);
/// Tag of the fork module's asynchronous doorway `AD^f`.
pub const ADF: DoorwayTag = DoorwayTag::new(2);
/// Tag of the fork module's synchronous doorway `SD^f`.
pub const SDF: DoorwayTag = DoorwayTag::new(3);

/// Which recoloring procedure the algorithm runs (Section 5.4, plus the
/// randomized extension from the Discussion chapter).
#[derive(Clone, Debug)]
pub enum RecolorConfig {
    /// The simple greedy procedure (Algorithm 4): no knowledge of `n`/δ,
    /// failure locality `n`, recoloring time `O(n)`.
    Greedy,
    /// Linial-style fast coloring (Algorithm 5) over the shared schedule:
    /// requires `(n, δ)`, failure locality `O(log* n)`.
    Linial(Arc<LinialSchedule>),
    /// Randomized Kuhn–Wattenhofer-style color reduction (Discussion
    /// chapter): needs only a bound on δ; `O(log n)` rounds whp.
    Randomized {
        /// Upper bound on the maximum degree (sizes the color palette).
        delta_bound: u64,
        /// Seed for the per-node candidate streams.
        seed: u64,
    },
}

/// Where the node is in the Figure 5 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Thinking, outside all doorways.
    Idle,
    /// Arrived in a new neighborhood; waiting for ⟨update-color, L⟩ from
    /// each new static neighbor (Algorithm 3, Line 53).
    AwaitInfo,
    /// Executing the entry code of `AD^r`.
    EnterAdr,
    /// Executing the entry code of `SD^r`.
    EnterSdr,
    /// Running the recoloring procedure behind `SD^r`.
    Recoloring,
    /// Executing the entry code of `AD^f` (still behind `SD^r`/`AD^r` when
    /// coming from recoloring).
    EnterAdf,
    /// Executing the entry code of `SD^f`.
    EnterSdf,
    /// Behind `SD^f`: collecting forks, then eating.
    Collecting,
}

impl Phase {
    /// Short human-readable name (used by the phase-breakdown experiment).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::AwaitInfo => "await-info",
            Phase::EnterAdr => "enter-ADr",
            Phase::EnterSdr => "enter-SDr",
            Phase::Recoloring => "recoloring",
            Phase::EnterAdf => "enter-ADf",
            Phase::EnterSdf => "enter-SDf",
            Phase::Collecting => "collecting",
        }
    }
}

/// Per-node counters exposed for experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Alg1Stats {
    /// Completed critical sections.
    pub meals: u64,
    /// Completed recoloring-procedure runs.
    pub recolorings: u64,
    /// Times the `SD^f` return path was taken (Figure 6 situations).
    pub return_paths: u64,
    /// Eating→hungry demotions caused by arriving in a new neighborhood.
    pub demotions: u64,
}

/// One node of Algorithm 1. Implements [`Protocol`] for the simulator.
#[derive(Debug)]
pub struct Algorithm1 {
    me: NodeId,
    state: DiningState,
    my_color: i64,
    colors: BTreeMap<NodeId, Option<i64>>,
    forks: ForkTable,
    adr: Doorway,
    sdr: Doorway,
    adf: Doorway,
    sdf: Doorway,
    phase: Phase,
    needs_recolor: bool,
    pending_info: BTreeSet<NodeId>,
    recolor_cfg: RecolorConfig,
    active_proc: Option<Box<dyn RecolorProcedure>>,
    /// Timestamped phase transitions (only when `record_phases`).
    pub phase_log: Vec<(SimTime, Phase)>,
    /// Record phase transitions into [`Algorithm1::phase_log`].
    pub record_phases: bool,
    /// When false, a node never schedules the recoloring module after
    /// moving — this turns the protocol into the Choy–Singh-style
    /// static-color algorithm used as a baseline (colors may become illegal
    /// under mobility, which degrades liveness but never safety).
    pub recolor_on_move: bool,
    /// Ablation switch: when false, the `SD^f` return path (Lines 59–60)
    /// is disabled — a node that loses a low neighbor holding their shared
    /// fork stays behind the doorway. The Figure 6 scenario then leaves
    /// `p2` blocked forever after `p3` departs, which is exactly why the
    /// paper added the return path.
    pub return_path_enabled: bool,
    /// Mutation knob for the model checker's sanity suite: when false, the
    /// `behind SD^f` status check of request arbitration (Lines 10–16) is
    /// ignored — the node arbitrates every fork request as if it were
    /// outside the doorway, so a collecting or even *eating* node hands its
    /// forks away on demand. This deliberately breaks local mutual
    /// exclusion; `lme check` must find a witness for it. Never disabled on
    /// production paths.
    pub sdf_guard_enabled: bool,
    /// Experiment counters.
    pub stats: Alg1Stats,
}

impl Algorithm1 {
    /// Build a node from its simulator seed. Initial colors are the node
    /// IDs — always legal; nodes converge to `[0, δ]` colors as they eat.
    pub fn new(seed: &NodeSeed, recolor_cfg: RecolorConfig) -> Algorithm1 {
        Algorithm1 {
            me: seed.id,
            state: DiningState::Thinking,
            my_color: i64::from(seed.id.0),
            colors: seed
                .neighbors
                .iter()
                .map(|&j| (j, Some(i64::from(j.0))))
                .collect(),
            forks: ForkTable::new(seed.id, &seed.neighbors),
            adr: Doorway::new(ADR, DoorwayKind::Asynchronous),
            sdr: Doorway::new(SDR, DoorwayKind::Synchronous),
            adf: Doorway::new(ADF, DoorwayKind::Asynchronous),
            sdf: Doorway::new(SDF, DoorwayKind::Synchronous),
            phase: Phase::Idle,
            needs_recolor: false,
            pending_info: BTreeSet::new(),
            recolor_cfg,
            active_proc: None,
            phase_log: Vec::new(),
            record_phases: false,
            recolor_on_move: true,
            return_path_enabled: true,
            sdf_guard_enabled: true,
            stats: Alg1Stats::default(),
        }
    }

    /// Override this node's current color (used to install a precomputed
    /// legal coloring, e.g. for the Choy–Singh baseline). Must be called
    /// before the simulation starts; neighbor color maps are updated by the
    /// caller installing the same coloring on every node.
    pub fn set_initial_coloring(&mut self, colors: &[i64]) {
        self.my_color = colors[self.me.index()];
        for (&j, c) in self.colors.iter_mut() {
            *c = Some(colors[j.index()]);
        }
    }

    /// The greedy-recoloring variant (Theorem 16).
    pub fn greedy(seed: &NodeSeed) -> Algorithm1 {
        Algorithm1::new(seed, RecolorConfig::Greedy)
    }

    /// The Linial-recoloring variant (Theorem 22); the schedule must be the
    /// shared one computed from `(n, δ)`.
    pub fn linial(seed: &NodeSeed, schedule: Arc<LinialSchedule>) -> Algorithm1 {
        Algorithm1::new(seed, RecolorConfig::Linial(schedule))
    }

    /// The randomized-recoloring variant (Discussion chapter): needs only a
    /// bound on δ.
    pub fn randomized(seed: &NodeSeed, delta_bound: u64, rng_seed: u64) -> Algorithm1 {
        Algorithm1::new(
            seed,
            RecolorConfig::Randomized {
                delta_bound,
                seed: rng_seed,
            },
        )
    }

    /// Make this node run the recoloring module before its first critical
    /// section, as the paper prescribes for initialization ("the recoloring
    /// module is also executed by each node in order to obtain an initial
    /// color"). Without this, nodes start from their (always legal) ID
    /// colors and only recolor after moving.
    pub fn require_initial_recoloring(&mut self) {
        self.needs_recolor = true;
    }

    /// This node's current color.
    pub fn color(&self) -> i64 {
        self.my_color
    }

    /// This node's current pipeline phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether this node currently holds the fork shared with `j`
    /// (observability for tests and experiments).
    pub fn holds_fork(&self, j: NodeId) -> bool {
        self.forks.holds(j)
    }

    /// Neighbors whose fork requests are currently suspended (the paper's
    /// set `S`; observability for tests and experiments).
    pub fn suspended_requests(&self) -> Vec<NodeId> {
        self.forks.suspended()
    }

    // -- predicates --------------------------------------------------------

    fn is_low(&self, j: NodeId) -> bool {
        matches!(self.colors.get(&j), Some(&Some(c)) if c < self.my_color)
    }

    fn is_high(&self, j: NodeId) -> bool {
        matches!(self.colors.get(&j), Some(&Some(c)) if c > self.my_color)
    }

    fn behind_sdf(&self) -> bool {
        self.sdf.is_behind()
    }

    fn all_forks(&self) -> bool {
        self.forks.all_where(|_| true)
    }

    fn all_low_forks(&self) -> bool {
        let colors = &self.colors;
        let mine = self.my_color;
        self.forks
            .all_where(|j| matches!(colors.get(&j), Some(&Some(c)) if c < mine))
    }

    fn status_set(&self) -> DoorwaySet {
        [&self.adr, &self.sdr, &self.adf, &self.sdf]
            .into_iter()
            .filter(|d| d.is_behind())
            .map(Doorway::tag)
            .collect()
    }

    fn doorway_mut(&mut self, tag: DoorwayTag) -> &mut Doorway {
        match tag {
            ADR => &mut self.adr,
            SDR => &mut self.sdr,
            ADF => &mut self.adf,
            SDF => &mut self.sdf,
            _ => panic!("unknown doorway tag {tag:?}"),
        }
    }

    fn each_doorway(&mut self) -> [&mut Doorway; 4] {
        [&mut self.adr, &mut self.sdr, &mut self.adf, &mut self.sdf]
    }

    fn set_phase(&mut self, phase: Phase, now: SimTime) {
        if self.phase != phase {
            self.phase = phase;
            if self.record_phases {
                self.phase_log.push((now, phase));
            }
        }
    }

    // -- fork plumbing -----------------------------------------------------

    fn send_fork(&mut self, j: NodeId, ctx: &mut Context<'_, A1Msg>) {
        // Line 31: ask for the fork back iff it is a low fork relinquished
        // while competing behind SD^f.
        let flag = self.is_low(j) && self.behind_sdf();
        let gen = self.forks.sent(j);
        ctx.send(j, A1Msg::Fork { flag, gen });
    }

    fn release_suspended(&mut self, ctx: &mut Context<'_, A1Msg>) {
        for j in self.forks.suspended() {
            if self.forks.holds(j) {
                self.send_fork(j, ctx);
            }
        }
    }

    fn release_high_forks(&mut self, ctx: &mut Context<'_, A1Msg>) {
        // Lines 33-35: grant all suspended requests for high forks.
        for j in self.forks.suspended() {
            if self.is_high(j) && self.forks.holds(j) {
                self.send_fork(j, ctx);
            }
        }
    }

    /// Lines 1–4 / 17–23 request driver: (re-)issue requests appropriate to
    /// the current holdings; promote to eating when all forks are in.
    fn kick_collection(&mut self, ctx: &mut Context<'_, A1Msg>) {
        if self.phase != Phase::Collecting || self.state != DiningState::Hungry {
            return;
        }
        if self.all_forks() {
            self.state = DiningState::Eating;
            return;
        }
        let targets = if self.all_low_forks() {
            let colors = &self.colors;
            let mine = self.my_color;
            self.forks
                .missing_where(|j| matches!(colors.get(&j), Some(&Some(c)) if c > mine))
        } else {
            let colors = &self.colors;
            let mine = self.my_color;
            self.forks
                .missing_where(|j| matches!(colors.get(&j), Some(&Some(c)) if c < mine))
        };
        for j in targets {
            if self.forks.try_mark_requested(j) {
                ctx.send(j, A1Msg::Req);
            }
        }
    }

    /// Lines 10–16: evaluate (or re-evaluate) a request from `j`.
    fn consider_request(&mut self, j: NodeId, ctx: &mut Context<'_, A1Msg>) {
        if !self.forks.holds(j) {
            return; // crossing with a fork already in flight to j
        }
        let outside = !self.behind_sdf() || !self.sdf_guard_enabled;
        if self.is_high(j) && (!self.all_low_forks() || outside) {
            self.send_fork(j, ctx);
        } else if self.is_low(j) && (!self.all_forks() || outside) {
            self.send_fork(j, ctx);
            self.release_high_forks(ctx);
        } else {
            self.forks.suspend(j);
        }
    }

    fn on_fork(&mut self, from: NodeId, flag: bool, gen: u64, ctx: &mut Context<'_, A1Msg>) {
        if !self.forks.receive_if_fresh(from, gen) {
            // Link died while the fork was in flight, or a duplicated
            // delivery of a transfer already accepted (stale generation).
            return;
        }
        if self.phase == Phase::Collecting && self.state == DiningState::Hungry && self.all_forks()
        {
            self.state = DiningState::Eating;
        }
        if self.all_low_forks() && self.behind_sdf() {
            // Lines 20–22.
            if flag {
                self.forks.suspend(from);
            }
            self.kick_collection(ctx);
        } else if flag {
            // Line 23: a high fork we cannot use yet — return it.
            self.send_fork(from, ctx);
        } else {
            self.kick_collection(ctx);
        }
    }

    // -- pipeline ----------------------------------------------------------

    /// A thinking/hungry node starts its quest for the critical section.
    fn begin_quest(&mut self, ctx: &mut Context<'_, A1Msg>) {
        debug_assert_eq!(self.state, DiningState::Hungry);
        match self.phase {
            Phase::Idle => {
                if self.needs_recolor {
                    self.adr.begin_entry(ctx.neighbors());
                    self.set_phase(Phase::EnterAdr, ctx.time());
                } else {
                    self.adf.begin_entry(ctx.neighbors());
                    self.set_phase(Phase::EnterAdf, ctx.time());
                }
                self.try_progress(ctx);
            }
            Phase::AwaitInfo => { /* resumes when the last Hello arrives */ }
            _ => debug_assert!(false, "begin_quest in phase {:?}", self.phase),
        }
    }

    /// Drive the doorway pipeline as far as entry conditions allow.
    fn try_progress(&mut self, ctx: &mut Context<'_, A1Msg>) {
        loop {
            match self.phase {
                Phase::EnterAdr if self.adr.ready(ctx.neighbors()) => {
                    let m = self.adr.cross();
                    ctx.broadcast(A1Msg::Doorway(m));
                    self.sdr.begin_entry(ctx.neighbors());
                    self.set_phase(Phase::EnterSdr, ctx.time());
                }
                Phase::EnterSdr if self.sdr.ready(ctx.neighbors()) => {
                    let m = self.sdr.cross();
                    ctx.broadcast(A1Msg::Doorway(m));
                    self.set_phase(Phase::Recoloring, ctx.time());
                    self.start_recolor(ctx);
                }
                Phase::EnterAdf if self.adf.ready(ctx.neighbors()) => {
                    let m = self.adf.cross();
                    ctx.broadcast(A1Msg::Doorway(m));
                    // Interleaving of Figure 5: cross AD^f, then leave the
                    // first double doorway (if we came through it).
                    if self.sdr.is_behind() {
                        let m = self.sdr.exit();
                        ctx.broadcast(A1Msg::Doorway(m));
                    }
                    if self.adr.is_behind() {
                        let m = self.adr.exit();
                        ctx.broadcast(A1Msg::Doorway(m));
                    }
                    self.sdf.begin_entry(ctx.neighbors());
                    self.set_phase(Phase::EnterSdf, ctx.time());
                }
                Phase::EnterSdf if self.sdf.ready(ctx.neighbors()) => {
                    let m = self.sdf.cross();
                    ctx.broadcast(A1Msg::Doorway(m));
                    self.set_phase(Phase::Collecting, ctx.time());
                    // Lines 1–4.
                    self.kick_collection(ctx);
                }
                _ => break,
            }
        }
    }

    fn start_recolor(&mut self, ctx: &mut Context<'_, A1Msg>) {
        let mut proc: Box<dyn RecolorProcedure> = match &self.recolor_cfg {
            RecolorConfig::Greedy => Box::new(GreedyRecolor::new(self.me)),
            RecolorConfig::Linial(s) => Box::new(LinialRecolor::new(self.me, s.clone())),
            RecolorConfig::Randomized { delta_bound, seed } => {
                Box::new(RandomizedRecolor::new(self.me, *delta_bound, *seed))
            }
        };
        let r: BTreeSet<NodeId> = ctx.neighbors().iter().copied().collect();
        let mut out = Vec::new();
        let outcome = proc.start(r, &mut out);
        self.active_proc = Some(proc);
        for (j, m) in out {
            ctx.send(j, A1Msg::Recolor(m));
        }
        if let RecolorOutcome::Done(c) = outcome {
            self.finish_recolor(c, ctx);
        }
    }

    fn finish_recolor(&mut self, color: i64, ctx: &mut Context<'_, A1Msg>) {
        debug_assert_eq!(self.phase, Phase::Recoloring);
        self.active_proc = None;
        self.my_color = color;
        self.needs_recolor = false;
        self.stats.recolorings += 1;
        ctx.broadcast(A1Msg::UpdateColor(color));
        self.adf.begin_entry(ctx.neighbors());
        self.set_phase(Phase::EnterAdf, ctx.time());
    }

    fn on_recolor_msg(&mut self, from: NodeId, msg: RecolorMsg, ctx: &mut Context<'_, A1Msg>) {
        if self.phase == Phase::Recoloring {
            let mut proc = self
                .active_proc
                .take()
                .expect("recoloring without procedure");
            let mut out = Vec::new();
            let outcome = proc.on_message(from, msg, &mut out);
            self.active_proc = Some(proc);
            for (j, m) in out {
                ctx.send(j, A1Msg::Recolor(m));
            }
            if let RecolorOutcome::Done(c) = outcome {
                self.finish_recolor(c, ctx);
                self.try_progress(ctx);
            }
        } else if !matches!(msg, RecolorMsg::Nack) {
            // Lines 40–43: not participating — reject.
            ctx.send(from, A1Msg::Recolor(RecolorMsg::Nack));
        }
    }

    // -- exit code (Lines 5–9) ----------------------------------------------

    fn exit_cs(&mut self, ctx: &mut Context<'_, A1Msg>) {
        debug_assert_eq!(self.state, DiningState::Eating);
        self.state = DiningState::Thinking;
        self.stats.meals += 1;
        // Line 6: the smallest non-negative color unused by any neighbor.
        self.my_color = smallest_free_color(self.colors.values().filter_map(|c| *c));
        ctx.broadcast(A1Msg::UpdateColor(self.my_color));
        self.release_suspended(ctx);
        let m = self.sdf.exit();
        ctx.broadcast(A1Msg::Doorway(m));
        let m = self.adf.exit();
        ctx.broadcast(A1Msg::Doorway(m));
        self.set_phase(Phase::Idle, ctx.time());
    }

    // -- topology changes (Algorithm 3) --------------------------------------

    fn on_linkup_static(&mut self, peer: NodeId, ctx: &mut Context<'_, A1Msg>) {
        // Lines 44–46.
        self.forks.link_up(peer, true);
        self.colors.insert(peer, None);
        for d in self.each_doorway() {
            d.neighbor_joined(peer, false);
        }
        let hello = A1Msg::Hello {
            color: self.my_color,
            behind: self.status_set(),
        };
        ctx.send(peer, hello);
    }

    fn on_linkup_moving(&mut self, peer: NodeId, ctx: &mut Context<'_, A1Msg>) {
        // Lines 47–55.
        self.forks.link_up(peer, false);
        self.colors.insert(peer, None);
        for d in self.each_doorway() {
            d.neighbor_joined(peer, false);
        }
        if self.behind_sdf() {
            if self.state == DiningState::Eating {
                self.state = DiningState::Hungry;
                self.stats.demotions += 1;
            }
            self.release_suspended(ctx);
        }
        // Line 52: exit any doorway.
        for d in self.each_doorway() {
            d.abandon();
        }
        ctx.broadcast(A1Msg::Doorway(DoorwayMsg::ExitAll));
        self.active_proc = None;
        self.needs_recolor = self.recolor_on_move;
        self.pending_info.insert(peer);
        self.set_phase(Phase::AwaitInfo, ctx.time());
    }

    fn on_hello(
        &mut self,
        from: NodeId,
        color: i64,
        behind: DoorwaySet,
        ctx: &mut Context<'_, A1Msg>,
    ) {
        self.colors.insert(from, Some(color));
        for d in self.each_doorway() {
            let tag = d.tag();
            d.neighbor_joined(from, behind.contains(tag));
        }
        // Tell the static side our color too. With recoloring enabled an
        // update-color broadcast will follow anyway, but without it (the
        // static-colors baseline) the static side would otherwise treat us
        // as color-⊥ forever and suspend our requests.
        ctx.send(from, A1Msg::UpdateColor(self.my_color));
        self.pending_info.remove(&from);
        self.after_info_progress(ctx);
    }

    /// Lines 53–55: once every new static neighbor reported, resume.
    fn after_info_progress(&mut self, ctx: &mut Context<'_, A1Msg>) {
        if self.phase == Phase::AwaitInfo && self.pending_info.is_empty() {
            self.set_phase(Phase::Idle, ctx.time());
            if self.state == DiningState::Hungry {
                self.begin_quest(ctx);
            }
        }
    }

    fn on_linkdown(&mut self, peer: NodeId, ctx: &mut Context<'_, A1Msg>) {
        // Capture Line 59's condition before dropping state.
        let lost_low_fork = !self.forks.holds(peer) && self.is_low(peer) && self.forks.knows(peer);
        self.forks.link_down(peer);
        self.colors.remove(&peer);
        for d in self.each_doorway() {
            d.neighbor_left(peer);
        }
        self.pending_info.remove(&peer);
        match self.phase {
            Phase::AwaitInfo => self.after_info_progress(ctx),
            Phase::Collecting
                if lost_low_fork
                    && self.state != DiningState::Eating
                    && self.return_path_enabled =>
            {
                // Lines 59–60: return path of SD^f.
                self.stats.return_paths += 1;
                let m = self.sdf.exit();
                ctx.broadcast(A1Msg::Doorway(m));
                self.release_suspended(ctx);
                self.sdf.begin_entry(ctx.neighbors());
                self.set_phase(Phase::EnterSdf, ctx.time());
            }
            Phase::Recoloring => {
                let mut proc = self
                    .active_proc
                    .take()
                    .expect("recoloring without procedure");
                let mut out = Vec::new();
                let outcome = proc.on_removed(peer, &mut out);
                self.active_proc = Some(proc);
                for (j, m) in out {
                    ctx.send(j, A1Msg::Recolor(m));
                }
                if let RecolorOutcome::Done(c) = outcome {
                    self.finish_recolor(c, ctx);
                }
            }
            _ => {}
        }
        self.kick_collection(ctx);
        self.try_progress(ctx);
    }

    fn on_doorway_msg(&mut self, from: NodeId, msg: DoorwayMsg, ctx: &mut Context<'_, A1Msg>) {
        match msg {
            DoorwayMsg::Cross(tag) => self.doorway_mut(tag).note_cross(from),
            DoorwayMsg::Exit(tag) => self.doorway_mut(tag).note_exit(from),
            DoorwayMsg::ExitAll => {
                for d in self.each_doorway() {
                    d.note_exit(from);
                }
            }
            DoorwayMsg::Status(_) => { /* A1 conveys status via Hello */ }
        }
        self.try_progress(ctx);
    }
}

impl Protocol for Algorithm1 {
    type Msg = A1Msg;

    fn on_event(&mut self, ev: Event<A1Msg>, ctx: &mut Context<'_, A1Msg>) {
        match ev {
            Event::Hungry => {
                if self.state == DiningState::Thinking {
                    self.state = DiningState::Hungry;
                    self.begin_quest(ctx);
                }
            }
            Event::ExitCs => {
                if self.state == DiningState::Eating {
                    self.exit_cs(ctx);
                }
            }
            Event::Message { from, msg } => match msg {
                A1Msg::Doorway(dm) => self.on_doorway_msg(from, dm, ctx),
                A1Msg::Req => self.consider_request(from, ctx),
                A1Msg::Fork { flag, gen } => self.on_fork(from, flag, gen, ctx),
                A1Msg::UpdateColor(c) => {
                    if self.colors.contains_key(&from) {
                        self.colors.insert(from, Some(c));
                    }
                    if self.forks.is_suspended(from) {
                        self.consider_request(from, ctx);
                    }
                    self.kick_collection(ctx);
                }
                A1Msg::Hello { color, behind } => self.on_hello(from, color, behind, ctx),
                A1Msg::Recolor(rm) => self.on_recolor_msg(from, rm, ctx),
            },
            Event::LinkUp { peer, kind } => match kind {
                LinkUpKind::AsStatic => self.on_linkup_static(peer, ctx),
                LinkUpKind::AsMoving => self.on_linkup_moving(peer, ctx),
            },
            Event::LinkDown { peer } => self.on_linkdown(peer, ctx),
            Event::MovementStarted | Event::MovementEnded | Event::Timer { .. } => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        self.state
    }

    fn msg_kind(msg: &A1Msg) -> &'static str {
        msg.kind()
    }

    fn state_digest(&self) -> Option<u64> {
        Some(manet_sim::digest_of_debug(self))
    }

    fn progress_digest(&self) -> Option<u64> {
        // Everything behavioral, nothing monotone: `stats` and `phase_log`
        // only grow and the fork table's transfer generations never repeat,
        // so all three are excluded (see `ForkTable::progress_digest`).
        Some(manet_sim::digest_of_debug(&(
            self.me,
            self.state,
            self.my_color,
            &self.colors,
            self.forks.progress_digest(),
            (&self.adr, &self.sdr, &self.adf, &self.sdf),
            self.phase,
            self.needs_recolor,
            &self.pending_info,
            &self.active_proc,
            self.sdf_guard_enabled,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Engine, SimConfig};

    fn line_engine(n: usize) -> Engine<Algorithm1> {
        Engine::new(
            SimConfig::default(),
            (0..n).map(|i| (i as f64, 0.0)).collect::<Vec<_>>(),
            |seed| Algorithm1::greedy(&seed),
        )
    }

    fn exit_hook() -> Box<crate::testutil::AutoExit> {
        Box::new(crate::testutil::AutoExit::new(20))
    }

    #[test]
    fn lone_hungry_node_eats() {
        let mut e = line_engine(1);
        e.add_hook(exit_hook());
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(500));
        assert!(e.protocol(NodeId(0)).stats.meals >= 1);
    }

    #[test]
    fn two_neighbors_both_eat_in_turn() {
        let mut e = line_engine(2);
        e.add_hook(exit_hook());
        e.add_hook(Box::new(crate::testutil::SafetyCheck::default()));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(5_000));
        assert!(e.protocol(NodeId(0)).stats.meals >= 1, "p0 starved");
        assert!(e.protocol(NodeId(1)).stats.meals >= 1, "p1 starved");
    }

    #[test]
    fn line_of_five_all_eat_under_full_contention() {
        let mut e = line_engine(5);
        e.add_hook(exit_hook());
        e.add_hook(Box::new(crate::testutil::SafetyCheck::default()));
        for i in 0..5 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(50_000));
        for i in 0..5 {
            assert!(
                e.protocol(NodeId(i)).stats.meals >= 1,
                "p{i} starved on the line"
            );
        }
    }

    #[test]
    fn exit_color_lands_in_low_range() {
        let mut e = line_engine(3);
        e.add_hook(exit_hook());
        for i in 0..3 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(50_000));
        for i in 0..3 {
            let c = e.protocol(NodeId(i)).color();
            assert!((0..=2).contains(&c), "p{i} color {c} outside [0, δ]");
        }
    }
}
