//! The two recoloring procedures (Algorithms 4 and 5) as message-driven
//! state machines.
//!
//! Both procedures run behind the first double doorway and proceed in
//! *rounds*: each round, the node sends its current information to every
//! member of `R` (the set of neighbors still believed to participate) and
//! waits for one response from each. A neighbor that is **not** recoloring
//! responds `NACK` and is dropped from `R` (Lines 40–43); a neighbor whose
//! link fails is dropped by the wrapper via [`RecolorProcedure::on_removed`].
//!
//! The procedures return a *raw* non-negative value; the wrapper (Algorithm
//! 2, Line 38) maps it to the final color `-(raw) - 1`, keeping all
//! recoloring-produced colors negative so they never collide with the
//! `[0, δ]` colors chosen on critical-section exit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use coloring::{greedy_color_graph, AdjGraph, LinialSchedule};
use manet_sim::NodeId;

use crate::message::RecolorMsg;

/// Result of feeding an event to a recoloring procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecolorOutcome {
    /// Still running.
    Continue,
    /// Finished; the value is the new (negative) color.
    Done(i64),
}

/// A message-driven recoloring procedure, driven by the Algorithm 1 wrapper.
///
/// `Send` is a supertrait so a node hosting Algorithm 1 can live on its
/// own OS thread (the live runtime); every procedure is plain owned data.
pub trait RecolorProcedure: std::fmt::Debug + Send {
    /// Begin the procedure with participant set `r` (the paper's `R := N`).
    /// Messages to send are appended to `out`.
    fn start(&mut self, r: BTreeSet<NodeId>, out: &mut Vec<(NodeId, RecolorMsg)>)
        -> RecolorOutcome;

    /// Handle a recoloring message from `from`.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: RecolorMsg,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome;

    /// The link to `j` failed (Algorithm 3, Line 61: `R := R \ {j}`).
    fn on_removed(&mut self, j: NodeId, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome;
}

fn to_color(raw: u64) -> i64 {
    -(raw as i64) - 1
}

// ---------------------------------------------------------------------------
// Greedy procedure (Algorithm 4)
// ---------------------------------------------------------------------------

/// The greedy recoloring procedure: flood the conflict graph of concurrent
/// participants until it stabilizes, then greedily color it with the shared
/// deterministic traversal of [`greedy_color_graph`].
#[derive(Debug)]
pub struct GreedyRecolor {
    me: u32,
    r: BTreeSet<NodeId>,
    inbox: BTreeMap<NodeId, VecDeque<RecolorMsg>>,
    g: AdjGraph,
}

impl GreedyRecolor {
    /// Create the procedure for node `me`.
    pub fn new(me: NodeId) -> GreedyRecolor {
        GreedyRecolor {
            me: me.0,
            r: BTreeSet::new(),
            inbox: BTreeMap::new(),
            g: AdjGraph::new(),
        }
    }

    fn broadcast(&self, finished: bool, out: &mut Vec<(NodeId, RecolorMsg)>) {
        let edges = self.g.edges();
        for &j in &self.r {
            out.push((
                j,
                RecolorMsg::Graph {
                    edges: edges.clone(),
                    finished,
                },
            ));
        }
    }

    fn my_color(&self) -> i64 {
        let raw = greedy_color_graph(&self.g)
            .get(&self.me)
            .copied()
            .unwrap_or(0);
        to_color(raw as u64)
    }

    /// Consume complete rounds while possible.
    fn try_rounds(&mut self, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        loop {
            if self.r.is_empty() {
                // Condition (3): nobody recoloring concurrently.
                return RecolorOutcome::Done(to_color(0));
            }
            let ready = self
                .r
                .iter()
                .all(|j| self.inbox.get(j).is_some_and(|q| !q.is_empty()));
            if !ready {
                return RecolorOutcome::Continue;
            }
            let mut changed = false;
            let mut finished_seen = false;
            for j in self.r.clone() {
                let msg = self
                    .inbox
                    .get_mut(&j)
                    .and_then(VecDeque::pop_front)
                    .expect("round readiness checked");
                match msg {
                    RecolorMsg::Nack => {
                        self.r.remove(&j);
                        self.inbox.remove(&j);
                    }
                    RecolorMsg::Graph { edges, finished } => {
                        for (a, b) in edges {
                            if !self.g.adjacent(a, b) {
                                self.g.add_edge(a, b);
                                changed = true;
                            }
                        }
                        if !self.g.adjacent(self.me, j.0) {
                            self.g.add_edge(self.me, j.0);
                            changed = true;
                        }
                        if finished {
                            finished_seen = true;
                        }
                    }
                    other => {
                        debug_assert!(false, "non-greedy message {other:?} in greedy procedure");
                    }
                }
            }
            if self.r.is_empty() {
                return RecolorOutcome::Done(to_color(0));
            }
            if finished_seen || !changed {
                // Conditions (2) / (1): announce the final graph and color it.
                self.broadcast(true, out);
                return RecolorOutcome::Done(self.my_color());
            }
            self.broadcast(false, out);
        }
    }
}

impl RecolorProcedure for GreedyRecolor {
    fn start(
        &mut self,
        r: BTreeSet<NodeId>,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        self.r = r;
        self.g = AdjGraph::new();
        self.g.add_vertex(self.me);
        self.inbox = self.r.iter().map(|&j| (j, VecDeque::new())).collect();
        if self.r.is_empty() {
            return RecolorOutcome::Done(to_color(0));
        }
        self.broadcast(false, out);
        RecolorOutcome::Continue
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RecolorMsg,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        if !self.r.contains(&from) {
            return RecolorOutcome::Continue; // stale traffic from a dropped member
        }
        self.inbox.entry(from).or_default().push_back(msg);
        self.try_rounds(out)
    }

    fn on_removed(&mut self, j: NodeId, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        if self.r.remove(&j) {
            self.inbox.remove(&j);
            return self.try_rounds(out);
        }
        RecolorOutcome::Continue
    }
}

// ---------------------------------------------------------------------------
// Linial procedure (Algorithm 5)
// ---------------------------------------------------------------------------

/// The fast recoloring procedure: `log* n`-style iterated color reduction
/// through a precomputed [`LinialSchedule`] (shared by all nodes, derived
/// from `(n, δ)`).
///
/// If the runtime participant count ever exceeds the schedule's δ (possible
/// only when the configured degree bound is violated by mobility), the node
/// falls back to the always-legal color `-(final_range + ID) - 1`; the
/// fallback range is disjoint from both the normal recoloring range and the
/// exit-time colors, so legality is preserved at the cost of a larger Δ.
#[derive(Debug)]
pub struct LinialRecolor {
    me: u32,
    schedule: Arc<LinialSchedule>,
    r: BTreeSet<NodeId>,
    inbox: BTreeMap<NodeId, VecDeque<RecolorMsg>>,
    temp: u64,
    ph: usize,
}

impl LinialRecolor {
    /// Create the procedure for node `me` with the globally shared schedule.
    pub fn new(me: NodeId, schedule: Arc<LinialSchedule>) -> LinialRecolor {
        LinialRecolor {
            me: me.0,
            schedule,
            r: BTreeSet::new(),
            inbox: BTreeMap::new(),
            temp: u64::from(me.0),
            ph: 0,
        }
    }

    fn fallback_color(&self) -> i64 {
        to_color(self.schedule.final_range() + u64::from(self.me))
    }

    fn broadcast(&self, out: &mut Vec<(NodeId, RecolorMsg)>) {
        for &j in &self.r {
            out.push((j, RecolorMsg::TempColor(self.temp)));
        }
    }

    fn try_rounds(&mut self, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        loop {
            if self.r.is_empty() {
                // Algorithm 5, Line 71: no concurrent participants.
                return RecolorOutcome::Done(to_color(0));
            }
            if self.ph >= self.schedule.rounds() {
                return RecolorOutcome::Done(to_color(self.temp));
            }
            let ready = self
                .r
                .iter()
                .all(|j| self.inbox.get(j).is_some_and(|q| !q.is_empty()));
            if !ready {
                return RecolorOutcome::Continue;
            }
            let mut colors = Vec::new();
            for j in self.r.clone() {
                let msg = self
                    .inbox
                    .get_mut(&j)
                    .and_then(VecDeque::pop_front)
                    .expect("round readiness checked");
                match msg {
                    RecolorMsg::Nack => {
                        self.r.remove(&j);
                        self.inbox.remove(&j);
                    }
                    RecolorMsg::TempColor(c) => colors.push(c),
                    other => {
                        debug_assert!(false, "non-Linial message {other:?} in Linial procedure");
                    }
                }
            }
            if self.r.is_empty() {
                return RecolorOutcome::Done(to_color(0));
            }
            let range = self.schedule.input_range(self.ph);
            let distinct: BTreeSet<u64> = colors.iter().copied().collect();
            let degraded = distinct.len() as u64 > self.schedule.delta()
                || self.temp >= range
                || colors.iter().any(|&c| c >= range);
            if degraded {
                return RecolorOutcome::Done(self.fallback_color());
            }
            self.temp = self.schedule.step(self.ph, self.temp, &colors);
            self.ph += 1;
            if self.ph >= self.schedule.rounds() {
                return RecolorOutcome::Done(to_color(self.temp));
            }
            self.broadcast(out);
        }
    }
}

impl RecolorProcedure for LinialRecolor {
    fn start(
        &mut self,
        r: BTreeSet<NodeId>,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        self.r = r;
        self.temp = u64::from(self.me);
        self.ph = 0;
        self.inbox = self.r.iter().map(|&j| (j, VecDeque::new())).collect();
        if self.r.is_empty() {
            return RecolorOutcome::Done(to_color(0));
        }
        if self.schedule.rounds() == 0 {
            // Tiny system: IDs already come from the final range.
            return RecolorOutcome::Done(to_color(self.temp));
        }
        self.broadcast(out);
        RecolorOutcome::Continue
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RecolorMsg,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        if !self.r.contains(&from) {
            return RecolorOutcome::Continue;
        }
        self.inbox.entry(from).or_default().push_back(msg);
        self.try_rounds(out)
    }

    fn on_removed(&mut self, j: NodeId, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        if self.r.remove(&j) {
            self.inbox.remove(&j);
            return self.try_rounds(out);
        }
        RecolorOutcome::Continue
    }
}

// ---------------------------------------------------------------------------
// Randomized procedure (Discussion-chapter extension)
// ---------------------------------------------------------------------------

/// The randomized recoloring procedure sketched in the paper's Discussion
/// chapter (after Kuhn & Wattenhofer): in each round every undecided
/// participant draws a uniform candidate from a `Θ(δ)`-sized palette and
/// commits iff its candidate collides neither with this round's neighbor
/// candidates nor with any already-committed neighbor color.
///
/// Expected `O(log n)` rounds with high probability; a deterministic
/// fallback (`palette + ID`, always legal, disjoint range) bounds the worst
/// case after `max_rounds`. Compared with the deterministic procedures this
/// variant needs only a bound on δ — no knowledge of `n`, no precomputed
/// schedule — at the price of probabilistic guarantees, exactly the
/// trade-off the paper describes.
#[derive(Debug)]
pub struct RandomizedRecolor {
    me: u32,
    palette: u64,
    max_rounds: usize,
    rng: manet_sim::SimRng,
    r: BTreeSet<NodeId>,
    inbox: BTreeMap<NodeId, VecDeque<RecolorMsg>>,
    /// Colors already committed by neighbors (forbidden).
    committed: BTreeSet<u64>,
    candidate: u64,
    round: usize,
}

impl RandomizedRecolor {
    /// Create the procedure for `me` with a palette of `4(δ+1)` colors.
    /// `seed` feeds this node's private RNG (mix the node ID in for
    /// distinct streams).
    pub fn new(me: NodeId, delta_bound: u64, seed: u64) -> RandomizedRecolor {
        RandomizedRecolor {
            me: me.0,
            palette: 4 * (delta_bound + 1),
            max_rounds: 64,
            rng: manet_sim::SimRng::seed_from_u64(seed ^ (0x5EED_0000 + u64::from(me.0))),
            r: BTreeSet::new(),
            inbox: BTreeMap::new(),
            committed: BTreeSet::new(),
            candidate: 0,
            round: 0,
        }
    }

    fn fallback_color(&self) -> i64 {
        to_color(self.palette + u64::from(self.me))
    }

    fn draw(&mut self) {
        // Re-draw until outside the committed set (which has ≤ δ < palette/4
        // elements, so this terminates quickly and deterministically given
        // the RNG stream).
        loop {
            let c = self.rng.gen_range(0..self.palette);
            if !self.committed.contains(&c) {
                self.candidate = c;
                return;
            }
        }
    }

    fn broadcast(&self, decided: bool, out: &mut Vec<(NodeId, RecolorMsg)>) {
        for &j in &self.r {
            out.push((
                j,
                RecolorMsg::Candidate {
                    value: self.candidate,
                    decided,
                },
            ));
        }
    }

    /// Smallest palette color not committed by any (former) participant —
    /// used when `R` drains: unlike the deterministic procedures, members
    /// may leave `R` by *committing* a color, so the lonely-case color must
    /// still avoid the committed set.
    fn lonely_color(&self) -> i64 {
        let free = (0..=self.palette)
            .find(|c| !self.committed.contains(c))
            .expect("palette exceeds possible commitments");
        to_color(free)
    }

    fn try_rounds(&mut self, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        loop {
            if self.r.is_empty() {
                return RecolorOutcome::Done(self.lonely_color());
            }
            let ready = self
                .r
                .iter()
                .all(|j| self.inbox.get(j).is_some_and(|q| !q.is_empty()));
            if !ready {
                return RecolorOutcome::Continue;
            }
            let mut clash = false;
            for j in self.r.clone() {
                let msg = self
                    .inbox
                    .get_mut(&j)
                    .and_then(VecDeque::pop_front)
                    .expect("round readiness checked");
                match msg {
                    RecolorMsg::Nack => {
                        self.r.remove(&j);
                        self.inbox.remove(&j);
                    }
                    RecolorMsg::Candidate { value, decided } => {
                        if value == self.candidate {
                            clash = true;
                        }
                        if decided {
                            self.committed.insert(value);
                            self.r.remove(&j);
                            self.inbox.remove(&j);
                        }
                    }
                    _ => debug_assert!(false, "wrong message kind in randomized procedure"),
                }
            }
            if self.r.is_empty() {
                // Everyone left (NACK or commit): decide deterministically.
                return RecolorOutcome::Done(self.lonely_color());
            }
            if !clash && !self.committed.contains(&self.candidate) {
                // Commit: tell the survivors and finish.
                self.broadcast(true, out);
                return RecolorOutcome::Done(to_color(self.candidate));
            }
            self.round += 1;
            if self.round >= self.max_rounds {
                return RecolorOutcome::Done(self.fallback_color());
            }
            if self.r.is_empty() {
                return RecolorOutcome::Done(self.lonely_color());
            }
            self.draw();
            self.broadcast(false, out);
        }
    }
}

impl RecolorProcedure for RandomizedRecolor {
    fn start(
        &mut self,
        r: BTreeSet<NodeId>,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        self.r = r;
        self.committed.clear();
        self.round = 0;
        self.inbox = self.r.iter().map(|&j| (j, VecDeque::new())).collect();
        if self.r.is_empty() {
            return RecolorOutcome::Done(self.lonely_color());
        }
        self.draw();
        self.broadcast(false, out);
        RecolorOutcome::Continue
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RecolorMsg,
        out: &mut Vec<(NodeId, RecolorMsg)>,
    ) -> RecolorOutcome {
        if !self.r.contains(&from) {
            return RecolorOutcome::Continue;
        }
        self.inbox.entry(from).or_default().push_back(msg);
        self.try_rounds(out)
    }

    fn on_removed(&mut self, j: NodeId, out: &mut Vec<(NodeId, RecolorMsg)>) -> RecolorOutcome {
        if self.r.remove(&j) {
            self.inbox.remove(&j);
            return self.try_rounds(out);
        }
        RecolorOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn greedy_alone_finishes_immediately_with_minus_one() {
        let mut p = GreedyRecolor::new(NodeId(4));
        let mut out = vec![];
        assert_eq!(p.start(BTreeSet::new(), &mut out), RecolorOutcome::Done(-1));
        assert!(out.is_empty());
    }

    #[test]
    fn greedy_all_nacks_yield_minus_one() {
        let mut p = GreedyRecolor::new(NodeId(4));
        let mut out = vec![];
        assert_eq!(p.start(set(&[1, 2]), &mut out), RecolorOutcome::Continue);
        assert_eq!(out.len(), 2);
        assert_eq!(
            p.on_message(NodeId(1), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Continue
        );
        assert_eq!(
            p.on_message(NodeId(2), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Done(-1)
        );
    }

    #[test]
    fn greedy_two_concurrent_participants_pick_distinct_colors() {
        // Simulate two adjacent participants exchanging messages directly.
        let mut a = GreedyRecolor::new(NodeId(0));
        let mut b = GreedyRecolor::new(NodeId(1));
        let mut out_a = vec![];
        let mut out_b = vec![];
        assert_eq!(a.start(set(&[1]), &mut out_a), RecolorOutcome::Continue);
        assert_eq!(b.start(set(&[0]), &mut out_b), RecolorOutcome::Continue);
        let mut done_a = None;
        let mut done_b = None;
        let mut guard = 0;
        while done_a.is_none() || done_b.is_none() {
            guard += 1;
            assert!(guard < 100, "no convergence");
            let batch_a: Vec<_> = std::mem::take(&mut out_a);
            let batch_b: Vec<_> = std::mem::take(&mut out_b);
            for (_, m) in batch_a {
                if done_b.is_none() {
                    if let RecolorOutcome::Done(c) = b.on_message(NodeId(0), m, &mut out_b) {
                        done_b = Some(c);
                    }
                }
            }
            for (_, m) in batch_b {
                if done_a.is_none() {
                    if let RecolorOutcome::Done(c) = a.on_message(NodeId(1), m, &mut out_a) {
                        done_a = Some(c);
                    }
                }
            }
        }
        assert_ne!(done_a.unwrap(), done_b.unwrap(), "Assumption 1 violated");
        assert!(done_a.unwrap() < 0 && done_b.unwrap() < 0);
    }

    #[test]
    fn greedy_removal_mid_round_completes() {
        let mut p = GreedyRecolor::new(NodeId(4));
        let mut out = vec![];
        p.start(set(&[1, 2]), &mut out);
        p.on_message(
            NodeId(1),
            RecolorMsg::Graph {
                edges: vec![],
                finished: false,
            },
            &mut out,
        );
        // p2's link fails; the round should now complete with only p1.
        let r = p.on_removed(NodeId(2), &mut out);
        assert_eq!(r, RecolorOutcome::Continue); // round done, next round sent
        let r = p.on_message(
            NodeId(1),
            RecolorMsg::Graph {
                edges: vec![(1, 4)],
                finished: true,
            },
            &mut out,
        );
        assert!(matches!(r, RecolorOutcome::Done(c) if c < 0));
    }

    #[test]
    fn linial_alone_or_tiny_schedule_finishes_fast() {
        let sched = Arc::new(LinialSchedule::compute(4, 2));
        let mut p = LinialRecolor::new(NodeId(3), sched);
        let mut out = vec![];
        // Schedule has zero rounds; raw color is the ID.
        assert_eq!(p.start(set(&[1]), &mut out), RecolorOutcome::Done(-4));
    }

    #[test]
    fn linial_two_participants_pick_distinct_colors() {
        let sched = Arc::new(LinialSchedule::compute(1000, 4));
        assert!(sched.rounds() > 0);
        let mut a = LinialRecolor::new(NodeId(10), sched.clone());
        let mut b = LinialRecolor::new(NodeId(700), sched.clone());
        let mut out_a = vec![];
        let mut out_b = vec![];
        assert_eq!(a.start(set(&[700]), &mut out_a), RecolorOutcome::Continue);
        assert_eq!(b.start(set(&[10]), &mut out_b), RecolorOutcome::Continue);
        let mut done_a = None;
        let mut done_b = None;
        let mut guard = 0;
        while done_a.is_none() || done_b.is_none() {
            guard += 1;
            assert!(guard < 100, "no convergence");
            let batch_a: Vec<_> = std::mem::take(&mut out_a);
            let batch_b: Vec<_> = std::mem::take(&mut out_b);
            for (_, m) in batch_a {
                if done_b.is_none() {
                    if let RecolorOutcome::Done(c) = b.on_message(NodeId(10), m, &mut out_b) {
                        done_b = Some(c);
                    }
                }
            }
            for (_, m) in batch_b {
                if done_a.is_none() {
                    if let RecolorOutcome::Done(c) = a.on_message(NodeId(700), m, &mut out_a) {
                        done_a = Some(c);
                    }
                }
            }
        }
        let (ca, cb) = (done_a.unwrap(), done_b.unwrap());
        assert_ne!(ca, cb);
        // Colors lie in the schedule's final range (negated).
        let bound = -(sched.final_range() as i64) - 1;
        assert!(
            ca < 0 && ca > bound,
            "{ca} outside (-{}, 0)",
            sched.final_range()
        );
        assert!(cb < 0 && cb > bound);
    }

    #[test]
    fn linial_nack_storm_returns_minus_one() {
        let sched = Arc::new(LinialSchedule::compute(1000, 4));
        let mut p = LinialRecolor::new(NodeId(5), sched);
        let mut out = vec![];
        p.start(set(&[1, 2, 3]), &mut out);
        assert_eq!(
            p.on_message(NodeId(1), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Continue
        );
        assert_eq!(
            p.on_message(NodeId(2), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Continue
        );
        assert_eq!(
            p.on_message(NodeId(3), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Done(-1)
        );
    }

    #[test]
    fn randomized_alone_finishes_immediately() {
        let mut p = RandomizedRecolor::new(NodeId(2), 4, 7);
        let mut out = vec![];
        assert_eq!(p.start(BTreeSet::new(), &mut out), RecolorOutcome::Done(-1));
    }

    #[test]
    fn randomized_nacks_reduce_to_lonely_case() {
        let mut p = RandomizedRecolor::new(NodeId(2), 4, 7);
        let mut out = vec![];
        assert_eq!(p.start(set(&[5]), &mut out), RecolorOutcome::Continue);
        assert_eq!(out.len(), 1);
        assert_eq!(
            p.on_message(NodeId(5), RecolorMsg::Nack, &mut out),
            RecolorOutcome::Done(-1)
        );
    }

    #[test]
    fn randomized_pair_converges_to_distinct_colors() {
        for seed in 0..20u64 {
            let mut a = RandomizedRecolor::new(NodeId(0), 3, seed);
            let mut b = RandomizedRecolor::new(NodeId(1), 3, seed);
            let mut out_a = vec![];
            let mut out_b = vec![];
            a.start(set(&[1]), &mut out_a);
            b.start(set(&[0]), &mut out_b);
            let mut done_a = None;
            let mut done_b = None;
            let mut guard = 0;
            while done_a.is_none() || done_b.is_none() {
                guard += 1;
                assert!(guard < 300, "no convergence (seed {seed})");
                let batch_a: Vec<_> = std::mem::take(&mut out_a);
                let batch_b: Vec<_> = std::mem::take(&mut out_b);
                for (_, m) in batch_a {
                    if done_b.is_none() {
                        if let RecolorOutcome::Done(c) = b.on_message(NodeId(0), m, &mut out_b) {
                            done_b = Some(c);
                        }
                    }
                }
                for (_, m) in batch_b {
                    if done_a.is_none() {
                        if let RecolorOutcome::Done(c) = a.on_message(NodeId(1), m, &mut out_a) {
                            done_a = Some(c);
                        }
                    }
                }
                // A decided node that still receives traffic NACKs (the
                // wrapper's behavior); emulate it so the peer drains.
                if done_a.is_some() && done_b.is_none() && out_a.is_empty() && out_b.is_empty() {
                    if let RecolorOutcome::Done(c) =
                        b.on_message(NodeId(0), RecolorMsg::Nack, &mut out_b)
                    {
                        done_b = Some(c);
                    }
                }
                if done_b.is_some() && done_a.is_none() && out_b.is_empty() && out_a.is_empty() {
                    if let RecolorOutcome::Done(c) =
                        a.on_message(NodeId(1), RecolorMsg::Nack, &mut out_a)
                    {
                        done_a = Some(c);
                    }
                }
            }
            assert_ne!(
                done_a.unwrap(),
                done_b.unwrap(),
                "seed {seed}: equal colors"
            );
            assert!(done_a.unwrap() < 0 && done_b.unwrap() < 0);
        }
    }

    #[test]
    fn randomized_respects_committed_neighbor_colors() {
        let mut p = RandomizedRecolor::new(NodeId(9), 2, 3);
        let mut out = vec![];
        p.start(set(&[1, 2]), &mut out);
        // Neighbor 1 commits color 0; neighbor 2 keeps proposing whatever p
        // proposes, forcing redraws that must avoid 0. The candidate drawn
        // in `start` predates the commit and is exempt — the commit rule
        // constrains every proposal made *after* the commit is processed.
        let committed_from = out.len();
        let mut result = p.on_message(
            NodeId(1),
            RecolorMsg::Candidate {
                value: 0,
                decided: true,
            },
            &mut out,
        );
        let mut guard = 0;
        while result == RecolorOutcome::Continue {
            guard += 1;
            assert!(guard < 200);
            // Every proposal made since the commit became known must avoid
            // the committed color.
            for (_, m) in &out[committed_from..] {
                if let RecolorMsg::Candidate { value, .. } = m {
                    assert_ne!(*value, 0, "proposed a committed color");
                }
            }
            // Echo p's own current candidate back as a clash.
            let mine = out
                .iter()
                .rev()
                .find_map(|(_, m)| match m {
                    RecolorMsg::Candidate { value, .. } => Some(*value),
                    _ => None,
                })
                .expect("p keeps proposing");
            result = p.on_message(
                NodeId(2),
                RecolorMsg::Candidate {
                    value: mine,
                    decided: false,
                },
                &mut out,
            );
        }
        match result {
            RecolorOutcome::Done(c) => assert_ne!(c, -1, "0 is taken: -(0)-1 is illegal here"),
            RecolorOutcome::Continue => unreachable!(),
        }
    }

    #[test]
    fn linial_fallback_on_degree_violation() {
        let sched = Arc::new(LinialSchedule::compute(1000, 1));
        assert!(sched.rounds() > 0);
        let me = NodeId(5);
        let mut p = LinialRecolor::new(me, sched.clone());
        let mut out = vec![];
        p.start(set(&[1, 2, 3]), &mut out);
        // Three distinct neighbor colors exceed δ = 1: fallback.
        p.on_message(NodeId(1), RecolorMsg::TempColor(10), &mut out);
        p.on_message(NodeId(2), RecolorMsg::TempColor(11), &mut out);
        let r = p.on_message(NodeId(3), RecolorMsg::TempColor(12), &mut out);
        let expect = -((sched.final_range() + 5) as i64) - 1;
        assert_eq!(r, RecolorOutcome::Done(expect));
    }
}
