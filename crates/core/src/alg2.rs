//! Algorithm 2: optimal failure locality via dynamic priorities
//! (Chapter 6 of the paper).
//!
//! No doorways, no colors: priorities are an array of `higher` flags —
//! `higher[j]` means neighbor `j` currently has priority — changed by link
//! reversal. A node that exits its critical section reverses all its
//! incoming edges (lowers itself below every neighbor it dominated), and the
//! *notification mechanism* makes a thinking node that still dominates a
//! newly hungry neighbor lower itself immediately, so it cannot interfere
//! later. This is what gives the algorithm response time `O(n)` when no
//! node moves (Theorem 26) — better than any previously known algorithm
//! with optimal failure locality 2 — and `O(n²)` under mobility
//! (Theorem 25).
//!
//! Fork collection is the same preemptive low-then-high strategy as in
//! Algorithm 1, with `higher[j]` in place of color comparisons and
//! "state ≠ thinking" in place of "behind `SD^f`".

use std::collections::BTreeMap;

use manet_sim::{Context, DiningState, Event, LinkUpKind, NodeId, NodeSeed, Protocol};

use crate::forks::ForkTable;
use crate::message::A2Msg;

/// Per-node counters exposed for experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Alg2Stats {
    /// Completed critical sections.
    pub meals: u64,
    /// Eating→hungry demotions caused by arriving in a new neighborhood.
    pub demotions: u64,
    /// `switch` messages sent.
    pub switches: u64,
    /// `notification` messages sent.
    pub notifications: u64,
}

/// One node of Algorithm 2. Implements [`Protocol`] for the simulator.
pub struct Algorithm2 {
    me: NodeId,
    state: DiningState,
    /// `higher[j]`: neighbor `j` has priority over this node.
    higher: BTreeMap<NodeId, bool>,
    forks: ForkTable,
    /// Ablation switch: when false, newly hungry nodes do not send
    /// `notification` messages (and thinking dominators therefore never
    /// step aside early). The paper credits the notification mechanism for
    /// the `O(n)` static response time of Theorem 26; disabling it
    /// reproduces the Tsay–Bagrodia-style behavior it improves upon.
    pub notifications_enabled: bool,
    /// Mutation knob for the model checker's liveness suite: when set,
    /// this node silently drops every fork request arriving from the named
    /// neighbor — it neither grants nor suspends it, so the victim's
    /// outstanding-request guard keeps it waiting forever. An unfair fork
    /// policy of exactly the kind the paper's withholding rules exclude;
    /// `lme check --liveness` must find the resulting starvation lasso.
    /// Never set on production paths.
    pub defer_requests_from: Option<NodeId>,
    /// Experiment counters.
    pub stats: Alg2Stats,
}

/// Hand-written so the rendering — and therefore the Debug-derived state
/// digest — covers exactly the protocol state. `defer_requests_from` is
/// per-run checker configuration, constant from init to teardown, and is
/// deliberately excluded: golden fingerprints pin the digest of intact
/// runs, and adding a mutation knob must not move them. The field order
/// reproduces the previously derived output byte for byte.
impl std::fmt::Debug for Algorithm2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Algorithm2")
            .field("me", &self.me)
            .field("state", &self.state)
            .field("higher", &self.higher)
            .field("forks", &self.forks)
            .field("notifications_enabled", &self.notifications_enabled)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Algorithm2 {
    /// Build a node from its simulator seed. Initially `higher[j]` holds iff
    /// `ID[i] < ID[j]`, and the fork of each link starts at the smaller ID,
    /// exactly as in the paper.
    pub fn new(seed: &NodeSeed) -> Algorithm2 {
        Algorithm2 {
            me: seed.id,
            state: DiningState::Thinking,
            higher: seed.neighbors.iter().map(|&j| (j, seed.id < j)).collect(),
            forks: ForkTable::new(seed.id, &seed.neighbors),
            notifications_enabled: true,
            defer_requests_from: None,
            stats: Alg2Stats::default(),
        }
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Whether neighbor `j` currently has priority over this node.
    pub fn neighbor_has_priority(&self, j: NodeId) -> bool {
        self.higher.get(&j).copied().unwrap_or(false)
    }

    /// Whether this node currently holds the fork shared with `j`
    /// (observability for fork-conservation checks and tests).
    pub fn holds_fork(&self, j: NodeId) -> bool {
        self.forks.holds(j)
    }

    // `j` has priority ⇒ `j` plays the role of a *low* (smaller-color)
    // neighbor of Algorithm 1.
    fn is_low(&self, j: NodeId) -> bool {
        self.neighbor_has_priority(j)
    }

    fn is_high(&self, j: NodeId) -> bool {
        matches!(self.higher.get(&j), Some(false))
    }

    fn withholding(&self) -> bool {
        self.state != DiningState::Thinking
    }

    fn all_forks(&self) -> bool {
        self.forks.all_where(|_| true)
    }

    fn all_low_forks(&self) -> bool {
        let higher = &self.higher;
        self.forks
            .all_where(|j| higher.get(&j).copied().unwrap_or(false))
    }

    fn send_fork(&mut self, j: NodeId, ctx: &mut Context<'_, A2Msg>) {
        // Line 35: want the fork back iff it is a low fork given away while
        // hungry.
        let flag = self.is_low(j) && self.state == DiningState::Hungry;
        let gen = self.forks.sent(j);
        ctx.send(j, A2Msg::Fork { flag, gen });
    }

    fn release_high_forks(&mut self, ctx: &mut Context<'_, A2Msg>) {
        for j in self.forks.suspended() {
            if self.is_high(j) && self.forks.holds(j) {
                self.send_fork(j, ctx);
            }
        }
    }

    fn release_suspended(&mut self, ctx: &mut Context<'_, A2Msg>) {
        for j in self.forks.suspended() {
            if self.forks.holds(j) {
                self.send_fork(j, ctx);
            }
        }
    }

    /// Lower this node's priority below every neighbor it dominates
    /// (Lines 7–8 / 24–25 / 45–46).
    fn lower_below_all(&mut self, ctx: &mut Context<'_, A2Msg>) {
        let dominated: Vec<NodeId> = self
            .higher
            .iter()
            .filter(|&(_, &h)| !h)
            .map(|(&j, _)| j)
            .collect();
        for j in dominated {
            ctx.send(j, A2Msg::Switch);
            self.stats.switches += 1;
            self.higher.insert(j, true);
        }
    }

    /// Request driver (Lines 3–5 / 18–21): issue the requests appropriate
    /// to current holdings; eat when complete.
    fn kick(&mut self, ctx: &mut Context<'_, A2Msg>) {
        if self.state != DiningState::Hungry {
            return;
        }
        if self.all_forks() {
            self.state = DiningState::Eating;
            return;
        }
        let targets = if self.all_low_forks() {
            let higher = &self.higher;
            self.forks
                .missing_where(|j| matches!(higher.get(&j), Some(false)))
        } else {
            let higher = &self.higher;
            self.forks
                .missing_where(|j| matches!(higher.get(&j), Some(true)))
        };
        for j in targets {
            if self.forks.try_mark_requested(j) {
                ctx.send(j, A2Msg::Req);
            }
        }
    }

    /// Lines 10–14: evaluate (or re-evaluate) a request from `j`.
    fn consider_request(&mut self, j: NodeId, ctx: &mut Context<'_, A2Msg>) {
        if self.defer_requests_from == Some(j) {
            return; // mutation: black-hole the victim's request
        }
        if !self.forks.holds(j) {
            return;
        }
        let outside = !self.withholding();
        if self.is_high(j) && (!self.all_low_forks() || outside) {
            self.send_fork(j, ctx);
        } else if self.is_low(j) && (!self.all_forks() || outside) {
            self.send_fork(j, ctx);
            self.release_high_forks(ctx);
        } else {
            self.forks.suspend(j);
        }
    }

    fn on_fork(&mut self, from: NodeId, flag: bool, gen: u64, ctx: &mut Context<'_, A2Msg>) {
        if !self.forks.receive_if_fresh(from, gen) {
            // Link died while the fork was in flight, or a duplicated
            // delivery of a transfer already accepted (stale generation).
            return;
        }
        if self.state == DiningState::Hungry && self.all_forks() {
            self.state = DiningState::Eating;
        }
        if self.all_low_forks() && self.withholding() {
            // Lines 18–20.
            if flag {
                self.forks.suspend(from);
            }
            self.kick(ctx);
        } else if flag {
            // Line 21: unusable fork whose owner wants it back.
            self.send_fork(from, ctx);
        } else {
            self.kick(ctx);
        }
    }

    fn become_hungry(&mut self, ctx: &mut Context<'_, A2Msg>) {
        // Lines 1–5.
        self.state = DiningState::Hungry;
        if self.notifications_enabled {
            self.stats.notifications += ctx.neighbors().len() as u64;
            ctx.broadcast(A2Msg::Notification);
        }
        self.kick(ctx);
    }
}

impl Protocol for Algorithm2 {
    type Msg = A2Msg;

    fn on_event(&mut self, ev: Event<A2Msg>, ctx: &mut Context<'_, A2Msg>) {
        match ev {
            Event::Hungry => {
                if self.state == DiningState::Thinking {
                    self.become_hungry(ctx);
                }
            }
            Event::ExitCs => {
                // Lines 6–9.
                if self.state == DiningState::Eating {
                    self.state = DiningState::Thinking;
                    self.stats.meals += 1;
                    self.lower_below_all(ctx);
                    self.release_suspended(ctx);
                }
            }
            Event::Message { from, msg } => match msg {
                A2Msg::Req => self.consider_request(from, ctx),
                A2Msg::Fork { flag, gen } => self.on_fork(from, flag, gen, ctx),
                A2Msg::Notification => {
                    // Lines 22–25: a thinking node that dominates the newly
                    // hungry sender steps aside entirely.
                    if self.state == DiningState::Thinking && self.is_high(from) {
                        self.lower_below_all(ctx);
                    }
                }
                A2Msg::Switch => {
                    // Lines 26–27.
                    self.higher.insert(from, false);
                    self.kick(ctx);
                }
            },
            Event::LinkUp { peer, kind } => match kind {
                LinkUpKind::AsStatic => {
                    // Lines 40–41: the static side owns the fork and the
                    // priority.
                    self.forks.link_up(peer, true);
                    self.higher.insert(peer, false);
                }
                LinkUpKind::AsMoving => {
                    // Lines 42–46.
                    self.forks.link_up(peer, false);
                    self.higher.insert(peer, true);
                    if self.state == DiningState::Eating {
                        self.stats.demotions += 1;
                        self.become_hungry(ctx);
                    }
                    self.lower_below_all(ctx);
                    self.kick(ctx);
                }
            },
            Event::LinkDown { peer } => {
                // Lines 47–48 (plus fork destruction).
                self.forks.link_down(peer);
                self.higher.remove(&peer);
                self.kick(ctx);
            }
            Event::MovementStarted | Event::MovementEnded | Event::Timer { .. } => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        self.state
    }

    fn msg_kind(msg: &A2Msg) -> &'static str {
        msg.kind()
    }

    fn state_digest(&self) -> Option<u64> {
        Some(manet_sim::digest_of_debug(self))
    }

    fn progress_digest(&self) -> Option<u64> {
        // Everything behavioral, nothing monotone: `stats` counters only
        // grow and the fork table's transfer generations never repeat, so
        // both are excluded (see `ForkTable::progress_digest`).
        Some(manet_sim::digest_of_debug(&(
            self.me,
            self.state,
            &self.higher,
            self.forks.progress_digest(),
            self.notifications_enabled,
            self.defer_requests_from,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{AutoExit, SafetyCheck};
    use manet_sim::{Engine, SimConfig, SimTime};

    fn line_engine(n: usize) -> Engine<Algorithm2> {
        Engine::new(
            SimConfig::default(),
            (0..n).map(|i| (i as f64, 0.0)).collect::<Vec<_>>(),
            |seed| Algorithm2::new(&seed),
        )
    }

    #[test]
    fn lone_node_eats() {
        let mut e = line_engine(1);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(500));
        assert!(e.protocol(NodeId(0)).stats.meals >= 1);
    }

    #[test]
    fn full_contention_line_all_eat() {
        let mut e = line_engine(6);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.add_hook(Box::new(SafetyCheck::default()));
        for i in 0..6 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(50_000));
        for i in 0..6 {
            assert!(e.protocol(NodeId(i)).stats.meals >= 1, "p{i} starved");
        }
    }

    #[test]
    fn notification_makes_thinking_dominator_step_aside() {
        // p0 < p1: initially higher_0[1] = true, i.e. p1 dominates... no:
        // higher_i[j] = ID[i] < ID[j], so p0 sees p1 as higher. p1 sees p0
        // as lower (higher_1[0] = false) — p1 dominates p0.
        let mut e = line_engine(2);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(2_000));
        // p1 (thinking, dominating) must have switched below p0 on p0's
        // notification, letting p0 eat.
        assert!(e.protocol(NodeId(0)).stats.meals >= 1);
        assert!(e.protocol(NodeId(1)).stats.switches >= 1);
        // After p0's exit it lowered itself again, so p1 dominates once more.
        assert!(!e.protocol(NodeId(1)).neighbor_has_priority(NodeId(0)));
    }

    #[test]
    fn priorities_alternate_between_two_contenders() {
        let mut e = line_engine(2);
        e.add_hook(Box::new(AutoExit::new(10)));
        e.add_hook(Box::new(SafetyCheck::default()));
        for i in 0..2 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        // Re-hungry drivers to force repeated conflicts.
        for t in (100..5_000).step_by(100) {
            e.set_hungry_at(SimTime(t), NodeId(0));
            e.set_hungry_at(SimTime(t), NodeId(1));
        }
        e.run_until(SimTime(6_000));
        assert!(e.protocol(NodeId(0)).stats.meals >= 3);
        assert!(e.protocol(NodeId(1)).stats.meals >= 3);
    }
}
