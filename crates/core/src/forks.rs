//! Fork bookkeeping shared by both algorithms and the baselines.
//!
//! A *fork* is the paper's metaphor for the shared resource on one link: at
//! any moment, each live link's fork is owned by exactly one endpoint or in
//! transit between them. Forks are destroyed when their link fails and
//! (re)created — owned by the static side — when a link forms. A node must
//! hold the forks of **all** its current links to eat.

use std::collections::{BTreeMap, BTreeSet};

use manet_sim::NodeId;

/// One node's fork state: the `at[]` array of the paper plus the suspended
/// request set `S` and an outstanding-request guard (which the paper leaves
/// implicit: a node never has two requests for the same fork in flight).
///
/// ```
/// use local_mutex::forks::ForkTable;
/// use manet_sim::NodeId;
///
/// // Node 1 initially holds the forks toward larger IDs.
/// let t = ForkTable::new(NodeId(1), &[NodeId(0), NodeId(2)]);
/// assert!(!t.holds(NodeId(0)));
/// assert!(t.holds(NodeId(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ForkTable {
    at: BTreeMap<NodeId, bool>,
    suspended: BTreeSet<NodeId>,
    requested: BTreeSet<NodeId>,
    /// Per-link fork *transfer generation*: the highest generation this
    /// node has sent or accepted on the link's current incarnation.
    /// Every transfer carries `gen+1`, so a duplicated fork delivery —
    /// whose generation was already seen — is recognizably stale. Without
    /// it, a duplicate arriving after the fork was legitimately passed
    /// back would leave *both* endpoints believing they hold the fork
    /// (the one non-idempotent transition of either algorithm, and a
    /// direct safety hole under message-duplication faults).
    gen: BTreeMap<NodeId, u64>,
}

impl ForkTable {
    /// Initial distribution: the fork of link `{i, j}` starts at the
    /// smaller ID (`at[j]` is true iff `ID[i] < ID[j]`, per the paper).
    pub fn new(me: NodeId, neighbors: &[NodeId]) -> ForkTable {
        ForkTable {
            at: neighbors.iter().map(|&j| (j, me < j)).collect(),
            suspended: BTreeSet::new(),
            requested: BTreeSet::new(),
            gen: BTreeMap::new(),
        }
    }

    /// A link to `j` came up; `own` says whether this node owns the new
    /// fork (true on the designated-static side). The transfer generation
    /// restarts with the incarnation: the engine guarantees no message of
    /// the old incarnation can still arrive.
    pub fn link_up(&mut self, j: NodeId, own: bool) {
        self.at.insert(j, own);
        self.suspended.remove(&j);
        self.requested.remove(&j);
        self.gen.insert(j, 0);
    }

    /// The link to `j` failed: its fork and any pending bookkeeping die.
    pub fn link_down(&mut self, j: NodeId) {
        self.at.remove(&j);
        self.suspended.remove(&j);
        self.requested.remove(&j);
        self.gen.remove(&j);
    }

    /// Whether this node holds the fork shared with `j` (`at[j]`).
    pub fn holds(&self, j: NodeId) -> bool {
        self.at.get(&j).copied().unwrap_or(false)
    }

    /// Whether `j` is a current neighbor according to the fork table.
    pub fn knows(&self, j: NodeId) -> bool {
        self.at.contains_key(&j)
    }

    /// Current neighbors in ascending ID order.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.at.keys().copied()
    }

    /// Record that the fork shared with `j` was sent away; returns the
    /// transfer generation to stamp on the outgoing fork message.
    pub fn sent(&mut self, j: NodeId) -> u64 {
        if let Some(a) = self.at.get_mut(&j) {
            *a = false;
        }
        self.suspended.remove(&j);
        let g = self.gen.entry(j).or_insert(0);
        *g += 1;
        *g
    }

    /// Record receipt of the fork shared with `j` **iff** the delivery is
    /// fresh: `j` is a known neighbor and `gen` is newer than every
    /// transfer seen on this link incarnation. Returns false (ignore the
    /// message) for unknown links and for stale duplicates.
    pub fn receive_if_fresh(&mut self, j: NodeId, gen: u64) -> bool {
        if !self.at.contains_key(&j) {
            return false; // link died while the fork was in flight
        }
        let last = self.gen.get(&j).copied().unwrap_or(0);
        if gen <= last {
            return false; // duplicated (or reordered-stale) fork delivery
        }
        self.gen.insert(j, gen);
        self.received(j);
        true
    }

    /// Record receipt of the fork shared with `j`.
    pub fn received(&mut self, j: NodeId) {
        if let Some(a) = self.at.get_mut(&j) {
            *a = true;
        }
        self.requested.remove(&j);
    }

    /// Suspend `j`'s request (the paper's `S := S ∪ {j}`).
    pub fn suspend(&mut self, j: NodeId) {
        if self.at.contains_key(&j) {
            self.suspended.insert(j);
        }
    }

    /// Whether `j`'s request is suspended.
    pub fn is_suspended(&self, j: NodeId) -> bool {
        self.suspended.contains(&j)
    }

    /// Snapshot of the suspended set in ascending ID order.
    pub fn suspended(&self) -> Vec<NodeId> {
        self.suspended.iter().copied().collect()
    }

    /// Mark a request for `j`'s fork as outstanding; returns false if one
    /// already is (so callers send at most one `req` per missing fork).
    pub fn try_mark_requested(&mut self, j: NodeId) -> bool {
        self.requested.insert(j)
    }

    /// Deterministic fingerprint of the *behavioral* fork state — holdings,
    /// suspensions, outstanding requests — excluding the monotone transfer
    /// generations. Generations exist solely to reject duplicated
    /// deliveries and never repeat, so including them would make a node
    /// that returns to the same behavioral configuration digest differently
    /// forever; liveness (lasso) detection keys on this method instead.
    pub fn progress_digest(&self) -> u64 {
        manet_sim::digest_of_debug(&(&self.at, &self.suspended, &self.requested))
    }

    /// Whether this node holds the forks of **all** neighbors satisfying
    /// `pred` (`all-forks` with `pred ≡ true`, `all-low-forks` with
    /// `pred ≡ is_low`).
    pub fn all_where<F: FnMut(NodeId) -> bool>(&self, mut pred: F) -> bool {
        self.at.iter().all(|(&j, &have)| have || !pred(j))
    }

    /// Missing forks among neighbors satisfying `pred`, ascending.
    pub fn missing_where<F: FnMut(NodeId) -> bool>(&self, mut pred: F) -> Vec<NodeId> {
        self.at
            .iter()
            .filter(|&(&j, &have)| !have && pred(j))
            .map(|(&j, _)| j)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ForkTable {
        ForkTable::new(NodeId(2), &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)])
    }

    #[test]
    fn initial_distribution_by_id() {
        let t = table();
        assert!(!t.holds(NodeId(0)));
        assert!(!t.holds(NodeId(1)));
        assert!(t.holds(NodeId(3)));
        assert!(t.holds(NodeId(4)));
    }

    #[test]
    fn no_two_endpoints_hold_the_same_fork_initially() {
        let a = ForkTable::new(NodeId(1), &[NodeId(2)]);
        let b = ForkTable::new(NodeId(2), &[NodeId(1)]);
        assert!(a.holds(NodeId(2)) ^ b.holds(NodeId(1)));
    }

    #[test]
    fn send_receive_roundtrip() {
        let mut t = table();
        t.sent(NodeId(3));
        assert!(!t.holds(NodeId(3)));
        t.received(NodeId(3));
        assert!(t.holds(NodeId(3)));
    }

    #[test]
    fn all_and_missing_respect_predicate() {
        let t = table();
        assert!(t.all_where(|j| j > NodeId(2)));
        assert!(!t.all_where(|_| true));
        assert_eq!(t.missing_where(|_| true), vec![NodeId(0), NodeId(1)]);
        assert_eq!(t.missing_where(|j| j == NodeId(1)), vec![NodeId(1)]);
    }

    #[test]
    fn link_down_clears_everything() {
        let mut t = table();
        t.suspend(NodeId(3));
        assert!(t.try_mark_requested(NodeId(0)));
        t.link_down(NodeId(3));
        t.link_down(NodeId(0));
        assert!(!t.knows(NodeId(3)));
        assert!(t.suspended().is_empty());
        // A fresh link restores request eligibility.
        t.link_up(NodeId(0), true);
        assert!(t.holds(NodeId(0)));
        assert!(t.try_mark_requested(NodeId(0)));
    }

    #[test]
    fn request_guard_blocks_duplicates() {
        let mut t = table();
        assert!(t.try_mark_requested(NodeId(0)));
        assert!(!t.try_mark_requested(NodeId(0)));
        t.received(NodeId(0));
        assert!(t.try_mark_requested(NodeId(0)));
    }

    #[test]
    fn duplicate_fork_delivery_is_rejected_as_stale() {
        // The fork ABA scenario of message-duplication faults: receive a
        // fork, pass it back, then the duplicate of the first delivery
        // shows up. Accepting it would make both endpoints owners.
        let mut a = ForkTable::new(NodeId(1), &[NodeId(2)]);
        let mut b = ForkTable::new(NodeId(2), &[NodeId(1)]);
        // 1 holds the fork initially and sends it to 2.
        let g1 = a.sent(NodeId(2));
        assert!(b.receive_if_fresh(NodeId(1), g1));
        assert!(b.holds(NodeId(1)) && !a.holds(NodeId(2)));
        // Replay of the same delivery: stale.
        assert!(!b.receive_if_fresh(NodeId(1), g1));
        // 2 passes the fork back; 1 accepts (a fresh, higher generation).
        let g2 = b.sent(NodeId(1));
        assert!(g2 > g1);
        assert!(a.receive_if_fresh(NodeId(2), g2));
        // The old duplicate finally arrives at 2 — must NOT resurrect
        // ownership there.
        assert!(!b.receive_if_fresh(NodeId(1), g1));
        assert!(a.holds(NodeId(2)) && !b.holds(NodeId(1)), "fork duplicated");
    }

    #[test]
    fn link_flap_resets_the_transfer_generation() {
        let mut t = table();
        t.sent(NodeId(3));
        let g = t.sent(NodeId(3));
        assert_eq!(g, 2);
        t.link_down(NodeId(3));
        t.link_up(NodeId(3), false);
        // Fresh incarnation: generation restarts at 1 and is accepted.
        assert!(t.receive_if_fresh(NodeId(3), 1));
        assert!(t.holds(NodeId(3)));
        assert!(
            !t.receive_if_fresh(NodeId(9), 1),
            "unknown links never accept"
        );
    }

    #[test]
    fn suspend_requires_known_neighbor() {
        let mut t = table();
        t.suspend(NodeId(9));
        assert!(t.suspended().is_empty());
        t.suspend(NodeId(3));
        assert!(t.is_suspended(NodeId(3)));
        t.sent(NodeId(3));
        assert!(!t.is_suspended(NodeId(3)), "sending clears suspension");
    }
}
