//! Fork bookkeeping shared by both algorithms and the baselines.
//!
//! A *fork* is the paper's metaphor for the shared resource on one link: at
//! any moment, each live link's fork is owned by exactly one endpoint or in
//! transit between them. Forks are destroyed when their link fails and
//! (re)created — owned by the static side — when a link forms. A node must
//! hold the forks of **all** its current links to eat.

use std::collections::{BTreeMap, BTreeSet};

use manet_sim::NodeId;

/// One node's fork state: the `at[]` array of the paper plus the suspended
/// request set `S` and an outstanding-request guard (which the paper leaves
/// implicit: a node never has two requests for the same fork in flight).
///
/// ```
/// use local_mutex::forks::ForkTable;
/// use manet_sim::NodeId;
///
/// // Node 1 initially holds the forks toward larger IDs.
/// let t = ForkTable::new(NodeId(1), &[NodeId(0), NodeId(2)]);
/// assert!(!t.holds(NodeId(0)));
/// assert!(t.holds(NodeId(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ForkTable {
    at: BTreeMap<NodeId, bool>,
    suspended: BTreeSet<NodeId>,
    requested: BTreeSet<NodeId>,
}

impl ForkTable {
    /// Initial distribution: the fork of link `{i, j}` starts at the
    /// smaller ID (`at[j]` is true iff `ID[i] < ID[j]`, per the paper).
    pub fn new(me: NodeId, neighbors: &[NodeId]) -> ForkTable {
        ForkTable {
            at: neighbors.iter().map(|&j| (j, me < j)).collect(),
            suspended: BTreeSet::new(),
            requested: BTreeSet::new(),
        }
    }

    /// A link to `j` came up; `own` says whether this node owns the new
    /// fork (true on the designated-static side).
    pub fn link_up(&mut self, j: NodeId, own: bool) {
        self.at.insert(j, own);
        self.suspended.remove(&j);
        self.requested.remove(&j);
    }

    /// The link to `j` failed: its fork and any pending bookkeeping die.
    pub fn link_down(&mut self, j: NodeId) {
        self.at.remove(&j);
        self.suspended.remove(&j);
        self.requested.remove(&j);
    }

    /// Whether this node holds the fork shared with `j` (`at[j]`).
    pub fn holds(&self, j: NodeId) -> bool {
        self.at.get(&j).copied().unwrap_or(false)
    }

    /// Whether `j` is a current neighbor according to the fork table.
    pub fn knows(&self, j: NodeId) -> bool {
        self.at.contains_key(&j)
    }

    /// Current neighbors in ascending ID order.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.at.keys().copied()
    }

    /// Record that the fork shared with `j` was sent away.
    pub fn sent(&mut self, j: NodeId) {
        if let Some(a) = self.at.get_mut(&j) {
            *a = false;
        }
        self.suspended.remove(&j);
    }

    /// Record receipt of the fork shared with `j`.
    pub fn received(&mut self, j: NodeId) {
        if let Some(a) = self.at.get_mut(&j) {
            *a = true;
        }
        self.requested.remove(&j);
    }

    /// Suspend `j`'s request (the paper's `S := S ∪ {j}`).
    pub fn suspend(&mut self, j: NodeId) {
        if self.at.contains_key(&j) {
            self.suspended.insert(j);
        }
    }

    /// Whether `j`'s request is suspended.
    pub fn is_suspended(&self, j: NodeId) -> bool {
        self.suspended.contains(&j)
    }

    /// Snapshot of the suspended set in ascending ID order.
    pub fn suspended(&self) -> Vec<NodeId> {
        self.suspended.iter().copied().collect()
    }

    /// Mark a request for `j`'s fork as outstanding; returns false if one
    /// already is (so callers send at most one `req` per missing fork).
    pub fn try_mark_requested(&mut self, j: NodeId) -> bool {
        self.requested.insert(j)
    }

    /// Whether this node holds the forks of **all** neighbors satisfying
    /// `pred` (`all-forks` with `pred ≡ true`, `all-low-forks` with
    /// `pred ≡ is_low`).
    pub fn all_where<F: FnMut(NodeId) -> bool>(&self, mut pred: F) -> bool {
        self.at.iter().all(|(&j, &have)| have || !pred(j))
    }

    /// Missing forks among neighbors satisfying `pred`, ascending.
    pub fn missing_where<F: FnMut(NodeId) -> bool>(&self, mut pred: F) -> Vec<NodeId> {
        self.at
            .iter()
            .filter(|&(&j, &have)| !have && pred(j))
            .map(|(&j, _)| j)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ForkTable {
        ForkTable::new(NodeId(2), &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)])
    }

    #[test]
    fn initial_distribution_by_id() {
        let t = table();
        assert!(!t.holds(NodeId(0)));
        assert!(!t.holds(NodeId(1)));
        assert!(t.holds(NodeId(3)));
        assert!(t.holds(NodeId(4)));
    }

    #[test]
    fn no_two_endpoints_hold_the_same_fork_initially() {
        let a = ForkTable::new(NodeId(1), &[NodeId(2)]);
        let b = ForkTable::new(NodeId(2), &[NodeId(1)]);
        assert!(a.holds(NodeId(2)) ^ b.holds(NodeId(1)));
    }

    #[test]
    fn send_receive_roundtrip() {
        let mut t = table();
        t.sent(NodeId(3));
        assert!(!t.holds(NodeId(3)));
        t.received(NodeId(3));
        assert!(t.holds(NodeId(3)));
    }

    #[test]
    fn all_and_missing_respect_predicate() {
        let t = table();
        assert!(t.all_where(|j| j > NodeId(2)));
        assert!(!t.all_where(|_| true));
        assert_eq!(t.missing_where(|_| true), vec![NodeId(0), NodeId(1)]);
        assert_eq!(t.missing_where(|j| j == NodeId(1)), vec![NodeId(1)]);
    }

    #[test]
    fn link_down_clears_everything() {
        let mut t = table();
        t.suspend(NodeId(3));
        assert!(t.try_mark_requested(NodeId(0)));
        t.link_down(NodeId(3));
        t.link_down(NodeId(0));
        assert!(!t.knows(NodeId(3)));
        assert!(t.suspended().is_empty());
        // A fresh link restores request eligibility.
        t.link_up(NodeId(0), true);
        assert!(t.holds(NodeId(0)));
        assert!(t.try_mark_requested(NodeId(0)));
    }

    #[test]
    fn request_guard_blocks_duplicates() {
        let mut t = table();
        assert!(t.try_mark_requested(NodeId(0)));
        assert!(!t.try_mark_requested(NodeId(0)));
        t.received(NodeId(0));
        assert!(t.try_mark_requested(NodeId(0)));
    }

    #[test]
    fn suspend_requires_known_neighbor() {
        let mut t = table();
        t.suspend(NodeId(9));
        assert!(t.suspended().is_empty());
        t.suspend(NodeId(3));
        assert!(t.is_suspended(NodeId(3)));
        t.sent(NodeId(3));
        assert!(!t.is_suspended(NodeId(3)), "sending clears suspension");
    }
}
