//! # `local-mutex` — local mutual exclusion for mobile ad hoc networks
//!
//! A faithful implementation of the two algorithms of Attiya, Kogan and
//! Welch, *"Efficient and Robust Local Mutual Exclusion in Mobile Ad Hoc
//! Networks"* (ICDCS 2008; full version: Kogan's 2008 Technion thesis).
//!
//! **The problem.** Each node cycles thinking → hungry → eating; no two
//! *current* neighbors (nodes in radio range) may eat simultaneously, even
//! as nodes move, links churn, and nodes crash. Two quality measures:
//! *failure locality* (how far a crash's damage reaches) and *response time*
//! (hungry → eating latency, given eating time ≤ τ and message delay ≤ ν).
//!
//! **The algorithms.**
//!
//! | | failure locality | response time (mobile) | response time (static) |
//! |---|---|---|---|
//! | [`Algorithm1`] + greedy recoloring | `n` | `O((n + δ³)δ)` | `O((n + δ²)δ)` |
//! | [`Algorithm1`] + Linial recoloring | `max(log* n, 4) + 2` | `O((log* n + δ⁴)δ)` | `O((log* n + δ³)δ)` |
//! | [`Algorithm2`] | **2 (optimal)** | `O(n²)` | **`O(n)`** |
//!
//! Both protocols plug into the [`manet_sim`] engine:
//!
//! ```
//! use local_mutex::Algorithm2;
//! use local_mutex::testutil::{AutoExit, SafetyCheck};
//! use manet_sim::{Engine, NodeId, SimConfig, SimTime};
//!
//! // Three nodes in a line; everyone hungry at t = 1.
//! let mut engine = Engine::new(
//!     SimConfig::default(),
//!     vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
//!     |seed| Algorithm2::new(&seed),
//! );
//! engine.add_hook(Box::new(AutoExit::new(20)));     // eat for 20 ticks
//! engine.add_hook(Box::new(SafetyCheck::default())); // assert LME always
//! for i in 0..3 {
//!     engine.set_hungry_at(SimTime(1), NodeId(i));
//! }
//! engine.run_until(SimTime(10_000));
//! for i in 0..3 {
//!     assert!(engine.protocol(NodeId(i)).stats.meals >= 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg1;
pub mod alg2;
pub mod forks;
pub mod message;
pub mod recolor;
pub mod testutil;

pub use alg1::{Alg1Stats, Algorithm1, Phase, RecolorConfig};
pub use alg2::{Alg2Stats, Algorithm2};
pub use message::{A1Msg, A2Msg, RecolorMsg};
