//! Model-based property test of [`local_mutex::forks::ForkTable`]: a pair
//! of tables for the two endpoints of one link must never both hold the
//! fork, across arbitrary interleavings of sends, receipts, suspensions and
//! link churn.

use local_mutex::forks::ForkTable;
use manet_sim::NodeId;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Endpoint `who` sends the fork (only applied if it holds it).
    Send(bool),
    /// The in-flight fork (if any) arrives at its destination.
    Deliver,
    /// Endpoint `who` suspends the other's request.
    Suspend(bool),
    /// Endpoint `who` marks a request outstanding.
    Request(bool),
    /// The link fails and re-forms; `static_side` owns the new fork.
    Churn(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(Op::Send),
        Just(Op::Deliver),
        any::<bool>().prop_map(Op::Suspend),
        any::<bool>().prop_map(Op::Request),
        any::<bool>().prop_map(Op::Churn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn one_fork_per_link_invariant(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let a_id = NodeId(0);
        let b_id = NodeId(1);
        let mut a = ForkTable::new(a_id, &[b_id]);
        let mut b = ForkTable::new(b_id, &[a_id]);
        // In-flight fork: Some(destination-is-a).
        let mut in_flight: Option<bool> = None;

        for op in ops {
            match op {
                Op::Send(true) => {
                    if a.holds(b_id) && in_flight.is_none() {
                        a.sent(b_id);
                        in_flight = Some(false); // heading to b
                    }
                }
                Op::Send(false) => {
                    if b.holds(a_id) && in_flight.is_none() {
                        b.sent(a_id);
                        in_flight = Some(true); // heading to a
                    }
                }
                Op::Deliver => {
                    match in_flight.take() {
                        Some(true) => a.received(b_id),
                        Some(false) => b.received(a_id),
                        None => {}
                    }
                }
                Op::Suspend(true) => a.suspend(b_id),
                Op::Suspend(false) => b.suspend(a_id),
                Op::Request(true) => {
                    let first = a.try_mark_requested(b_id);
                    if first {
                        // A second immediate request must be refused.
                        prop_assert!(!a.try_mark_requested(b_id));
                    }
                }
                Op::Request(false) => {
                    let _ = b.try_mark_requested(a_id);
                }
                Op::Churn(static_is_a) => {
                    // Link down: fork and in-flight state die with it.
                    a.link_down(b_id);
                    b.link_down(a_id);
                    in_flight = None;
                    prop_assert!(!a.knows(b_id) && !b.knows(a_id));
                    prop_assert!(a.suspended().is_empty());
                    // Link up: the designated static side owns the fork.
                    a.link_up(b_id, static_is_a);
                    b.link_up(a_id, !static_is_a);
                }
            }
            // Core invariant: at most one endpoint holds the fork, and if
            // neither does, it is in flight.
            let holders = u8::from(a.holds(b_id)) + u8::from(b.holds(a_id));
            prop_assert!(holders <= 1, "both endpoints hold the fork");
            if holders == 0 {
                prop_assert!(in_flight.is_some(), "fork vanished");
            } else {
                prop_assert!(in_flight.is_none(), "fork duplicated");
            }
            // Suspensions only refer to known neighbors.
            for j in a.suspended() {
                prop_assert!(a.knows(j));
            }
        }
    }
}
