//! Model-based randomized test of [`local_mutex::forks::ForkTable`]: a pair
//! of tables for the two endpoints of one link must never both hold the
//! fork, across arbitrary interleavings of sends, receipts, suspensions and
//! link churn.
//!
//! Formerly a proptest property; now a seeded exhaustive-ish battery driven
//! by the workspace's own deterministic RNG so the suite builds offline.
//! Every case is reproducible from its printed seed.

use local_mutex::forks::ForkTable;
use manet_sim::{NodeId, SimRng};

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Endpoint `who` sends the fork (only applied if it holds it).
    Send(bool),
    /// The in-flight fork (if any) arrives at its destination.
    Deliver,
    /// Endpoint `who` suspends the other's request.
    Suspend(bool),
    /// Endpoint `who` marks a request outstanding.
    Request(bool),
    /// The link fails and re-forms; `static_side` owns the new fork.
    Churn(bool),
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Send(rng.gen_bool(0.5)),
        1 => Op::Deliver,
        2 => Op::Suspend(rng.gen_bool(0.5)),
        3 => Op::Request(rng.gen_bool(0.5)),
        _ => Op::Churn(rng.gen_bool(0.5)),
    }
}

#[test]
fn one_fork_per_link_invariant() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(0xF0_4B ^ (case << 8));
        let len = rng.gen_range(0..60usize);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        run_case(case, &ops);
    }
}

fn run_case(case: u64, ops: &[Op]) {
    let a_id = NodeId(0);
    let b_id = NodeId(1);
    let mut a = ForkTable::new(a_id, &[b_id]);
    let mut b = ForkTable::new(b_id, &[a_id]);
    // In-flight fork: Some(destination-is-a).
    let mut in_flight: Option<bool> = None;

    for &op in ops {
        match op {
            Op::Send(true) => {
                if a.holds(b_id) && in_flight.is_none() {
                    a.sent(b_id);
                    in_flight = Some(false); // heading to b
                }
            }
            Op::Send(false) => {
                if b.holds(a_id) && in_flight.is_none() {
                    b.sent(a_id);
                    in_flight = Some(true); // heading to a
                }
            }
            Op::Deliver => match in_flight.take() {
                Some(true) => a.received(b_id),
                Some(false) => b.received(a_id),
                None => {}
            },
            Op::Suspend(true) => a.suspend(b_id),
            Op::Suspend(false) => b.suspend(a_id),
            Op::Request(true) => {
                let first = a.try_mark_requested(b_id);
                if first {
                    // A second immediate request must be refused.
                    assert!(!a.try_mark_requested(b_id), "case {case}: double request");
                }
            }
            Op::Request(false) => {
                let _ = b.try_mark_requested(a_id);
            }
            Op::Churn(static_is_a) => {
                // Link down: fork and in-flight state die with it.
                a.link_down(b_id);
                b.link_down(a_id);
                in_flight = None;
                assert!(!a.knows(b_id) && !b.knows(a_id), "case {case}");
                assert!(a.suspended().is_empty(), "case {case}");
                // Link up: the designated static side owns the fork.
                a.link_up(b_id, static_is_a);
                b.link_up(a_id, !static_is_a);
            }
        }
        // Core invariant: at most one endpoint holds the fork, and if
        // neither does, it is in flight.
        let holders = u8::from(a.holds(b_id)) + u8::from(b.holds(a_id));
        assert!(holders <= 1, "case {case}: both endpoints hold the fork");
        if holders == 0 {
            assert!(in_flight.is_some(), "case {case}: fork vanished");
        } else {
            assert!(in_flight.is_none(), "case {case}: fork duplicated");
        }
        // Suspensions only refer to known neighbors.
        for j in a.suspended() {
            assert!(a.knows(j), "case {case}: suspended unknown neighbor");
        }
    }
}
