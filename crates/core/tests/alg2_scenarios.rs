//! Deterministic scenario tests for Algorithm 2's distinctive machinery:
//! the notification mechanism (Lines 22–25), switch-based priority
//! reversal (Lines 6–8, 26–27), withholding while not thinking, and the
//! want-back flag under dynamic priorities.

use local_mutex::testutil::{AutoExit, SafetyCheck};
use local_mutex::Algorithm2;
use manet_sim::{DiningState, Engine, NodeId, SimConfig, SimTime};

fn fixed_engine(positions: Vec<(f64, f64)>) -> Engine<Algorithm2> {
    Engine::new(
        SimConfig {
            min_message_delay: 5,
            max_message_delay: 5,
            ..SimConfig::default()
        },
        positions,
        |seed| Algorithm2::new(&seed),
    )
}

#[test]
fn thinking_node_always_grants() {
    // node0 holds the fork (ID rule) and stays thinking; node1 becomes
    // hungry and must get the fork promptly even though node0 initially
    // has priority (higher_1[0] = false means node0 dominates? No:
    // higher_i[j] = ID[i] < ID[j], so node0 sees node1 as higher —
    // node1 dominates node0 from the start). Either way, a thinking
    // holder never withholds.
    let mut e = fixed_engine(vec![(0.0, 0.0), (1.0, 0.0)]);
    e.add_hook(Box::new(AutoExit::new(20)));
    e.add_hook(Box::new(SafetyCheck::default()));
    e.set_hungry_at(SimTime(1), NodeId(1));
    e.run_until(SimTime(100));
    assert_eq!(e.protocol(NodeId(1)).stats.meals, 1);
}

#[test]
fn notification_cascade_lowers_dominator_below_everyone() {
    // Line: n0 - n1 - n2. n1 (middle, dominates n0 since higher_1[0] is
    // false) stays thinking. When n0 becomes hungry, its notification must
    // make n1 switch below *all* nodes it dominated — which is only n0
    // (n2 has the larger ID, so it already dominates n1). Exactly one
    // switch is sent.
    let mut e = fixed_engine(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
    e.add_hook(Box::new(AutoExit::new(20)));
    e.add_hook(Box::new(SafetyCheck::default()));
    e.set_hungry_at(SimTime(1), NodeId(0));
    e.run_until(SimTime(500));
    assert_eq!(e.protocol(NodeId(0)).stats.meals, 1, "n0 must eat");
    assert_eq!(
        e.protocol(NodeId(1)).stats.switches,
        1,
        "the thinking dominator lowers itself exactly once"
    );
    // (After n0's own exit it lowered itself again, so the *final*
    // priority points back at n1 — the mechanism is a see-saw.)
    // n2 never saw a notification-triggered switch (it dominated nobody
    // adjacent to a hungry node: n1 was the notified party).
    assert_eq!(e.protocol(NodeId(2)).stats.switches, 0);
}

#[test]
fn exit_reverses_all_incident_priorities() {
    // Two contenders under continuous contention: the exit-time priority
    // reversal guarantees neither can starve the other. (Exact meal ratios
    // are schedule-dependent — with fixed delays and a periodic workload
    // the system can phase-lock — so we assert sustained progress on both
    // sides, not strict alternation.)
    let mut e = fixed_engine(vec![(0.0, 0.0), (1.0, 0.0)]);
    e.add_hook(Box::new(AutoExit::new(10)));
    e.add_hook(Box::new(SafetyCheck::default()));
    // Keep both perpetually hungry.
    for t in (1..3_000).step_by(25) {
        e.set_hungry_at(SimTime(t), NodeId(0));
        e.set_hungry_at(SimTime(t), NodeId(1));
    }
    e.run_until(SimTime(3_500));
    let m0 = e.protocol(NodeId(0)).stats.meals;
    let m1 = e.protocol(NodeId(1)).stats.meals;
    assert!(m0 >= 20 && m1 >= 20, "both must keep eating: {m0} vs {m1}");
    assert!(
        m0.max(m1) <= 3 * m0.min(m1),
        "no side may dominate unboundedly: {m0} vs {m1}"
    );
}

#[test]
fn eating_node_suspends_and_grants_at_exit() {
    let mut e = fixed_engine(vec![(0.0, 0.0), (1.0, 0.0)]);
    e.add_hook(Box::new(SafetyCheck::default()));
    // node1 eats forever (no auto-exit); node0 requests mid-meal.
    e.set_hungry_at(SimTime(1), NodeId(1));
    e.run_until(SimTime(50));
    assert_eq!(e.dining_state(NodeId(1)), DiningState::Eating);
    e.set_hungry_at(SimTime(50), NodeId(0));
    e.run_until(SimTime(1_000));
    assert_eq!(
        e.dining_state(NodeId(0)),
        DiningState::Hungry,
        "request must be withheld while the holder eats"
    );
    // Release node1: node0 must eat.
    e.schedule(
        SimTime(1_000),
        manet_sim::Command::ExitCs {
            node: NodeId(1),
            session: 1,
        },
    );
    e.run_until(SimTime(2_000));
    assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
}

#[test]
fn clique_contention_is_fair_under_dynamic_priorities() {
    let positions: Vec<(f64, f64)> = (0..5)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / 5.0;
            (0.5 * a.cos(), 0.5 * a.sin())
        })
        .collect();
    let mut e = fixed_engine(positions);
    e.add_hook(Box::new(AutoExit::new(15)));
    e.add_hook(Box::new(SafetyCheck::default()));
    for t in (1..20_000).step_by(40) {
        for i in 0..5 {
            e.set_hungry_at(SimTime(t + i as u64), NodeId(i));
        }
    }
    e.run_until(SimTime(22_000));
    let meals: Vec<u64> = (0..5).map(|i| e.protocol(NodeId(i)).stats.meals).collect();
    let min = *meals.iter().min().expect("nonempty");
    let max = *meals.iter().max().expect("nonempty");
    assert!(min >= 10, "meals: {meals:?}");
    assert!(
        max <= min * 2,
        "dynamic priorities should keep the clique fair: {meals:?}"
    );
}
