//! Deterministic scenario tests for the subtlest rules of Algorithm 1's
//! fork-collection module: request suspension (Lines 11–16), the want-back
//! flag (Lines 20–23, 31), exit-time granting (Line 8), and recoloring
//! NACKs (Lines 40–43). Fixed message delays make every schedule exact.

use local_mutex::testutil::SafetyCheck;
use local_mutex::{Algorithm1, Phase};
use manet_sim::{Command, DiningState, Engine, NodeId, SimConfig, SimTime};

fn fixed_delay_config() -> SimConfig {
    SimConfig {
        min_message_delay: 5,
        max_message_delay: 5,
        ..SimConfig::default()
    }
}

fn engine_with_colors(positions: Vec<(f64, f64)>, colors: Vec<i64>) -> Engine<Algorithm1> {
    Engine::new(fixed_delay_config(), positions, move |seed| {
        let mut node = Algorithm1::greedy(&seed);
        node.set_initial_coloring(&colors);
        node
    })
}

/// Exit the critical section `ticks` after a node starts eating.
fn auto_exit(engine: &mut Engine<Algorithm1>, ticks: u64) {
    engine.add_hook(Box::new(local_mutex::testutil::AutoExit::new(ticks)));
}

#[test]
fn high_request_is_suspended_while_eating_and_granted_at_exit() {
    // node0 (color 0, holds the fork) eats immediately; node1 (color 1)
    // requests the shared fork mid-meal: the request must sit in S until
    // node0's exit code grants it (Line 8).
    let mut e = engine_with_colors(vec![(0.0, 0.0), (1.0, 0.0)], vec![0, 1]);
    auto_exit(&mut e, 100);
    e.add_hook(Box::new(SafetyCheck::default()));
    e.set_hungry_at(SimTime(1), NodeId(0));
    e.set_hungry_at(SimTime(1), NodeId(1));
    e.run_until(SimTime(60));
    assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
    assert_eq!(e.dining_state(NodeId(1)), DiningState::Hungry);
    assert_eq!(
        e.protocol(NodeId(0)).suspended_requests(),
        vec![NodeId(1)],
        "node1's request must be suspended during node0's meal"
    );
    assert!(e.protocol(NodeId(0)).holds_fork(NodeId(1)));
    // After node0 exits (t ≈ 101), node1 gets the fork, eats, and exits.
    e.run_until(SimTime(400));
    assert_eq!(e.protocol(NodeId(0)).stats.meals, 1);
    assert_eq!(e.protocol(NodeId(1)).stats.meals, 1);
    assert!(e.protocol(NodeId(0)).suspended_requests().is_empty());
    // node1 is node0's high neighbor, so the exit-time grant carried no
    // want-back flag: the fork stays with node1.
    assert!(!e.protocol(NodeId(0)).holds_fork(NodeId(1)));
    assert!(e.protocol(NodeId(1)).holds_fork(NodeId(0)));
}

#[test]
fn want_back_flag_returns_the_fork_after_the_priority_meal() {
    // node0 has ID 0 (so it holds the fork) but the *larger* color 1;
    // node1 has color 0 — the priority. node0 eats first (it happens to
    // hold everything), suspends node1's request, and grants it at exit
    // with the want-back flag set (Line 31: a low fork relinquished while
    // behind SD^f). node1 must suspend the want-back (Line 21), eat, and
    // return the fork at its own exit — ping-pong exactly once.
    let mut e = engine_with_colors(vec![(0.0, 0.0), (1.0, 0.0)], vec![1, 0]);
    auto_exit(&mut e, 50);
    e.add_hook(Box::new(SafetyCheck::default()));
    e.set_hungry_at(SimTime(1), NodeId(0));
    e.set_hungry_at(SimTime(1), NodeId(1));
    e.run_until(SimTime(40));
    assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
    // node1's (high-fork) request is suspended at node0.
    assert_eq!(e.protocol(NodeId(0)).suspended_requests(), vec![NodeId(1)]);
    e.run_until(SimTime(2_000));
    // Both ate exactly once; the want-back flag brought the fork home.
    assert_eq!(e.protocol(NodeId(0)).stats.meals, 1);
    assert_eq!(e.protocol(NodeId(1)).stats.meals, 1);
    assert!(
        e.protocol(NodeId(0)).holds_fork(NodeId(1)),
        "the want-back flag must return the fork to node0"
    );
    assert!(!e.protocol(NodeId(1)).holds_fork(NodeId(0)));
}

#[test]
fn lone_mover_recolors_via_nack_and_gets_minus_one() {
    // node1 teleports next to a thinking node0 and becomes hungry: its
    // recoloring round is NACKed (node0 is not participating), so the
    // procedure returns color −1 (Algorithm 4's R-empty case), after which
    // node1 collects and eats.
    let mut e = engine_with_colors(vec![(0.0, 0.0), (30.0, 0.0)], vec![0, 1]);
    e.add_hook(Box::new(SafetyCheck::default()));
    e.teleport_at(SimTime(10), NodeId(1), (1.0, 0.0));
    e.set_hungry_at(SimTime(100), NodeId(1));
    // No auto-exit: node1 stays eating so we can observe its recolor color.
    e.run_until(SimTime(1_000));
    let p1 = e.protocol(NodeId(1));
    assert_eq!(p1.stats.recolorings, 1, "the mover must recolor");
    assert_eq!(
        p1.color(),
        -1,
        "NACKed recoloring yields the lonely color −1"
    );
    assert_eq!(e.dining_state(NodeId(1)), DiningState::Eating);
}

#[test]
fn newcomer_waits_while_static_neighbor_is_behind_sdf() {
    // node0 eats (behind SD^f, no workload exit). node1 arrives, learns
    // node0's doorway status from the Hello, recolors, but must then block
    // at the SD^f entry until node0 exits — the doorway keeps newcomers
    // from interfering with nodes in the fork module.
    let mut e = engine_with_colors(vec![(0.0, 0.0), (30.0, 0.0)], vec![0, 1]);
    e.add_hook(Box::new(SafetyCheck::default()));
    e.set_hungry_at(SimTime(1), NodeId(0)); // eats forever (no exit hook)
    e.teleport_at(SimTime(50), NodeId(1), (1.0, 0.0));
    e.set_hungry_at(SimTime(100), NodeId(1));
    e.run_until(SimTime(2_000));
    assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
    assert_eq!(e.dining_state(NodeId(1)), DiningState::Hungry);
    assert!(
        matches!(
            e.protocol(NodeId(1)).phase(),
            Phase::EnterAdf | Phase::EnterSdf | Phase::Collecting
        ),
        "newcomer should be blocked at the fork module's doorways \
         (node0 is behind AD^f/SD^f), got {:?}",
        e.protocol(NodeId(1)).phase()
    );
    // Let node0 exit: node1 must then eat.
    let session = 1; // first eating session
    e.schedule(
        SimTime(2_000),
        Command::ExitCs {
            node: NodeId(0),
            session,
        },
    );
    e.run_until(SimTime(4_000));
    assert_eq!(e.dining_state(NodeId(1)), DiningState::Eating);
}

#[test]
fn exit_color_is_chosen_fresh_against_neighbor_updates() {
    // Three-clique with colors 0,1,2. They eat in priority order; each
    // exit picks the smallest free color given the *current* neighbor
    // colors, so the coloring stays legal through every rotation.
    let mut e = engine_with_colors(manet_local_mutex_positions(), vec![0, 1, 2]);
    auto_exit(&mut e, 20);
    e.add_hook(Box::new(SafetyCheck::default()));
    for i in 0..3 {
        e.set_hungry_at(SimTime(1), NodeId(i));
    }
    e.run_until(SimTime(5_000));
    let colors: Vec<i64> = (0..3).map(|i| e.protocol(NodeId(i)).color()).collect();
    assert!(colors.iter().all(|&c| (0..=2).contains(&c)), "{colors:?}");
    for a in 0..3 {
        for b in (a + 1)..3 {
            assert_ne!(colors[a], colors[b], "illegal exit coloring {colors:?}");
        }
    }
    for i in 0..3 {
        assert!(e.protocol(NodeId(i)).stats.meals >= 1);
    }
}

fn manet_local_mutex_positions() -> Vec<(f64, f64)> {
    vec![(0.0, 0.0), (1.0, 0.0), (0.5, 0.8)]
}
