//! Randomized tests of the recoloring procedures under adversarial-ish
//! delivery schedules.
//!
//! The correctness arguments (Lemmas 14 and 19 of the paper, and the
//! commit rule of the randomized extension) rely on per-channel FIFO but
//! nothing else about timing. Here a seeded scheduler delivers messages in
//! random order *across* channels while preserving FIFO *within* each
//! channel, over path/star/clique participant graphs; every concurrent
//! participant must terminate, and adjacent participants must end with
//! distinct colors (Assumption 1).
//!
//! Formerly proptest properties; now seeded batteries over the workspace's
//! own deterministic RNG so the suite builds offline. Every case prints its
//! parameters on failure and reproduces from them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use coloring::LinialSchedule;
use local_mutex::recolor::{
    GreedyRecolor, LinialRecolor, RandomizedRecolor, RecolorOutcome, RecolorProcedure,
};
use local_mutex::RecolorMsg;
use manet_sim::{NodeId, SimRng};

#[derive(Clone, Copy, Debug)]
enum Shape {
    Path,
    Star,
    Clique,
}

const SHAPES: [Shape; 3] = [Shape::Path, Shape::Star, Shape::Clique];

fn adjacency(shape: Shape, k: usize) -> Vec<BTreeSet<NodeId>> {
    let mut adj = vec![BTreeSet::new(); k];
    match shape {
        Shape::Path => {
            for i in 0..k.saturating_sub(1) {
                adj[i].insert(NodeId(i as u32 + 1));
                adj[i + 1].insert(NodeId(i as u32));
            }
        }
        Shape::Star => {
            for i in 1..k {
                adj[0].insert(NodeId(i as u32));
                adj[i].insert(NodeId(0));
            }
        }
        Shape::Clique => {
            for (i, nbrs) in adj.iter_mut().enumerate() {
                for j in 0..k {
                    if i != j {
                        nbrs.insert(NodeId(j as u32));
                    }
                }
            }
        }
    }
    adj
}

/// Drive `k` concurrent participants to completion with a seeded random
/// FIFO scheduler; returns their final colors.
fn drive(
    shape: Shape,
    k: usize,
    seed: u64,
    make: impl Fn(NodeId) -> Box<dyn RecolorProcedure>,
) -> Vec<i64> {
    let adj = adjacency(shape, k);
    let mut procs: Vec<Box<dyn RecolorProcedure>> =
        (0..k).map(|i| make(NodeId(i as u32))).collect();
    let mut colors: Vec<Option<i64>> = vec![None; k];
    // FIFO per directed channel.
    let mut channels: BTreeMap<(u32, u32), VecDeque<RecolorMsg>> = BTreeMap::new();
    let push = |channels: &mut BTreeMap<(u32, u32), VecDeque<RecolorMsg>>,
                from: u32,
                out: Vec<(NodeId, RecolorMsg)>| {
        for (to, msg) in out {
            channels.entry((from, to.0)).or_default().push_back(msg);
        }
    };
    for i in 0..k {
        let mut out = Vec::new();
        if let RecolorOutcome::Done(c) = procs[i].start(adj[i].clone(), &mut out) {
            colors[i] = Some(c);
        }
        push(&mut channels, i as u32, out);
    }
    let mut rng = SimRng::seed_from_u64(seed);
    let mut steps = 0;
    while colors.iter().any(Option::is_none) {
        steps += 1;
        assert!(steps < 100_000, "scheduler did not converge");
        let live: Vec<(u32, u32)> = channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&c, _)| c)
            .collect();
        assert!(
            !live.is_empty(),
            "deadlock: undecided nodes but no messages"
        );
        let (from, to) = live[rng.gen_range(0..live.len())];
        let msg = channels
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .expect("picked nonempty");
        let t = to as usize;
        let mut out = Vec::new();
        if colors[t].is_some() {
            // Finished nodes are no longer participating: data messages get
            // a NACK (the wrapper's Lines 40-43), NACKs are dropped.
            if !matches!(msg, RecolorMsg::Nack) {
                channels
                    .entry((to, from))
                    .or_default()
                    .push_back(RecolorMsg::Nack);
            }
            continue;
        }
        if let RecolorOutcome::Done(c) = procs[t].on_message(NodeId(from), msg, &mut out) {
            colors[t] = Some(c);
        }
        push(&mut channels, to, out);
    }
    colors
        .into_iter()
        .map(|c| c.expect("all decided"))
        .collect()
}

fn check_legal(shape: Shape, colors: &[i64]) {
    let adj = adjacency(shape, colors.len());
    for (i, nbrs) in adj.iter().enumerate() {
        assert!(colors[i] < 0, "recolored colors are negative: {colors:?}");
        for &j in nbrs {
            assert_ne!(
                colors[i],
                colors[j.index()],
                "adjacent participants {} and {} share color (shape {:?}): {:?}",
                i,
                j.0,
                shape,
                colors
            );
        }
    }
}

/// Iterate 48 cases of (shape, k, schedule seed), mirroring the old
/// proptest case count, and hand each to `f`.
fn battery(tag: u64, mut f: impl FnMut(Shape, usize, u64)) {
    let mut rng = SimRng::seed_from_u64(0x5EED_CA5E ^ tag);
    for _ in 0..48 {
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let k = rng.gen_range(2..8usize);
        let seed = rng.next_u64();
        f(shape, k, seed);
    }
}

#[test]
fn greedy_concurrent_recoloring_is_legal() {
    battery(1, |shape, k, seed| {
        let colors = drive(shape, k, seed, |me| Box::new(GreedyRecolor::new(me)));
        check_legal(shape, &colors);
    });
}

#[test]
fn linial_concurrent_recoloring_is_legal() {
    battery(2, |shape, k, seed| {
        let sched = Arc::new(LinialSchedule::compute(64, 7));
        let colors = drive(shape, k, seed, move |me| {
            Box::new(LinialRecolor::new(me, sched.clone()))
        });
        check_legal(shape, &colors);
    });
}

#[test]
fn randomized_concurrent_recoloring_is_legal() {
    battery(3, |shape, k, seed| {
        let colors = drive(shape, k, seed, move |me| {
            Box::new(RandomizedRecolor::new(me, 7, seed))
        });
        check_legal(shape, &colors);
    });
}
