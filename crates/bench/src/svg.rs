//! Minimal, dependency-free SVG charts for the generated figures.
//!
//! Follows the repository's data-viz conventions: a light chart surface,
//! recessive hairline gridlines, 2px lines with ≥8px surface-ringed
//! markers, ≤24px bars with 4px rounded data-ends (square at the
//! baseline), text in ink tokens (never the series color), a legend for
//! ≥2 series plus selective direct end-labels, and a fixed categorical
//! hue order (validated for CVD separation; the aqua/yellow contrast
//! warning is relieved by the direct labels and the tables in
//! EXPERIMENTS.md).

/// Fixed categorical hue order (never cycled; validated).
pub const SERIES_COLORS: [&str; 4] = ["#2a78d6", "#1baf7a", "#eda100", "#008300"];
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#e9e8e4";
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const FONT: &str = "font-family=\"Helvetica, Arial, sans-serif\"";

/// One named line-chart series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend / end-label name.
    pub name: String,
    /// `(x, y)` points in data space, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// Round `raw` up to a "nice" tick step (1/2/5 × 10^k).
fn nice_step(raw: f64) -> f64 {
    let mag = 10f64.powf(raw.abs().max(f64::MIN_POSITIVE).log10().floor());
    let norm = raw / mag;
    let factor = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    factor * mag
}

/// Nice ticks covering `[0, max]` (charts here are magnitude charts and
/// always baseline at zero), at most `want + 1` of them.
fn ticks(max: f64, want: usize) -> Vec<f64> {
    let max = if max <= 0.0 { 1.0 } else { max };
    let step = nice_step(max / want.max(1) as f64);
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < max + step * 0.999 {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e7 {
        let n = v as i64;
        // thousands separators
        let s = n.abs().to_string();
        let mut grouped = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(c);
        }
        if n < 0 {
            format!("-{grouped}")
        } else {
            grouped
        }
    } else {
        format!("{v:.1}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Frame {
    w: f64,
    h: f64,
    left: f64,
    right: f64,
    top: f64,
    bottom: f64,
}

impl Frame {
    fn plot_w(&self) -> f64 {
        self.w - self.left - self.right
    }
    fn plot_h(&self) -> f64 {
        self.h - self.top - self.bottom
    }
}

fn header(frame: &Frame, title: &str, subtitle: &str) -> String {
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" role=\"img\" aria-label=\"{t}\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"{SURFACE}\"/>\n",
        w = frame.w,
        h = frame.h,
        t = esc(title),
    );
    s.push_str(&format!(
        "<text x=\"{x}\" y=\"26\" {FONT} font-size=\"15\" font-weight=\"600\" fill=\"{INK_PRIMARY}\">{}</text>\n",
        esc(title),
        x = frame.left,
    ));
    if !subtitle.is_empty() {
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"44\" {FONT} font-size=\"12\" fill=\"{INK_SECONDARY}\">{}</text>\n",
            esc(subtitle),
            x = frame.left,
        ));
    }
    s
}

fn y_grid(frame: &Frame, y_ticks: &[f64], y_max: f64) -> String {
    let mut s = String::new();
    for &t in y_ticks {
        let y = frame.top + frame.plot_h() * (1.0 - t / y_max);
        s.push_str(&format!(
            "<line x1=\"{x1}\" y1=\"{y:.1}\" x2=\"{x2}\" y2=\"{y:.1}\" stroke=\"{GRID}\" stroke-width=\"1\"/>\n",
            x1 = frame.left,
            x2 = frame.w - frame.right,
        ));
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"{ty:.1}\" {FONT} font-size=\"11\" fill=\"{INK_SECONDARY}\" \
             text-anchor=\"end\">{}</text>\n",
            fmt_num(t),
            x = frame.left - 8.0,
            ty = y + 4.0,
        ));
    }
    s
}

/// A multi-series line chart with markers, legend and direct end-labels.
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title (also the aria-label).
    pub title: String,
    /// One-line subtitle naming workload/units.
    pub subtitle: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, at most [`SERIES_COLORS`]`.len()`.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Render to a standalone SVG document.
    ///
    /// # Panics
    ///
    /// Panics if there are no series, more than four, or an empty series.
    pub fn render(&self) -> String {
        assert!(
            !self.series.is_empty() && self.series.len() <= SERIES_COLORS.len(),
            "1..=4 series supported"
        );
        let frame = Frame {
            w: 720.0,
            h: 440.0,
            left: 64.0,
            right: 120.0, // room for direct end-labels
            top: 88.0,
            bottom: 56.0,
        };
        let x_max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(f64::MIN, f64::max);
        let x_min = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(f64::MAX, f64::min);
        let y_raw = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(f64::MIN, f64::max);
        let y_ticks = ticks(y_raw * 1.05, 5);
        let y_max = *y_ticks.last().expect("ticks nonempty");
        let sx = |x: f64| {
            frame.left
                + if x_max > x_min {
                    frame.plot_w() * (x - x_min) / (x_max - x_min)
                } else {
                    frame.plot_w() / 2.0
                }
        };
        let sy = |y: f64| frame.top + frame.plot_h() * (1.0 - y / y_max);

        let mut s = header(&frame, &self.title, &self.subtitle);
        s.push_str(&y_grid(&frame, &y_ticks, y_max));
        // X ticks at the data points of the longest series.
        let longest = self
            .series
            .iter()
            .max_by_key(|sr| sr.points.len())
            .expect("non-empty");
        for &(x, _) in &longest.points {
            s.push_str(&format!(
                "<text x=\"{tx:.1}\" y=\"{ty:.1}\" {FONT} font-size=\"11\" fill=\"{INK_SECONDARY}\" \
                 text-anchor=\"middle\">{}</text>\n",
                fmt_num(x),
                tx = sx(x),
                ty = frame.h - frame.bottom + 18.0,
            ));
        }
        // Axis labels.
        s.push_str(&format!(
            "<text x=\"{tx:.1}\" y=\"{ty:.1}\" {FONT} font-size=\"12\" fill=\"{INK_SECONDARY}\" \
             text-anchor=\"middle\">{}</text>\n",
            esc(&self.x_label),
            tx = frame.left + frame.plot_w() / 2.0,
            ty = frame.h - 14.0,
        ));
        s.push_str(&format!(
            "<text x=\"18\" y=\"{ty:.1}\" {FONT} font-size=\"12\" fill=\"{INK_SECONDARY}\" \
             text-anchor=\"middle\" transform=\"rotate(-90 18 {ty:.1})\">{}</text>\n",
            esc(&self.y_label),
            ty = frame.top + frame.plot_h() / 2.0,
        ));
        // Legend (≥2 series).
        if self.series.len() >= 2 {
            let mut lx = frame.left;
            let ly = 62.0;
            for (i, sr) in self.series.iter().enumerate() {
                s.push_str(&format!(
                    "<rect x=\"{lx:.1}\" y=\"{y:.1}\" width=\"10\" height=\"10\" rx=\"2\" fill=\"{c}\"/>\n",
                    y = ly - 9.0,
                    c = SERIES_COLORS[i],
                ));
                s.push_str(&format!(
                    "<text x=\"{tx:.1}\" y=\"{ly}\" {FONT} font-size=\"12\" fill=\"{INK_PRIMARY}\">{}</text>\n",
                    esc(&sr.name),
                    tx = lx + 15.0,
                ));
                lx += 15.0 + 8.0 * sr.name.len() as f64 + 24.0;
            }
        }
        // Series: 2px lines, markers r=4 with 2px surface ring, end labels.
        for (i, sr) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[i];
            let path: Vec<String> = sr
                .points
                .iter()
                .enumerate()
                .map(|(k, &(x, y))| {
                    format!(
                        "{}{:.1},{:.1}",
                        if k == 0 { "M" } else { "L" },
                        sx(x),
                        sy(y)
                    )
                })
                .collect();
            s.push_str(&format!(
                "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" \
                 stroke-linejoin=\"round\" stroke-linecap=\"round\"/>\n",
                path.join(" "),
            ));
            for &(x, y) in &sr.points {
                s.push_str(&format!(
                    "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"4\" fill=\"{color}\" \
                     stroke=\"{SURFACE}\" stroke-width=\"2\"/>\n",
                    cx = sx(x),
                    cy = sy(y),
                ));
            }
            if let Some(&(x, y)) = sr.points.last() {
                s.push_str(&format!(
                    "<text x=\"{tx:.1}\" y=\"{ty:.1}\" {FONT} font-size=\"12\" \
                     fill=\"{INK_PRIMARY}\">{}</text>\n",
                    esc(&sr.name),
                    tx = sx(x) + 10.0,
                    ty = sy(y) + 4.0 + 14.0 * offset_for_collision(i, sr, &self.series, y_max),
                ));
            }
        }
        s.push_str("</svg>\n");
        s
    }
}

/// Nudge an end-label down when a later series ends within 14px (data
/// space approximation) of this one — a minimal collision dodge; charts
/// with truly converging series should use the tables instead.
fn offset_for_collision(i: usize, sr: &Series, all: &[Series], y_max: f64) -> f64 {
    let my_end = sr.points.last().map(|p| p.1).unwrap_or(0.0);
    let mut bump = 0.0;
    for (j, other) in all.iter().enumerate() {
        if j >= i {
            continue;
        }
        let their_end = other.points.last().map(|p| p.1).unwrap_or(0.0);
        if ((my_end - their_end) / y_max).abs() < 0.045 {
            bump += 1.0;
        }
    }
    bump
}

/// A single-series category bar chart (one measure per named category).
#[derive(Clone, Debug)]
pub struct BarChart {
    /// Chart title (also the aria-label).
    pub title: String,
    /// One-line subtitle naming workload/units.
    pub subtitle: String,
    /// Y-axis label.
    pub y_label: String,
    /// `(category, value)` bars in display order.
    pub bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Render to a standalone SVG document.
    ///
    /// # Panics
    ///
    /// Panics if there are no bars.
    pub fn render(&self) -> String {
        assert!(!self.bars.is_empty());
        let frame = Frame {
            w: 720.0,
            h: 420.0,
            left: 64.0,
            right: 24.0,
            top: 76.0,
            bottom: 64.0,
        };
        let y_raw = self.bars.iter().map(|b| b.1).fold(0.0, f64::max);
        let y_ticks = ticks(y_raw * 1.1, 5);
        let y_max = *y_ticks.last().expect("ticks nonempty");
        let sy = |y: f64| frame.top + frame.plot_h() * (1.0 - y / y_max);
        let n = self.bars.len() as f64;
        let band = frame.plot_w() / n;
        let bar_w = (band * 0.5).min(24.0); // ≤ 24px thick
        let mut s = header(&frame, &self.title, &self.subtitle);
        s.push_str(&y_grid(&frame, &y_ticks, y_max));
        s.push_str(&format!(
            "<text x=\"18\" y=\"{ty:.1}\" {FONT} font-size=\"12\" fill=\"{INK_SECONDARY}\" \
             text-anchor=\"middle\" transform=\"rotate(-90 18 {ty:.1})\">{}</text>\n",
            esc(&self.y_label),
            ty = frame.top + frame.plot_h() / 2.0,
        ));
        let baseline = sy(0.0);
        for (k, (name, value)) in self.bars.iter().enumerate() {
            let cx = frame.left + band * (k as f64 + 0.5);
            let x = cx - bar_w / 2.0;
            let top = sy(*value);
            let h = (baseline - top).max(0.0);
            let r = 4f64.min(h / 2.0).min(bar_w / 2.0);
            // Rounded data-end, square baseline.
            s.push_str(&format!(
                "<path d=\"M{x:.1},{baseline:.1} V{ytop:.1} Q{x:.1},{top:.1} {xr:.1},{top:.1} \
                 H{xr2:.1} Q{xe:.1},{top:.1} {xe:.1},{ytop:.1} V{baseline:.1} Z\" \
                 fill=\"{c}\"/>\n",
                ytop = top + r,
                xr = x + r,
                xr2 = x + bar_w - r,
                xe = x + bar_w,
                c = SERIES_COLORS[0],
            ));
            // Value on the cap (ink, not series color).
            s.push_str(&format!(
                "<text x=\"{cx:.1}\" y=\"{ty:.1}\" {FONT} font-size=\"11\" fill=\"{INK_PRIMARY}\" \
                 text-anchor=\"middle\">{}</text>\n",
                fmt_num(*value),
                ty = top - 6.0,
            ));
            // Category label.
            s.push_str(&format!(
                "<text x=\"{cx:.1}\" y=\"{ty:.1}\" {FONT} font-size=\"11\" fill=\"{INK_SECONDARY}\" \
                 text-anchor=\"middle\">{}</text>\n",
                esc(name),
                ty = frame.h - frame.bottom + 18.0,
            ));
        }
        // Baseline axis.
        s.push_str(&format!(
            "<line x1=\"{x1}\" y1=\"{baseline:.1}\" x2=\"{x2}\" y2=\"{baseline:.1}\" \
             stroke=\"{INK_SECONDARY}\" stroke-width=\"1\"/>\n",
            x1 = frame.left,
            x2 = frame.w - frame.right,
        ));
        s.push_str("</svg>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_nice_and_cover_max() {
        let t = ticks(475.0, 5);
        assert_eq!(t.first(), Some(&0.0));
        assert!(*t.last().expect("nonempty") >= 475.0);
        // Steps are 1/2/5 × 10^k.
        let step = t[1] - t[0];
        let mag = 10f64.powf(step.log10().floor());
        let norm = step / mag;
        assert!([1.0, 2.0, 5.0, 10.0]
            .iter()
            .any(|f| (norm - f).abs() < 1e-9));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1200.0), "1,200");
        assert_eq!(fmt_num(4.61), "4.6");
        assert_eq!(fmt_num(1000000.0), "1,000,000");
    }

    #[test]
    fn line_chart_contains_marks_legend_and_labels() {
        let chart = LineChart {
            title: "T".into(),
            subtitle: "sub".into(),
            x_label: "n".into(),
            y_label: "ticks".into(),
            series: vec![
                Series {
                    name: "greedy".into(),
                    points: vec![(8.0, 141.0), (16.0, 190.0), (48.0, 475.0)],
                },
                Series {
                    name: "linial".into(),
                    points: vec![(8.0, 110.0), (16.0, 116.0), (48.0, 103.0)],
                },
            ],
        };
        let svg = chart.render();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("stroke-width=\"2\""), "2px lines");
        assert!(svg.matches("<circle").count() >= 6, "markers on all points");
        assert!(
            svg.contains("greedy") && svg.contains("linial"),
            "legend + end labels"
        );
        assert!(svg.contains(SERIES_COLORS[0]) && svg.contains(SERIES_COLORS[1]));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn single_series_line_chart_has_no_legend_box() {
        let chart = LineChart {
            title: "T".into(),
            subtitle: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "only".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            }],
        };
        let svg = chart.render();
        // End label yes, legend swatch rect no.
        assert!(svg.contains("only"));
        assert!(!svg.contains("rx=\"2\""), "no legend swatch for one series");
    }

    #[test]
    fn bar_chart_bars_are_capped_and_labeled() {
        let chart = BarChart {
            title: "FL".into(),
            subtitle: "31-node line".into(),
            y_label: "distance".into(),
            bars: vec![("cm".into(), 15.0), ("a2".into(), 1.0)],
        };
        let svg = chart.render();
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">15<") && svg.contains(">1<"), "cap labels");
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "series supported")]
    fn too_many_series_rejected() {
        let s = Series {
            name: "x".into(),
            points: vec![(0.0, 1.0)],
        };
        let chart = LineChart {
            title: String::new(),
            subtitle: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            series: vec![s.clone(), s.clone(), s.clone(), s.clone(), s],
        };
        let _ = chart.render();
    }
}
