//! Generate the repository's SVG figures under `figures/` from live
//! experiment runs (deterministic seeds; `--quick` shrinks the sweeps).
//!
//! * `failure_locality.svg` — max starvation distance per algorithm after a
//!   mid-CS center crash on a line (Table 1 / C3 headline).
//! * `bootstrap_recoloring.svg` — max first response vs n with the paper's
//!   initialization (greedy vs Linial recoloring; Theorems 16 vs 22).
//! * `response_vs_delta.svg` — steady-state p95 vs δ on cliques for four
//!   algorithms (C1-δ).
//!
//! Run: `cargo run --release -p lme-bench --bin figures [--quick]`

use std::sync::Arc;

use harness::{crash_probe, run_algorithm, run_protocol, topology, AlgKind, RunSpec};
use lme_bench::sized;
use lme_bench::svg::{BarChart, LineChart, Series};
use manet_sim::NodeId;

fn write(name: &str, svg: &str) -> Result<(), String> {
    std::fs::create_dir_all("figures").map_err(|e| format!("cannot create figures/: {e}"))?;
    let path = format!("figures/{name}");
    std::fs::write(&path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn failure_locality_figure() -> Result<(), String> {
    let n = sized(31, 13);
    let spec = RunSpec {
        horizon: sized(100_000, 20_000),
        ..RunSpec::default()
    };
    let mut bars = Vec::new();
    for kind in AlgKind::all() {
        let report = crash_probe(
            kind,
            &spec,
            &topology::line(n),
            NodeId(n as u32 / 2),
            spec.horizon / 20,
        );
        bars.push((kind.name().to_string(), report.locality.unwrap_or(0) as f64));
    }
    let chart = BarChart {
        title: "Empirical failure locality".into(),
        subtitle: format!(
            "{n}-node line, center crashed mid-critical-section; max hop distance of a starving node"
        ),
        y_label: "starvation distance (hops)".into(),
        bars,
    };
    write("failure_locality.svg", &chart.render())
}

fn bootstrap_figure() -> Result<(), String> {
    let sizes = sized(vec![8usize, 16, 32, 48], vec![8, 16]);
    let mut greedy = Vec::new();
    let mut linial = Vec::new();
    for &n in &sizes {
        let spec = RunSpec {
            horizon: 60_000 + 3_000 * n as u64,
            cyclic: false,
            first_hungry: (1, 1),
            ..RunSpec::default()
        };
        for (kind, out_points) in [
            (AlgKind::A1Greedy, &mut greedy),
            (AlgKind::A1Linial, &mut linial),
        ] {
            let sched = Arc::new(coloring::LinialSchedule::compute(n as u64, 2));
            let out = run_protocol(
                &spec,
                &topology::line(n),
                move |seed| {
                    let mut node = match kind {
                        AlgKind::A1Greedy => local_mutex::Algorithm1::greedy(&seed),
                        _ => local_mutex::Algorithm1::linial(&seed, sched.clone()),
                    };
                    node.require_initial_recoloring();
                    node
                },
                |_| {},
            );
            out_points.push((n as f64, out.all_summary().max as f64));
        }
    }
    let chart = LineChart {
        title: "Initial recoloring: greedy O(n) vs Linial O(log* n)".into(),
        subtitle: "line topology, all nodes hungry and recoloring at once; max first response"
            .into(),
        x_label: "nodes (n)".into(),
        y_label: "max first response (ticks)".into(),
        series: vec![
            Series {
                name: "A1-greedy".into(),
                points: greedy,
            },
            Series {
                name: "A1-linial".into(),
                points: linial,
            },
        ],
    };
    write("bootstrap_recoloring.svg", &chart.render())
}

fn delta_figure() -> Result<(), String> {
    let sizes = sized(vec![3usize, 5, 9, 13, 17], vec![3, 5, 9]);
    let kinds = [AlgKind::ChandyMisra, AlgKind::A1Greedy, AlgKind::A2];
    let mut series: Vec<Series> = kinds
        .iter()
        .map(|k| Series {
            name: k.name().into(),
            points: Vec::new(),
        })
        .collect();
    for &k in &sizes {
        let spec = RunSpec {
            horizon: sized(80_000, 20_000),
            ..RunSpec::default()
        };
        for (i, kind) in kinds.into_iter().enumerate() {
            let out = run_algorithm(kind, &spec, &topology::clique(k), &[]);
            series[i]
                .points
                .push(((k - 1) as f64, out.static_summary().p95 as f64));
        }
    }
    let chart = LineChart {
        title: "Steady-state response vs neighborhood size".into(),
        subtitle: "cliques (δ = n − 1), cyclic workload; p95 of static episodes".into(),
        x_label: "maximum degree δ".into(),
        y_label: "p95 response (ticks)".into(),
        series,
    };
    write("response_vs_delta.svg", &chart.render())
}

fn main() {
    let run = || -> Result<(), String> {
        failure_locality_figure()?;
        bootstrap_figure()?;
        delta_figure()
    };
    if let Err(e) = run() {
        eprintln!("figures: {e}");
        std::process::exit(2);
    }
}
