//! Experiments F1–F4 — reproduce **Figures 1–4** (doorway constructions).
//!
//! * **F1 (Figure 1)**: the doorway guarantee — a node that crosses before a
//!   neighbor begins the entry code blocks that neighbor until it exits.
//! * **F2 (Figure 2)**: synchronous vs asynchronous entry — under
//!   continuously recycling neighbors the synchronous doorway starves a
//!   contender that the asynchronous doorway admits.
//! * **F3 (Figure 3 / Lemma 1)**: double-doorway traversal time grows
//!   linearly in δ for a fixed enclosed-module duration `T` (the `O(δT)`
//!   bound).
//! * **F4 (Figure 4 / Lemma 2)**: with a return path, traversal time grows
//!   linearly in the number of returns `R` (the `O(δTR)` bound).
//!
//! Run: `cargo run --release -p lme-bench --bin fig_doorways [--quick]`

use doorway::demo::{DemoConfig, DemoEvent, DoorwayDemo, Structure, INNER, OUTER};
use doorway::DoorwayKind;
use harness::{topology, Table};
use lme_bench::{section, sized};
use manet_sim::{Engine, NodeId, SimConfig, SimTime};

fn demo_engine(positions: Vec<(f64, f64)>, cfg: DemoConfig) -> Engine<DoorwayDemo> {
    Engine::new(SimConfig::default(), positions, move |_| {
        DoorwayDemo::new(cfg)
    })
}

fn f1_guarantee() {
    section("F1 (Figure 1): the doorway guarantee");
    let mut e = demo_engine(
        topology::line(2),
        DemoConfig {
            structure: Structure::Single(DoorwayKind::Synchronous),
            hold_ticks: 60,
            recycle_after: None,
        },
    );
    e.set_hungry_at(SimTime(1), NodeId(0));
    e.set_hungry_at(SimTime(25), NodeId(1)); // after p0's cross propagated
    e.run_until(SimTime(2_000));
    let find = |n: u32, ev: DemoEvent| {
        e.protocol(NodeId(n))
            .log
            .iter()
            .find(|(_, x)| *x == ev)
            .map(|(t, _)| *t)
            .expect("event must occur")
    };
    let p0_cross = find(0, DemoEvent::Crossed(OUTER));
    let p0_exit = find(0, DemoEvent::Exited(OUTER));
    let p1_entry = find(1, DemoEvent::EntryStarted(OUTER));
    let p1_cross = find(1, DemoEvent::Crossed(OUTER));
    println!("p0 crossed at {p0_cross}, exited at {p0_exit}");
    println!("p1 began entry at {p1_entry}, crossed at {p1_cross}");
    assert!(p0_cross < p1_entry && p1_cross >= p0_exit);
    println!("guarantee held: p1 crossed only after p0 exited");
}

fn f2_sync_vs_async() {
    section("F2 (Figure 2): synchronous starvation vs asynchronous progress");
    let horizon = SimTime(sized(60_000, 15_000));
    let mut table = Table::new(&[
        "doorway kind",
        "center completions",
        "leaf completions (sum)",
    ]);
    for kind in [DoorwayKind::Synchronous, DoorwayKind::Asynchronous] {
        // Path p0 – p1 – p2: the two leaves cannot hear each other, so they
        // recycle independently. Their cycles (hold 100, think 30, offset
        // 65) interleave so that the center never observes *both* outside
        // simultaneously — the synchronous entry condition never holds,
        // while the asynchronous one (each outside at least once) does.
        let mut e: Engine<DoorwayDemo> =
            Engine::new(SimConfig::default(), topology::line(3), move |seed| {
                let center = seed.id == NodeId(1);
                DoorwayDemo::new(DemoConfig {
                    structure: Structure::Single(kind),
                    hold_ticks: if center { 10 } else { 100 },
                    recycle_after: if center { None } else { Some(30) },
                })
            });
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(66), NodeId(2));
        e.set_hungry_at(SimTime(200), NodeId(1));
        e.run_until(horizon);
        let center = e.protocol(NodeId(1)).completions.len();
        let leaves =
            e.protocol(NodeId(0)).completions.len() + e.protocol(NodeId(2)).completions.len();
        table.row([format!("{kind:?}"), center.to_string(), leaves.to_string()]);
    }
    print!("{table}");
    println!("expected shape: asynchronous admits the center; synchronous starves it");
}

fn f3_double_doorway_scaling() {
    section("F3 (Figure 3 / Lemma 1): double-doorway latency vs δ (T fixed)");
    let hold = 40u64;
    let mut table = Table::new(&["δ (neighbors)", "center traversal", "traversal / δ·T"]);
    for k in sized(vec![4usize, 6, 10, 14, 18], vec![4, 6, 10]) {
        // A one-shot center (node 0) contends with δ = k − 1 continuously
        // recycling clique-mates. The leaves serialize against each other,
        // so their behind-periods chain; Lemma 1 says the center still
        // escapes within O(δT): once it is behind the asynchronous doorway
        // no leaf can re-enter, and each leaf delays it at most once more.
        let mut e: Engine<DoorwayDemo> =
            Engine::new(SimConfig::default(), topology::clique(k), move |seed| {
                let center = seed.id == NodeId(0);
                DoorwayDemo::new(DemoConfig {
                    structure: Structure::Double,
                    hold_ticks: hold,
                    recycle_after: if center { None } else { Some(3) },
                })
            });
        for i in 1..k as u32 {
            e.set_hungry_at(SimTime(1 + u64::from(i) * 7), NodeId(i));
        }
        e.set_hungry_at(SimTime(120), NodeId(0));
        e.run_until(SimTime(1_000_000));
        let p = e.protocol(NodeId(0));
        assert_eq!(p.completions.len(), 1, "center must escape (Lemma 1)");
        let traversal = p.completions[0].1 - p.completions[0].0;
        let bound = 3 * (k as u64 - 1) * hold + 5 * hold; // generous O(δT)
        assert!(
            traversal <= bound,
            "Lemma 1 bound violated: {traversal} > {bound} at δ = {}",
            k - 1
        );
        table.row([
            (k - 1).to_string(),
            traversal.to_string(),
            format!("{:.2}", traversal as f64 / ((k - 1) as f64 * hold as f64)),
        ]);
    }
    print!("{table}");
    println!(
        "expected shape: traversal stays within the O(δT) bound of Lemma 1 at every δ \
         (the bound is worst-case; behind-periods of independent leaves overlap, so the \
         typical traversal sits well below δ·T — no starvation, which is the lemma's point)"
    );
}

fn f4_return_path_scaling() {
    section("F4 (Figure 4 / Lemma 2): double-doorway-with-return latency vs R (δ, T fixed)");
    let hold = 30u64;
    let k = 4usize;
    let mut table = Table::new(&["R (returns)", "mean traversal", "traversal / (R+1)·T"]);
    for returns in sized(vec![0u32, 2, 4, 8], vec![0, 2, 4]) {
        let mut e = demo_engine(
            topology::clique(k),
            DemoConfig {
                structure: Structure::DoubleWithReturn { returns },
                hold_ticks: hold,
                recycle_after: None,
            },
        );
        for i in 0..k as u32 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(1_000_000));
        let mut total = 0u64;
        let mut inner_crossings = 0usize;
        for i in 0..k as u32 {
            let p = e.protocol(NodeId(i));
            assert_eq!(p.completions.len(), 1);
            total += p.completions[0].1 - p.completions[0].0;
            inner_crossings += p
                .log
                .iter()
                .filter(|(_, ev)| *ev == DemoEvent::Crossed(INNER))
                .count();
        }
        assert_eq!(inner_crossings, k * (returns as usize + 1));
        let mean = total as f64 / k as f64;
        table.row([
            returns.to_string(),
            format!("{mean:.0}"),
            format!("{:.2}", mean / ((returns as f64 + 1.0) * hold as f64)),
        ]);
    }
    print!("{table}");
    println!("expected shape: traversal grows ~linearly in R (O(δTR))");
}

fn main() {
    f1_guarantee();
    f2_sync_vs_async();
    f3_double_doorway_scaling();
    f4_return_path_scaling();
}
