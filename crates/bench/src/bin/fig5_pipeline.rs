//! Experiment F5 — reproduce **Figure 5** (the Algorithm 1 pipeline).
//!
//! Figure 5 is the schematic of Algorithm 1's structure: the recoloring
//! module behind the first double doorway (`AD^r`/`SD^r`) feeding the fork
//! collection module behind the second (`AD^f`/`SD^f`, with a return path).
//! We make the schematic *measurable*: every node records its pipeline
//! phase transitions, and we report how virtual time distributes across the
//! phases, static vs mobile.
//!
//! Expected shape: in a static network the first double doorway is never
//! entered (no recoloring — nodes go hungry → `AD^f` → `SD^f` → collect);
//! under mobility the `await-info` / `AD^r` / `SD^r` / recoloring phases
//! appear, and the `SD^f` return path fires.
//!
//! Run: `cargo run --release -p lme-bench --bin fig5_pipeline [--quick]`

use std::collections::BTreeMap;

use harness::{topology, Metrics, SafetyMonitor, Table, WaypointPlan, Workload};
use lme_bench::{section, sized};
use local_mutex::{Algorithm1, Phase};
use manet_sim::{Engine, NodeId, SimConfig, SimTime};

struct PipelineRun {
    phase_ticks: BTreeMap<&'static str, u64>,
    recolorings: u64,
    return_paths: u64,
    demotions: u64,
    meals: u64,
}

fn run(n: usize, mobile: bool, horizon: u64) -> PipelineRun {
    let positions = topology::random_connected(n, 21);
    let mut engine: Engine<Algorithm1> = Engine::new(SimConfig::default(), positions, |seed| {
        let mut node = Algorithm1::greedy(&seed);
        node.record_phases = true;
        node
    });
    let (metrics, data) = Metrics::new(n);
    engine.add_hook(Box::new(metrics));
    let (monitor, violations) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::cyclic(10..=30, 50..=150, 3)));
    for i in 0..n as u32 {
        engine.set_hungry_at(SimTime(1 + u64::from(i) % 17), NodeId(i));
    }
    if mobile {
        let plan = WaypointPlan {
            area_side: (n as f64 / 1.6).sqrt(),
            moves: sized(60, 12),
            window: (horizon / 10, horizon * 9 / 10),
            speed: Some(0.25),
            seed: 31,
        };
        for (at, cmd) in plan.commands(n) {
            engine.schedule(at, cmd);
        }
    }
    engine.run_until(SimTime(horizon));
    assert!(violations.borrow().is_empty());

    let mut phase_ticks: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut recolorings = 0;
    let mut return_paths = 0;
    let mut demotions = 0;
    for i in 0..n as u32 {
        let p = engine.protocol(NodeId(i));
        recolorings += p.stats.recolorings;
        return_paths += p.stats.return_paths;
        demotions += p.stats.demotions;
        let log = &p.phase_log;
        for w in log.windows(2) {
            let (t0, ph) = w[0];
            let (t1, _) = w[1];
            if ph != Phase::Idle {
                *phase_ticks.entry(ph.name()).or_insert(0) += t1 - t0;
            }
        }
    }
    let meals = data.borrow().meals.iter().sum();
    PipelineRun {
        phase_ticks,
        recolorings,
        return_paths,
        demotions,
        meals,
    }
}

fn main() {
    let n = sized(24, 10);
    let horizon = sized(40_000u64, 8_000);
    section("F5 (Figure 5): time spent in each pipeline phase of Algorithm 1");

    let stat = run(n, false, horizon);
    let mob = run(n, true, horizon);

    let all_phases: Vec<&'static str> = [
        "await-info",
        "enter-ADr",
        "enter-SDr",
        "recoloring",
        "enter-ADf",
        "enter-SDf",
        "collecting",
    ]
    .to_vec();
    let total = |r: &PipelineRun| r.phase_ticks.values().sum::<u64>().max(1) as f64;
    let (ts, tm) = (total(&stat), total(&mob));
    let mut table = Table::new(&[
        "phase",
        "static (% of busy time)",
        "mobile (% of busy time)",
    ]);
    for ph in all_phases {
        let s = *stat.phase_ticks.get(ph).unwrap_or(&0) as f64 / ts * 100.0;
        let m = *mob.phase_ticks.get(ph).unwrap_or(&0) as f64 / tm * 100.0;
        table.row([ph.to_string(), format!("{s:.1}"), format!("{m:.1}")]);
    }
    print!("{table}");
    let mut table = Table::new(&["counter", "static", "mobile"]);
    table.row(["meals", &stat.meals.to_string(), &mob.meals.to_string()]);
    table.row([
        "recoloring runs",
        &stat.recolorings.to_string(),
        &mob.recolorings.to_string(),
    ]);
    table.row([
        "SD^f return paths",
        &stat.return_paths.to_string(),
        &mob.return_paths.to_string(),
    ]);
    table.row([
        "eating→hungry demotions",
        &stat.demotions.to_string(),
        &mob.demotions.to_string(),
    ]);
    print!("\n{table}");

    assert_eq!(stat.recolorings, 0, "static runs must never recolor");
    assert_eq!(
        *stat.phase_ticks.get("enter-ADr").unwrap_or(&0)
            + *stat.phase_ticks.get("enter-SDr").unwrap_or(&0),
        0,
        "static runs must never enter the first double doorway"
    );
    assert!(mob.recolorings > 0, "mobility must trigger recoloring");
    println!(
        "\nexpected shape: the first double doorway (ADr/SDr/recoloring) is exercised only \
         under mobility; fork collection dominates in both regimes"
    );
}
