//! Experiment R — robustness of the headline measurements across seeds.
//!
//! Every other experiment binary runs one deterministic seed. This one
//! repeats the two headline measurements — steady-state response time and
//! the crash probe — over several seeds and reports min/median/max, so a
//! reader can verify that no conclusion is a seed artifact:
//!
//! * response-time ordering (A2 < A1 on random graphs) is stable;
//! * A2's empirical failure locality never exceeds 2 on any seed;
//! * Chandy–Misra's starvation always reaches far beyond 2.
//!
//! Both batteries fan out over the parallel sweep executor
//! (`harness::sweep`): pass `--jobs N` to bound the worker count — the
//! numbers (and the `--metrics-out` JSONL) are byte-identical for every
//! value — and `--metrics-out PATH` to capture every run as JSON lines.
//!
//! Run: `cargo run --release -p lme-bench --bin seed_sweep [--quick]
//!       [--jobs N] [--metrics-out PATH]`

use harness::{
    run_cells, topology, AlgKind, Job, RunSpec, SweepCell, SweepReport, SweepSpec, Table, Topo,
};
use lme_bench::{jobs, section, sized, write_metrics};
use manet_sim::{NodeId, SimConfig};

fn main() {
    let seeds: Vec<u64> = sized(vec![1, 7, 23, 42, 99, 512, 777, 1234], vec![1, 7, 23]);
    let jobs = jobs();
    let mut all_runs = SweepReport::default();

    section("R-1: steady-state p95 over seeds (24-node random graph)");
    // The topology itself is part of what the seed varies, so the grid is
    // built cell-by-cell (SweepSpec assumes one fixed topology).
    let kinds = [
        AlgKind::ChandyMisra,
        AlgKind::A1Greedy,
        AlgKind::A1Linial,
        AlgKind::A2,
    ];
    let cells: Vec<SweepCell> = kinds
        .iter()
        .flat_map(|&kind| {
            seeds.iter().map(move |&seed| SweepCell {
                label: format!("rand24:{seed}"),
                kind,
                spec: RunSpec {
                    sim: SimConfig {
                        seed,
                        ..SimConfig::default()
                    },
                    horizon: sized(40_000, 10_000),
                    ..RunSpec::default()
                },
                topo: Topo::Geo(topology::random_connected(24, seed)),
                commands: Vec::new(),
                job: Job::Run,
            })
        })
        .collect();
    let report = run_cells(&cells, jobs);
    let mut table = Table::new(&["algorithm", "p95 min", "p95 median", "p95 max"]);
    let mut medians: Vec<(AlgKind, u64)> = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let runs = &report.runs[i * seeds.len()..(i + 1) * seeds.len()];
        let mut p95s: Vec<u64> = runs
            .iter()
            .map(|r| {
                assert_eq!(r.violations, 0, "{} seed {} unsafe", kind.name(), r.seed);
                r.rt_static.p95
            })
            .collect();
        p95s.sort_unstable();
        let median = p95s[p95s.len() / 2];
        medians.push((kind, median));
        table.row([
            kind.name().to_string(),
            p95s[0].to_string(),
            median.to_string(),
            p95s[p95s.len() - 1].to_string(),
        ]);
    }
    print!("{table}");
    let a2 = medians
        .iter()
        .find(|(k, _)| *k == AlgKind::A2)
        .expect("a2")
        .1;
    let a1 = medians
        .iter()
        .find(|(k, _)| *k == AlgKind::A1Greedy)
        .expect("a1")
        .1;
    assert!(a2 <= a1, "A2's median p95 must not exceed A1-greedy's");
    println!("stable across seeds: A2 median p95 ({a2}) ≤ A1-greedy median p95 ({a1})");
    all_runs.runs.extend(report.runs);

    section("R-2: failure locality over seeds (21-node line, mid-CS center crash)");
    let probe_kinds = [AlgKind::ChandyMisra, AlgKind::A1Linial, AlgKind::A2];
    let report = SweepSpec::new(
        "line21",
        Topo::Geo(topology::line(21)),
        RunSpec {
            horizon: sized(80_000, 20_000),
            ..RunSpec::default()
        },
    )
    .kinds(probe_kinds)
    .seeds(seeds.iter().copied())
    .probe(NodeId(10), 2_000)
    .run(jobs);
    let mut table = Table::new(&["algorithm", "locality per seed", "max over seeds"]);
    for (i, &kind) in probe_kinds.iter().enumerate() {
        let runs = &report.runs[i * seeds.len()..(i + 1) * seeds.len()];
        let locs: Vec<Option<usize>> = runs
            .iter()
            .map(|r| {
                assert_eq!(r.violations, 0, "{} seed {} unsafe", kind.name(), r.seed);
                r.locality
            })
            .collect();
        let max = locs.iter().flatten().copied().max();
        if kind == AlgKind::A2 {
            assert!(
                max.is_none_or(|m| m <= 2),
                "A2 locality exceeded 2 in a seed sweep: {locs:?}"
            );
        }
        if kind == AlgKind::ChandyMisra {
            assert!(
                locs.iter().any(|l| l.is_some_and(|m| m > 2)),
                "expected CM to starve beyond distance 2 on some seed: {locs:?}"
            );
        }
        table.row([
            kind.name().to_string(),
            format!(
                "{:?}",
                locs.iter()
                    .map(|l| l.map_or(-1i64, |m| m as i64))
                    .collect::<Vec<_>>()
            ),
            max.map_or("-".to_string(), |m| m.to_string()),
        ]);
    }
    print!("{table}");
    println!("(−1 = no starvation observed on that seed)");
    println!(
        "\nconclusion: the Table 1 ordering and the locality bounds hold on every seed tested"
    );
    all_runs.runs.extend(report.runs);
    write_metrics(&all_runs);
}
