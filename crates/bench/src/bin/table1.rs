//! Experiment T1 — reproduce **Table 1** ("Comparison of algorithms").
//!
//! The paper's Table 1 lists each algorithm's theoretical failure locality
//! and response time. We print those bounds next to *measured* values:
//!
//! * response time (p50/p95 of static episodes) on a 32-node random
//!   unit-disk graph, static and mobile;
//! * empirical failure locality from a crash probe on a 25-node line;
//! * messages per critical section;
//! * safety violations (must be 0 for every implemented algorithm).
//!
//! Tsay–Bagrodia / Sivilotti rows are carried from the literature (the
//! thesis doesn't implement them either); they are marked `paper only`.
//!
//! The per-algorithm measurement triples fan out over the sweep executor
//! (`--jobs N`; identical output for any value); `--metrics-out PATH`
//! captures every run as JSON lines.
//!
//! Run: `cargo run --release --bin table1 [--quick] [--jobs N]
//!       [--metrics-out PATH]`

use harness::{
    crash_probe, par_map, run_algorithm, topology, AlgKind, RunReport, RunSpec, SweepReport, Table,
    WaypointPlan,
};
use lme_bench::{jobs, section, sized, write_metrics};
use manet_sim::NodeId;

fn main() {
    let n = sized(32, 12);
    let horizon = sized(60_000, 10_000);
    let line_n = sized(25, 11);
    let jobs = jobs();

    let positions = topology::random_connected(n, 7);
    let spec = RunSpec {
        horizon,
        ..RunSpec::default()
    };
    let mobile_plan = WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt().max(1.0),
        moves: sized(40, 8),
        window: (horizon / 10, horizon * 9 / 10),
        speed: Some(0.2),
        seed: 11,
    };
    let mobile_commands = mobile_plan.commands(n);
    let fl_positions = topology::line(line_n);
    let fl_spec = RunSpec {
        horizon: sized(80_000, 15_000),
        ..RunSpec::default()
    };

    section("Table 1 — comparison of algorithms (paper bounds vs measured)");
    let kinds = AlgKind::extended();
    let measured = par_map(&kinds, jobs, |&kind| {
        let stat = run_algorithm(kind, &spec, &positions, &[]);
        let mob = run_algorithm(kind, &spec, &positions, &mobile_commands);
        let probe = crash_probe(
            kind,
            &fl_spec,
            &fl_positions,
            NodeId(line_n as u32 / 2),
            fl_spec.horizon / 20,
        );
        (stat, mob, probe)
    });

    let mut table = Table::new(&[
        "algorithm",
        "FL (paper)",
        "FL (measured)",
        "RT (paper)",
        "RT static p50/p95",
        "RT mobile p50/p95",
        "msgs/CS",
        "unsafe",
    ]);
    let mut all_runs = SweepReport::default();
    for ((stat, mob, probe), &kind) in measured.iter().zip(&kinds) {
        let fl = match probe.locality {
            Some(m) => format!("{m} ({} starving)", probe.starving.len()),
            None => "none observed".to_string(),
        };
        let s = stat.static_summary();
        let m = mob.static_summary();
        let name = if kind == AlgKind::A1Random {
            format!("{} (extension)", kind.name())
        } else {
            kind.name().to_string()
        };
        table.row([
            name,
            kind.paper_failure_locality().to_string(),
            fl,
            kind.paper_response_time().to_string(),
            format!("{}/{}", s.p50, s.p95),
            format!("{}/{}", m.p50, m.p95),
            format!("{:.1}", stat.messages_per_meal()),
            format!(
                "{}",
                stat.violations.len() + mob.violations.len() + probe.outcome.violations.len()
            ),
        ]);
        let label_base = format!("rand{n}");
        all_runs.runs.push(RunReport::from_outcome(
            &format!("{label_base}:static"),
            kind.name(),
            spec.sim.seed,
            horizon,
            stat,
            None,
        ));
        all_runs.runs.push(RunReport::from_outcome(
            &format!("{label_base}:mobile"),
            kind.name(),
            spec.sim.seed,
            horizon,
            mob,
            None,
        ));
        all_runs.runs.push(RunReport::from_outcome(
            &format!("line{line_n}:probe"),
            kind.name(),
            fl_spec.sim.seed,
            fl_spec.horizon,
            &probe.outcome,
            Some((probe.starving.len(), probe.locality)),
        ));
    }
    // Literature-only rows of the paper's Table 1.
    table.row([
        "tsay-bagrodia/sivilotti",
        "2",
        "paper only",
        "O(n²) (O(n) fault-free)",
        "paper only",
        "paper only",
        "-",
        "-",
    ]);
    table.row([
        "choy-singh FL3 variant",
        "3",
        "paper only",
        "exp(δ)",
        "paper only",
        "paper only",
        "-",
        "-",
    ]);
    print!("{table}");
    println!(
        "\nworkload: {n}-node random unit-disk graph, cyclic eat 10-30 / think 50-150, \
         horizon {horizon}; mobility: {} random-waypoint moves; \
         FL probe: {line_n}-node line, center crash.",
        mobile_plan.moves
    );
    write_metrics(&all_runs);
}
