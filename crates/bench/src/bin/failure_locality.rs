//! Experiment C3 — empirical failure locality (the paper's headline metric).
//!
//! Crash one node mid-run under a cyclic workload and measure the hop
//! distance of every node that subsequently starves. The paper proves:
//!
//! * Algorithm 2: failure locality **2** (optimal — Theorem 25);
//! * Algorithm 1 + Linial: `max(log* n, 4) + 2` (6 for any feasible n);
//! * Algorithm 1 + greedy: `n` (a recoloring wave can stall on the crash);
//! * Choy–Singh: 4 (static setting);
//! * Chandy–Misra: `n` (dirty-fork chains).
//!
//! We probe a long line (worst case for chains) and a 7×7 grid, and also
//! run the canonical Figure 6-style chain where Chandy–Misra's unbounded
//! locality is forced deterministically. Each probe battery fans out over
//! the parallel sweep executor (`--jobs N`; identical output for any value).
//!
//! Run: `cargo run --release -p lme-bench --bin failure_locality [--quick]
//!       [--jobs N]`

use harness::{crash_probe, par_map, topology, AlgKind, RunSpec, Table};
use lme_bench::{jobs, section, sized};
use manet_sim::NodeId;

fn probe_topology(name: &str, positions: &[(f64, f64)], victim: NodeId, horizon: u64, jobs: usize) {
    section(&format!("C3: crash probe on {name} (victim = {victim})"));
    let spec = RunSpec {
        horizon,
        ..RunSpec::default()
    };
    let kinds = AlgKind::all();
    let reports = par_map(&kinds, jobs, |&kind| {
        crash_probe(kind, &spec, positions, victim, horizon / 20)
    });
    let mut table = Table::new(&[
        "algorithm",
        "FL (paper)",
        "starving nodes",
        "max starvation distance",
        "meals by farthest node",
    ]);
    for (report, &kind) in reports.iter().zip(&kinds) {
        assert!(
            report.outcome.violations.is_empty(),
            "{} unsafe",
            kind.name()
        );
        // The node farthest from the victim must keep making progress for
        // any algorithm with bounded locality.
        let dist = report.outcome.distances_from(victim);
        let far = (0..positions.len())
            .filter(|&i| NodeId(i as u32) != victim)
            .max_by_key(|&i| dist[i].unwrap_or(0))
            .expect("non-trivial topology");
        table.row([
            kind.name().to_string(),
            kind.paper_failure_locality().to_string(),
            report.starving.len().to_string(),
            report.locality.map_or("-".to_string(), |m| m.to_string()),
            report.outcome.metrics.meals[far].to_string(),
        ]);
        if kind == AlgKind::A2 {
            if let Some(m) = report.locality {
                assert!(m <= 2, "A2 locality must be ≤ 2, saw {m}");
            }
        }
    }
    print!("{table}");
}

fn gradient_line(jobs: usize) {
    let n = sized(21usize, 11);
    section(&format!(
        "C3-gradient: mean post-crash response vs distance from the crash ({n}-node line)"
    ));
    let spec = RunSpec {
        horizon: sized(100_000, 20_000),
        ..RunSpec::default()
    };
    let victim = NodeId(n as u32 / 2);
    let kinds = [AlgKind::ChandyMisra, AlgKind::A1Linial, AlgKind::A2];
    let curves = par_map(&kinds, jobs, |&kind| {
        let report = crash_probe(kind, &spec, &topology::line(n), victim, spec.horizon / 20);
        let after = report
            .outcome
            .crash_time
            .unwrap_or(manet_sim::SimTime(spec.horizon / 20));
        harness::response_by_distance(&report.outcome, victim, after)
    });
    let rows: Vec<(&str, Vec<Option<f64>>)> = kinds.iter().map(|k| k.name()).zip(curves).collect();
    let max_d = rows.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    let mut headers = vec!["distance".to_string()];
    headers.extend(rows.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(&headers);
    for d in 1..max_d {
        let mut row = vec![d.to_string()];
        for (_, curve) in &rows {
            row.push(match curve.get(d).copied().flatten() {
                Some(v) => format!("{v:.0}"),
                None => "starved/none".to_string(),
            });
        }
        table.row(row);
    }
    print!("{table}");
    println!(
        "expected shape: the paper's algorithms show elevated latency (or starvation) only \
         at distances 1-2 and a flat tail; Chandy–Misra's disruption spreads across the line"
    );
}

fn dual_crash_independence(jobs: usize) {
    let n = sized(25usize, 13);
    section(&format!(
        "C3-dual: two simultaneous crashes on a {n}-node line — independent containment"
    ));
    // Crash two nodes far apart; for algorithms with failure locality m,
    // each crash is contained independently and the middle keeps eating.
    let spec = RunSpec {
        horizon: sized(100_000, 20_000),
        ..RunSpec::default()
    };
    let v1 = NodeId(n as u32 / 4);
    let v2 = NodeId(3 * n as u32 / 4);
    let kinds = [AlgKind::A1Greedy, AlgKind::A1Linial, AlgKind::A2];
    let results = par_map(&kinds, jobs, |&kind| {
        // First victim crashes by time trigger while eating; second by a
        // scheduled command mid-run (it may or may not hold forks).
        let spec = RunSpec {
            crash_eating: Some((v1, spec.horizon / 20)),
            ..spec.clone()
        };
        let commands = [(
            manet_sim::SimTime(spec.horizon / 10),
            manet_sim::Command::Crash(v2),
        )];
        let out = harness::run_algorithm(kind, &spec, &topology::line(n), &commands);
        assert!(out.violations.is_empty());
        let deadline = manet_sim::SimTime(spec.horizon * 3 / 4);
        let starving = out.metrics.starving_since(deadline);
        let d1 = out.distances_from(v1);
        let d2 = out.distances_from(v2);
        let contained = starving.iter().all(|&s| {
            s == v1
                || s == v2
                || d1[s.index()].is_some_and(|d| d <= 2)
                || d2[s.index()].is_some_and(|d| d <= 2)
        });
        let mid = NodeId(n as u32 / 2);
        (starving.len(), out.metrics.meals[mid.index()], contained)
    });
    let mut table = Table::new(&[
        "algorithm",
        "starving nodes",
        "mid-point meals",
        "contained",
    ]);
    for (&(starving, mid_meals, contained), &kind) in results.iter().zip(&kinds) {
        table.row([
            kind.name().to_string(),
            starving.to_string(),
            mid_meals.to_string(),
            contained.to_string(),
        ]);
        if kind == AlgKind::A2 {
            assert!(contained, "A2 must contain both crashes independently");
        }
    }
    print!("{table}");
    println!("expected shape: each crash is contained in its own 2-neighborhood; the midpoint between them keeps eating");
}

fn recoloring_locality(jobs: usize) {
    let n = sized(25usize, 13);
    section(&format!(
        "C3-recolor: crash during system-wide recoloring ({n}-node line) — the f_color locality"
    ));
    // The §5.4.2 scenario: all nodes start the recoloring module
    // simultaneously (the paper's initialization) and one node is already
    // crashed. It never answers and never NACKs, so its cohort neighbors
    // block mid-procedure; the question is how far the blockage spreads.
    // Greedy: a node at distance k blocks in its k-th iteration — the wave
    // covers the line (failure locality n, Theorem 16). Linial: rounds are
    // capped at log* n, so nodes farther than that finish before the
    // missing messages matter (failure locality max(log* n, 4) + 2,
    // Theorem 22).
    let victim = manet_sim::NodeId(n as u32 / 2);
    let sched = std::sync::Arc::new(coloring::LinialSchedule::compute(n as u64, 2));
    let kinds = [AlgKind::A1Greedy, AlgKind::A1Linial];
    let results = par_map(&kinds, jobs, |&kind| {
        let spec = RunSpec {
            horizon: sized(120_000, 30_000),
            cyclic: false,
            first_hungry: (5, 5),
            ..RunSpec::default()
        };
        let sched = sched.clone();
        let out = harness::run_protocol(
            &spec,
            &harness::topology::line(n),
            move |seed| {
                let mut node = match kind {
                    AlgKind::A1Greedy => local_mutex::Algorithm1::greedy(&seed),
                    _ => local_mutex::Algorithm1::linial(&seed, sched.clone()),
                };
                node.require_initial_recoloring();
                node
            },
            |e| e.crash_at(manet_sim::SimTime(2), victim),
        );
        assert!(out.violations.is_empty());
        let deadline = manet_sim::SimTime(spec.horizon / 2);
        let dist = out.distances_from(victim);
        let starving: Vec<usize> = out
            .metrics
            .starving_since(deadline)
            .into_iter()
            .filter(|&s| s != victim)
            .filter_map(|s| dist[s.index()])
            .collect();
        let locality = starving.iter().copied().max();
        (starving.len(), locality)
    });
    let mut table = Table::new(&[
        "variant",
        "starving nodes",
        "max starvation distance",
        "paper bound",
    ]);
    for (&(starving, locality), &kind) in results.iter().zip(&kinds) {
        table.row([
            kind.name().to_string(),
            starving.to_string(),
            locality.map_or("-".to_string(), |m| m.to_string()),
            kind.paper_failure_locality().to_string(),
        ]);
        if kind == AlgKind::A1Linial {
            let bound = (sched.rounds() + 4).max(6);
            if let Some(m) = locality {
                assert!(
                    m <= bound,
                    "Linial recoloring locality {m} exceeds its bound {bound}"
                );
            }
        }
    }
    print!("{table}");
    println!(
        "expected shape: the greedy blockage sweeps the line (locality ~n); \
         the Linial blockage stops within its log*-sized radius — the paper's \
         central failure-locality separation between the two variants"
    );
}

fn main() {
    let jobs = jobs();
    let line_n = sized(31, 13);
    probe_topology(
        &format!("a {line_n}-node line"),
        &topology::line(line_n),
        NodeId(line_n as u32 / 2),
        sized(100_000, 20_000),
        jobs,
    );

    let side = sized(7usize, 5);
    probe_topology(
        &format!("a {side}×{side} grid"),
        &topology::grid(side, side),
        NodeId((side * side / 2) as u32),
        sized(100_000, 20_000),
        jobs,
    );

    gradient_line(jobs);
    dual_crash_independence(jobs);
    recoloring_locality(jobs);

    println!(
        "\nexpected shape: A2 never starves beyond distance 2 (optimal); the doorway \
         algorithms stay small; Chandy–Misra's starvation reaches the farthest — its \
         locality grows with the topology (unbounded in n)."
    );
}
