//! Experiments C1–C2 — response-time scaling behind Theorems 16, 22, 25, 26.
//!
//! * **C2-static (Thm 26)**: cold start on a line — all nodes hungry at
//!   once forces the worst-case priority chain; the slowest node's first
//!   response grows ~linearly in `n` (the `O(n)` bound for Algorithm 2;
//!   the first-meal chain of the color/fork algorithms behaves alike).
//! * **C1-n (Thm 16/22)**: steady state on a line — once exit-colors
//!   converge to `[0, δ]`, response times are independent of `n` for every
//!   algorithm (δ fixed); this is the paper's "scalability" claim.
//! * **C1-δ (Thm 16/22)**: steady state on cliques — response grows with δ
//!   (polynomial in δ; constants differ per algorithm).
//! * **C2-mobile (Thm 25)**: mobility costs — mobile vs static percentiles
//!   on a random graph, plus the recoloring-cost comparison between the
//!   greedy (`O(n)` worst case) and Linial (`O(log* n)`) procedures under
//!   *simultaneous* movers.
//!
//! Run: `cargo run --release -p lme-bench --bin scaling [--quick]`

use harness::{run_algorithm, topology, AlgKind, RunSpec, Table, WaypointPlan};
use lme_bench::{section, sized};
use manet_sim::{Command, Position, SimTime};

const KINDS: [AlgKind; 4] = [
    AlgKind::ChandyMisra,
    AlgKind::A1Greedy,
    AlgKind::A1Linial,
    AlgKind::A2,
];

fn cold_start_line() {
    section("C2-static: cold start, line, all hungry at t=1 (worst chain) — max first response");
    let sizes = sized(vec![8usize, 16, 32, 48, 64], vec![8, 16, 24]);
    let mut table = Table::new(&["n", "chandy-misra", "A1-greedy", "A1-linial", "A2", "CM / n"]);
    for &n in &sizes {
        let spec = RunSpec {
            horizon: 40_000 + 2_000 * n as u64,
            cyclic: false,
            first_hungry: (1, 1),
            ..RunSpec::default()
        };
        let mut row = vec![n.to_string()];
        let mut cm_max = 0;
        for kind in KINDS {
            let out = run_algorithm(kind, &spec, &topology::line(n), &[]);
            assert!(out.violations.is_empty(), "{} unsafe", kind.name());
            assert_eq!(
                out.total_meals(),
                n as u64,
                "{}: starvation in the cold-start chain",
                kind.name()
            );
            let max = out.all_summary().max;
            if kind == AlgKind::ChandyMisra {
                cm_max = max;
            }
            row.push(max.to_string());
        }
        row.push(format!("{:.1}", cm_max as f64 / n as f64));
        table.row(row);
    }
    print!("{table}");
    println!(
        "expected shape: Chandy-Misra's dirty-fork chains grow with n, while the paper's \
         algorithms stay flat — comfortably inside their O(n)-type worst-case bounds \
         (randomized delays break the adversarial chains those bounds describe)"
    );
}

fn steady_state_line() {
    section("C1-n: steady state on a line (δ = 2) — p95 static response vs n");
    let sizes = sized(vec![8usize, 16, 32, 64], vec![8, 16]);
    let mut table = Table::new(&["n", "chandy-misra", "A1-greedy", "A1-linial", "A2"]);
    for &n in &sizes {
        let spec = RunSpec {
            horizon: sized(60_000, 15_000),
            ..RunSpec::default()
        };
        let mut row = vec![n.to_string()];
        for kind in KINDS {
            let out = run_algorithm(kind, &spec, &topology::line(n), &[]);
            assert!(out.violations.is_empty());
            row.push(out.static_summary().p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!("expected shape: columns ~flat — steady-state response independent of n at fixed δ");
}

fn steady_state_clique() {
    section("C1-δ: steady state on cliques — p95 static response vs δ");
    let sizes = sized(vec![3usize, 5, 9, 13, 17], vec![3, 5, 9]);
    let mut table = Table::new(&["δ", "chandy-misra", "A1-greedy", "A1-linial", "A2"]);
    for &k in &sizes {
        let spec = RunSpec {
            horizon: sized(80_000, 20_000),
            ..RunSpec::default()
        };
        let mut row = vec![(k - 1).to_string()];
        for kind in KINDS {
            let out = run_algorithm(kind, &spec, &topology::clique(k), &[]);
            assert!(out.violations.is_empty());
            row.push(out.static_summary().p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!("expected shape: response grows with δ for every algorithm (contention is per-neighborhood)");
}

fn mobile_vs_static() {
    section("C2-mobile: mobility cost on a 32-node random graph — p50/p95");
    let n = sized(32, 12);
    let horizon = sized(60_000, 12_000);
    let positions = topology::random_connected(n, 97);
    let spec = RunSpec {
        horizon,
        ..RunSpec::default()
    };
    let plan = WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt(),
        moves: sized(50, 10),
        window: (horizon / 10, horizon * 9 / 10),
        speed: Some(0.25),
        seed: 13,
    };
    let commands = plan.commands(n);
    let mut table = Table::new(&["algorithm", "static p50/p95", "mobile p50/p95", "mobile meals"]);
    for kind in KINDS {
        let stat = run_algorithm(kind, &spec, &positions, &[]);
        let mob = run_algorithm(kind, &spec, &positions, &commands);
        assert!(stat.violations.is_empty() && mob.violations.is_empty());
        let s = stat.static_summary();
        let m = mob.static_summary();
        table.row([
            kind.name().to_string(),
            format!("{}/{}", s.p50, s.p95),
            format!("{}/{}", m.p50, m.p95),
            mob.total_meals().to_string(),
        ]);
    }
    print!("{table}");
    println!("expected shape: mobility inflates tails moderately; no algorithm loses safety or livelocks");
}

fn simultaneous_movers() {
    section("C2-recolor: k simultaneous movers into one region — post-move p95 (greedy vs Linial recoloring)");
    // k nodes teleport at the same instant next to a resident line, forcing
    // k concurrent recolorings. The greedy procedure floods the whole
    // concurrent-recoloring component (O(n) worst case); Linial needs only
    // its log* n rounds.
    let resident = sized(16usize, 8);
    let mut table = Table::new(&["movers k", "A1-greedy p95 (post-move)", "A1-linial p95 (post-move)"]);
    for k in sized(vec![2usize, 4, 8, 12], vec![2, 4]) {
        let mut positions = topology::line(resident);
        // Movers start in a far-away staging clique.
        for i in 0..k {
            positions.push((200.0 + 0.2 * i as f64, 200.0));
        }
        let move_at = 2_000u64;
        let horizon = sized(40_000u64, 12_000);
        let spec = RunSpec {
            horizon,
            delta_bound: Some(8),
            ..RunSpec::default()
        };
        let commands: Vec<(SimTime, Command)> = (0..k)
            .map(|i| {
                // Land interleaved along the resident line.
                // Land in a contiguous strip so the movers are adjacent to
                // each other: their recolorings form one concurrent component.
                let x = (i as f64).min(resident as f64 - 1.0);
                (
                    SimTime(move_at),
                    Command::Teleport {
                        node: manet_sim::NodeId((resident + i) as u32),
                        dest: Position { x, y: 1.0 },
                    },
                )
            })
            .collect();
        let mut row = vec![k.to_string()];
        for kind in [AlgKind::A1Greedy, AlgKind::A1Linial] {
            let out = run_algorithm(kind, &spec, &positions, &commands);
            assert!(out.violations.is_empty());
            let post: Vec<u64> = out
                .metrics
                .samples
                .iter()
                .filter(|s| s.hungry_at >= SimTime(move_at) && !s.moved)
                .map(|s| s.response())
                .collect();
            row.push(harness::Summary::of(&post).p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!(
        "expected shape: post-move latency grows with the movers' contention but both \
         variants cope; the asymptotic gap between the procedures (Θ(k) greedy rounds vs \
         constant log* n Linial rounds) is isolated at the procedure level in \
         coloring_exp C4-b — here system-level noise (doorways, fork traffic) dominates \
         because concurrent-recoloring components stay small under realistic arrival jitter"
    );
}

fn bootstrap_recoloring() {
    section("C2-boot: initial recoloring at cold start — max first response vs n (greedy vs Linial)");
    // The paper initializes colors by running the recoloring module on
    // every node. With the whole line hungry at once, recoloring components
    // are large: the greedy flood must traverse them (O(n) per Lemma 15)
    // while Linial needs only its log* n rounds (Lemma 21) — the
    // system-level counterpart of coloring_exp C4-b.
    let mut table = Table::new(&["n", "A1-greedy max", "A1-linial max", "greedy/linial"]);
    for n in sized(vec![8usize, 16, 32, 48], vec![8, 16]) {
        let spec = RunSpec {
            horizon: 60_000 + 3_000 * n as u64,
            cyclic: false,
            first_hungry: (1, 1),
            ..RunSpec::default()
        };
        let mut maxes = Vec::new();
        for kind in [AlgKind::A1Greedy, AlgKind::A1Linial] {
            let positions = topology::line(n);
            let sched = std::sync::Arc::new(coloring::LinialSchedule::compute(n as u64, 2));
            let out = harness::run_protocol(
                &spec,
                &positions,
                |seed| {
                    let mut node = match kind {
                        AlgKind::A1Greedy => local_mutex::Algorithm1::greedy(&seed),
                        _ => local_mutex::Algorithm1::linial(&seed, sched.clone()),
                    };
                    node.require_initial_recoloring();
                    node
                },
                |_| {},
            );
            assert!(out.violations.is_empty());
            assert_eq!(out.total_meals(), n as u64, "{}: starvation", kind.name());
            maxes.push(out.all_summary().max);
        }
        table.row([
            n.to_string(),
            maxes[0].to_string(),
            maxes[1].to_string(),
            format!("{:.2}", maxes[0] as f64 / maxes[1] as f64),
        ]);
    }
    print!("{table}");
    println!(
        "expected shape: the greedy column grows faster with n than the Linial column          (its recoloring flood must traverse each concurrent component); the ratio rises"
    );
}

fn hub_vs_leaves_star() {
    section("C1-star: explicit star graphs — hub vs leaf p95 static response vs δ");
    // Stars cannot be embedded in the unit disk beyond 5 leaves; the
    // explicit-graph engine runs them anyway. Leaves conflict only with
    // the hub, so leaf latency stays flat while the hub's grows with δ —
    // per-neighborhood contention in its purest form.
    let mut table = Table::new(&["δ (leaves)", "hub p95 (A2)", "leaf p95 (A2)", "hub p95 (A1-greedy)", "leaf p95 (A1-greedy)"]);
    for leaves in sized(vec![2usize, 4, 8, 16, 24], vec![2, 4, 8]) {
        let (n, edges) = harness::topology::star_edges(leaves);
        let spec = RunSpec {
            horizon: sized(80_000, 20_000),
            ..RunSpec::default()
        };
        let mut row = vec![leaves.to_string()];
        for kind in [AlgKind::A2, AlgKind::A1Greedy] {
            let out = harness::run_algorithm_graph(kind, &spec, n, &edges, &[]);
            assert!(out.violations.is_empty());
            let hub: Vec<u64> = out
                .metrics
                .samples
                .iter()
                .filter(|s| s.node == manet_sim::NodeId(0))
                .map(|s| s.response())
                .collect();
            let leaf: Vec<u64> = out
                .metrics
                .samples
                .iter()
                .filter(|s| s.node != manet_sim::NodeId(0))
                .map(|s| s.response())
                .collect();
            row.push(harness::Summary::of(&hub).p95.to_string());
            row.push(harness::Summary::of(&leaf).p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!("expected shape: hub latency grows with δ; leaf latency stays ~flat (they conflict only with the hub)");
}

fn main() {
    cold_start_line();
    steady_state_line();
    steady_state_clique();
    mobile_vs_static();
    hub_vs_leaves_star();
    bootstrap_recoloring();
    simultaneous_movers();
}
