//! Experiments C1–C2 — response-time scaling behind Theorems 16, 22, 25, 26.
//!
//! * **C2-static (Thm 26)**: cold start on a line — all nodes hungry at
//!   once forces the worst-case priority chain; the slowest node's first
//!   response grows ~linearly in `n` (the `O(n)` bound for Algorithm 2;
//!   the first-meal chain of the color/fork algorithms behaves alike).
//! * **C1-n (Thm 16/22)**: steady state on a line — once exit-colors
//!   converge to `[0, δ]`, response times are independent of `n` for every
//!   algorithm (δ fixed); this is the paper's "scalability" claim.
//! * **C1-δ (Thm 16/22)**: steady state on cliques — response grows with δ
//!   (polynomial in δ; constants differ per algorithm).
//! * **C2-mobile (Thm 25)**: mobility costs — mobile vs static percentiles
//!   on a random graph, plus the recoloring-cost comparison between the
//!   greedy (`O(n)` worst case) and Linial (`O(log* n)`) procedures under
//!   *simultaneous* movers.
//!
//! Every grid fans out over the parallel sweep executor: `--jobs N` bounds
//! the workers (output is identical for any value), `--metrics-out PATH`
//! captures the sweep-cell runs as JSON lines.
//!
//! Run: `cargo run --release -p lme-bench --bin scaling [--quick]
//!       [--jobs N] [--metrics-out PATH]`

use harness::{
    par_map, run_cells, topology, AlgKind, Job, RunSpec, SweepCell, SweepReport, Table, Topo,
    WaypointPlan,
};
use lme_bench::{jobs, section, sized, write_metrics};
use manet_sim::{Command, Position, SimTime};

const KINDS: [AlgKind; 4] = [
    AlgKind::ChandyMisra,
    AlgKind::A1Greedy,
    AlgKind::A1Linial,
    AlgKind::A2,
];

fn cell(label: String, kind: AlgKind, spec: RunSpec, positions: Vec<(f64, f64)>) -> SweepCell {
    SweepCell {
        label,
        kind,
        spec,
        topo: Topo::Geo(positions),
        commands: Vec::new(),
        job: Job::Run,
    }
}

fn cold_start_line(jobs: usize, all_runs: &mut SweepReport) {
    section("C2-static: cold start, line, all hungry at t=1 (worst chain) — max first response");
    let sizes = sized(vec![8usize, 16, 32, 48, 64], vec![8, 16, 24]);
    let cells: Vec<SweepCell> = sizes
        .iter()
        .flat_map(|&n| {
            let spec = RunSpec {
                horizon: 40_000 + 2_000 * n as u64,
                cyclic: false,
                first_hungry: (1, 1),
                ..RunSpec::default()
            };
            KINDS
                .iter()
                .map(move |&kind| cell(format!("line{n}"), kind, spec.clone(), topology::line(n)))
        })
        .collect();
    let runs = run_cells(&cells, jobs).runs;
    let mut table = Table::new(&[
        "n",
        "chandy-misra",
        "A1-greedy",
        "A1-linial",
        "A2",
        "CM / n",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let group = &runs[i * KINDS.len()..(i + 1) * KINDS.len()];
        let mut row = vec![n.to_string()];
        let mut cm_max = 0;
        for (r, &kind) in group.iter().zip(&KINDS) {
            assert_eq!(r.violations, 0, "{} unsafe", kind.name());
            assert_eq!(
                r.meals,
                n as u64,
                "{}: starvation in the cold-start chain",
                kind.name()
            );
            let max = r.rt_all.max;
            if kind == AlgKind::ChandyMisra {
                cm_max = max;
            }
            row.push(max.to_string());
        }
        row.push(format!("{:.1}", cm_max as f64 / n as f64));
        table.row(row);
    }
    print!("{table}");
    println!(
        "expected shape: Chandy-Misra's dirty-fork chains grow with n, while the paper's \
         algorithms stay flat — comfortably inside their O(n)-type worst-case bounds \
         (randomized delays break the adversarial chains those bounds describe)"
    );
    all_runs.runs.extend(runs);
}

fn steady_state_line(jobs: usize, all_runs: &mut SweepReport) {
    section("C1-n: steady state on a line (δ = 2) — p95 static response vs n");
    let sizes = sized(vec![8usize, 16, 32, 64], vec![8, 16]);
    let spec = RunSpec {
        horizon: sized(60_000, 15_000),
        ..RunSpec::default()
    };
    let cells: Vec<SweepCell> = sizes
        .iter()
        .flat_map(|&n| {
            let spec = spec.clone();
            KINDS
                .iter()
                .map(move |&kind| cell(format!("line{n}"), kind, spec.clone(), topology::line(n)))
        })
        .collect();
    let runs = run_cells(&cells, jobs).runs;
    let mut table = Table::new(&["n", "chandy-misra", "A1-greedy", "A1-linial", "A2"]);
    for (i, &n) in sizes.iter().enumerate() {
        let group = &runs[i * KINDS.len()..(i + 1) * KINDS.len()];
        let mut row = vec![n.to_string()];
        for r in group {
            assert_eq!(r.violations, 0);
            row.push(r.rt_static.p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!("expected shape: columns ~flat — steady-state response independent of n at fixed δ");
    all_runs.runs.extend(runs);
}

fn steady_state_clique(jobs: usize, all_runs: &mut SweepReport) {
    section("C1-δ: steady state on cliques — p95 static response vs δ");
    let sizes = sized(vec![3usize, 5, 9, 13, 17], vec![3, 5, 9]);
    let spec = RunSpec {
        horizon: sized(80_000, 20_000),
        ..RunSpec::default()
    };
    let cells: Vec<SweepCell> = sizes
        .iter()
        .flat_map(|&k| {
            let spec = spec.clone();
            KINDS.iter().map(move |&kind| {
                cell(
                    format!("clique{k}"),
                    kind,
                    spec.clone(),
                    topology::clique(k),
                )
            })
        })
        .collect();
    let runs = run_cells(&cells, jobs).runs;
    let mut table = Table::new(&["δ", "chandy-misra", "A1-greedy", "A1-linial", "A2"]);
    for (i, &k) in sizes.iter().enumerate() {
        let group = &runs[i * KINDS.len()..(i + 1) * KINDS.len()];
        let mut row = vec![(k - 1).to_string()];
        for r in group {
            assert_eq!(r.violations, 0);
            row.push(r.rt_static.p95.to_string());
        }
        table.row(row);
    }
    print!("{table}");
    println!("expected shape: response grows with δ for every algorithm (contention is per-neighborhood)");
    all_runs.runs.extend(runs);
}

fn mobile_vs_static(jobs: usize, all_runs: &mut SweepReport) {
    section("C2-mobile: mobility cost on a 32-node random graph — p50/p95");
    let n = sized(32, 12);
    let horizon = sized(60_000, 12_000);
    let positions = topology::random_connected(n, 97);
    let spec = RunSpec {
        horizon,
        ..RunSpec::default()
    };
    let plan = WaypointPlan {
        area_side: (n as f64 / 1.6).sqrt(),
        moves: sized(50, 10),
        window: (horizon / 10, horizon * 9 / 10),
        speed: Some(0.25),
        seed: 13,
    };
    let commands = plan.commands(n);
    // Per kind: one static cell, one mobile cell (kind-major order).
    let cells: Vec<SweepCell> = KINDS
        .iter()
        .flat_map(|&kind| {
            [
                cell(
                    format!("rand{n}:static"),
                    kind,
                    spec.clone(),
                    positions.clone(),
                ),
                SweepCell {
                    commands: commands.clone(),
                    ..cell(
                        format!("rand{n}:mobile"),
                        kind,
                        spec.clone(),
                        positions.clone(),
                    )
                },
            ]
        })
        .collect();
    let runs = run_cells(&cells, jobs).runs;
    let mut table = Table::new(&[
        "algorithm",
        "static p50/p95",
        "mobile p50/p95",
        "mobile meals",
    ]);
    for (i, &kind) in KINDS.iter().enumerate() {
        let (stat, mob) = (&runs[2 * i], &runs[2 * i + 1]);
        assert_eq!(stat.violations + mob.violations, 0);
        let (s, m) = (&stat.rt_static, &mob.rt_static);
        table.row([
            kind.name().to_string(),
            format!("{}/{}", s.p50, s.p95),
            format!("{}/{}", m.p50, m.p95),
            mob.meals.to_string(),
        ]);
    }
    print!("{table}");
    println!("expected shape: mobility inflates tails moderately; no algorithm loses safety or livelocks");
    all_runs.runs.extend(runs);
}

fn simultaneous_movers(jobs: usize) {
    section("C2-recolor: k simultaneous movers into one region — post-move p95 (greedy vs Linial recoloring)");
    // k nodes teleport at the same instant next to a resident line, forcing
    // k concurrent recolorings. The greedy procedure floods the whole
    // concurrent-recoloring component (O(n) worst case); Linial needs only
    // its log* n rounds.
    let resident = sized(16usize, 8);
    let ks = sized(vec![2usize, 4, 8, 12], vec![2, 4]);
    // Per-node sample filtering keeps this off the SweepCell path; the
    // (k, kind) grid still fans out through par_map.
    let grid: Vec<(usize, AlgKind)> = ks
        .iter()
        .flat_map(|&k| [(k, AlgKind::A1Greedy), (k, AlgKind::A1Linial)])
        .collect();
    let p95s = par_map(&grid, jobs, |&(k, kind)| {
        let mut positions = topology::line(resident);
        // Movers start in a far-away staging clique.
        for i in 0..k {
            positions.push((200.0 + 0.2 * i as f64, 200.0));
        }
        let move_at = 2_000u64;
        let horizon = sized(40_000u64, 12_000);
        let spec = RunSpec {
            horizon,
            delta_bound: Some(8),
            ..RunSpec::default()
        };
        let commands: Vec<(SimTime, Command)> = (0..k)
            .map(|i| {
                // Land in a contiguous strip so the movers are adjacent to
                // each other: their recolorings form one concurrent component.
                let x = (i as f64).min(resident as f64 - 1.0);
                (
                    SimTime(move_at),
                    Command::Teleport {
                        node: manet_sim::NodeId((resident + i) as u32),
                        dest: Position { x, y: 1.0 },
                    },
                )
            })
            .collect();
        let out = harness::run_algorithm(kind, &spec, &positions, &commands);
        assert!(out.violations.is_empty());
        let post: Vec<u64> = out
            .metrics
            .samples
            .iter()
            .filter(|s| s.hungry_at >= SimTime(move_at) && !s.moved)
            .map(|s| s.response())
            .collect();
        harness::Summary::of(&post).p95
    });
    let mut table = Table::new(&[
        "movers k",
        "A1-greedy p95 (post-move)",
        "A1-linial p95 (post-move)",
    ]);
    for (i, &k) in ks.iter().enumerate() {
        table.row([
            k.to_string(),
            p95s[2 * i].to_string(),
            p95s[2 * i + 1].to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "expected shape: post-move latency grows with the movers' contention but both \
         variants cope; the asymptotic gap between the procedures (Θ(k) greedy rounds vs \
         constant log* n Linial rounds) is isolated at the procedure level in \
         coloring_exp C4-b — here system-level noise (doorways, fork traffic) dominates \
         because concurrent-recoloring components stay small under realistic arrival jitter"
    );
}

fn bootstrap_recoloring(jobs: usize) {
    section(
        "C2-boot: initial recoloring at cold start — max first response vs n (greedy vs Linial)",
    );
    // The paper initializes colors by running the recoloring module on
    // every node. With the whole line hungry at once, recoloring components
    // are large: the greedy flood must traverse them (O(n) per Lemma 15)
    // while Linial needs only its log* n rounds (Lemma 21) — the
    // system-level counterpart of coloring_exp C4-b.
    let sizes = sized(vec![8usize, 16, 32, 48], vec![8, 16]);
    let grid: Vec<(usize, AlgKind)> = sizes
        .iter()
        .flat_map(|&n| [(n, AlgKind::A1Greedy), (n, AlgKind::A1Linial)])
        .collect();
    let maxes = par_map(&grid, jobs, |&(n, kind)| {
        let spec = RunSpec {
            horizon: 60_000 + 3_000 * n as u64,
            cyclic: false,
            first_hungry: (1, 1),
            ..RunSpec::default()
        };
        let positions = topology::line(n);
        let sched = std::sync::Arc::new(coloring::LinialSchedule::compute(n as u64, 2));
        let out = harness::run_protocol(
            &spec,
            &positions,
            move |seed| {
                let mut node = match kind {
                    AlgKind::A1Greedy => local_mutex::Algorithm1::greedy(&seed),
                    _ => local_mutex::Algorithm1::linial(&seed, sched.clone()),
                };
                node.require_initial_recoloring();
                node
            },
            |_| {},
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.total_meals(), n as u64, "{}: starvation", kind.name());
        out.all_summary().max
    });
    let mut table = Table::new(&["n", "A1-greedy max", "A1-linial max", "greedy/linial"]);
    for (i, &n) in sizes.iter().enumerate() {
        let (greedy, linial) = (maxes[2 * i], maxes[2 * i + 1]);
        table.row([
            n.to_string(),
            greedy.to_string(),
            linial.to_string(),
            format!("{:.2}", greedy as f64 / linial as f64),
        ]);
    }
    print!("{table}");
    println!(
        "expected shape: the greedy column grows faster with n than the Linial column          (its recoloring flood must traverse each concurrent component); the ratio rises"
    );
}

fn hub_vs_leaves_star(jobs: usize) {
    section("C1-star: explicit star graphs — hub vs leaf p95 static response vs δ");
    // Stars cannot be embedded in the unit disk beyond 5 leaves; the
    // explicit-graph engine runs them anyway. Leaves conflict only with
    // the hub, so leaf latency stays flat while the hub's grows with δ —
    // per-neighborhood contention in its purest form.
    let sizes = sized(vec![2usize, 4, 8, 16, 24], vec![2, 4, 8]);
    let grid: Vec<(usize, AlgKind)> = sizes
        .iter()
        .flat_map(|&leaves| [(leaves, AlgKind::A2), (leaves, AlgKind::A1Greedy)])
        .collect();
    let rows = par_map(&grid, jobs, |&(leaves, kind)| {
        let (n, edges) = harness::topology::star_edges(leaves);
        let spec = RunSpec {
            horizon: sized(80_000, 20_000),
            ..RunSpec::default()
        };
        let out = harness::run_algorithm_graph(kind, &spec, n, &edges, &[]);
        assert!(out.violations.is_empty());
        let hub: Vec<u64> = out
            .metrics
            .samples
            .iter()
            .filter(|s| s.node == manet_sim::NodeId(0))
            .map(|s| s.response())
            .collect();
        let leaf: Vec<u64> = out
            .metrics
            .samples
            .iter()
            .filter(|s| s.node != manet_sim::NodeId(0))
            .map(|s| s.response())
            .collect();
        (
            harness::Summary::of(&hub).p95,
            harness::Summary::of(&leaf).p95,
        )
    });
    let mut table = Table::new(&[
        "δ (leaves)",
        "hub p95 (A2)",
        "leaf p95 (A2)",
        "hub p95 (A1-greedy)",
        "leaf p95 (A1-greedy)",
    ]);
    for (i, &leaves) in sizes.iter().enumerate() {
        let (a2, a1) = (rows[2 * i], rows[2 * i + 1]);
        table.row([
            leaves.to_string(),
            a2.0.to_string(),
            a2.1.to_string(),
            a1.0.to_string(),
            a1.1.to_string(),
        ]);
    }
    print!("{table}");
    println!("expected shape: hub latency grows with δ; leaf latency stays ~flat (they conflict only with the hub)");
}

fn main() {
    let jobs = jobs();
    let mut all_runs = SweepReport::default();
    cold_start_line(jobs, &mut all_runs);
    steady_state_line(jobs, &mut all_runs);
    steady_state_clique(jobs, &mut all_runs);
    mobile_vs_static(jobs, &mut all_runs);
    hub_vs_leaves_star(jobs);
    bootstrap_recoloring(jobs);
    simultaneous_movers(jobs);
    write_metrics(&all_runs);
}
