//! Experiment C4 — the coloring procedures (Lemmas 15 and 21).
//!
//! * **Schedule growth**: Linial-style schedules need `O(log* n)` rounds —
//!   the round count barely moves as `n` grows by orders of magnitude —
//!   and end in a color range polynomial in δ.
//! * **Distributed round counts**: driving the two message-driven
//!   procedures over a *path* of k concurrent participants (the greedy
//!   procedure's worst case), greedy needs Θ(k) iterations (its flood must
//!   traverse the component; Lemma 15's `O(n)`), while Linial needs its
//!   fixed `log* n` rounds regardless of k (Lemma 21).
//! * **Color quality**: synchronous Linial reduction on rings/grids ends
//!   legal and within the schedule's final range; the greedy graph coloring
//!   used on critical-section exit stays within `[0, δ]`.
//!
//! Run: `cargo run --release -p lme-bench --bin coloring_exp [--quick]`

use std::collections::BTreeSet;
use std::sync::Arc;

use coloring::{greedy_color_graph, AdjGraph, LinialSchedule};
use harness::Table;
use lme_bench::{section, sized};
use local_mutex::recolor::{GreedyRecolor, LinialRecolor, RecolorOutcome, RecolorProcedure};
use local_mutex::RecolorMsg;
use manet_sim::NodeId;

fn schedule_growth() {
    section("C4-a: Linial schedule — rounds ~ log* n, final range ~ poly(δ)");
    let mut table = Table::new(&["n", "δ", "rounds", "final color range"]);
    for &delta in &[2u64, 4, 8] {
        for &log_n in &sized(vec![8u32, 12, 16, 24, 32, 48], vec![8, 16, 32]) {
            let sched = LinialSchedule::compute(1u64 << log_n, delta);
            table.row([
                format!("2^{log_n}"),
                delta.to_string(),
                sched.rounds().to_string(),
                sched.final_range().to_string(),
            ]);
            assert!(sched.rounds() <= 8, "rounds must grow like log* n");
        }
    }
    print!("{table}");
    println!("expected shape: rounds stay ≤ ~5 while n spans 2^8..2^48; range depends on δ only");
}

/// Drive a set of recoloring procedures over a path topology in lockstep
/// message rounds; returns the number of delivery rounds until all done.
fn drive_path(k: usize, make: impl Fn(NodeId) -> Box<dyn RecolorProcedure>) -> (usize, Vec<i64>) {
    let mut procs: Vec<Box<dyn RecolorProcedure>> =
        (0..k).map(|i| make(NodeId(i as u32))).collect();
    let neighbors = |i: usize| -> BTreeSet<NodeId> {
        let mut s = BTreeSet::new();
        if i > 0 {
            s.insert(NodeId(i as u32 - 1));
        }
        if i + 1 < k {
            s.insert(NodeId(i as u32 + 1));
        }
        s
    };
    let mut colors: Vec<Option<i64>> = vec![None; k];
    // outboxes[i] = messages from i not yet delivered.
    let mut outboxes: Vec<Vec<(NodeId, RecolorMsg)>> = vec![Vec::new(); k];
    for i in 0..k {
        let mut out = Vec::new();
        if let RecolorOutcome::Done(c) = procs[i].start(neighbors(i), &mut out) {
            colors[i] = Some(c);
        }
        outboxes[i] = out;
    }
    let mut rounds = 0;
    while colors.iter().any(Option::is_none) {
        rounds += 1;
        assert!(rounds < 10 * k + 50, "no convergence after {rounds} rounds");
        let batches: Vec<Vec<(NodeId, RecolorMsg)>> =
            outboxes.iter_mut().map(std::mem::take).collect();
        for (from, batch) in batches.into_iter().enumerate() {
            for (to, msg) in batch {
                let t = to.index();
                let mut out = Vec::new();
                if colors[t].is_some() {
                    // Finished nodes are "not participating": NACK data msgs.
                    if !matches!(msg, RecolorMsg::Nack) {
                        outboxes[t].push((NodeId(from as u32), RecolorMsg::Nack));
                    }
                    continue;
                }
                if let RecolorOutcome::Done(c) =
                    procs[t].on_message(NodeId(from as u32), msg, &mut out)
                {
                    colors[t] = Some(c);
                }
                outboxes[t].extend(out);
            }
        }
    }
    (
        rounds,
        colors.into_iter().map(|c| c.expect("all done")).collect(),
    )
}

fn distributed_rounds() {
    section("C4-b: concurrent recoloring on a k-path — message rounds to completion");
    let mut table = Table::new(&["k (participants)", "greedy rounds", "linial rounds"]);
    let sched = Arc::new(LinialSchedule::compute(1 << 16, 4));
    for k in sized(vec![2usize, 4, 8, 16, 32], vec![2, 4, 8]) {
        let (greedy_rounds, greedy_colors) = drive_path(k, |me| Box::new(GreedyRecolor::new(me)));
        let (linial_rounds, linial_colors) = {
            let sched = sched.clone();
            drive_path(k, move |me| Box::new(LinialRecolor::new(me, sched.clone())))
        };
        for colors in [&greedy_colors, &linial_colors] {
            for w in colors.windows(2) {
                assert_ne!(w[0], w[1], "neighbors picked equal colors");
            }
            assert!(colors.iter().all(|&c| c < 0), "recolor colors are negative");
        }
        table.row([
            k.to_string(),
            greedy_rounds.to_string(),
            linial_rounds.to_string(),
        ]);
    }
    print!("{table}");
    println!("expected shape: greedy rounds grow ~linearly in k (Lemma 15's O(n)); Linial stays at its log* n rounds (Lemma 21)");
}

fn color_quality() {
    section("C4-c: color quality");
    // Greedy coloring used on CS exit: range [0, δ].
    let mut table = Table::new(&["graph", "δ", "colors used", "legal"]);
    let ring = AdjGraph::from_edges((0..64u32).map(|i| (i, (i + 1) % 64)));
    let mut grid = AdjGraph::new();
    let (w, h) = (8u32, 8u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                grid.add_edge(y * w + x, y * w + x + 1);
            }
            if y + 1 < h {
                grid.add_edge(y * w + x, (y + 1) * w + x);
            }
        }
    }
    for (name, g) in [("ring-64", &ring), ("grid-8x8", &grid)] {
        let colors = greedy_color_graph(g);
        let delta = g.vertices().map(|v| g.degree(v)).max().unwrap_or(0);
        let used = colors.values().collect::<BTreeSet<_>>().len();
        let legal = g.is_legal_coloring(|v| colors.get(&v).copied());
        let max = colors.values().max().copied().unwrap_or(0);
        assert!(legal && max <= delta as i64);
        table.row([
            name.to_string(),
            delta.to_string(),
            used.to_string(),
            legal.to_string(),
        ]);
    }
    print!("{table}");
    println!("expected shape: greedy stays within [0, δ] and is always legal");
}

fn main() {
    schedule_growth();
    distributed_rounds();
    color_quality();
}
