//! Experiment F6 — replay **Figure 6** (the mobility scenario that motivates
//! the `SD^f` return path).
//!
//! The paper's scenario: a chain `p1 – p2 – p3 – p4` with colors
//! `c(p3) < c(p4)`, `c(p3) < c(p2) < c(p1)`, where `p4` crashes while
//! holding the fork it shares with `p3`. Then:
//!
//! * `p3` collects all its low forks but never gets `p4`'s → it suspends
//!   `p2`'s request (blocked at distance 1 from the crash);
//! * `p2` misses its low fork → it keeps granting `p1` without asking back
//!   (blocked at distance 2);
//! * `p1`, at distance 3, **eats** — the failure is contained.
//!
//! Then `p3` moves away. `p2` detects the lost low neighbor holding their
//! shared fork, takes the **return path** (exits `SD^f` and re-executes its
//! entry code), and proceeds to eat; `p3`, now alone, eats too.
//!
//! Node-ID mapping (IDs also fix the initial fork placement): node0 = p4,
//! node1 = p3, node2 = p2, node3 = p1; colors are installed explicitly.
//!
//! Run: `cargo run --release -p lme-bench --bin fig6_scenario`

use harness::{Metrics, SafetyMonitor, Workload};
use lme_bench::section;
use local_mutex::Algorithm1;
use manet_sim::{DiningState, Engine, NodeId, SimConfig, SimTime};

fn main() {
    section("F6 (Figure 6): crash containment and the SD^f return path");
    // Chain p4 – p3 – p2 – p1  =  node0 – node1 – node2 – node3.
    let positions = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)];
    // Colors: p4 = 1, p3 = 0, p2 = 2, p1 = 3 (so p3 < p4 and p3 < p2 < p1).
    let colors = [1i64, 0, 2, 3];
    let mut engine: Engine<Algorithm1> =
        Engine::new(SimConfig::default(), positions, move |seed| {
            let mut node = Algorithm1::greedy(&seed);
            node.set_initial_coloring(&colors);
            node
        });
    let (metrics, data) = Metrics::new(4);
    engine.add_hook(Box::new(metrics));
    let (monitor, _violations) = SafetyMonitor::new(true);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(Workload::one_shot(20..=20, 1)));

    let (p4, p3, p2, p1) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    engine.crash_at(SimTime(5), p4);
    for n in [p3, p2, p1] {
        engine.set_hungry_at(SimTime(10), n);
    }

    // Phase 1: the crash is contained at distance 2.
    engine.run_until(SimTime(4_000));
    println!("after the crash of p4 (t = 4000):");
    for (name, node) in [("p3", p3), ("p2", p2), ("p1", p1)] {
        println!(
            "  {name} (node{}) : {} — meals so far: {}",
            node.0,
            engine.dining_state(node),
            data.borrow().meals[node.index()]
        );
    }
    assert_eq!(
        data.borrow().meals[p1.index()],
        1,
        "p1 (distance 3) must eat"
    );
    assert_eq!(
        engine.dining_state(p3),
        DiningState::Hungry,
        "p3 blocked by p4"
    );
    assert_eq!(
        engine.dining_state(p2),
        DiningState::Hungry,
        "p2 blocked by p3"
    );
    println!("  ✓ failure contained: only the 2-neighborhood of p4 is blocked");

    // Phase 2: p3 moves away; the return path frees p2.
    engine.teleport_at(SimTime(4_000), p3, (50.0, 0.0));
    engine.run_until(SimTime(8_000));
    println!("\nafter p3 moved away (t = 8000):");
    for (name, node) in [("p3", p3), ("p2", p2), ("p1", p1)] {
        println!(
            "  {name} (node{}) : {} — meals: {}, return paths: {}",
            node.0,
            engine.dining_state(node),
            data.borrow().meals[node.index()],
            engine.protocol(node).stats.return_paths
        );
    }
    assert!(
        engine.protocol(p2).stats.return_paths >= 1,
        "p2 must take the SD^f return path when p3 departs with their fork"
    );
    assert_eq!(
        data.borrow().meals[p2.index()],
        1,
        "p2 must eat after the return path"
    );
    assert_eq!(data.borrow().meals[p3.index()], 1, "p3, alone, must eat");
    println!(
        "  ✓ return path taken by p2: {} time(s); p2 and p3 both ate",
        engine.protocol(p2).stats.return_paths
    );
    println!("\nscenario matches Figure 6 of the paper exactly");
}
