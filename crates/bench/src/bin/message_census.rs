//! Experiment M1 — message complexity by kind (the paper's Chapter 7 names
//! message complexity as an open direction; here we measure it).
//!
//! For each algorithm: total messages per critical section and the
//! breakdown by message kind, on the same static random graph and under
//! mobility. Shows where each algorithm's overhead lives: doorway traffic
//! for Algorithm 1, notifications/switches for Algorithm 2, forks and
//! request tokens for Chandy–Misra.
//!
//! Run: `cargo run --release -p lme-bench --bin message_census [--quick]`

use std::collections::BTreeMap;

use baselines::{ChandyMisra, CmMsg};
use harness::census::MessageCensus;
use harness::{topology, Metrics, Table, WaypointPlan, Workload};
use lme_bench::{section, sized};
use local_mutex::{A1Msg, A2Msg, Algorithm1, Algorithm2};
use manet_sim::{Engine, NodeId, Protocol, SimConfig, SimTime};

struct CensusRun {
    counts: BTreeMap<&'static str, u64>,
    meals: u64,
}

fn run_with<P, F>(
    n: usize,
    horizon: u64,
    mobile: bool,
    classify: fn(&P::Msg) -> &'static str,
    factory: F,
) -> CensusRun
where
    P: Protocol,
    P::Msg: 'static,
    F: FnMut(manet_sim::NodeSeed) -> P + 'static,
{
    let positions = topology::random_connected(n, 41);
    let mut engine: Engine<P> = Engine::new(SimConfig::default(), positions, factory);
    let (census, counts) = MessageCensus::new(classify);
    engine.add_hook(Box::new(census));
    let (metrics, data) = Metrics::new(n);
    engine.add_hook(Box::new(metrics));
    engine.add_hook(Box::new(Workload::cyclic(10..=30, 50..=150, 5)));
    for i in 0..n as u32 {
        engine.set_hungry_at(SimTime(1 + u64::from(i % 13)), NodeId(i));
    }
    if mobile {
        let plan = WaypointPlan {
            area_side: (n as f64 / 1.6).sqrt(),
            moves: sized(40, 8),
            window: (horizon / 10, horizon * 9 / 10),
            speed: Some(0.25),
            seed: 77,
        };
        for (at, cmd) in plan.commands(n) {
            engine.schedule(at, cmd);
        }
    }
    engine.run_until(SimTime(horizon));
    let counts = counts.borrow().clone();
    let meals = data.borrow().meals.iter().sum::<u64>().max(1);
    CensusRun { counts, meals }
}

fn report(title: &str, runs: &[(&str, CensusRun)]) {
    section(title);
    // Union of labels across algorithms.
    let mut labels: Vec<&'static str> = runs
        .iter()
        .flat_map(|(_, r)| r.counts.keys().copied())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    let mut headers: Vec<String> = vec!["algorithm".into(), "msgs/CS".into()];
    headers.extend(labels.iter().map(|l| format!("{l}/CS")));
    let mut table = Table::new(&headers);
    for (name, r) in runs {
        let total: u64 = r.counts.values().sum();
        let mut row = vec![
            name.to_string(),
            format!("{:.1}", total as f64 / r.meals as f64),
        ];
        for l in &labels {
            let c = r.counts.get(l).copied().unwrap_or(0);
            row.push(format!("{:.2}", c as f64 / r.meals as f64));
        }
        table.row(row);
    }
    print!("{table}");
}

fn main() {
    let n = sized(24, 10);
    let horizon = sized(40_000, 8_000);
    for mobile in [false, true] {
        let a1 = run_with(
            n,
            horizon,
            mobile,
            A1Msg::kind as fn(&A1Msg) -> &'static str,
            |seed| Algorithm1::greedy(&seed),
        );
        let a2 = run_with(
            n,
            horizon,
            mobile,
            A2Msg::kind as fn(&A2Msg) -> &'static str,
            |seed| Algorithm2::new(&seed),
        );
        let cm = run_with(
            n,
            horizon,
            mobile,
            (|m: &CmMsg| match m {
                CmMsg::ReqToken => "req-token",
                CmMsg::Fork => "fork",
            }) as fn(&CmMsg) -> &'static str,
            |seed| ChandyMisra::new(&seed),
        );
        report(
            &format!(
                "M1: message breakdown per critical section ({} nodes, {})",
                n,
                if mobile { "mobile" } else { "static" }
            ),
            &[("A1-greedy", a1), ("A2", a2), ("chandy-misra", cm)],
        );
    }
    println!(
        "\nexpected shape: A1's cost is dominated by doorway traffic; A2 pays \
         notifications/switches but no doorways; Chandy–Misra is leanest per \
         message kind but pays with unbounded failure locality."
    );
}
