//! Experiment AB — ablations of the paper's two key design choices.
//!
//! * **AB-1, the `SD^f` return path** (Algorithm 1, Lines 59–60): replay
//!   the Figure 6 scenario with the return path disabled. Finding: in this
//!   event-driven implementation `p2` still eats (the fork-collection
//!   guards re-evaluate when the departed neighbor leaves `N`), so the
//!   return path is *not* load-bearing for basic liveness here — its role
//!   in the paper is proof hygiene: by exiting `SD^f` and re-entering,
//!   a node re-joins the priority graph `LG` at a fresh rank, which is
//!   what keeps Lemma 8's rank-induction (and hence the response-time
//!   bound) valid, and it releases requested forks so neighbors proceed
//!   "as if p3 has not moved away".
//! * **AB-2, the notification mechanism** (Algorithm 2, Lines 22–25): the
//!   paper credits it for the `O(n)` *worst-case* static response time of
//!   Theorem 26. Measured under randomized workloads the average/p95 cost
//!   is indistinguishable while notifications roughly double the switch
//!   traffic — i.e. the mechanism buys the worst-case guarantee, not
//!   average-case speed. (The adversarial chains it eliminates require
//!   coordinated wake-ups that randomized delays break.)
//!
//! Both ablation arms run concurrently through the sweep executor's
//! `par_map` (`--jobs N`; output identical for any value).
//!
//! Run: `cargo run --release -p lme-bench --bin ablations [--quick] [--jobs N]`

use harness::{par_map, topology, Metrics, SafetyMonitor, Summary, Table, Workload};
use lme_bench::{jobs, section, sized};
use local_mutex::{Algorithm1, Algorithm2};
use manet_sim::{Engine, NodeId, SimConfig, SimTime};

fn ab1_return_path(jobs: usize) {
    section("AB-1: Figure 6 with and without the SD^f return path");
    let arms = [true, false];
    let rows = par_map(&arms, jobs, |&enabled| {
        let positions = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)];
        let colors = [1i64, 0, 2, 3];
        let mut engine: Engine<Algorithm1> =
            Engine::new(SimConfig::default(), positions, move |seed| {
                let mut node = Algorithm1::greedy(&seed);
                node.set_initial_coloring(&colors);
                node.return_path_enabled = enabled;
                node
            });
        let (metrics, data) = Metrics::new(4);
        engine.add_hook(Box::new(metrics));
        let (monitor, violations) = SafetyMonitor::new(false);
        engine.add_hook(Box::new(monitor));
        engine.add_hook(Box::new(Workload::one_shot(20..=20, 1)));
        let (p4, p3, p2, p1) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        engine.crash_at(SimTime(5), p4);
        for n in [p3, p2, p1] {
            engine.set_hungry_at(SimTime(10), n);
        }
        engine.run_until(SimTime(4_000));
        engine.teleport_at(SimTime(4_000), p3, (50.0, 0.0));
        engine.run_until(SimTime(12_000));
        assert!(violations.borrow().is_empty());
        let meals = data.borrow().meals[p2.index()];
        assert_eq!(
            meals, 1,
            "p2 must eat after p3 departs (return path {enabled})"
        );
        let latency = data
            .borrow()
            .samples
            .iter()
            .find(|s| s.node == p2)
            .map(|s| s.eat_at.ticks_since(SimTime(4_000)))
            .expect("p2 ate");
        assert_eq!(
            engine.protocol(p2).stats.return_paths,
            u64::from(enabled),
            "return-path counter must match the configuration"
        );
        [
            enabled.to_string(),
            meals.to_string(),
            latency.to_string(),
            engine.protocol(p2).stats.return_paths.to_string(),
        ]
    });
    let mut table = Table::new(&[
        "return path",
        "p2 meals",
        "p2 post-move latency",
        "p2 return paths",
    ]);
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "finding: liveness holds either way in this event-driven implementation; the paper's \
         return path exists to keep the rank-based response-time proof valid (a node re-joins \
         LG at a fresh rank) and to release requested forks so neighbors proceed undisturbed"
    );
}

fn ab2_notifications(jobs: usize) {
    section("AB-2: Algorithm 2 with and without the notification mechanism");
    // Skewed regime: even nodes cycle fast; odd nodes think very long. A
    // long-thinking dominator that wakes mid-collection snatches priority
    // unless notifications made it step aside when its neighbor got hungry.
    let n = sized(16usize, 10);
    let horizon = sized(80_000u64, 20_000);
    let arms = [true, false];
    let rows = par_map(&arms, jobs, |&enabled| {
        let mut engine: Engine<Algorithm2> =
            Engine::new(SimConfig::default(), topology::line(n), move |seed| {
                let mut node = Algorithm2::new(&seed);
                node.notifications_enabled = enabled;
                node
            });
        let (metrics, data) = Metrics::new(n);
        engine.add_hook(Box::new(metrics));
        let (monitor, violations) = SafetyMonitor::new(false);
        engine.add_hook(Box::new(monitor));
        engine.add_hook(Box::new(Workload::cyclic(10..=30, 40..=600, 3)));
        for i in 0..n as u32 {
            engine.set_hungry_at(SimTime(1 + u64::from(i) * 3), NodeId(i));
        }
        engine.run_until(SimTime(horizon));
        assert!(violations.borrow().is_empty());
        let data = data.borrow();
        let fast: Vec<u64> = data
            .samples
            .iter()
            .filter(|s| s.node.0 % 2 == 0)
            .map(|s| s.response())
            .collect();
        let s = Summary::of(&fast);
        let switches: u64 = (0..n as u32)
            .map(|i| engine.protocol(NodeId(i)).stats.switches)
            .sum();
        [
            enabled.to_string(),
            s.p95.to_string(),
            s.max.to_string(),
            data.meals.iter().sum::<u64>().to_string(),
            switches.to_string(),
        ]
    });
    let mut table = Table::new(&[
        "notifications",
        "fast nodes p95",
        "fast nodes max",
        "total meals",
        "switch msgs",
    ]);
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "finding: average/p95 latency is insensitive to the mechanism under randomized \
         workloads, while notifications roughly double switch traffic — the mechanism's \
         value is the worst-case O(n) guarantee of Theorem 26, not average-case speed"
    );
}

fn main() {
    let jobs = jobs();
    ab1_return_path(jobs);
    ab2_notifications(jobs);
}
