//! Shared helpers for the experiment binaries that regenerate the paper's
//! table and figures. See EXPERIMENTS.md at the repository root for the
//! mapping from binaries to paper artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod svg;

/// True when the binary was invoked with `--quick`: experiment sizes are
/// reduced so the whole suite runs in seconds (used by smoke checks).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Pick between a full-size and a quick-mode parameter.
pub fn sized<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Print a section header in the style shared by all experiment binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
