//! Shared helpers for the experiment binaries that regenerate the paper's
//! table and figures. See EXPERIMENTS.md at the repository root for the
//! mapping from binaries to paper artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod svg;

/// True when the binary was invoked with `--quick`: experiment sizes are
/// reduced so the whole suite runs in seconds (used by smoke checks).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Pick between a full-size and a quick-mode parameter.
pub fn sized<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Print a section header in the style shared by all experiment binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Worker threads for sweep fan-out: `--jobs N` if given, else every core.
/// Results are byte-identical for any value (see `harness::sweep`).
pub fn jobs() -> usize {
    flag_value("--jobs")
        .map(|v| {
            let n: usize = v.parse().unwrap_or_else(|_| panic!("invalid --jobs '{v}'"));
            assert!(n > 0, "--jobs must be at least 1");
            n
        })
        .unwrap_or_else(harness::default_jobs)
}

/// Path given with `--metrics-out PATH`, if any.
pub fn metrics_out() -> Option<std::path::PathBuf> {
    flag_value("--metrics-out").map(std::path::PathBuf::from)
}

/// Append `runs` to the binary-wide metrics collection and, at the end of
/// `main`, write them with [`write_metrics`]. Binaries that produce
/// [`harness::RunReport`]s funnel them here so `--metrics-out` captures
/// every run of the invocation in one JSONL file.
pub fn write_metrics(report: &harness::SweepReport) {
    let Some(path) = metrics_out() else { return };
    report
        .write_jsonl(&path)
        .unwrap_or_else(|e| panic!("cannot write metrics to {}: {e}", path.display()));
    println!("per-run metrics written to {}", path.display());
}

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

/// Time `f` over `iters` iterations (after one warm-up call) and print
/// min/mean per-iteration wall time. The closure's return value is folded
/// into a black-box accumulator so the optimizer cannot elide the work.
/// Replaces the criterion harness: same shape of numbers, zero
/// dependencies.
pub fn bench<R: std::hash::Hash>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    use std::hash::Hasher;
    assert!(iters > 0);
    let mut sink = std::collections::hash_map::DefaultHasher::new();
    f().hash(&mut sink); // warm-up
    let mut min = std::time::Duration::MAX;
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        let r = f();
        let dt = t0.elapsed();
        r.hash(&mut sink);
        min = min.min(dt);
        total += dt;
    }
    let mean = total / iters;
    println!(
        "{name:<40} min {min:>10.3?}   mean {mean:>10.3?}   ({iters} iters, sink {:x})",
        sink.finish() & 0xffff
    );
}
