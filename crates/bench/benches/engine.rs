//! Engine microbenchmarks: raw event throughput of the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{topology, Workload};
use local_mutex::testutil::SafetyCheck;
use local_mutex::Algorithm2;
use manet_sim::{Engine, NodeId, SimConfig, SimTime};

/// A full Algorithm 2 run on a 20-node line: measures end-to-end engine +
/// protocol throughput (events/second is reported via wall time).
fn bench_line_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &horizon in &[2_000u64, 8_000] {
        group.bench_with_input(
            BenchmarkId::new("a2_line20_cyclic", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    let mut e: Engine<Algorithm2> = Engine::new(
                        SimConfig::default(),
                        topology::line(20),
                        |seed| Algorithm2::new(&seed),
                    );
                    e.add_hook(Box::new(Workload::cyclic(10..=30, 50..=150, 1)));
                    e.add_hook(Box::new(SafetyCheck::default()));
                    for i in 0..20 {
                        e.set_hungry_at(SimTime(1), NodeId(i));
                    }
                    e.run_until(SimTime(horizon));
                    e.stats().events
                });
            },
        );
    }
    group.finish();
}

/// Doorway-demo traversal cost: the double doorway under a recycling
/// clique — measures doorway state-machine + engine overhead without fork
/// logic.
fn bench_doorway_demo(c: &mut Criterion) {
    use doorway::demo::{DemoConfig, DoorwayDemo, Structure};
    let mut group = c.benchmark_group("doorway");
    group.sample_size(10);
    group.bench_function("double_doorway_clique8", |b| {
        b.iter(|| {
            let cfg = DemoConfig {
                structure: Structure::Double,
                hold_ticks: 20,
                recycle_after: Some(5),
            };
            let mut e: Engine<DoorwayDemo> = Engine::new(
                SimConfig::default(),
                harness::topology::clique(8),
                move |_| DoorwayDemo::new(cfg),
            );
            for i in 0..8 {
                e.set_hungry_at(SimTime(1 + i as u64 * 3), NodeId(i));
            }
            e.run_until(SimTime(4_000));
            e.stats().events
        });
    });
    group.finish();
}

criterion_group!(benches, bench_line_run, bench_doorway_demo);
criterion_main!(benches);
