//! Engine microbenchmarks: raw event throughput of the simulator.
//!
//! Plain std-timing benchmarks (see `lme_bench::bench`); run with
//! `cargo bench -p lme-bench --bench engine`.

use harness::{topology, Workload};
use local_mutex::testutil::SafetyCheck;
use local_mutex::Algorithm2;
use manet_sim::{Engine, EventQueueKind, NodeId, SimConfig, SimTime};

/// A full Algorithm 2 run on a 20-node line: measures end-to-end engine +
/// protocol throughput (events/second is reported via wall time).
fn bench_line_run() {
    for &horizon in &[2_000u64, 8_000] {
        lme_bench::bench(&format!("engine/a2_line20_cyclic/{horizon}"), 10, || {
            let mut e: Engine<Algorithm2> =
                Engine::new(SimConfig::default(), topology::line(20), |seed| {
                    Algorithm2::new(&seed)
                });
            e.add_hook(Box::new(Workload::cyclic(10..=30, 50..=150, 1)));
            e.add_hook(Box::new(SafetyCheck::default()));
            for i in 0..20 {
                e.set_hungry_at(SimTime(1), NodeId(i));
            }
            e.run_until(SimTime(horizon));
            e.stats().events
        });
    }
}

/// Event-core comparison on the identical workload: the binary-heap
/// reference vs the bounded-horizon timing wheel. Both sinks must print
/// the same hash — the cores are bit-for-bit equivalent (see
/// `tests/queue_equivalence.rs`); only the wall time may differ. The full
/// dispatch-bound ladder lives in `lme bench engine`.
fn bench_event_cores() {
    for kind in [EventQueueKind::Heap, EventQueueKind::Wheel] {
        lme_bench::bench(
            &format!("engine/a2_ring24_core_{}", kind.name()),
            10,
            || {
                let cfg = SimConfig {
                    event_queue: kind,
                    ..SimConfig::default()
                };
                let mut e: Engine<Algorithm2> =
                    Engine::new(cfg, topology::ring(24), |seed| Algorithm2::new(&seed));
                e.add_hook(Box::new(Workload::cyclic(10..=30, 50..=150, 1)));
                for i in 0..24 {
                    e.set_hungry_at(SimTime(1), NodeId(i));
                }
                e.run_until(SimTime(8_000));
                e.stats().events
            },
        );
    }
}

/// Doorway-demo traversal cost: the double doorway under a recycling
/// clique — measures doorway state-machine + engine overhead without fork
/// logic.
fn bench_doorway_demo() {
    use doorway::demo::{DemoConfig, DoorwayDemo, Structure};
    lme_bench::bench("doorway/double_doorway_clique8", 10, || {
        let cfg = DemoConfig {
            structure: Structure::Double,
            hold_ticks: 20,
            recycle_after: Some(5),
        };
        let mut e: Engine<DoorwayDemo> = Engine::new(
            SimConfig::default(),
            harness::topology::clique(8),
            move |_| DoorwayDemo::new(cfg),
        );
        for i in 0..8 {
            e.set_hungry_at(SimTime(1 + i as u64 * 3), NodeId(i));
        }
        e.run_until(SimTime(4_000));
        e.stats().events
    });
}

fn main() {
    bench_line_run();
    bench_event_cores();
    bench_doorway_demo();
}
