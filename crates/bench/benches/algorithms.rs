//! Head-to-head wall-clock cost of the five algorithms on the same workload
//! (Table 1 companion: protocol step overhead, not response time).
//!
//! Plain std-timing benchmarks (see `lme_bench::bench`); run with
//! `cargo bench -p lme-bench --bench algorithms`.

use harness::{run_algorithm, topology, AlgKind, RunSpec};

fn main() {
    let spec = RunSpec {
        horizon: 4_000,
        ..RunSpec::default()
    };
    let positions = topology::random_connected(16, 3);
    for kind in AlgKind::all() {
        lme_bench::bench(
            &format!("algorithms/random16_cyclic/{}", kind.name()),
            10,
            || run_algorithm(kind, &spec, &positions, &[]).messages_sent,
        );
    }
}
