//! Head-to-head wall-clock cost of the five algorithms on the same workload
//! (Table 1 companion: protocol step overhead, not response time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{run_algorithm, topology, AlgKind, RunSpec};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    let spec = RunSpec {
        horizon: 4_000,
        ..RunSpec::default()
    };
    let positions = topology::random_connected(16, 3);
    for kind in AlgKind::all() {
        group.bench_with_input(
            BenchmarkId::new("random16_cyclic", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| run_algorithm(kind, &spec, &positions, &[]).messages_sent);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
