//! Coloring substrate microbenchmarks: schedule construction, set
//! derivation, and the shared greedy graph coloring.

use coloring::{greedy_color_graph, AdjGraph, CoverFreeFamily, LinialSchedule};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_coloring(c: &mut Criterion) {
    c.bench_function("linial_schedule_2e20_d8", |b| {
        b.iter(|| LinialSchedule::compute(1 << 20, 8).final_range())
    });
    let fam = CoverFreeFamily::construct(1 << 20, 8);
    c.bench_function("cover_free_set_derivation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % fam.len();
            fam.set(i).len()
        })
    });
    // Random graph with ~4 edges per vertex.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 500u32;
    let mut g = AdjGraph::new();
    for v in 0..n {
        g.add_vertex(v);
        for _ in 0..2 {
            let u = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    c.bench_function("greedy_color_graph_500", |b| {
        b.iter(|| greedy_color_graph(&g).len())
    });
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
