//! Coloring substrate microbenchmarks: schedule construction, set
//! derivation, and the shared greedy graph coloring.
//!
//! Plain std-timing benchmarks (see `lme_bench::bench`); run with
//! `cargo bench -p lme-bench --bench coloring_bench`.

use coloring::{greedy_color_graph, AdjGraph, CoverFreeFamily, LinialSchedule};
use manet_sim::SimRng;

fn main() {
    lme_bench::bench("linial_schedule_2e20_d8", 10, || {
        LinialSchedule::compute(1 << 20, 8).final_range()
    });
    let fam = CoverFreeFamily::construct(1 << 20, 8);
    let mut i = 0u64;
    lme_bench::bench("cover_free_set_derivation", 1_000, || {
        i = (i + 997) % fam.len();
        fam.set(i).len()
    });
    // Random graph with ~4 edges per vertex.
    let mut rng = SimRng::seed_from_u64(5);
    let n = 500u32;
    let mut g = AdjGraph::new();
    for v in 0..n {
        g.add_vertex(v);
        for _ in 0..2 {
            let u = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    lme_bench::bench("greedy_color_graph_500", 100, || {
        greedy_color_graph(&g).len()
    });
}
