//! The single-doorway state machine.

use std::collections::BTreeSet;

use manet_sim::NodeId;

use crate::message::DoorwayMsg;
use crate::tag::DoorwayTag;

/// Synchronous or asynchronous entry discipline (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoorwayKind {
    /// Cross when all neighbors are observed outside *simultaneously*.
    Synchronous,
    /// Cross once every neighbor has been observed outside *at least once*.
    Asynchronous,
}

/// One node's view of one doorway: its own position, the last known position
/// of each neighbor (the array `L[]` of Figure 2), and entry-code progress.
///
/// The machine is driven by the embedding protocol:
///
/// * [`Doorway::begin_entry`] starts the entry code,
/// * [`Doorway::note_cross`] / [`Doorway::note_exit`] record a received
///   `cross`/`exit` message from a neighbor,
/// * [`Doorway::neighbor_joined`] / [`Doorway::neighbor_left`] track
///   neighborhood changes,
/// * [`Doorway::ready`] evaluates the entry condition against the *current*
///   neighbor set,
/// * [`Doorway::cross`] / [`Doorway::exit`] complete the entry/exit code and
///   return the message to broadcast.
///
/// ```
/// use doorway::{Doorway, DoorwayKind, DoorwayTag, DoorwayMsg};
/// use manet_sim::NodeId;
///
/// let tag = DoorwayTag::new(0);
/// let mut d = Doorway::new(tag, DoorwayKind::Synchronous);
/// let n = [NodeId(1)];
/// d.begin_entry(&n);
/// assert!(d.ready(&n)); // neighbor initially outside
/// assert_eq!(d.cross(), DoorwayMsg::Cross(tag));
/// assert!(d.is_behind());
/// assert_eq!(d.exit(), DoorwayMsg::Exit(tag));
/// ```
#[derive(Clone, Debug)]
pub struct Doorway {
    tag: DoorwayTag,
    kind: DoorwayKind,
    /// Neighbors whose last message for this doorway was `cross`.
    behind: BTreeSet<NodeId>,
    /// Entry progress of the asynchronous discipline: neighbors observed
    /// outside at least once since `begin_entry`.
    seen_outside: BTreeSet<NodeId>,
    my_behind: bool,
    entering: bool,
}

impl Doorway {
    /// A fresh doorway; everyone (including this node) is outside.
    pub fn new(tag: DoorwayTag, kind: DoorwayKind) -> Doorway {
        Doorway {
            tag,
            kind,
            behind: BTreeSet::new(),
            seen_outside: BTreeSet::new(),
            my_behind: false,
            entering: false,
        }
    }

    /// This doorway's tag.
    pub fn tag(&self) -> DoorwayTag {
        self.tag
    }

    /// This doorway's entry discipline.
    pub fn kind(&self) -> DoorwayKind {
        self.kind
    }

    /// Whether this node is behind the doorway (crossed, not yet exited).
    pub fn is_behind(&self) -> bool {
        self.my_behind
    }

    /// Whether this node is currently executing the entry code.
    pub fn is_entering(&self) -> bool {
        self.entering
    }

    /// Whether, to this node's knowledge, neighbor `j` is behind the
    /// doorway.
    pub fn neighbor_behind(&self, j: NodeId) -> bool {
        self.behind.contains(&j)
    }

    /// Start executing the entry code. `neighbors` is the current neighbor
    /// set; under the asynchronous discipline all currently-outside
    /// neighbors are immediately "observed outside".
    ///
    /// # Panics
    ///
    /// Panics if the node is already behind the doorway.
    pub fn begin_entry(&mut self, neighbors: &[NodeId]) {
        assert!(!self.my_behind, "entry while behind doorway {:?}", self.tag);
        self.entering = true;
        self.seen_outside.clear();
        for &j in neighbors {
            if !self.behind.contains(&j) {
                self.seen_outside.insert(j);
            }
        }
    }

    /// Evaluate the entry condition against the current neighbor set.
    /// Always false unless the entry code is executing.
    pub fn ready(&self, neighbors: &[NodeId]) -> bool {
        if !self.entering {
            return false;
        }
        match self.kind {
            DoorwayKind::Synchronous => neighbors.iter().all(|j| !self.behind.contains(j)),
            DoorwayKind::Asynchronous => neighbors.iter().all(|j| self.seen_outside.contains(j)),
        }
    }

    /// Complete the entry code (the caller must have checked [`Doorway::ready`]):
    /// the node is now behind the doorway. Returns the `cross` broadcast.
    pub fn cross(&mut self) -> DoorwayMsg {
        debug_assert!(self.entering, "cross without entry");
        self.entering = false;
        self.my_behind = true;
        DoorwayMsg::Cross(self.tag)
    }

    /// Complete the exit code: the node is outside again. Returns the `exit`
    /// broadcast. Idempotent on an outside node (returns the broadcast
    /// anyway, which is harmless).
    pub fn exit(&mut self) -> DoorwayMsg {
        self.my_behind = false;
        self.entering = false;
        DoorwayMsg::Exit(self.tag)
    }

    /// Abandon the doorway without broadcasting (the caller broadcasts a
    /// combined [`DoorwayMsg::ExitAll`] instead). Also cancels a pending
    /// entry.
    pub fn abandon(&mut self) {
        self.my_behind = false;
        self.entering = false;
    }

    /// Record a `cross` message (or status bit) from neighbor `j`.
    pub fn note_cross(&mut self, j: NodeId) {
        self.behind.insert(j);
    }

    /// Record an `exit` message (or exit-all, or outside status) from
    /// neighbor `j`.
    pub fn note_exit(&mut self, j: NodeId) {
        self.behind.remove(&j);
        if self.entering {
            self.seen_outside.insert(j);
        }
    }

    /// A new neighbor `j` appeared; `j_behind` is its true position if known
    /// from a status message (a brand-new neighbor defaults to outside).
    pub fn neighbor_joined(&mut self, j: NodeId, j_behind: bool) {
        if j_behind {
            self.behind.insert(j);
            self.seen_outside.remove(&j);
        } else {
            self.note_exit(j);
        }
    }

    /// Neighbor `j` disappeared.
    pub fn neighbor_left(&mut self, j: NodeId) {
        self.behind.remove(&j);
        self.seen_outside.remove(&j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> DoorwayTag {
        DoorwayTag::new(0)
    }

    #[test]
    fn synchronous_requires_simultaneous_outside() {
        let mut d = Doorway::new(tag(), DoorwayKind::Synchronous);
        let n = [NodeId(1), NodeId(2)];
        d.note_cross(NodeId(1));
        d.begin_entry(&n);
        assert!(!d.ready(&n));
        d.note_exit(NodeId(1));
        assert!(d.ready(&n));
        // p2 crosses: no longer simultaneous.
        d.note_cross(NodeId(2));
        assert!(!d.ready(&n));
    }

    #[test]
    fn asynchronous_accumulates_observations() {
        let mut d = Doorway::new(tag(), DoorwayKind::Asynchronous);
        let n = [NodeId(1), NodeId(2)];
        d.note_cross(NodeId(1));
        d.note_cross(NodeId(2));
        d.begin_entry(&n);
        assert!(!d.ready(&n));
        d.note_exit(NodeId(1));
        assert!(!d.ready(&n));
        // p1 crosses again — but it was already observed outside once.
        d.note_cross(NodeId(1));
        d.note_exit(NodeId(2));
        assert!(d.ready(&n), "each neighbor was outside at least once");
    }

    #[test]
    fn cross_and_exit_produce_broadcasts() {
        let mut d = Doorway::new(tag(), DoorwayKind::Synchronous);
        d.begin_entry(&[]);
        assert!(d.ready(&[]));
        assert_eq!(d.cross(), DoorwayMsg::Cross(tag()));
        assert!(d.is_behind());
        assert_eq!(d.exit(), DoorwayMsg::Exit(tag()));
        assert!(!d.is_behind());
    }

    #[test]
    fn new_neighbor_defaults_outside_but_status_wins() {
        let mut d = Doorway::new(tag(), DoorwayKind::Synchronous);
        let n = [NodeId(1)];
        d.begin_entry(&n);
        d.neighbor_joined(NodeId(1), true);
        assert!(!d.ready(&n));
        d.neighbor_left(NodeId(1));
        assert!(d.ready(&n));
    }

    #[test]
    fn departed_neighbor_no_longer_blocks() {
        let mut d = Doorway::new(tag(), DoorwayKind::Asynchronous);
        let n = [NodeId(1), NodeId(2)];
        d.note_cross(NodeId(1));
        d.begin_entry(&n);
        assert!(!d.ready(&n));
        // p1 moves away: condition evaluated over the remaining neighbors.
        d.neighbor_left(NodeId(1));
        let n2 = [NodeId(2)];
        assert!(d.ready(&n2));
    }

    #[test]
    #[should_panic(expected = "entry while behind")]
    fn reentry_while_behind_panics() {
        let mut d = Doorway::new(tag(), DoorwayKind::Synchronous);
        d.begin_entry(&[]);
        d.cross();
        d.begin_entry(&[]);
    }

    #[test]
    fn abandon_cancels_everything_silently() {
        let mut d = Doorway::new(tag(), DoorwayKind::Synchronous);
        d.begin_entry(&[]);
        d.cross();
        d.abandon();
        assert!(!d.is_behind());
        assert!(!d.is_entering());
    }
}
