//! A standalone protocol that exercises doorway structures in the simulator.
//!
//! The paper motivates doorways with four constructions (Figures 1–4): a
//! single synchronous or asynchronous doorway, the *double doorway* (a
//! synchronous doorway nested in an asynchronous one), and the *double
//! doorway with a return path*. [`DoorwayDemo`] runs any of these with a
//! configurable enclosed-module duration `T` (the paper's `T` in Lemmas 1–2)
//! and optional return-path repetitions `R`, recording entry/cross/exit
//! timestamps so experiments can measure crossing latencies and verify the
//! doorway guarantee.

use manet_sim::{Context, DiningState, Event, Protocol, SimTime};

use crate::message::DoorwayMsg;
use crate::single::{Doorway, DoorwayKind};
use crate::tag::{DoorwaySet, DoorwayTag};

/// Tag of the outer (or only) doorway.
pub const OUTER: DoorwayTag = DoorwayTag::new(0);
/// Tag of the inner synchronous doorway of a double structure.
pub const INNER: DoorwayTag = DoorwayTag::new(1);

const TIMER_HOLD: u64 = 0;
const TIMER_THINK: u64 = 1;

/// Which doorway construction to run (Figures 2–4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// One doorway of the given kind (Figure 2).
    Single(DoorwayKind),
    /// Synchronous doorway inside an asynchronous one (Figure 3).
    Double,
    /// Double doorway where a node re-enters the inner synchronous doorway
    /// `returns` times before exiting for good (Figure 4).
    DoubleWithReturn {
        /// Extra executions of the inner entry code (the paper's `R − 1`).
        returns: u32,
    },
}

/// Configuration of a [`DoorwayDemo`] node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemoConfig {
    /// The doorway construction to run.
    pub structure: Structure,
    /// Ticks spent behind the innermost doorway per execution (the enclosed
    /// module's duration `T`).
    pub hold_ticks: u64,
    /// If set, think for this many ticks after each completion, then start
    /// again (self-driving cyclic workload).
    pub recycle_after: Option<u64>,
}

/// A timestamped doorway-lifecycle event recorded by a demo node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemoEvent {
    /// Began the entry code of the tagged doorway.
    EntryStarted(DoorwayTag),
    /// Crossed the tagged doorway.
    Crossed(DoorwayTag),
    /// Exited the tagged doorway.
    Exited(DoorwayTag),
}

/// The demo protocol: on `Hungry`, traverse the configured doorway
/// structure, hold behind the innermost doorway for `hold_ticks`, then exit.
///
/// The node reports `Eating` while behind the innermost doorway, so the
/// usual response-time metrics measure *crossing latency*. Note that a
/// doorway alone does **not** provide mutual exclusion; demo runs must not
/// be combined with the LME safety checker.
#[derive(Debug)]
pub struct DoorwayDemo {
    cfg: DemoConfig,
    outer: Doorway,
    inner: Option<Doorway>,
    state: DiningState,
    returns_left: u32,
    started_at: Option<SimTime>,
    /// (entry-start, fully-exited) per completed traversal.
    pub completions: Vec<(SimTime, SimTime)>,
    /// Full lifecycle log for property checks.
    pub log: Vec<(SimTime, DemoEvent)>,
}

impl DoorwayDemo {
    /// Create a demo node with the given configuration.
    pub fn new(cfg: DemoConfig) -> DoorwayDemo {
        let (outer_kind, inner) = match cfg.structure {
            Structure::Single(k) => (k, None),
            Structure::Double | Structure::DoubleWithReturn { .. } => (
                DoorwayKind::Asynchronous,
                Some(Doorway::new(INNER, DoorwayKind::Synchronous)),
            ),
        };
        DoorwayDemo {
            cfg,
            outer: Doorway::new(OUTER, outer_kind),
            inner,
            state: DiningState::Thinking,
            returns_left: 0,
            started_at: None,
            completions: Vec::new(),
            log: Vec::new(),
        }
    }

    fn innermost_is_behind(&self) -> bool {
        match &self.inner {
            Some(d) => d.is_behind(),
            None => self.outer.is_behind(),
        }
    }

    fn doorway_mut(&mut self, tag: DoorwayTag) -> Option<&mut Doorway> {
        if tag == OUTER {
            Some(&mut self.outer)
        } else {
            self.inner.as_mut().filter(|d| d.tag() == tag)
        }
    }

    fn status(&self) -> DoorwaySet {
        let mut s = DoorwaySet::EMPTY;
        if self.outer.is_behind() {
            s.insert(OUTER);
        }
        if self.inner.as_ref().is_some_and(Doorway::is_behind) {
            s.insert(INNER);
        }
        s
    }

    fn try_progress(&mut self, ctx: &mut Context<'_, DoorwayMsg>) {
        loop {
            if self.outer.is_entering() && self.outer.ready(ctx.neighbors()) {
                let msg = self.outer.cross();
                ctx.broadcast(msg);
                self.log.push((ctx.time(), DemoEvent::Crossed(OUTER)));
                if let Some(inner) = &mut self.inner {
                    inner.begin_entry(ctx.neighbors());
                    self.log.push((ctx.time(), DemoEvent::EntryStarted(INNER)));
                } else {
                    self.enter_hold(ctx);
                }
                continue;
            }
            if let Some(inner) = &mut self.inner {
                if inner.is_entering() && inner.ready(ctx.neighbors()) {
                    let msg = inner.cross();
                    ctx.broadcast(msg);
                    self.log.push((ctx.time(), DemoEvent::Crossed(INNER)));
                    self.enter_hold(ctx);
                    continue;
                }
            }
            break;
        }
    }

    fn enter_hold(&mut self, ctx: &mut Context<'_, DoorwayMsg>) {
        self.state = DiningState::Eating;
        ctx.set_timer(self.cfg.hold_ticks.max(1), TIMER_HOLD);
    }

    fn finish(&mut self, ctx: &mut Context<'_, DoorwayMsg>) {
        if let Some(inner) = &mut self.inner {
            let msg = inner.exit();
            ctx.broadcast(msg);
            self.log.push((ctx.time(), DemoEvent::Exited(INNER)));
        }
        let msg = self.outer.exit();
        ctx.broadcast(msg);
        self.log.push((ctx.time(), DemoEvent::Exited(OUTER)));
        self.state = DiningState::Thinking;
        if let Some(start) = self.started_at.take() {
            self.completions.push((start, ctx.time()));
        }
        if let Some(think) = self.cfg.recycle_after {
            ctx.set_timer(think.max(1), TIMER_THINK);
        }
    }

    fn start(&mut self, ctx: &mut Context<'_, DoorwayMsg>) {
        self.state = DiningState::Hungry;
        self.returns_left = match self.cfg.structure {
            Structure::DoubleWithReturn { returns } => returns,
            _ => 0,
        };
        self.started_at = Some(ctx.time());
        self.outer.begin_entry(ctx.neighbors());
        self.log.push((ctx.time(), DemoEvent::EntryStarted(OUTER)));
        self.try_progress(ctx);
    }
}

impl Protocol for DoorwayDemo {
    type Msg = DoorwayMsg;

    fn on_event(&mut self, ev: Event<DoorwayMsg>, ctx: &mut Context<'_, DoorwayMsg>) {
        match ev {
            Event::Hungry => {
                if self.state == DiningState::Thinking {
                    self.start(ctx);
                }
            }
            Event::ExitCs => { /* demo nodes drive their own exits */ }
            Event::Timer { token: TIMER_THINK } => {
                if self.state == DiningState::Thinking {
                    self.start(ctx);
                }
            }
            Event::Timer { token: TIMER_HOLD } => {
                if !self.innermost_is_behind() {
                    return;
                }
                if self.returns_left > 0 {
                    // Return path: exit the inner synchronous doorway and
                    // immediately re-enter its entry code (Figure 4).
                    self.returns_left -= 1;
                    let inner = self.inner.as_mut().expect("return path needs inner");
                    let msg = inner.exit();
                    ctx.broadcast(msg);
                    self.log.push((ctx.time(), DemoEvent::Exited(INNER)));
                    let inner = self.inner.as_mut().expect("return path needs inner");
                    inner.begin_entry(ctx.neighbors());
                    self.log.push((ctx.time(), DemoEvent::EntryStarted(INNER)));
                    self.state = DiningState::Hungry;
                    self.try_progress(ctx);
                } else {
                    self.finish(ctx);
                }
            }
            Event::Timer { .. } => {}
            Event::Message { from, msg } => {
                match msg {
                    DoorwayMsg::Cross(tag) => {
                        if let Some(d) = self.doorway_mut(tag) {
                            d.note_cross(from);
                        }
                    }
                    DoorwayMsg::Exit(tag) => {
                        if let Some(d) = self.doorway_mut(tag) {
                            d.note_exit(from);
                        }
                    }
                    DoorwayMsg::ExitAll => {
                        self.outer.note_exit(from);
                        if let Some(inner) = &mut self.inner {
                            inner.note_exit(from);
                        }
                    }
                    DoorwayMsg::Status(set) => {
                        self.outer.neighbor_joined(from, set.contains(OUTER));
                        if let Some(inner) = &mut self.inner {
                            inner.neighbor_joined(from, set.contains(INNER));
                        }
                    }
                }
                self.try_progress(ctx);
            }
            Event::LinkUp { peer, kind } => match kind {
                manet_sim::LinkUpKind::AsStatic => {
                    self.outer.neighbor_joined(peer, false);
                    if let Some(inner) = &mut self.inner {
                        inner.neighbor_joined(peer, false);
                    }
                    let status = self.status();
                    ctx.send(peer, DoorwayMsg::Status(status));
                }
                manet_sim::LinkUpKind::AsMoving => {
                    // A mover abandons all doorways (Figure 2's handler).
                    self.outer.abandon();
                    if let Some(inner) = &mut self.inner {
                        inner.abandon();
                    }
                    ctx.broadcast(DoorwayMsg::ExitAll);
                    self.state = DiningState::Thinking;
                    self.started_at = None;
                }
            },
            Event::LinkDown { peer } => {
                self.outer.neighbor_left(peer);
                if let Some(inner) = &mut self.inner {
                    inner.neighbor_left(peer);
                }
                self.try_progress(ctx);
            }
            Event::MovementStarted | Event::MovementEnded => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{Engine, NodeId, SimConfig};

    fn demo_engine(positions: Vec<(f64, f64)>, cfg: DemoConfig) -> Engine<DoorwayDemo> {
        Engine::new(SimConfig::default(), positions, move |_| {
            DoorwayDemo::new(cfg)
        })
    }

    /// Times of `Crossed(tag)` / `Exited(tag)` events for a node.
    fn times(e: &Engine<DoorwayDemo>, n: NodeId, want: DemoEvent) -> Vec<SimTime> {
        e.protocol(n)
            .log
            .iter()
            .filter(|(_, ev)| *ev == want)
            .map(|(t, _)| *t)
            .collect()
    }

    #[test]
    fn lone_node_crosses_immediately() {
        let mut e = demo_engine(
            vec![(0.0, 0.0)],
            DemoConfig {
                structure: Structure::Single(DoorwayKind::Synchronous),
                hold_ticks: 5,
                recycle_after: None,
            },
        );
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(100));
        assert_eq!(e.protocol(NodeId(0)).completions.len(), 1);
    }

    #[test]
    fn doorway_guarantee_holds_between_two_neighbors() {
        // p0 becomes hungry well before p1; p1 must not cross until p0 exits.
        let mut e = demo_engine(
            vec![(0.0, 0.0), (1.0, 0.0)],
            DemoConfig {
                structure: Structure::Single(DoorwayKind::Synchronous),
                hold_ticks: 40,
                recycle_after: None,
            },
        );
        e.set_hungry_at(SimTime(1), NodeId(0));
        // p0's cross broadcast takes ≤ ν = 10 ticks; p1 starts entry after that.
        e.set_hungry_at(SimTime(20), NodeId(1));
        e.run_until(SimTime(1_000));
        let p0_exit = times(&e, NodeId(0), DemoEvent::Exited(OUTER))[0];
        let p1_cross = times(&e, NodeId(1), DemoEvent::Crossed(OUTER))[0];
        assert!(
            p1_cross >= p0_exit,
            "p1 crossed at {p1_cross:?} before p0 exited at {p0_exit:?}"
        );
        assert_eq!(e.protocol(NodeId(1)).completions.len(), 1);
    }

    #[test]
    fn double_doorway_completes_for_all_in_a_clique() {
        let positions: Vec<(f64, f64)> = (0..4).map(|i| (0.1 * i as f64, 0.0)).collect();
        let mut e = demo_engine(
            positions,
            DemoConfig {
                structure: Structure::Double,
                hold_ticks: 10,
                recycle_after: None,
            },
        );
        for i in 0..4 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(10_000));
        for i in 0..4 {
            assert_eq!(
                e.protocol(NodeId(i)).completions.len(),
                1,
                "node {i} never completed the double doorway"
            );
        }
    }

    #[test]
    fn return_path_reenters_inner_doorway() {
        let mut e = demo_engine(
            vec![(0.0, 0.0), (1.0, 0.0)],
            DemoConfig {
                structure: Structure::DoubleWithReturn { returns: 3 },
                hold_ticks: 5,
                recycle_after: None,
            },
        );
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(5_000));
        // 1 initial crossing + 3 returns = 4 inner crossings.
        assert_eq!(times(&e, NodeId(0), DemoEvent::Crossed(INNER)).len(), 4);
        assert_eq!(e.protocol(NodeId(0)).completions.len(), 1);
    }

    #[test]
    fn asynchronous_doorway_admits_under_contention() {
        // Center of a star with recycling leaves: the async doorway lets the
        // center in even though the leaves keep cycling.
        let positions = vec![(0.0, 0.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 1.0)];
        let mut e: Engine<DoorwayDemo> = Engine::new(SimConfig::default(), positions, |seed| {
            let is_center = seed.id == NodeId(0);
            DoorwayDemo::new(DemoConfig {
                structure: Structure::Single(DoorwayKind::Asynchronous),
                hold_ticks: 30,
                recycle_after: if is_center { None } else { Some(5) },
            })
        });
        for i in 1..4 {
            e.set_hungry_at(SimTime(1 + i as u64), NodeId(i));
        }
        e.set_hungry_at(SimTime(40), NodeId(0));
        e.run_until(SimTime(20_000));
        assert!(
            !e.protocol(NodeId(0)).completions.is_empty(),
            "center starved behind an asynchronous doorway"
        );
    }
}
