//! # `doorway` — Lamport/Choy–Singh doorways for local progress
//!
//! A *doorway* (Chapter 4 of the paper) is a pair of code fragments, *entry*
//! and *exit*. A node **crosses** the doorway when it completes the entry
//! code and **exits** when it completes the exit code; while in between it is
//! **behind** the doorway. The guarantee: if node *i* crosses before a
//! neighbor *j* begins the entry code, *j* does not cross until *i* exits.
//!
//! Two flavors differ in how the entry code checks neighbors:
//!
//! * **synchronous** — cross when all neighbors are observed outside
//!   *simultaneously*;
//! * **asynchronous** — cross once each neighbor has been observed outside
//!   *at least once* (independently).
//!
//! The crate provides the single-doorway state machine ([`Doorway`]), the
//! composite status types used when nodes move between neighborhoods, and a
//! standalone [`demo::DoorwayDemo`] protocol that runs doorway structures
//! (single, double, double-with-return-path) inside the simulator — used to
//! reproduce Figures 1–4 experimentally.
//!
//! Doorway state machines are *non-blocking*: the embedding protocol calls
//! [`Doorway::begin_entry`], feeds observed `cross`/`exit` messages and
//! neighborhood changes in, and polls [`Doorway::ready`] after each event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
mod message;
mod single;
mod tag;

pub use message::DoorwayMsg;
pub use single::{Doorway, DoorwayKind};
pub use tag::{DoorwaySet, DoorwayTag};
