//! Doorway wire messages.

use crate::tag::{DoorwaySet, DoorwayTag};

/// Messages exchanged by doorway state machines (Figure 2 of the paper).
///
/// `Cross`/`Exit` are the per-doorway broadcasts of the entry and exit code;
/// `ExitAll` is broadcast by a moving node that abandons every doorway it had
/// crossed (Algorithm 3, Line 52 and the "LinkUp while moving" handler of
/// Figure 2); `Status` carries a static node's position relative to all
/// doorways to a newly arrived neighbor (the `L[i]` part of Line 46).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoorwayMsg {
    /// The sender crossed doorway `0` (completed its entry code).
    Cross(DoorwayTag),
    /// The sender exited doorway `0` (completed its exit code).
    Exit(DoorwayTag),
    /// The sender exited every doorway (it moved to a new neighborhood).
    ExitAll,
    /// The sender is currently behind exactly the doorways in `0`.
    Status(DoorwaySet),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_compare() {
        let t = DoorwayTag::new(1);
        assert_eq!(DoorwayMsg::Cross(t), DoorwayMsg::Cross(t));
        assert_ne!(DoorwayMsg::Cross(t), DoorwayMsg::Exit(t));
        assert_eq!(DoorwayMsg::ExitAll, DoorwayMsg::ExitAll);
    }
}
