//! Doorway tags and tag sets.

use std::fmt;

/// Identifies one doorway instance among the (up to 8) doorways a protocol
/// runs concurrently.
///
/// Algorithm 1 of the paper uses four doorways: the asynchronous and
/// synchronous doorways of the recoloring module (`AD^r`, `SD^r`) and of the
/// fork-collection module (`AD^f`, `SD^f`). Tags multiplex their messages
/// over one channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DoorwayTag(u8);

impl DoorwayTag {
    /// Create a tag; `index` must be below 8.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub const fn new(index: u8) -> DoorwayTag {
        assert!(index < 8, "doorway tag out of range");
        DoorwayTag(index)
    }

    /// The raw index of this tag.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for DoorwayTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dw{}", self.0)
    }
}

/// A compact set of [`DoorwayTag`]s, used in status summaries exchanged when
/// a moving node arrives in a new neighborhood (the `L[i]` part of the
/// ⟨update-color, L⟩ message of Algorithm 3, Line 46).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DoorwaySet(u8);

impl DoorwaySet {
    /// The empty set (outside every doorway).
    pub const EMPTY: DoorwaySet = DoorwaySet(0);

    /// Insert `tag`.
    pub fn insert(&mut self, tag: DoorwayTag) {
        self.0 |= 1 << tag.index();
    }

    /// Remove `tag`.
    pub fn remove(&mut self, tag: DoorwayTag) {
        self.0 &= !(1 << tag.index());
    }

    /// Whether `tag` is in the set.
    pub fn contains(self, tag: DoorwayTag) -> bool {
        self.0 & (1 << tag.index()) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the tags in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = DoorwayTag> {
        (0..8u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(DoorwayTag::new)
    }
}

impl fmt::Debug for DoorwaySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<DoorwayTag> for DoorwaySet {
    fn from_iter<I: IntoIterator<Item = DoorwayTag>>(iter: I) -> Self {
        let mut s = DoorwaySet::EMPTY;
        for t in iter {
            s.insert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DoorwaySet::EMPTY;
        assert!(s.is_empty());
        let a = DoorwayTag::new(0);
        let b = DoorwayTag::new(3);
        s.insert(a);
        s.insert(b);
        assert!(s.contains(a) && s.contains(b));
        s.remove(a);
        assert!(!s.contains(a) && s.contains(b));
    }

    #[test]
    fn iterate_in_index_order() {
        let s: DoorwaySet = [DoorwayTag::new(5), DoorwayTag::new(1)]
            .into_iter()
            .collect();
        let v: Vec<u8> = s.iter().map(DoorwayTag::index).collect();
        assert_eq!(v, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tag_range_checked() {
        let _ = DoorwayTag::new(8);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", DoorwayTag::new(2)), "dw2");
        let s: DoorwaySet = [DoorwayTag::new(2)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{dw2}");
    }
}
