//! Randomized test of the defining doorway guarantee (Chapter 4): if node
//! `i` crosses a doorway and its neighbor `j` begins the entry code after
//! `i`'s crossing became visible (one max message delay later), then `j`
//! does not cross until `i` has exited.
//!
//! Random topologies, staggered hungry schedules, random hold times and all
//! three structures are exercised; the property is checked pairwise from
//! the nodes' recorded event logs. Formerly a proptest property; now a
//! seeded battery over the workspace's own deterministic RNG so the suite
//! builds offline.

use doorway::demo::{DemoConfig, DemoEvent, DoorwayDemo, Structure, INNER, OUTER};
use doorway::{DoorwayKind, DoorwayTag};
use manet_sim::{Engine, NodeId, SimConfig, SimRng, SimTime};

#[derive(Clone, Debug)]
struct Plan {
    structure: Structure,
    positions: Vec<(f64, f64)>,
    hungry: Vec<u64>,
    hold: u64,
    seed: u64,
}

fn random_structure(rng: &mut SimRng) -> Structure {
    match rng.gen_range(0..4u32) {
        0 => Structure::Single(DoorwayKind::Synchronous),
        1 => Structure::Single(DoorwayKind::Asynchronous),
        2 => Structure::Double,
        _ => Structure::DoubleWithReturn {
            returns: rng.gen_range(1..4u32),
        },
    }
}

fn random_plan(rng: &mut SimRng) -> Plan {
    let structure = random_structure(rng);
    let n = rng.gen_range(2..8usize);
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_f64() * 5.0, rng.gen_f64() * 5.0))
        .collect();
    let hold = rng.gen_range(10..120u64);
    let seed = rng.next_u64();
    let hungry: Vec<u64> = (0..n).map(|_| rng.gen_range(1..2_000u64)).collect();
    Plan {
        structure,
        positions,
        hungry,
        hold,
        seed,
    }
}

/// Extract `(time, event)` pairs of one node for one doorway tag.
fn phases(
    engine: &Engine<DoorwayDemo>,
    node: NodeId,
    tag: DoorwayTag,
) -> (Vec<SimTime>, Vec<SimTime>, Vec<SimTime>) {
    let mut entries = vec![];
    let mut crosses = vec![];
    let mut exits = vec![];
    for &(t, ev) in &engine.protocol(node).log {
        match ev {
            DemoEvent::EntryStarted(x) if x == tag => entries.push(t),
            DemoEvent::Crossed(x) if x == tag => crosses.push(t),
            DemoEvent::Exited(x) if x == tag => exits.push(t),
            _ => {}
        }
    }
    (entries, crosses, exits)
}

fn check_guarantee(engine: &Engine<DoorwayDemo>, tag: DoorwayTag, nu: u64) -> Result<(), String> {
    let world = engine.world();
    let n = world.len() as u32;
    for i in 0..n {
        let (_, crosses_i, exits_i) = phases(engine, NodeId(i), tag);
        for (k, &c_i) in crosses_i.iter().enumerate() {
            // Matching exit (or end of run if still behind).
            let e_i = exits_i.get(k).copied().unwrap_or(SimTime::MAX);
            for &j in world.neighbors(NodeId(i)) {
                let (entries_j, crosses_j, _) = phases(engine, j, tag);
                for &b_j in &entries_j {
                    // Entry began strictly after i's crossing became
                    // visible. A handler may broadcast several doorway
                    // messages back-to-back and the FIFO channel serializes
                    // them one tick apart, so visibility lags ν by up to
                    // the burst size; 8 is a safe envelope (≤ 4 doorway
                    // messages per handler, per neighbor).
                    if b_j <= c_i + nu + 8 || b_j >= e_i {
                        continue;
                    }
                    if let Some(&cross_j) = crosses_j.iter().find(|&&c| c >= b_j) {
                        if cross_j < e_i {
                            return Err(format!(
                                "guarantee violated on {tag:?}: p{i} crossed at {c_i}, exits {e_i}; \
                                 p{j} began entry at {b_j} and crossed at {cross_j} < {e_i}"
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[test]
fn doorway_guarantee_holds_under_random_schedules() {
    let mut rng = SimRng::seed_from_u64(0xD00D_0012);
    for case in 0..40u32 {
        let plan = random_plan(&mut rng);
        let cfg = SimConfig {
            seed: plan.seed,
            ..SimConfig::default()
        };
        let nu = cfg.max_message_delay;
        let demo = DemoConfig {
            structure: plan.structure,
            hold_ticks: plan.hold,
            recycle_after: Some(25),
        };
        let mut engine: Engine<DoorwayDemo> =
            Engine::new(cfg, plan.positions.clone(), move |_| DoorwayDemo::new(demo));
        for (i, &t) in plan.hungry.iter().enumerate() {
            engine.set_hungry_at(SimTime(t), NodeId(i as u32));
        }
        engine.run_until(SimTime(12_000));
        if let Err(e) = check_guarantee(&engine, OUTER, nu) {
            panic!("case {case} ({plan:?}): {e}");
        }
        if !matches!(plan.structure, Structure::Single(_)) {
            if let Err(e) = check_guarantee(&engine, INNER, nu) {
                panic!("case {case} ({plan:?}): {e}");
            }
        }
    }
}
