//! Exhaustive response-time certification of small instances.
//!
//! `certify` exhausts the **extremal** schedule space of an instance —
//! every delivery whose timing can matter branches between its earliest
//! and latest legal delay — and reports the exact worst-case response
//! time observed, as a machine-readable [`Certificate`] that
//! `tests/paper_bounds.rs` asserts against the paper's O(n) static-case
//! claim for Algorithm 2 (Theorem 26).
//!
//! Two deliberate differences from [`crate::explore`]:
//!
//! * **Timing-exact branching.** The explorer's `forced()` reduction
//!   preserves event *order* but not event *times*: a lone delivery in
//!   its window still arrives up to ν − 1 ticks apart across its legal
//!   delays, which is invisible to the property checks but changes
//!   response times. Certification therefore branches at every delivery
//!   except those whose arrival instant is pinned (degenerate window or
//!   full FIFO clamp), and DPOR stays off.
//! * **Dedup is exact here.** The absolute state digest covers every
//!   queue item with its absolute dispatch time and the monotone
//!   eating-session counters, and evolution from a state does not depend
//!   on the clock reading — so two runs reaching equal digests have
//!   identical continuations with identical absolute times, and the set
//!   of nodes already fed agrees. A pruned subtree's response times are
//!   exactly the prefix times of the pruned run (observed when that run
//!   itself executed) plus continuation times already explored from the
//!   digest's first occurrence: the worst case is preserved.
//!
//! The certificate's `space` field records the `"extremal"` caveat: a
//! worst case over interior delays (2..ν−1) is not enumerated. Response
//! time is measured per node from the hungry command at tick 1 to the
//! first `→ Eating` transition.

use crate::explore::run_wave;
use crate::spec::CheckSpec;
use crate::strategy::{Plan, RecorderMode};
use crate::table::{DigestTable, Insert};

/// Certification bounds.
#[derive(Clone, Debug)]
pub struct CertifyConfig {
    /// Maximum schedules before giving up with `complete: false`.
    pub max_schedules: usize,
    /// Worker threads per wave (results are independent of this).
    pub jobs: usize,
    /// Deduplicate subtrees by absolute state digest (exact here; the
    /// knob exists so tests can differentially validate the dedup proof).
    pub dedup: bool,
}

impl Default for CertifyConfig {
    fn default() -> CertifyConfig {
        CertifyConfig {
            max_schedules: 2_000_000,
            jobs: 1,
            dedup: true,
        }
    }
}

/// Machine-readable outcome of one certification run.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Algorithm name.
    pub alg: String,
    /// Topology label.
    pub topo: String,
    /// Number of nodes.
    pub n: usize,
    /// Maximum message delay ν.
    pub nu: u64,
    /// Eating duration in ticks.
    pub eat: u64,
    /// Engine seed.
    pub seed: u64,
    /// Run horizon in ticks.
    pub horizon: u64,
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the extremal schedule space was exhausted. Only a complete,
    /// violation-free, fully-fed certificate certifies anything.
    pub complete: bool,
    /// Largest number of branch points in any single run.
    pub max_branch_points: usize,
    /// Subtrees pruned by exact absolute-digest dedup.
    pub dedup_prunes: usize,
    /// Worst response time observed: hungry at tick 1 to first `→ Eating`,
    /// maximized over nodes and schedules.
    pub worst_rt: u64,
    /// The node attaining `worst_rt`.
    pub worst_rt_node: u32,
    /// Branch-point delays of the schedule attaining `worst_rt`.
    pub worst_schedule: Vec<u64>,
    /// Which schedule space was exhausted (always `"extremal"`: earliest
    /// and latest legal delay per branch point, interior delays excluded).
    pub space: String,
    /// `property: detail` of a violation, if any schedule violated a
    /// checked property (the certificate is then void).
    pub violation: Option<String>,
    /// Runs that failed to reach quiescence with every node fed; any such
    /// run voids the certificate (its response times are unmeasurable).
    pub unfed_runs: usize,
}

impl Certificate {
    /// Whether this certificate establishes `worst_rt` as the exact bound
    /// over the extremal schedule space.
    pub fn holds(&self) -> bool {
        self.complete && self.violation.is_none() && self.unfed_runs == 0
    }

    /// Serialize as a single JSON line with a fixed key order.
    pub fn to_json(&self) -> String {
        let sched: Vec<String> = self.worst_schedule.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"version\":1,\"alg\":\"{}\",\"topo\":\"{}\",\"n\":{},\"nu\":{},",
                "\"eat\":{},\"seed\":{},\"horizon\":{},\"schedules\":{},\"complete\":{},",
                "\"max_branch_points\":{},\"dedup_prunes\":{},\"worst_rt\":{},",
                "\"worst_rt_node\":{},\"worst_schedule\":[{}],\"space\":\"{}\",",
                "\"violation\":{},\"unfed_runs\":{},\"holds\":{}}}"
            ),
            self.alg,
            self.topo,
            self.n,
            self.nu,
            self.eat,
            self.seed,
            self.horizon,
            self.schedules,
            self.complete,
            self.max_branch_points,
            self.dedup_prunes,
            self.worst_rt,
            self.worst_rt_node,
            sched.join(","),
            self.space,
            match &self.violation {
                Some(v) => format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")),
                None => "null".to_string(),
            },
            self.unfed_runs,
            self.holds(),
        )
    }
}

/// Exhaust the extremal schedule space of `spec` and certify its worst
/// observed response time. Same wave determinism as [`crate::explore`]:
/// the result is a pure function of `(spec, cfg.max_schedules, cfg.dedup)`
/// and independent of `cfg.jobs`.
pub fn certify(spec: &CheckSpec, cfg: &CertifyConfig) -> Certificate {
    let rmode = RecorderMode {
        digest: None, // the DFS-with-dedup plan already asks for absolute digests
        branch_all: true,
    };
    let table = DigestTable::with_capacity(1 << 20);
    let mut cert = Certificate {
        alg: spec.alg.name().to_string(),
        topo: spec.topo.clone(),
        n: spec.n,
        nu: spec.nu,
        eat: spec.eat,
        seed: spec.seed,
        horizon: spec.horizon,
        schedules: 0,
        complete: false,
        max_branch_points: 0,
        dedup_prunes: 0,
        worst_rt: 0,
        worst_rt_node: 0,
        worst_schedule: Vec::new(),
        space: "extremal".to_string(),
        violation: None,
        unfed_runs: 0,
    };
    let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
    let mut truncated = false;
    while !frontier.is_empty() {
        let budget = cfg.max_schedules - cert.schedules;
        if budget == 0 {
            return cert; // budget exhausted: incomplete, certifies nothing
        }
        let wave: Vec<Vec<u8>> = if frontier.len() > budget {
            truncated = true;
            frontier.drain(..budget).collect()
        } else {
            std::mem::take(&mut frontier)
        };
        let plans: Vec<Plan> = wave
            .iter()
            .map(|prefix| Plan::Dfs {
                prefix: prefix.clone(),
                dedup: cfg.dedup,
            })
            .collect();
        let verdicts = run_wave(spec, &plans, rmode, cfg.jobs);
        cert.schedules += verdicts.len();
        for (prefix, verdict) in wave.iter().zip(&verdicts) {
            cert.max_branch_points = cert.max_branch_points.max(verdict.choices.len());
            if let Some(v) = &verdict.violation {
                cert.violation = Some(format!("{}: {}", v.property, v.detail));
                return cert;
            }
            if !verdict.drained || verdict.first_eat.iter().any(Option::is_none) {
                cert.unfed_runs += 1;
            } else {
                // Response time: hungry commands land at tick 1.
                for (node, first) in verdict.first_eat.iter().enumerate() {
                    let rt = first.expect("checked above").saturating_sub(1);
                    if rt > cert.worst_rt {
                        cert.worst_rt = rt;
                        cert.worst_rt_node = node as u32;
                        cert.worst_schedule = verdict.choices.iter().map(|c| c.delay).collect();
                    }
                }
            }
            // Children: flip each default-earliest branch point at or
            // beyond the prefix (no depth bound — certification exhausts).
            for i in prefix.len()..verdict.choices.len() {
                if cfg.dedup {
                    if let Some(digest) = verdict.choices[i].digest {
                        if table.insert(digest) == Insert::Present {
                            cert.dedup_prunes += 1;
                            continue;
                        }
                    }
                }
                let mut child: Vec<u8> = verdict.choices[..i].iter().map(|c| c.index).collect();
                child.push(1);
                frontier.push(child);
            }
        }
    }
    cert.complete = !truncated;
    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::AlgKind;

    #[test]
    fn certifies_a_trivial_instance_exactly() {
        // Two nodes, one link: node 0 holds the fork and eats immediately;
        // node 1 needs one request and one fork message.
        let mut spec = CheckSpec::new(AlgKind::A2, "line:2", 2, vec![(0, 1)]);
        spec.nu = 2;
        spec.horizon = 200;
        let cert = certify(&spec, &CertifyConfig::default());
        assert!(cert.holds(), "trivial instance must certify: {cert:?}");
        assert!(cert.schedules >= 1);
        assert!(cert.worst_rt > 0, "node 1 cannot eat instantly");
        let json = cert.to_json();
        assert!(json.contains("\"space\":\"extremal\""));
        assert!(json.contains("\"holds\":true"));
    }

    #[test]
    fn dedup_does_not_change_the_certified_bound() {
        let mut spec = CheckSpec::new(AlgKind::A2, "line:2", 2, vec![(0, 1)]);
        spec.nu = 2;
        spec.horizon = 200;
        let with = certify(&spec, &CertifyConfig::default());
        let without = certify(
            &spec,
            &CertifyConfig {
                dedup: false,
                ..CertifyConfig::default()
            },
        );
        assert!(with.holds() && without.holds());
        assert_eq!(with.worst_rt, without.worst_rt);
        assert!(with.schedules <= without.schedules);
    }

    #[test]
    fn jobs_do_not_change_the_certificate() {
        let mut spec = CheckSpec::new(AlgKind::A2, "line:2", 2, vec![(0, 1)]);
        spec.nu = 2;
        spec.horizon = 200;
        let one = certify(&spec, &CertifyConfig::default());
        let four = certify(
            &spec,
            &CertifyConfig {
                jobs: 4,
                ..CertifyConfig::default()
            },
        );
        assert_eq!(one.to_json(), four.to_json());
    }
}
