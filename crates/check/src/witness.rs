//! Serializable counterexamples: emit, parse, shrink, replay.
//!
//! A witness is a complete, self-contained description of one violating
//! run: the instance (algorithm, topology, seed, bounds, workload,
//! mutation) plus the delay chosen at every branch point. Replaying it
//! re-runs the deterministic engine and reproduces the identical trace and
//! violation, byte for byte, on any machine.

use harness::AlgKind;

use crate::spec::{CheckSpec, Mutation};
use crate::strategy::Plan;
use crate::verdict::{run_schedule, RunVerdict};

/// The minimum legal delivery delay (`SimConfig::min_message_delay` in
/// every checker run). Replay defaults to this beyond the recorded
/// choices, so trailing entries equal to it are redundant.
pub const MIN_DELAY: u64 = 1;

/// A serializable counterexample schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Algorithm name (as printed by `AlgKind::name`).
    pub alg: String,
    /// Topology label (e.g. `line:3`).
    pub topo: String,
    /// Number of nodes.
    pub n: usize,
    /// Undirected edges.
    pub edges: Vec<(u32, u32)>,
    /// Engine seed.
    pub seed: u64,
    /// Maximum message delay ν.
    pub nu: u64,
    /// Run horizon in ticks.
    pub horizon: u64,
    /// Fixed eating duration in ticks.
    pub eat: u64,
    /// Nodes hungry at tick 1.
    pub hungry: Vec<u32>,
    /// Mutation name (see `Mutation::name`).
    pub mutation: String,
    /// Whether the run used the recycling liveness workload (see
    /// `CheckSpec::liveness`). Absent in pre-liveness witness files, which
    /// parse as `false`.
    pub liveness: bool,
    /// Thinking time of the liveness workload; parses as 10 when absent.
    pub think: u64,
    /// Violated property.
    pub property: String,
    /// Deterministic description of the violation.
    pub detail: String,
    /// Delay per branch point, in encounter order.
    pub choices: Vec<u64>,
}

impl Witness {
    /// Assemble a witness from a spec, a schedule, and its violation.
    pub fn new(spec: &CheckSpec, choices: Vec<u64>, property: &str, detail: &str) -> Witness {
        Witness {
            alg: spec.alg.name().to_string(),
            topo: spec.topo.clone(),
            n: spec.n,
            edges: spec.edges.clone(),
            seed: spec.seed,
            nu: spec.nu,
            horizon: spec.horizon,
            eat: spec.eat,
            hungry: spec.hungry.clone(),
            mutation: spec.mutation.name().to_string(),
            liveness: spec.liveness,
            think: spec.think,
            property: property.to_string(),
            detail: detail.to_string(),
            choices,
        }
    }

    /// Rebuild the check instance this witness was recorded against.
    ///
    /// # Errors
    ///
    /// Returns a message if the algorithm or mutation name is unknown or
    /// the rebuilt spec fails validation.
    pub fn to_spec(&self) -> Result<CheckSpec, String> {
        let alg = AlgKind::extended()
            .into_iter()
            .find(|k| k.name() == self.alg)
            .ok_or_else(|| format!("witness names unknown algorithm '{}'", self.alg))?;
        let spec = CheckSpec {
            alg,
            topo: self.topo.clone(),
            n: self.n,
            edges: self.edges.clone(),
            seed: self.seed,
            nu: self.nu,
            horizon: self.horizon,
            eat: self.eat,
            hungry: self.hungry.clone(),
            mutation: Mutation::parse(&self.mutation)?,
            event_queue: manet_sim::EventQueueKind::default(),
            // Witnesses describe bare-channel schedules; the shim's own
            // timers would shift every branch point, so replay never arms it.
            arq: None,
            liveness: self.liveness,
            think: self.think,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize as a single JSON line with a fixed key order.
    pub fn to_json(&self) -> String {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(a, b)| format!("[{a},{b}]"))
            .collect();
        let hungry: Vec<String> = self.hungry.iter().map(u32::to_string).collect();
        let choices: Vec<String> = self.choices.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"version\":1,\"alg\":{},\"topo\":{},\"n\":{},\"edges\":[{}],",
                "\"seed\":{},\"nu\":{},\"horizon\":{},\"eat\":{},\"hungry\":[{}],",
                "\"mutation\":{},\"liveness\":{},\"think\":{},",
                "\"property\":{},\"detail\":{},\"choices\":[{}]}}"
            ),
            json_str(&self.alg),
            json_str(&self.topo),
            self.n,
            edges.join(","),
            self.seed,
            self.nu,
            self.horizon,
            self.eat,
            hungry.join(","),
            json_str(&self.mutation),
            u64::from(self.liveness),
            self.think,
            json_str(&self.property),
            json_str(&self.detail),
            choices.join(","),
        )
    }

    /// Parse a witness produced by [`Witness::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input or a
    /// missing/ill-typed key.
    pub fn from_json(text: &str) -> Result<Witness, String> {
        let fields = parse_object(text)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("witness is missing key '{key}'"))
        };
        let num = |key: &str| -> Result<u64, String> {
            match get(key)? {
                JVal::Num(v) => Ok(*v),
                _ => Err(format!("witness key '{key}' must be a number")),
            }
        };
        let string = |key: &str| -> Result<String, String> {
            match get(key)? {
                JVal::Str(s) => Ok(s.clone()),
                _ => Err(format!("witness key '{key}' must be a string")),
            }
        };
        let nums = |key: &str| -> Result<Vec<u64>, String> {
            match get(key)? {
                JVal::Arr(items) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Num(n) => Ok(*n),
                        _ => Err(format!("witness key '{key}' must hold numbers")),
                    })
                    .collect(),
                _ => Err(format!("witness key '{key}' must be an array")),
            }
        };
        // Keys added after the format shipped parse with their pre-existing
        // default, so old witness files replay unchanged.
        let num_or = |key: &str, default: u64| -> Result<u64, String> {
            match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                None => Ok(default),
                Some(JVal::Num(v)) => Ok(*v),
                Some(_) => Err(format!("witness key '{key}' must be a number")),
            }
        };
        if num("version")? != 1 {
            return Err("unsupported witness version".into());
        }
        let edges = match get("edges")? {
            JVal::Arr(items) => items
                .iter()
                .map(|v| match v {
                    JVal::Arr(pair) => match pair.as_slice() {
                        [JVal::Num(a), JVal::Num(b)] => Ok((*a as u32, *b as u32)),
                        _ => Err("each edge must be a [a,b] pair".to_string()),
                    },
                    _ => Err("each edge must be a [a,b] pair".to_string()),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("witness key 'edges' must be an array".into()),
        };
        Ok(Witness {
            alg: string("alg")?,
            topo: string("topo")?,
            n: num("n")? as usize,
            edges,
            seed: num("seed")?,
            nu: num("nu")?,
            horizon: num("horizon")?,
            eat: num("eat")?,
            hungry: nums("hungry")?.into_iter().map(|v| v as u32).collect(),
            mutation: string("mutation")?,
            liveness: num_or("liveness", 0)? != 0,
            think: num_or("think", 10)?,
            property: string("property")?,
            detail: string("detail")?,
            choices: nums("choices")?,
        })
    }
}

/// Replay a witness: rebuild its spec and re-run its recorded schedule.
///
/// # Errors
///
/// Returns a message if the witness does not describe a valid instance.
pub fn replay(witness: &Witness) -> Result<(CheckSpec, RunVerdict), String> {
    let spec = witness.to_spec()?;
    let verdict = run_schedule(
        &spec,
        &Plan::Replay {
            delays: witness.choices.clone(),
        },
    );
    Ok((spec, verdict))
}

/// Shrink a violating schedule to a minimal counterexample for the same
/// property: drop hungry commands, truncate the choice suffix, and reset
/// individual choices to the earliest delay — keeping every change that
/// still reproduces `property`. Costs at most `budget` replays; returns
/// the shrunk spec, the shrunk delays, and the number of replays spent.
pub fn shrink(
    spec: &CheckSpec,
    delays: Vec<u64>,
    property: &str,
    budget: usize,
) -> (CheckSpec, Vec<u64>, usize) {
    let mut spec = spec.clone();
    let mut best = delays;
    let mut runs = 0usize;
    let still_fails = |spec: &CheckSpec, delays: &[u64], runs: &mut usize| -> bool {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        run_schedule(
            spec,
            &Plan::Replay {
                delays: delays.to_vec(),
            },
        )
        .violation
        .is_some_and(|v| v.property == property)
    };

    // Pass 1: drop hungry commands, last to first (fewer contenders is a
    // structurally simpler counterexample).
    let mut i = spec.hungry.len();
    while i > 0 {
        i -= 1;
        if spec.hungry.len() <= 1 {
            break;
        }
        let mut candidate = spec.clone();
        candidate.hungry.remove(i);
        if still_fails(&candidate, &best, &mut runs) {
            spec = candidate;
        }
    }

    // Pass 2: truncate the choice suffix — halving first, then one by one.
    // Replay defaults to the earliest delay past the end of the list.
    loop {
        let half = best.len() / 2;
        if half == 0 || !still_fails(&spec, &best[..half], &mut runs) {
            break;
        }
        best.truncate(half);
    }
    while !best.is_empty() && still_fails(&spec, &best[..best.len() - 1], &mut runs) {
        best.pop();
    }

    // Pass 3: normalize surviving choices to the earliest delay where the
    // violation does not depend on them.
    for i in 0..best.len() {
        if best[i] != MIN_DELAY {
            let saved = best[i];
            best[i] = MIN_DELAY;
            if !still_fails(&spec, &best, &mut runs) {
                best[i] = saved;
            }
        }
    }

    // Trailing earliest-delay entries are replay's default: drop for free.
    while best.last() == Some(&MIN_DELAY) {
        best.pop();
    }

    (spec, best, runs)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The JSON subset a witness uses: unsigned numbers, strings, and arrays.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JVal {
    Num(u64),
    Str(String),
    Arr(Vec<JVal>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of witness JSON",
                b as char, self.pos
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string in witness JSON".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} in witness JSON")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "witness JSON is not UTF-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start} of witness JSON"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|_| "number out of range in witness JSON".to_string())
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() => Ok(JVal::Num(self.number()?)),
            other => Err(format!(
                "unexpected {other:?} at byte {} of witness JSON",
                self.pos
            )),
        }
    }
}

fn parse_object(text: &str) -> Result<Vec<(String, JVal)>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut fields = Vec::new();
    if p.peek() == Some(b'}') {
        return Ok(fields);
    }
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        let val = p.value()?;
        fields.push((key, val));
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => return Ok(fields),
            _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Witness {
        Witness {
            alg: "A1-greedy".into(),
            topo: "line:3".into(),
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            seed: 0xA77D_2008,
            nu: 10,
            horizon: 4000,
            eat: 10,
            hungry: vec![0, 2],
            mutation: "no-sdf-guard".into(),
            liveness: false,
            think: 10,
            property: "lme-safety".into(),
            detail: "neighbors p0 and p1 both eating at t=37".into(),
            choices: vec![10, 1, 7],
        }
    }

    #[test]
    fn json_round_trips() {
        let w = sample();
        let json = w.to_json();
        assert!(json.starts_with("{\"version\":1,\"alg\":\"A1-greedy\""));
        assert_eq!(Witness::from_json(&json).unwrap(), w);
    }

    #[test]
    fn json_escapes_round_trip() {
        let mut w = sample();
        w.detail = "quote \" backslash \\ newline \n control \u{1} done".into();
        assert_eq!(Witness::from_json(&w.to_json()).unwrap(), w);
    }

    #[test]
    fn liveness_keys_round_trip_and_default_when_absent() {
        let mut w = sample();
        w.liveness = true;
        w.think = 25;
        let json = w.to_json();
        assert!(json.contains("\"liveness\":1,\"think\":25"));
        assert_eq!(Witness::from_json(&json).unwrap(), w);
        // A pre-liveness witness file (no such keys) parses with defaults.
        let legacy = json
            .replace("\"liveness\":1,\"think\":25,", "")
            .replace("\"mutation\":\"no-sdf-guard\"", "\"mutation\":\"none\"");
        let parsed = Witness::from_json(&legacy).unwrap();
        assert!(!parsed.liveness);
        assert_eq!(parsed.think, 10);
    }

    #[test]
    fn parser_rejects_garbage_and_missing_keys() {
        assert!(Witness::from_json("not json").is_err());
        assert!(Witness::from_json("{\"version\":1}").is_err());
        assert!(Witness::from_json("{\"version\":2,\"alg\":\"A2\"}").is_err());
    }

    #[test]
    fn to_spec_validates_algorithm_and_mutation_names() {
        let mut w = sample();
        w.to_spec().unwrap();
        w.alg = "A9-quantum".into();
        assert!(w.to_spec().is_err());
        let mut w = sample();
        w.mutation = "bogus".into();
        assert!(w.to_spec().is_err());
    }
}
