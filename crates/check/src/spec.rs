//! The model-checking problem instance: algorithm, topology, workload,
//! bounds, and an optional mutation that deliberately breaks the algorithm
//! (used to validate that the checker actually finds bugs).

use harness::AlgKind;
use manet_sim::{ArqConfig, EventQueueKind};

/// A deliberate, test-only defect injected into the algorithm under check.
///
/// The checker's own sanity suite enables a mutation, verifies that
/// exploration finds the resulting violation, and that the shrunk witness
/// replays to the same violation. With [`Mutation::None`] the algorithms are
/// run exactly as shipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: check the algorithm as implemented.
    #[default]
    None,
    /// Disable the behind-SD^f status check of Algorithm 1's request
    /// arbitration (Lines 10–16): a node hands its fork away even while
    /// eating, breaking local mutual exclusion. Only meaningful for the
    /// Algorithm 1 family (including the Choy–Singh baseline built on it).
    NoSdfGuard,
    /// Make every Algorithm 2 node silently drop fork requests arriving
    /// from node 0 — an unfair fork policy that starves the victim after
    /// its first meal while its neighbors keep cycling. Breaks liveness
    /// (never safety): `lme check --liveness` must find the resulting
    /// starvation lasso. Only meaningful for Algorithm 2.
    UnfairFork,
}

impl Mutation {
    /// Stable textual name (used in witness files and on the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::NoSdfGuard => "no-sdf-guard",
            Mutation::UnfairFork => "unfair-fork",
        }
    }

    /// Parse a textual name produced by [`Mutation::name`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid spellings.
    pub fn parse(s: &str) -> Result<Mutation, String> {
        match s {
            "none" => Ok(Mutation::None),
            "no-sdf-guard" => Ok(Mutation::NoSdfGuard),
            "unfair-fork" => Ok(Mutation::UnfairFork),
            other => Err(format!(
                "unknown mutation '{other}' (expected 'none', 'no-sdf-guard' or 'unfair-fork')"
            )),
        }
    }
}

/// One model-checking instance: everything needed to run a schedule
/// deterministically except the schedule itself.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// Algorithm under check.
    pub alg: AlgKind,
    /// Human-readable topology label (e.g. `line:3`), carried into witnesses.
    pub topo: String,
    /// Number of nodes.
    pub n: usize,
    /// Undirected edges as `(a, b)` pairs with `a, b < n`.
    pub edges: Vec<(u32, u32)>,
    /// Engine seed (fixes everything except the injected schedule choices).
    pub seed: u64,
    /// Maximum message delay ν in ticks; each delivery delay is chosen from
    /// `[1, ν]`, and those choices *are* the schedule space.
    pub nu: u64,
    /// Horizon in ticks; a run also ends early once the event queue drains.
    pub horizon: u64,
    /// Fixed eating duration in ticks (the workload exits the critical
    /// section this long after entry).
    pub eat: u64,
    /// Nodes made hungry at tick 1.
    pub hungry: Vec<u32>,
    /// Optional deliberate defect (see [`Mutation`]).
    pub mutation: Mutation,
    /// Event-queue core the engine runs schedules on. Both cores produce
    /// identical verdicts (that equivalence is itself under test in
    /// `tests/queue_equivalence.rs`); the knob exists so the checker can be
    /// pointed at either implementation.
    pub event_queue: EventQueueKind,
    /// Optional ARQ shim configuration. `None` (the default) checks the
    /// bare channel exactly as before; `Some` interposes the reliable-
    /// delivery shim so schedules explore its retransmission machinery too.
    pub arq: Option<ArqConfig>,
    /// Liveness mode: nodes become hungry again `think` ticks after every
    /// exit (so runs cycle instead of draining), progress digests are
    /// attached to every delivery, and each run is scanned for a
    /// *starvation lasso* — a repeated progress digest bracketing a node
    /// that stays hungry across the whole cycle (see DESIGN.md §9).
    pub liveness: bool,
    /// Thinking time in ticks between an exit and the next hungry command
    /// of the liveness workload. Ignored unless [`CheckSpec::liveness`].
    /// Keeping it at ν or above (like `eat`) preserves the DPOR window
    /// argument for hook-scheduled commands.
    pub think: u64,
}

impl CheckSpec {
    /// Build a spec with the default bounds: seed `0xA77D_2008`, ν = 10,
    /// horizon 4000, eating time 10, and *every* node initially hungry
    /// (maximum contention, the regime where interleavings matter most).
    pub fn new(
        alg: AlgKind,
        topo: impl Into<String>,
        n: usize,
        edges: Vec<(u32, u32)>,
    ) -> CheckSpec {
        CheckSpec {
            alg,
            topo: topo.into(),
            n,
            edges,
            seed: 0xA77D_2008,
            nu: 10,
            horizon: 4000,
            eat: 10,
            hungry: (0..n as u32).collect(),
            mutation: Mutation::None,
            event_queue: EventQueueKind::default(),
            arq: None,
            liveness: false,
            think: 10,
        }
    }

    /// Largest vertex degree of the topology (δ), used to parameterize the
    /// recoloring schedules exactly as the experiment runner does.
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Validate the instance.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("check spec needs at least one node".into());
        }
        for &(a, b) in &self.edges {
            if a as usize >= self.n || b as usize >= self.n || a == b {
                return Err(format!("edge ({a}, {b}) is invalid for n = {}", self.n));
            }
        }
        for &h in &self.hungry {
            if h as usize >= self.n {
                return Err(format!(
                    "hungry node {h} is out of range for n = {}",
                    self.n
                ));
            }
        }
        if self.nu == 0 {
            return Err("nu must be ≥ 1".into());
        }
        if self.eat == 0 {
            return Err("eat must be ≥ 1".into());
        }
        if let Some(arq) = &self.arq {
            arq.validate()?;
        }
        if self.mutation == Mutation::NoSdfGuard
            && !matches!(
                self.alg,
                AlgKind::A1Greedy | AlgKind::A1Linial | AlgKind::A1Random | AlgKind::ChoySingh
            )
        {
            return Err(format!(
                "mutation 'no-sdf-guard' targets the Algorithm 1 family, not {}",
                self.alg.name()
            ));
        }
        if self.mutation == Mutation::UnfairFork && self.alg != AlgKind::A2 {
            return Err(format!(
                "mutation 'unfair-fork' targets Algorithm 2, not {}",
                self.alg.name()
            ));
        }
        if self.liveness && self.think == 0 {
            return Err("liveness mode needs think ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid_and_everyone_is_hungry() {
        let spec = CheckSpec::new(AlgKind::A1Greedy, "line:3", 3, vec![(0, 1), (1, 2)]);
        spec.validate().unwrap();
        assert_eq!(spec.hungry, vec![0, 1, 2]);
        assert_eq!(spec.max_degree(), 2);
    }

    #[test]
    fn rejects_bad_edges_and_hungry_ids() {
        let mut spec = CheckSpec::new(AlgKind::A2, "line:2", 2, vec![(0, 5)]);
        assert!(spec.validate().is_err());
        spec.edges = vec![(0, 1)];
        spec.hungry = vec![7];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn mutation_is_rejected_outside_the_alg1_family() {
        let mut spec = CheckSpec::new(AlgKind::A2, "line:2", 2, vec![(0, 1)]);
        spec.mutation = Mutation::NoSdfGuard;
        assert!(spec.validate().is_err());
        spec.alg = AlgKind::A1Greedy;
        spec.validate().unwrap();
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in [Mutation::None, Mutation::NoSdfGuard, Mutation::UnfairFork] {
            assert_eq!(Mutation::parse(m.name()).unwrap(), m);
        }
        assert!(Mutation::parse("frobnicate").is_err());
    }

    #[test]
    fn unfair_fork_is_rejected_outside_a2_and_liveness_needs_think() {
        let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, vec![(0, 1)]);
        spec.mutation = Mutation::UnfairFork;
        assert!(spec.validate().is_err());
        spec.alg = AlgKind::A2;
        spec.validate().unwrap();
        spec.liveness = true;
        spec.validate().unwrap();
        spec.think = 0;
        assert!(spec.validate().is_err());
    }
}
