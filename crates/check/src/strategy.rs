//! Schedule plans and the recording strategy that executes them.
//!
//! Every checker run injects a [`Recorder`] into the engine as its
//! [`Strategy`]. The recorder resolves each *branch point* — a delivery whose
//! legal window `[1, ν]` genuinely matters, i.e. [`DeliveryChoice::forced`]
//! is false — according to the active [`Plan`], and logs the decision as a
//! [`ChoicePoint`]. Forced points always take the earliest delay and are
//! *not* logged or counted, so a recorded schedule indexes exactly the
//! non-forced branch points and replays stably even when prefixes of it are
//! truncated or edited.
//!
//! Independently of the choice log, the recorder keeps a full
//! [`DeliveryRecord`] log of *every* delivery — forced ones included. The
//! DPOR pass needs it to decide post hoc whether flipping a branch point
//! could have reordered anything observable (another delivery to the same
//! destination arriving inside the flipped window), and lasso detection
//! needs the per-delivery progress digests.

use std::cell::RefCell;
use std::rc::Rc;

use manet_sim::{DeliveryChoice, DigestMode, NodeId, RandomDelays, SimRng, Strategy};

/// One resolved branch point of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Which branch was taken: 0 = earliest, 1 = latest, 2 = interior.
    pub index: u8,
    /// The chosen delay in ticks.
    pub delay: u64,
    /// Engine state digest *before* the choice (only when the plan or mode
    /// asked for digests).
    pub digest: Option<u64>,
}

/// One delivery of a run — forced or not — as observed by the recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The sender.
    pub from: NodeId,
    /// The destination.
    pub to: NodeId,
    /// Send instant in ticks.
    pub now: u64,
    /// Smallest legal delay.
    pub earliest: u64,
    /// Largest legal delay (ν).
    pub latest: u64,
    /// The delay actually taken.
    pub delay: u64,
    /// Whether the point was forced (never logged as a [`ChoicePoint`]).
    pub forced: bool,
    /// Queued events dispatching *at the destination* within the window at
    /// send time ([`DeliveryChoice::pending_dependent_in_window`]).
    pub dependent: usize,
    /// Index into the choice log for non-forced points.
    pub choice: Option<usize>,
    /// Engine digest before the choice, when a digest mode was active.
    pub digest: Option<u64>,
}

/// How to resolve the branch points of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Depth-first exploration: follow `prefix` (0 = earliest, 1 = latest)
    /// and default to earliest beyond it. `dedup` additionally asks the
    /// engine for state digests at each branch point.
    Dfs {
        /// Branch indices to follow, outermost first.
        prefix: Vec<u8>,
        /// Collect state digests for driver-level deduplication.
        dedup: bool,
    },
    /// Replay recorded delays verbatim (clamped to the legal window);
    /// earliest beyond the end of the list.
    Replay {
        /// Delay per branch point, in encounter order.
        delays: Vec<u64>,
    },
    /// Seeded uniform random walk over the legal windows.
    Random {
        /// Walk seed (independent of the engine seed).
        seed: u64,
    },
    /// PCT-style priority schedule: each node gets a random high/low
    /// priority (high ⇒ earliest delivery, low ⇒ latest), flipped at
    /// `changes` random change points.
    Pct {
        /// Priority/change-point seed.
        seed: u64,
        /// Number of priority change points (the `d − 1` of PCT).
        changes: usize,
    },
}

/// Recorder behavior beyond the plan itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderMode {
    /// Digest override: `None` derives the mode from the plan (DFS with
    /// dedup ⇒ [`DigestMode::Absolute`], everything else ⇒ off). Liveness
    /// runs pass [`DigestMode::Progress`] so every delivery carries the
    /// cycle-detection digest.
    pub digest: Option<DigestMode>,
    /// Branch at every delivery whose *timing* can matter (certify mode):
    /// only degenerate windows and full FIFO clamps count as forced. The
    /// standard [`DeliveryChoice::forced`] reduction preserves event
    /// *order* but not event *times* — a lone delivery in its window still
    /// arrives up to ν − 1 ticks apart across its legal delays — so exact
    /// worst-case response-time certification must branch on it.
    pub branch_all: bool,
}

enum Mode {
    Dfs { prefix: Vec<u8>, cursor: usize },
    Replay { delays: Vec<u64>, cursor: usize },
    Free(Box<dyn Strategy>),
}

struct Inner {
    mode: Mode,
    digest_mode: DigestMode,
    branch_all: bool,
    log: Vec<ChoicePoint>,
    deliveries: Vec<DeliveryRecord>,
}

/// A cloneable strategy handle: one clone is boxed into the engine, the
/// other stays with the driver to read the recorded [`ChoicePoint`] and
/// [`DeliveryRecord`] logs after the run.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl Recorder {
    /// Build a recorder executing `plan` over a model with `n` nodes
    /// (`n` parameterizes the PCT priority table), with default
    /// [`RecorderMode`].
    pub fn new(plan: &Plan, n: usize) -> Recorder {
        Recorder::with_mode(plan, n, RecorderMode::default())
    }

    /// Build a recorder with explicit [`RecorderMode`] overrides.
    pub fn with_mode(plan: &Plan, n: usize, rmode: RecorderMode) -> Recorder {
        let (mode, plan_digest) = match plan {
            Plan::Dfs { prefix, dedup } => (
                Mode::Dfs {
                    prefix: prefix.clone(),
                    cursor: 0,
                },
                if *dedup {
                    DigestMode::Absolute
                } else {
                    DigestMode::Off
                },
            ),
            Plan::Replay { delays } => (
                Mode::Replay {
                    delays: delays.clone(),
                    cursor: 0,
                },
                DigestMode::Off,
            ),
            Plan::Random { seed } => (
                Mode::Free(Box::new(RandomDelays::new(*seed))),
                DigestMode::Off,
            ),
            Plan::Pct { seed, changes } => (
                Mode::Free(Box::new(Pct::new(n, *seed, *changes))),
                DigestMode::Off,
            ),
        };
        Recorder {
            inner: Rc::new(RefCell::new(Inner {
                mode,
                digest_mode: rmode.digest.unwrap_or(plan_digest),
                branch_all: rmode.branch_all,
                log: Vec::new(),
                deliveries: Vec::new(),
            })),
        }
    }

    /// The branch points resolved so far, in encounter order.
    pub fn log(&self) -> Vec<ChoicePoint> {
        self.inner.borrow().log.clone()
    }

    /// Every delivery observed so far — forced ones included — in
    /// encounter order.
    pub fn deliveries(&self) -> Vec<DeliveryRecord> {
        self.inner.borrow().deliveries.clone()
    }
}

fn branch_index(delay: u64, choice: &DeliveryChoice) -> u8 {
    if delay == choice.earliest {
        0
    } else if delay == choice.latest {
        1
    } else {
        2
    }
}

/// Forcedness that preserves delivery *times*, not just order: the window
/// is a single point, or the FIFO floor clamps every legal delay to the
/// same arrival instant.
fn timing_forced(choice: &DeliveryChoice) -> bool {
    choice.earliest == choice.latest
        || choice
            .fifo_floor
            .is_some_and(|f| f >= choice.now + choice.latest)
}

impl Strategy for Recorder {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let forced = if inner.branch_all {
            timing_forced(choice)
        } else {
            choice.forced()
        };
        let record = |delay: u64, forced: bool, idx: Option<usize>| DeliveryRecord {
            from: choice.from,
            to: choice.to,
            now: choice.now.0,
            earliest: choice.earliest,
            latest: choice.latest,
            delay,
            forced,
            dependent: choice.pending_dependent_in_window,
            choice: idx,
            digest: choice.digest,
        };
        if forced {
            inner.deliveries.push(record(choice.earliest, true, None));
            return choice.earliest;
        }
        let (index, delay) = match &mut inner.mode {
            Mode::Dfs { prefix, cursor } => {
                let idx = prefix.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                let d = if idx == 0 {
                    choice.earliest
                } else {
                    choice.latest
                };
                (idx.min(1), d)
            }
            Mode::Replay { delays, cursor } => {
                let d = delays
                    .get(*cursor)
                    .copied()
                    .unwrap_or(choice.earliest)
                    .clamp(choice.earliest, choice.latest);
                *cursor += 1;
                (branch_index(d, choice), d)
            }
            Mode::Free(strategy) => {
                let d = strategy
                    .choose_delay(choice)
                    .clamp(choice.earliest, choice.latest);
                (branch_index(d, choice), d)
            }
        };
        let idx = inner.log.len();
        inner.log.push(ChoicePoint {
            index,
            delay,
            digest: choice.digest,
        });
        inner.deliveries.push(record(delay, false, Some(idx)));
        delay
    }

    fn digest_mode(&self) -> DigestMode {
        self.inner.borrow().digest_mode
    }
}

/// Number of branch points over which PCT change points are drawn. Branch
/// points past this index keep the last priority assignment.
const PCT_SPAN: u64 = 200;

/// PCT-style priority scheduler (Burckhardt et al.): nodes with *high*
/// priority get their messages delivered as early as legal, *low* priority
/// as late as legal, and the priority of a random node flips at each of the
/// seeded change points. With `d − 1` change points this samples bug
/// patterns of depth `d` with known probability on bounded runs.
pub struct Pct {
    high: Vec<bool>,
    /// Remaining change points (branch-point indices), largest first so the
    /// next one to fire is at the end.
    change_at: Vec<u64>,
    branch: u64,
    rng: SimRng,
}

impl Pct {
    /// Seeded priority table over `n` nodes with `changes` change points.
    pub fn new(n: usize, seed: u64, changes: usize) -> Pct {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9C7_C0DE_0BAD_F00D);
        let high = (0..n.max(1)).map(|_| rng.gen_bool(0.5)).collect();
        let mut change_at: Vec<u64> = (0..changes).map(|_| rng.gen_range(0..PCT_SPAN)).collect();
        change_at.sort_unstable_by(|a, b| b.cmp(a));
        Pct {
            high,
            change_at,
            branch: 0,
            rng,
        }
    }
}

impl Strategy for Pct {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        while self.change_at.last().is_some_and(|&cp| cp <= self.branch) {
            self.change_at.pop();
            let i = self.rng.gen_range(0..self.high.len());
            self.high[i] = !self.high[i];
        }
        self.branch += 1;
        let high = self.high.get(choice.from.index()).copied().unwrap_or(true);
        if high {
            choice.earliest
        } else {
            choice.latest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::SimTime;

    fn open_choice(earliest: u64, latest: u64) -> DeliveryChoice {
        DeliveryChoice {
            from: NodeId(0),
            to: NodeId(1),
            kind: "msg",
            now: SimTime(5),
            earliest,
            latest,
            pending_in_window: 3,
            pending_dependent_in_window: 2,
            fifo_floor: None,
            digest: Some(42),
        }
    }

    #[test]
    fn forced_points_take_earliest_and_are_not_logged() {
        let rec = Recorder::new(
            &Plan::Dfs {
                prefix: vec![1],
                dedup: false,
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        let forced = DeliveryChoice {
            pending_in_window: 0,
            pending_dependent_in_window: 0,
            ..open_choice(1, 10)
        };
        assert_eq!(boxed.choose_delay(&forced), 1);
        assert!(rec.log().is_empty());
        // …but they are in the full delivery log.
        assert_eq!(rec.deliveries().len(), 1);
        assert!(rec.deliveries()[0].forced);
        assert_eq!(rec.deliveries()[0].choice, None);
        // The prefix entry is still unconsumed: the next open point uses it.
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10);
        assert_eq!(rec.log().len(), 1);
        assert_eq!(rec.log()[0].index, 1);
        assert_eq!(rec.deliveries()[1].choice, Some(0));
    }

    #[test]
    fn dfs_defaults_to_earliest_beyond_the_prefix() {
        let rec = Recorder::new(
            &Plan::Dfs {
                prefix: vec![1],
                dedup: false,
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10);
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 1);
        assert_eq!(boxed.choose_delay(&open_choice(2, 7)), 2);
        let log = rec.log();
        assert_eq!(
            log.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![1, 0, 0]
        );
        assert_eq!(log[0].digest, Some(42));
    }

    #[test]
    fn replay_clamps_and_defaults_to_earliest() {
        let rec = Recorder::new(
            &Plan::Replay {
                delays: vec![99, 4],
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10); // clamped down
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 4);
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 1); // past the end
        assert_eq!(
            rec.log().iter().map(|c| c.delay).collect::<Vec<_>>(),
            vec![10, 4, 1]
        );
    }

    #[test]
    fn digest_mode_follows_plan_unless_overridden() {
        let dfs = Plan::Dfs {
            prefix: vec![],
            dedup: true,
        };
        assert_eq!(
            Recorder::new(&dfs, 2).digest_mode(),
            DigestMode::Absolute,
            "DFS dedup asks for absolute digests"
        );
        assert_eq!(
            Recorder::new(&Plan::Random { seed: 1 }, 2).digest_mode(),
            DigestMode::Off
        );
        let rec = Recorder::with_mode(
            &Plan::Random { seed: 1 },
            2,
            RecorderMode {
                digest: Some(DigestMode::Progress),
                branch_all: false,
            },
        );
        assert_eq!(rec.digest_mode(), DigestMode::Progress);
    }

    #[test]
    fn branch_all_branches_on_order_forced_but_not_timing_forced_points() {
        let rec = Recorder::with_mode(
            &Plan::Dfs {
                prefix: vec![1],
                dedup: false,
            },
            2,
            RecorderMode {
                digest: None,
                branch_all: true,
            },
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        // Nothing else in the window: order-forced, but the arrival time
        // still spans [6, 15] — certify mode must branch here.
        let lone = DeliveryChoice {
            pending_in_window: 0,
            pending_dependent_in_window: 0,
            ..open_choice(1, 10)
        };
        assert_eq!(boxed.choose_delay(&lone), 10, "prefix flip consumed");
        assert_eq!(rec.log().len(), 1);
        // Degenerate window and full FIFO clamp stay forced: every legal
        // delay yields the same arrival instant.
        assert_eq!(boxed.choose_delay(&open_choice(3, 3)), 3);
        let clamped = DeliveryChoice {
            fifo_floor: Some(SimTime(15)),
            ..open_choice(1, 10)
        };
        assert_eq!(boxed.choose_delay(&clamped), 1);
        assert_eq!(rec.log().len(), 1, "forced points stay unlogged");
        assert_eq!(rec.deliveries().len(), 3);
    }

    #[test]
    fn pct_is_deterministic_per_seed_and_bipolar() {
        for seed in 0..20u64 {
            let mut a = Pct::new(3, seed, 2);
            let mut b = Pct::new(3, seed, 2);
            for i in 0..50u64 {
                let c = DeliveryChoice {
                    from: NodeId((i % 3) as u32),
                    ..open_choice(1, 10)
                };
                let d = a.choose_delay(&c);
                assert_eq!(d, b.choose_delay(&c));
                assert!(d == 1 || d == 10, "PCT must pick an extreme, got {d}");
            }
        }
    }
}
