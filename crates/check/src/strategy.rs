//! Schedule plans and the recording strategy that executes them.
//!
//! Every checker run injects a [`Recorder`] into the engine as its
//! [`Strategy`]. The recorder resolves each *branch point* — a delivery whose
//! legal window `[1, ν]` genuinely matters, i.e. [`DeliveryChoice::forced`]
//! is false — according to the active [`Plan`], and logs the decision as a
//! [`ChoicePoint`]. Forced points always take the earliest delay and are
//! *not* logged or counted, so a recorded schedule indexes exactly the
//! non-forced branch points and replays stably even when prefixes of it are
//! truncated or edited.

use std::cell::RefCell;
use std::rc::Rc;

use manet_sim::{DeliveryChoice, RandomDelays, SimRng, Strategy};

/// One resolved branch point of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Which branch was taken: 0 = earliest, 1 = latest, 2 = interior.
    pub index: u8,
    /// The chosen delay in ticks.
    pub delay: u64,
    /// Engine state digest *before* the choice (only when the plan asked
    /// for digests, i.e. DFS with deduplication).
    pub digest: Option<u64>,
}

/// How to resolve the branch points of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Depth-first exploration: follow `prefix` (0 = earliest, 1 = latest)
    /// and default to earliest beyond it. `dedup` additionally asks the
    /// engine for state digests at each branch point.
    Dfs {
        /// Branch indices to follow, outermost first.
        prefix: Vec<u8>,
        /// Collect state digests for driver-level deduplication.
        dedup: bool,
    },
    /// Replay recorded delays verbatim (clamped to the legal window);
    /// earliest beyond the end of the list.
    Replay {
        /// Delay per branch point, in encounter order.
        delays: Vec<u64>,
    },
    /// Seeded uniform random walk over the legal windows.
    Random {
        /// Walk seed (independent of the engine seed).
        seed: u64,
    },
    /// PCT-style priority schedule: each node gets a random high/low
    /// priority (high ⇒ earliest delivery, low ⇒ latest), flipped at
    /// `changes` random change points.
    Pct {
        /// Priority/change-point seed.
        seed: u64,
        /// Number of priority change points (the `d − 1` of PCT).
        changes: usize,
    },
}

enum Mode {
    Dfs { prefix: Vec<u8>, cursor: usize },
    Replay { delays: Vec<u64>, cursor: usize },
    Free(Box<dyn Strategy>),
}

struct Inner {
    mode: Mode,
    want_digest: bool,
    log: Vec<ChoicePoint>,
}

/// A cloneable strategy handle: one clone is boxed into the engine, the
/// other stays with the driver to read the recorded [`ChoicePoint`] log
/// after the run.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl Recorder {
    /// Build a recorder executing `plan` over a model with `n` nodes
    /// (`n` parameterizes the PCT priority table).
    pub fn new(plan: &Plan, n: usize) -> Recorder {
        let (mode, want_digest) = match plan {
            Plan::Dfs { prefix, dedup } => (
                Mode::Dfs {
                    prefix: prefix.clone(),
                    cursor: 0,
                },
                *dedup,
            ),
            Plan::Replay { delays } => (
                Mode::Replay {
                    delays: delays.clone(),
                    cursor: 0,
                },
                false,
            ),
            Plan::Random { seed } => (Mode::Free(Box::new(RandomDelays::new(*seed))), false),
            Plan::Pct { seed, changes } => {
                (Mode::Free(Box::new(Pct::new(n, *seed, *changes))), false)
            }
        };
        Recorder {
            inner: Rc::new(RefCell::new(Inner {
                mode,
                want_digest,
                log: Vec::new(),
            })),
        }
    }

    /// The branch points resolved so far, in encounter order.
    pub fn log(&self) -> Vec<ChoicePoint> {
        self.inner.borrow().log.clone()
    }
}

fn branch_index(delay: u64, choice: &DeliveryChoice) -> u8 {
    if delay == choice.earliest {
        0
    } else if delay == choice.latest {
        1
    } else {
        2
    }
}

impl Strategy for Recorder {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        if choice.forced() {
            return choice.earliest;
        }
        let mut inner = self.inner.borrow_mut();
        let (index, delay) = match &mut inner.mode {
            Mode::Dfs { prefix, cursor } => {
                let idx = prefix.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                let d = if idx == 0 {
                    choice.earliest
                } else {
                    choice.latest
                };
                (idx.min(1), d)
            }
            Mode::Replay { delays, cursor } => {
                let d = delays
                    .get(*cursor)
                    .copied()
                    .unwrap_or(choice.earliest)
                    .clamp(choice.earliest, choice.latest);
                *cursor += 1;
                (branch_index(d, choice), d)
            }
            Mode::Free(strategy) => {
                let d = strategy
                    .choose_delay(choice)
                    .clamp(choice.earliest, choice.latest);
                (branch_index(d, choice), d)
            }
        };
        inner.log.push(ChoicePoint {
            index,
            delay,
            digest: choice.digest,
        });
        delay
    }

    fn wants_digest(&self) -> bool {
        self.inner.borrow().want_digest
    }
}

/// Number of branch points over which PCT change points are drawn. Branch
/// points past this index keep the last priority assignment.
const PCT_SPAN: u64 = 200;

/// PCT-style priority scheduler (Burckhardt et al.): nodes with *high*
/// priority get their messages delivered as early as legal, *low* priority
/// as late as legal, and the priority of a random node flips at each of the
/// seeded change points. With `d − 1` change points this samples bug
/// patterns of depth `d` with known probability on bounded runs.
pub struct Pct {
    high: Vec<bool>,
    /// Remaining change points (branch-point indices), largest first so the
    /// next one to fire is at the end.
    change_at: Vec<u64>,
    branch: u64,
    rng: SimRng,
}

impl Pct {
    /// Seeded priority table over `n` nodes with `changes` change points.
    pub fn new(n: usize, seed: u64, changes: usize) -> Pct {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9C7_C0DE_0BAD_F00D);
        let high = (0..n.max(1)).map(|_| rng.gen_bool(0.5)).collect();
        let mut change_at: Vec<u64> = (0..changes).map(|_| rng.gen_range(0..PCT_SPAN)).collect();
        change_at.sort_unstable_by(|a, b| b.cmp(a));
        Pct {
            high,
            change_at,
            branch: 0,
            rng,
        }
    }
}

impl Strategy for Pct {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        while self.change_at.last().is_some_and(|&cp| cp <= self.branch) {
            self.change_at.pop();
            let i = self.rng.gen_range(0..self.high.len());
            self.high[i] = !self.high[i];
        }
        self.branch += 1;
        let high = self.high.get(choice.from.index()).copied().unwrap_or(true);
        if high {
            choice.earliest
        } else {
            choice.latest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{NodeId, SimTime};

    fn open_choice(earliest: u64, latest: u64) -> DeliveryChoice {
        DeliveryChoice {
            from: NodeId(0),
            to: NodeId(1),
            kind: "msg",
            now: SimTime(5),
            earliest,
            latest,
            pending_in_window: 3,
            fifo_floor: None,
            digest: Some(42),
        }
    }

    #[test]
    fn forced_points_take_earliest_and_are_not_logged() {
        let rec = Recorder::new(
            &Plan::Dfs {
                prefix: vec![1],
                dedup: false,
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        let forced = DeliveryChoice {
            pending_in_window: 0,
            ..open_choice(1, 10)
        };
        assert_eq!(boxed.choose_delay(&forced), 1);
        assert!(rec.log().is_empty());
        // The prefix entry is still unconsumed: the next open point uses it.
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10);
        assert_eq!(rec.log().len(), 1);
        assert_eq!(rec.log()[0].index, 1);
    }

    #[test]
    fn dfs_defaults_to_earliest_beyond_the_prefix() {
        let rec = Recorder::new(
            &Plan::Dfs {
                prefix: vec![1],
                dedup: false,
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10);
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 1);
        assert_eq!(boxed.choose_delay(&open_choice(2, 7)), 2);
        let log = rec.log();
        assert_eq!(
            log.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![1, 0, 0]
        );
        assert_eq!(log[0].digest, Some(42));
    }

    #[test]
    fn replay_clamps_and_defaults_to_earliest() {
        let rec = Recorder::new(
            &Plan::Replay {
                delays: vec![99, 4],
            },
            2,
        );
        let mut boxed: Box<dyn Strategy> = Box::new(rec.clone());
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 10); // clamped down
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 4);
        assert_eq!(boxed.choose_delay(&open_choice(1, 10)), 1); // past the end
        assert_eq!(
            rec.log().iter().map(|c| c.delay).collect::<Vec<_>>(),
            vec![10, 4, 1]
        );
    }

    #[test]
    fn pct_is_deterministic_per_seed_and_bipolar() {
        for seed in 0..20u64 {
            let mut a = Pct::new(3, seed, 2);
            let mut b = Pct::new(3, seed, 2);
            for i in 0..50u64 {
                let c = DeliveryChoice {
                    from: NodeId((i % 3) as u32),
                    ..open_choice(1, 10)
                };
                let d = a.choose_delay(&c);
                assert_eq!(d, b.choose_delay(&c));
                assert!(d == 1 || d == 10, "PCT must pick an extreme, got {d}");
            }
        }
    }
}
