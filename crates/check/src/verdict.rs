//! Running one schedule and judging it against the checked properties.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use baselines::{choy_singh, ChandyMisra, StaticColoring};
use coloring::LinialSchedule;
use harness::{AlgKind, SafetyMonitor, Violation};
use local_mutex::testutil::AutoExit;
use local_mutex::{Algorithm1, Algorithm2, Phase};
use manet_sim::{
    Command, DigestMode, DiningState, Engine, Hook, NodeId, Protocol, SimConfig, SimTime, Sink,
    TraceEntry, TraceKind, View,
};

use crate::spec::{CheckSpec, Mutation};
use crate::strategy::{ChoicePoint, DeliveryRecord, Plan, Recorder, RecorderMode};

/// Property names, in the order they are checked (first hit wins).
pub const PROPERTIES: [&str; 5] = [
    "lme-safety",
    "doorway-non-bypass",
    "fork-conservation",
    "eventual-eating",
    "starvation-lasso",
];

/// A property violated by one concrete schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyViolation {
    /// Which property (one of [`PROPERTIES`]).
    pub property: String,
    /// Deterministic human-readable description of the violating state.
    pub detail: String,
}

/// Everything observed about one schedule.
#[derive(Clone, Debug)]
pub struct RunVerdict {
    /// The resolved branch points, in encounter order.
    pub choices: Vec<ChoicePoint>,
    /// The first property violation found, if any.
    pub violation: Option<PropertyViolation>,
    /// The full engine trace of the run.
    pub trace: Vec<TraceEntry>,
    /// Whether the event queue drained before the horizon (quiescence);
    /// the fork-conservation and eventual-eating properties are only
    /// meaningful — and only checked — at quiescence.
    pub drained: bool,
    /// Completed critical sections across all nodes.
    pub meals: u64,
    /// Structured abort raised by the engine (rendered
    /// [`manet_sim::RunAbort`]), if the run stopped abnormally — e.g. a
    /// malformed replay schedule or an exhausted event budget.
    pub abort: Option<String>,
    /// Every delivery of the run — forced ones included — as observed by
    /// the recorder. The DPOR flip-relevance analysis and lasso detection
    /// both consume this log.
    pub deliveries: Vec<DeliveryRecord>,
    /// Per-node time of the first `→ Eating` transition, `None` if the
    /// node never ate. Certification measures response times from here
    /// (hungry commands land at tick 1).
    pub first_eat: Vec<Option<u64>>,
}

/// What the property checks need from a protocol, beyond [`Protocol`].
///
/// A local trait (rather than methods on `Protocol`) keeps the simulator
/// crate free of checker concerns; `None` means "property not applicable".
trait Checkable: Protocol {
    /// Whether this node holds the fork shared with `j`.
    fn fork_with(&self, j: NodeId) -> Option<bool> {
        let _ = j;
        None
    }
    /// The timestamped doorway-phase log, if the protocol records one.
    fn phases(&self) -> Option<&[(SimTime, Phase)]> {
        None
    }
}

impl Checkable for Algorithm1 {
    fn fork_with(&self, j: NodeId) -> Option<bool> {
        Some(self.holds_fork(j))
    }
    fn phases(&self) -> Option<&[(SimTime, Phase)]> {
        self.record_phases.then_some(self.phase_log.as_slice())
    }
}

impl Checkable for Algorithm2 {
    fn fork_with(&self, j: NodeId) -> Option<bool> {
        Some(self.holds_fork(j))
    }
}

impl Checkable for ChandyMisra {
    fn fork_with(&self, j: NodeId) -> Option<bool> {
        Some(self.holds_fork(j))
    }
}

/// Run one schedule of `spec` under `plan` and judge it.
///
/// The run is a pure function of `(spec, plan)`: same inputs, same verdict,
/// byte for byte — this is what makes witnesses replayable.
pub fn run_schedule(spec: &CheckSpec, plan: &Plan) -> RunVerdict {
    run_schedule_mode(spec, plan, RecorderMode::default())
}

/// [`run_schedule`] with explicit recorder overrides: certification passes
/// `branch_all` so delivery *times* (not just orders) are exhausted.
/// Purity holds for the triple `(spec, plan, rmode)`.
pub fn run_schedule_mode(spec: &CheckSpec, plan: &Plan, rmode: RecorderMode) -> RunVerdict {
    let mutate = spec.mutation == Mutation::NoSdfGuard;
    let delta = spec.max_degree().max(1) as u64;
    let run_seed = spec.seed;
    match spec.alg {
        AlgKind::A1Greedy => drive(spec, plan, rmode, move |seed| {
            prep_a1(Algorithm1::greedy(&seed), mutate)
        }),
        AlgKind::A1Linial => {
            let sched = Arc::new(LinialSchedule::compute(spec.n as u64, delta));
            drive(spec, plan, rmode, move |seed| {
                prep_a1(Algorithm1::linial(&seed, sched.clone()), mutate)
            })
        }
        AlgKind::A1Random => drive(spec, plan, rmode, move |seed| {
            prep_a1(Algorithm1::randomized(&seed, delta, run_seed), mutate)
        }),
        AlgKind::ChoySingh => {
            let coloring = Rc::new(StaticColoring::compute(spec.n, spec.edges.iter().copied()));
            drive(spec, plan, rmode, move |seed| {
                prep_a1(choy_singh(&seed, &coloring), mutate)
            })
        }
        AlgKind::A2 => {
            let unfair = spec.mutation == Mutation::UnfairFork;
            drive(spec, plan, rmode, move |seed| {
                let mut node = Algorithm2::new(&seed);
                if unfair {
                    node.defer_requests_from = Some(NodeId(0));
                }
                node
            })
        }
        AlgKind::ChandyMisra => drive(spec, plan, rmode, |seed| ChandyMisra::new(&seed)),
    }
}

fn prep_a1(mut node: Algorithm1, mutate: bool) -> Algorithm1 {
    node.record_phases = true;
    node.sdf_guard_enabled = !mutate;
    node
}

/// The liveness workload: a node that finishes eating becomes hungry again
/// `think` ticks later, so runs cycle until the horizon instead of draining
/// and starvation manifests as a *lasso* (repeated progress state) rather
/// than a quiescent hungry node.
struct Recycle {
    think: u64,
}

impl<M> Hook<M> for Recycle {
    fn on_state_change(
        &mut self,
        view: &View<'_>,
        node: NodeId,
        old: DiningState,
        new: DiningState,
        sink: &mut Sink,
    ) {
        if old == DiningState::Eating && new == DiningState::Thinking {
            sink.at(view.time() + self.think, Command::SetHungry(node));
        }
    }
}

fn drive<P, F>(spec: &CheckSpec, plan: &Plan, mut rmode: RecorderMode, factory: F) -> RunVerdict
where
    P: Checkable,
    F: FnMut(manet_sim::NodeSeed) -> P + 'static,
{
    if spec.liveness && rmode.digest.is_none() {
        // Lasso detection needs the progress digest on every delivery.
        rmode.digest = Some(DigestMode::Progress);
    }
    let recorder = Recorder::with_mode(plan, spec.n, rmode);
    let cfg = SimConfig {
        seed: spec.seed,
        max_message_delay: spec.nu,
        max_eating_ticks: spec.eat,
        trace: true,
        event_queue: spec.event_queue,
        arq: spec.arq.clone(),
        ..SimConfig::default()
    };
    let mut engine = Engine::new_graph(cfg, spec.n, &spec.edges, factory);
    engine.set_strategy(Box::new(recorder.clone()));
    let (monitor, violations) = SafetyMonitor::new(false);
    engine.add_hook(Box::new(monitor));
    engine.add_hook(Box::new(AutoExit::new(spec.eat)));
    if spec.liveness {
        engine.add_hook(Box::new(Recycle { think: spec.think }));
    }
    for &h in &spec.hungry {
        engine.set_hungry_at(SimTime(1), NodeId(h));
    }
    engine.run_until(SimTime(spec.horizon));

    let drained = engine.pending_events() == 0;
    let trace = engine.trace().to_vec();
    let meals = trace
        .iter()
        .filter(|t| {
            matches!(
                t.kind,
                TraceKind::StateChange(_, DiningState::Eating, DiningState::Thinking)
            )
        })
        .count() as u64;

    let deliveries = recorder.deliveries();
    let mut first_eat = vec![None; spec.n];
    for t in &trace {
        if let TraceKind::StateChange(node, _, DiningState::Eating) = t.kind {
            let slot = &mut first_eat[node.index()];
            if slot.is_none() {
                *slot = Some(t.at.0);
            }
        }
    }

    let violation = check_lme(&violations.borrow())
        .or_else(|| check_doorway(&engine, &trace))
        .or_else(|| {
            drained
                .then(|| check_fork_conservation(spec, &engine))
                .flatten()
        })
        .or_else(|| {
            drained
                .then(|| check_eventual_eating(spec, &engine))
                .flatten()
        })
        .or_else(|| {
            spec.liveness
                .then(|| check_starvation_lasso(spec, &trace, &deliveries))
                .flatten()
        });

    let abort = engine.abort().map(|a| a.to_string());

    RunVerdict {
        choices: recorder.log(),
        violation,
        trace,
        drained,
        meals,
        abort,
        deliveries,
        first_eat,
    }
}

/// Local mutual exclusion: no two current neighbors eating simultaneously
/// (delegated to the harness [`SafetyMonitor`], which also handles nodes
/// that crash mid-meal).
fn check_lme(violations: &[Violation]) -> Option<PropertyViolation> {
    violations.first().map(|v| PropertyViolation {
        property: "lme-safety".into(),
        detail: format!("neighbors {} and {} both eating at t={}", v.a, v.b, v.at.0),
    })
}

/// Doorway non-bypass: a node of the Algorithm 1 family may only start
/// eating while behind SD^f (doorway phase `Collecting`). Not applicable
/// (and skipped) for protocols without a phase log.
fn check_doorway<P: Checkable>(
    engine: &Engine<P>,
    trace: &[TraceEntry],
) -> Option<PropertyViolation> {
    for entry in trace {
        let TraceKind::StateChange(node, _, DiningState::Eating) = entry.kind else {
            continue;
        };
        let phases = engine.protocol(node).phases()?;
        let current = phases
            .iter()
            .rev()
            .find(|(at, _)| *at <= entry.at)
            .map(|&(_, p)| p);
        if current != Some(Phase::Collecting) {
            return Some(PropertyViolation {
                property: "doorway-non-bypass".into(),
                detail: format!(
                    "{node} started eating at t={} in doorway phase {:?} (expected Collecting)",
                    entry.at.0, current
                ),
            });
        }
    }
    None
}

/// Fork conservation at quiescence: with no message in flight, the fork of
/// every live link must sit at exactly one endpoint — transfers may neither
/// duplicate nor lose it. Skipped for protocols without fork observability.
fn check_fork_conservation<P: Checkable>(
    spec: &CheckSpec,
    engine: &Engine<P>,
) -> Option<PropertyViolation> {
    let world = engine.world();
    for &(a, b) in &spec.edges {
        let (a, b) = (NodeId(a), NodeId(b));
        if world.is_crashed(a) || world.is_crashed(b) || !world.linked(a, b) {
            continue;
        }
        let at_a = engine.protocol(a).fork_with(b)?;
        let at_b = engine.protocol(b).fork_with(a)?;
        if at_a == at_b {
            let what = if at_a { "duplicated" } else { "lost" };
            return Some(PropertyViolation {
                property: "fork-conservation".into(),
                detail: format!("fork of link {{{a}, {b}}} {what} at quiescence"),
            });
        }
    }
    None
}

/// Eventual eating at quiescence: in these message-driven protocols a
/// hungry live node with no event left in the queue can never make
/// progress again — a starvation witness, not merely a slow run.
fn check_eventual_eating<P: Checkable>(
    spec: &CheckSpec,
    engine: &Engine<P>,
) -> Option<PropertyViolation> {
    for i in 0..spec.n as u32 {
        let node = NodeId(i);
        if engine.world().is_crashed(node) {
            continue;
        }
        if engine.dining_state(node) == DiningState::Hungry {
            return Some(PropertyViolation {
                property: "eventual-eating".into(),
                detail: format!("{node} is hungry at quiescence (deadlocked/starved)"),
            });
        }
    }
    None
}

/// Starvation lasso: the run's *progress digest* (relative queue times,
/// monotone counters excluded) repeated at two delivery points `i < j`
/// while some node was hungry at `i` and never started eating in
/// `(tᵢ, tⱼ]`. Equal digests mean the engine+protocol configurations are
/// identical up to time translation, so the schedule segment between them
/// — delay choices included, since windows are relative — can be repeated
/// forever: a legal infinite execution on which that node starves (Hungry
/// exits only via Eating). Checked only in liveness mode, where every
/// delivery carries the digest; consecutive occurrences of each digest
/// suffice, because a node hungry across `i₁ → i₃` is also hungry across
/// `i₂ → i₃`.
fn check_starvation_lasso(
    spec: &CheckSpec,
    trace: &[TraceEntry],
    deliveries: &[DeliveryRecord],
) -> Option<PropertyViolation> {
    let mut transitions: Vec<Vec<(u64, DiningState)>> = vec![Vec::new(); spec.n];
    for t in trace {
        if let TraceKind::StateChange(node, _, new) = t.kind {
            transitions[node.index()].push((t.at.0, new));
        }
    }
    let state_at = |node: usize, at: u64| -> DiningState {
        transitions[node]
            .iter()
            .rev()
            .find(|&&(t, _)| t <= at)
            .map_or(DiningState::Thinking, |&(_, s)| s)
    };
    let eats_in = |node: usize, lo: u64, hi: u64| -> bool {
        transitions[node]
            .iter()
            .any(|&(t, s)| s == DiningState::Eating && t > lo && t <= hi)
    };
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for d in deliveries {
        let Some(digest) = d.digest else { continue };
        if let Some(&prev) = last_seen.get(&digest) {
            if d.now > prev {
                for h in 0..spec.n {
                    if state_at(h, prev) == DiningState::Hungry && !eats_in(h, prev, d.now) {
                        return Some(PropertyViolation {
                            property: "starvation-lasso".into(),
                            detail: format!(
                                "{} hungry across a repeated progress state: t={prev} recurs at \
                                 t={} (period {}), so the schedule can loop forever with {} starving",
                                NodeId(h as u32),
                                d.now,
                                d.now - prev,
                                NodeId(h as u32),
                            ),
                        });
                    }
                }
            }
        }
        last_seen.insert(digest, d.now);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<(u32, u32)> {
        (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn default_schedule_is_clean_for_every_algorithm() {
        for alg in AlgKind::extended() {
            let spec = CheckSpec::new(alg, "line:3", 3, line(3));
            let v = run_schedule(
                &spec,
                &Plan::Dfs {
                    prefix: vec![],
                    dedup: false,
                },
            );
            assert!(
                v.violation.is_none(),
                "{}: unexpected violation {:?}",
                alg.name(),
                v.violation
            );
            assert!(v.drained, "{}: did not reach quiescence", alg.name());
            assert!(v.meals >= 3, "{}: only {} meals", alg.name(), v.meals);
        }
    }

    #[test]
    fn runs_are_pure_functions_of_spec_and_plan() {
        let spec = CheckSpec::new(AlgKind::A1Greedy, "line:3", 3, line(3));
        let plan = Plan::Random { seed: 11 };
        let a = run_schedule(&spec, &plan);
        let b = run_schedule(&spec, &plan);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.meals, b.meals);
    }

    #[test]
    fn replaying_recorded_delays_reproduces_the_trace() {
        let spec = CheckSpec::new(AlgKind::A2, "line:3", 3, line(3));
        let sampled = run_schedule(&spec, &Plan::Random { seed: 5 });
        let delays: Vec<u64> = sampled.choices.iter().map(|c| c.delay).collect();
        let replayed = run_schedule(&spec, &Plan::Replay { delays });
        assert_eq!(sampled.trace, replayed.trace);
        assert_eq!(sampled.meals, replayed.meals);
    }

    #[test]
    fn sdf_guard_mutation_breaks_lme_under_some_schedule() {
        let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
        spec.mutation = Mutation::NoSdfGuard;
        let found = (0..32u64).any(|s| {
            run_schedule(&spec, &Plan::Random { seed: s })
                .violation
                .is_some_and(|v| v.property == "lme-safety")
        });
        assert!(found, "mutated A1 should violate LME under random walks");
    }

    #[test]
    fn dfs_digests_appear_only_when_dedup_is_on() {
        let spec = CheckSpec::new(AlgKind::A1Greedy, "line:3", 3, line(3));
        let with = run_schedule(
            &spec,
            &Plan::Dfs {
                prefix: vec![],
                dedup: true,
            },
        );
        let without = run_schedule(
            &spec,
            &Plan::Dfs {
                prefix: vec![],
                dedup: false,
            },
        );
        assert!(!with.choices.is_empty());
        assert!(with.choices.iter().all(|c| c.digest.is_some()));
        assert!(without.choices.iter().all(|c| c.digest.is_none()));
    }
}
