//! A lock-free seen-state table shared across exploration workers.
//!
//! The table is a fixed-capacity open-addressing hash set of `u64` state
//! digests built on [`AtomicU64`] slots and CAS insertion: a worker (or the
//! merge step) asks "was this digest seen before?" and atomically records
//! it if not, with no locks and no allocation after construction. Zero is
//! the empty-slot sentinel; the (astronomically unlikely, but legal) digest
//! value `0` is remapped to `1` so it stays representable.
//!
//! The capacity is fixed at construction. When the table fills up,
//! [`DigestTable::insert`] reports [`Insert::Full`] and the caller must
//! treat the state as unseen — exploration then degrades gracefully from
//! "deduplicated" to "may revisit", which is safe for every use here:
//! dedup is a pruning optimization, never a soundness requirement, and the
//! exhaustive certifier merely re-explores a subtree it failed to record.

use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of [`DigestTable::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert {
    /// The digest was not present and is now recorded.
    Inserted,
    /// The digest was already present (inserted earlier by any thread).
    Present,
    /// The table is at capacity and the digest could not be recorded; the
    /// caller must treat the state as unseen.
    Full,
}

/// Fixed-capacity lock-free hash set of state digests.
pub struct DigestTable {
    slots: Box<[AtomicU64]>,
    /// `slots.len() - 1`; the length is a power of two so this doubles as
    /// the index mask.
    mask: usize,
}

impl DigestTable {
    /// Probe limit before declaring the table full. Bounding the probe
    /// sequence keeps worst-case insert cost O(1) even on a nearly-full
    /// table; unrecorded digests only cost re-exploration, never soundness.
    const MAX_PROBES: usize = 64;

    /// A table with room for at least `capacity` digests (rounded up to a
    /// power of two, with headroom so load stays below ~50%).
    pub fn with_capacity(capacity: usize) -> DigestTable {
        let len = capacity
            .max(16)
            .checked_mul(2)
            .expect("table size overflow");
        let len = len.next_power_of_two();
        let slots = (0..len).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        DigestTable {
            slots: slots.into_boxed_slice(),
            mask: len - 1,
        }
    }

    /// Insert-or-check `digest`: returns whether it was newly recorded,
    /// already present, or dropped because the table is full. Safe to call
    /// from any number of threads concurrently; exactly one caller of a
    /// given digest observes [`Insert::Inserted`].
    pub fn insert(&self, digest: u64) -> Insert {
        // 0 marks an empty slot; remap the one colliding digest value.
        let digest = if digest == 0 { 1 } else { digest };
        // Multiplicative scatter (Fibonacci hashing) so dense digest
        // families don't cluster into one probe chain.
        let mut i = (digest.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask;
        for _ in 0..Self::MAX_PROBES.min(self.slots.len()) {
            let slot = &self.slots[i];
            match slot.compare_exchange(0, digest, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Insert::Inserted,
                Err(existing) if existing == digest => return Insert::Present,
                Err(_) => i = (i + 1) & self.mask,
            }
        }
        Insert::Full
    }

    /// Number of recorded digests (linear scan; diagnostic only).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Whether no digest has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_check() {
        let t = DigestTable::with_capacity(128);
        assert_eq!(t.insert(42), Insert::Inserted);
        assert_eq!(t.insert(42), Insert::Present);
        assert_eq!(t.insert(43), Insert::Inserted);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zero_digest_is_representable() {
        let t = DigestTable::with_capacity(16);
        assert_eq!(t.insert(0), Insert::Inserted);
        assert_eq!(t.insert(0), Insert::Present);
        // …and shares its slot value with digest 1 by design.
        assert_eq!(t.insert(1), Insert::Present);
    }

    #[test]
    fn fills_up_gracefully() {
        let t = DigestTable::with_capacity(1); // rounds up to 32 slots
        let mut full = 0;
        for d in 1..=10_000u64 {
            if t.insert(d) == Insert::Full {
                full += 1;
            }
        }
        assert!(full > 0, "a saturated table must report Full");
        assert!(!t.is_empty());
    }

    #[test]
    fn concurrent_inserts_record_each_digest_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let t = DigestTable::with_capacity(4096);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for d in 1..=1000u64 {
                        if t.insert(d) == Insert::Inserted {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1000);
        assert_eq!(t.len(), 1000);
    }
}
