//! `lme-check`: a deterministic schedule-space model checker for the
//! local-mutual-exclusion algorithms.
//!
//! The simulator's only nondeterminism is the per-message delivery delay,
//! legal anywhere in `[1, ν]`; since events are totally ordered by
//! `(time, sequence)`, choosing the delays *is* choosing the interleaving.
//! This crate drives the engine through that space:
//!
//! * [`Plan`]/[`Recorder`] — resolve each non-forced *branch point* per a
//!   plan (DFS prefix, verbatim replay, random walk, PCT priorities) and
//!   record every decision;
//! * [`run_schedule`] — run one schedule and judge it against the checked
//!   properties (LME safety, doorway non-bypass, fork conservation and
//!   eventual eating at quiescence);
//! * [`explore`] — search the space by bounded exhaustive DFS (with DPOR
//!   flip pruning, shared lock-free state-digest dedup, and deterministic
//!   wave parallelism across `jobs` workers), seeded random walks, or
//!   PCT-style priority schedules — in liveness mode runs recycle through
//!   think/hungry and starvation is detected directly as a *lasso*
//!   (repeated progress digest bracketing a never-fed hungry node);
//! * [`certify`] — exhaust the extremal schedule space of a small
//!   instance and emit a machine-readable worst-case response-time
//!   certificate for the paper's bounds;
//! * [`Witness`]/[`shrink`]/[`replay`] — serialize a violating schedule as
//!   a single JSON line, minimize it, and re-run it byte-for-byte.
//!
//! Everything is a pure function of the spec and the plan, so a witness
//! found on one machine replays identically on any other. See DESIGN.md §9
//! for the legal-schedule definition and the soundness argument of the
//! reduction.

mod certify;
mod explore;
mod spec;
mod strategy;
mod table;
mod verdict;
mod witness;

pub use certify::{certify, Certificate, CertifyConfig};
pub use explore::{explore, Exploration, ExploreConfig, StrategyKind};
pub use spec::{CheckSpec, Mutation};
pub use strategy::{ChoicePoint, DeliveryRecord, Pct, Plan, Recorder, RecorderMode};
pub use table::{DigestTable, Insert};
pub use verdict::{run_schedule, run_schedule_mode, PropertyViolation, RunVerdict, PROPERTIES};
pub use witness::{replay, shrink, Witness, MIN_DELAY};
