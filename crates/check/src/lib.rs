//! `lme-check`: a deterministic schedule-space model checker for the
//! local-mutual-exclusion algorithms.
//!
//! The simulator's only nondeterminism is the per-message delivery delay,
//! legal anywhere in `[1, ν]`; since events are totally ordered by
//! `(time, sequence)`, choosing the delays *is* choosing the interleaving.
//! This crate drives the engine through that space:
//!
//! * [`Plan`]/[`Recorder`] — resolve each non-forced *branch point* per a
//!   plan (DFS prefix, verbatim replay, random walk, PCT priorities) and
//!   record every decision;
//! * [`run_schedule`] — run one schedule and judge it against the checked
//!   properties (LME safety, doorway non-bypass, fork conservation and
//!   eventual eating at quiescence);
//! * [`explore`] — search the space by bounded exhaustive DFS (with
//!   commuting-deliveries reduction and state-digest dedup), seeded random
//!   walks, or PCT-style priority schedules;
//! * [`Witness`]/[`shrink`]/[`replay`] — serialize a violating schedule as
//!   a single JSON line, minimize it, and re-run it byte-for-byte.
//!
//! Everything is a pure function of the spec and the plan, so a witness
//! found on one machine replays identically on any other. See DESIGN.md §9
//! for the legal-schedule definition and the soundness argument of the
//! reduction.

mod explore;
mod spec;
mod strategy;
mod verdict;
mod witness;

pub use explore::{explore, Exploration, ExploreConfig, StrategyKind};
pub use spec::{CheckSpec, Mutation};
pub use strategy::{ChoicePoint, Pct, Plan, Recorder};
pub use verdict::{run_schedule, PropertyViolation, RunVerdict, PROPERTIES};
pub use witness::{replay, shrink, Witness, MIN_DELAY};
