//! Schedule-space exploration drivers: exhaustive DFS, random walks, PCT.
//!
//! # Parallel wave exploration
//!
//! The DFS is organized as *waves* over a frontier of schedule prefixes:
//! every wave's membership and order are a pure function of `(spec, cfg)`
//! — never of `jobs` — and the runs of a wave are embarrassingly parallel
//! (each is an independent deterministic simulation). Workers claim runs
//! off a shared atomic counter (work stealing); the *merge* of a wave —
//! deduplication, DPOR pruning, child generation, and picking the first
//! violating run in wave order — is sequential. Verdicts, counts, and the
//! emitted witness are therefore byte-identical at any `--jobs` value.
//!
//! # Partial-order reduction
//!
//! Beyond the engine's order-preserving `forced()` reduction (a branch
//! point only exists where something else dispatches inside the delay
//! window), the merge prunes *flips* whose effect commutes with the rest
//! of the run: flipping the delay of a delivery to node `d` is skipped
//! iff nothing dependent was pending in its window at choice time
//! ([`crate::strategy::DeliveryRecord::dependent`], which counts items
//! dispatching at `d` plus global items such as commands conservatively)
//! and no recorded delivery of the *whole* run — including ones sent
//! after the choice — arrives at `d` within the window. Deliveries to
//! other nodes commute with ours because node state is touched only when
//! a node's own events dispatch. The window argument for hook-scheduled
//! commands requires `eat ≥ ν` (and `think ≥ ν` in liveness mode):
//! commands scheduled after the choice then land at or beyond the
//! window's end, and one landing exactly on its end cannot reorder (the
//! delivery already carries the smaller queue sequence number). DPOR is
//! disabled automatically when those preconditions fail or an ARQ shim
//! (whose retransmission timers are not in the delivery log) is armed.
//!
//! Residual gap (standard for dynamic reductions of *timed* systems):
//! the pruned flip shifts `d`'s event by up to ν − 1 ticks, which is
//! order-invisible but not time-invisible — e.g. it can slide an eating
//! interval relative to a neighbor's. The property set is predominantly
//! order-sensitive, and `tests/check_dpor.rs` differentially checks
//! verdict equality against the unreduced DFS on every shipped instance
//! family, intact and mutated; the timing-exact `certify` mode never
//! uses DPOR.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::spec::CheckSpec;
use crate::strategy::{DeliveryRecord, Plan, RecorderMode};
use crate::table::{DigestTable, Insert};
use crate::verdict::{run_schedule, run_schedule_mode, PropertyViolation, RunVerdict};
use crate::witness::{shrink, Witness};

/// Which exploration strategy to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StrategyKind {
    /// Bounded exhaustive DFS over earliest/latest branch decisions with
    /// state-digest deduplication and DPOR flip pruning.
    #[default]
    Dfs,
    /// Independent seeded random walks over the full delay windows.
    Random,
    /// PCT-style priority schedules, one per seed.
    Pct,
}

impl StrategyKind {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Dfs => "dfs",
            StrategyKind::Random => "random",
            StrategyKind::Pct => "pct",
        }
    }

    /// Parse a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid spellings.
    pub fn parse(s: &str) -> Result<StrategyKind, String> {
        match s {
            "dfs" => Ok(StrategyKind::Dfs),
            "random" => Ok(StrategyKind::Random),
            "pct" => Ok(StrategyKind::Pct),
            other => Err(format!(
                "unknown strategy '{other}' (expected 'dfs', 'random' or 'pct')"
            )),
        }
    }
}

/// Exploration bounds and options.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Strategy to run.
    pub strategy: StrategyKind,
    /// Maximum number of schedules: the DFS backtracking budget, or the
    /// number of random/PCT walks.
    pub max_schedules: usize,
    /// DFS flips only the first `max_depth` branch points of a run (the
    /// classic preemption/depth bound of stateless model checking).
    pub max_depth: usize,
    /// PCT priority change points per walk.
    pub pct_changes: usize,
    /// Deduplicate DFS subtrees by engine state digest.
    pub dedup: bool,
    /// Prune DFS flips that provably commute with the rest of the run
    /// (see the module docs). Silently inert when the instance does not
    /// satisfy the DPOR preconditions.
    pub dpor: bool,
    /// Worker threads per wave. Wave composition and merge order are
    /// independent of this, so any value yields byte-identical results.
    pub jobs: usize,
    /// Maximum replays spent shrinking a found witness.
    pub shrink_budget: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            strategy: StrategyKind::Dfs,
            max_schedules: 256,
            max_depth: 12,
            pct_changes: 3,
            dedup: true,
            dpor: true,
            jobs: 1,
            shrink_budget: 200,
        }
    }
}

/// The outcome of one exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Schedules actually executed (excluding shrink replays).
    pub schedules: usize,
    /// DFS: the bounded tree was exhausted. Sampling: every requested walk
    /// ran. False when the schedule budget cut exploration short.
    pub complete: bool,
    /// Largest number of branch points seen in any single run.
    pub max_branch_points: usize,
    /// DFS subtrees skipped because their pre-choice state digest was
    /// already explored.
    pub dedup_prunes: usize,
    /// DFS flips skipped by the partial-order reduction.
    pub dpor_prunes: usize,
    /// Replays spent shrinking the witness.
    pub shrink_runs: usize,
    /// The shrunk counterexample, if any schedule violated a property.
    pub witness: Option<Witness>,
}

/// Explore the schedule space of `spec` under `cfg`, stopping at the first
/// violation (which is then shrunk into the returned witness).
pub fn explore(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    match cfg.strategy {
        StrategyKind::Dfs => dfs(spec, cfg),
        StrategyKind::Random | StrategyKind::Pct => sample(spec, cfg),
    }
}

fn new_exploration() -> Exploration {
    Exploration {
        schedules: 0,
        complete: false,
        max_branch_points: 0,
        dedup_prunes: 0,
        dpor_prunes: 0,
        shrink_runs: 0,
        witness: None,
    }
}

/// Shrink a violating schedule and attach the canonical witness.
fn finish(
    spec: &CheckSpec,
    cfg: &ExploreConfig,
    delays: Vec<u64>,
    violation: &PropertyViolation,
    out: &mut Exploration,
) {
    let (shrunk_spec, shrunk_delays, runs) =
        shrink(spec, delays, &violation.property, cfg.shrink_budget);
    out.shrink_runs = runs;
    // One canonical replay of the shrunk schedule yields the final detail
    // string and trims never-consumed trailing choices.
    let verdict = run_schedule(
        &shrunk_spec,
        &Plan::Replay {
            delays: shrunk_delays.clone(),
        },
    );
    let consumed = shrunk_delays.len().min(verdict.choices.len());
    let final_delays = shrunk_delays[..consumed].to_vec();
    let (property, detail) = match &verdict.violation {
        Some(v) => (v.property.clone(), v.detail.clone()),
        // Shrinking always preserves the violation; keep the original as a
        // defensive fallback.
        None => (violation.property.clone(), violation.detail.clone()),
    };
    out.witness = Some(Witness::new(&shrunk_spec, final_delays, &property, &detail));
}

/// Run a wave of independent schedules, `jobs` at a time. Workers claim
/// run indices off a shared counter; results land in their slot, so the
/// returned order matches `plans` regardless of completion order.
pub(crate) fn run_wave(
    spec: &CheckSpec,
    plans: &[Plan],
    rmode: RecorderMode,
    jobs: usize,
) -> Vec<RunVerdict> {
    if jobs <= 1 || plans.len() <= 1 {
        return plans
            .iter()
            .map(|p| run_schedule_mode(spec, p, rmode))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunVerdict>>> = plans.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(plans.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= plans.len() {
                    break;
                }
                let verdict = run_schedule_mode(spec, &plans[i], rmode);
                *slots[i].lock().expect("wave slot poisoned") = Some(verdict);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("wave slot poisoned")
                .expect("every claimed slot is filled")
        })
        .collect()
}

/// Whether the DPOR window argument holds for this instance (see the
/// module docs): hook commands must land beyond any delay window, and
/// every timed queue item must be visible in the delivery log.
pub(crate) fn dpor_applicable(spec: &CheckSpec) -> bool {
    spec.arq.is_none() && spec.eat >= spec.nu && (!spec.liveness || spec.think >= spec.nu)
}

/// Whether flipping the branch point recorded as `r` commutes with the
/// rest of the run: no dependent item was pending in its window at choice
/// time, and no other delivery of the run — wherever it was sent —
/// arrives at the same destination within the window.
pub(crate) fn flip_commutes(r: &DeliveryRecord, deliveries: &[DeliveryRecord]) -> bool {
    if r.dependent != 0 {
        return false;
    }
    let lo = r.now + r.earliest;
    let hi = r.now + r.latest;
    !deliveries.iter().any(|o| {
        if o.choice == r.choice {
            return false; // the flipped delivery itself
        }
        let arrive = o.now + o.delay;
        o.to == r.to && arrive >= lo && arrive <= hi
    })
}

/// Stateless DFS over branch decisions, CHESS-style, organized as waves.
///
/// Every run is identified by its prefix of flip decisions; a run's
/// children flip one of its default-earliest branch points (at or beyond
/// the prefix, within the depth bound) to the latest delay. Each
/// earliest/latest schedule of the bounded tree is generated exactly once:
/// a prefix ending in `1` decomposes uniquely as `parent ++ 0^m ++ 1`.
/// State digests prune subtrees already explored from an identical engine
/// state; DPOR prunes flips that provably commute.
fn dfs(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    let mut out = new_exploration();
    let table = DigestTable::with_capacity(1 << 16);
    let dpor_on = cfg.dpor && dpor_applicable(spec);
    let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
    let mut truncated = false;
    while !frontier.is_empty() {
        let budget = cfg.max_schedules - out.schedules;
        if budget == 0 {
            return out; // budget exhausted: incomplete
        }
        let wave: Vec<Vec<u8>> = if frontier.len() > budget {
            truncated = true;
            frontier.drain(..budget).collect()
        } else {
            std::mem::take(&mut frontier)
        };
        let plans: Vec<Plan> = wave
            .iter()
            .map(|prefix| Plan::Dfs {
                prefix: prefix.clone(),
                dedup: cfg.dedup,
            })
            .collect();
        let verdicts = run_wave(spec, &plans, RecorderMode::default(), cfg.jobs);
        out.schedules += verdicts.len();
        // Sequential merge, in wave order: the first violating run wins
        // deterministically, otherwise children join the next frontier.
        for verdict in &verdicts {
            out.max_branch_points = out.max_branch_points.max(verdict.choices.len());
            if let Some(violation) = &verdict.violation {
                let delays: Vec<u64> = verdict.choices.iter().map(|c| c.delay).collect();
                finish(spec, cfg, delays, violation, &mut out);
                return out;
            }
        }
        for (prefix, verdict) in wave.iter().zip(&verdicts) {
            let limit = verdict.choices.len().min(cfg.max_depth);
            for i in prefix.len()..limit {
                debug_assert_eq!(verdict.choices[i].index, 0, "beyond-prefix default");
                if dpor_on {
                    let record = verdict.deliveries.iter().find(|d| d.choice == Some(i));
                    if record.is_some_and(|r| flip_commutes(r, &verdict.deliveries)) {
                        out.dpor_prunes += 1;
                        continue;
                    }
                }
                if cfg.dedup {
                    if let Some(digest) = verdict.choices[i].digest {
                        if table.insert(digest) == Insert::Present {
                            out.dedup_prunes += 1;
                            continue;
                        }
                    }
                }
                let mut child: Vec<u8> = verdict.choices[..i].iter().map(|c| c.index).collect();
                child.push(1);
                frontier.push(child);
            }
        }
    }
    out.complete = !truncated;
    out
}

/// Sampling waves have a fixed size so walk membership per wave — and
/// thus the first violating walk, the schedule count, and the witness —
/// never depend on `jobs`.
const SAMPLE_WAVE: usize = 8;

/// Independent walks: one run per derived seed, random or PCT.
fn sample(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    let mut out = new_exploration();
    let mut walk = 0usize;
    while walk < cfg.max_schedules {
        let wave_len = SAMPLE_WAVE.min(cfg.max_schedules - walk);
        let plans: Vec<Plan> = (walk..walk + wave_len)
            .map(|w| {
                let seed = spec.seed.wrapping_add(w as u64);
                match cfg.strategy {
                    StrategyKind::Random => Plan::Random { seed },
                    StrategyKind::Pct => Plan::Pct {
                        seed,
                        changes: cfg.pct_changes,
                    },
                    StrategyKind::Dfs => unreachable!("sample() only runs sampling strategies"),
                }
            })
            .collect();
        let verdicts = run_wave(spec, &plans, RecorderMode::default(), cfg.jobs);
        out.schedules += verdicts.len();
        for verdict in &verdicts {
            out.max_branch_points = out.max_branch_points.max(verdict.choices.len());
            if let Some(violation) = &verdict.violation {
                let delays: Vec<u64> = verdict.choices.iter().map(|c| c.delay).collect();
                finish(spec, cfg, delays, violation, &mut out);
                return out;
            }
        }
        walk += wave_len;
    }
    out.complete = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mutation;
    use crate::witness::replay;
    use harness::AlgKind;

    fn line(n: usize) -> Vec<(u32, u32)> {
        (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn strategy_names_round_trip() {
        for k in [StrategyKind::Dfs, StrategyKind::Random, StrategyKind::Pct] {
            assert_eq!(StrategyKind::parse(k.name()).unwrap(), k);
        }
        assert!(StrategyKind::parse("bfs").is_err());
    }

    #[test]
    fn dfs_finds_shrinks_and_replays_the_seeded_bug() {
        let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
        spec.mutation = Mutation::NoSdfGuard;
        let result = explore(&spec, &ExploreConfig::default());
        let witness = result.witness.expect("mutation must be found");
        assert_eq!(witness.property, "lme-safety");
        let (_, verdict) = replay(&witness).unwrap();
        let violation = verdict.violation.expect("witness must replay");
        assert_eq!(violation.property, witness.property);
        assert_eq!(violation.detail, witness.detail);
    }

    #[test]
    fn dfs_on_intact_algorithm_reports_no_witness() {
        let spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
        let cfg = ExploreConfig {
            max_schedules: 64,
            max_depth: 6,
            ..ExploreConfig::default()
        };
        let result = explore(&spec, &cfg);
        assert!(result.witness.is_none(), "intact A1 must be clean");
        assert!(result.schedules >= 1);
    }

    #[test]
    fn dedup_prunes_without_changing_the_verdict() {
        let spec = CheckSpec::new(AlgKind::A2, "line:2", 2, line(2));
        let base = ExploreConfig {
            max_schedules: 48,
            max_depth: 5,
            ..ExploreConfig::default()
        };
        let with = explore(&spec, &base);
        let without = explore(
            &spec,
            &ExploreConfig {
                dedup: false,
                ..base
            },
        );
        assert!(with.witness.is_none());
        assert!(without.witness.is_none());
        assert!(with.schedules <= without.schedules);
    }

    #[test]
    fn sampling_strategies_find_the_seeded_bug_too() {
        for strategy in [StrategyKind::Random, StrategyKind::Pct] {
            let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
            spec.mutation = Mutation::NoSdfGuard;
            let cfg = ExploreConfig {
                strategy,
                max_schedules: 32,
                ..ExploreConfig::default()
            };
            let result = explore(&spec, &cfg);
            assert!(
                result.witness.is_some(),
                "{} should find the mutation",
                strategy.name()
            );
        }
    }

    #[test]
    fn jobs_do_not_change_counts_or_witnesses() {
        for (alg, mutation) in [
            (AlgKind::A1Greedy, Mutation::NoSdfGuard),
            (AlgKind::A2, Mutation::None),
        ] {
            let mut spec = CheckSpec::new(alg, "line:3", 3, line(3));
            spec.mutation = mutation;
            let base = ExploreConfig {
                max_schedules: 64,
                max_depth: 6,
                ..ExploreConfig::default()
            };
            let one = explore(&spec, &base);
            let four = explore(
                &spec,
                &ExploreConfig {
                    jobs: 4,
                    ..base.clone()
                },
            );
            assert_eq!(one.schedules, four.schedules);
            assert_eq!(one.complete, four.complete);
            assert_eq!(one.dedup_prunes, four.dedup_prunes);
            assert_eq!(one.dpor_prunes, four.dpor_prunes);
            assert_eq!(
                one.witness.as_ref().map(Witness::to_json),
                four.witness.as_ref().map(Witness::to_json),
                "{}: witness must be byte-identical across jobs",
                alg.name()
            );
        }
    }

    #[test]
    fn dpor_prunes_flips_without_changing_the_verdict() {
        let spec = CheckSpec::new(AlgKind::A2, "line:3", 3, line(3));
        let base = ExploreConfig {
            max_schedules: 128,
            max_depth: 8,
            dedup: false,
            ..ExploreConfig::default()
        };
        let with = explore(&spec, &base);
        let without = explore(
            &spec,
            &ExploreConfig {
                dpor: false,
                ..base
            },
        );
        assert!(with.witness.is_none());
        assert!(without.witness.is_none());
        assert!(
            with.schedules <= without.schedules,
            "DPOR must not enlarge the schedule space ({} vs {})",
            with.schedules,
            without.schedules
        );
    }
}
