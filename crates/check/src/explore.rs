//! Schedule-space exploration drivers: exhaustive DFS, random walks, PCT.

use std::collections::HashSet;

use crate::spec::CheckSpec;
use crate::strategy::Plan;
use crate::verdict::{run_schedule, PropertyViolation};
use crate::witness::{shrink, Witness};

/// Which exploration strategy to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StrategyKind {
    /// Bounded exhaustive DFS over earliest/latest branch decisions with
    /// state-digest deduplication and commuting-deliveries reduction.
    #[default]
    Dfs,
    /// Independent seeded random walks over the full delay windows.
    Random,
    /// PCT-style priority schedules, one per seed.
    Pct,
}

impl StrategyKind {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Dfs => "dfs",
            StrategyKind::Random => "random",
            StrategyKind::Pct => "pct",
        }
    }

    /// Parse a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid spellings.
    pub fn parse(s: &str) -> Result<StrategyKind, String> {
        match s {
            "dfs" => Ok(StrategyKind::Dfs),
            "random" => Ok(StrategyKind::Random),
            "pct" => Ok(StrategyKind::Pct),
            other => Err(format!(
                "unknown strategy '{other}' (expected 'dfs', 'random' or 'pct')"
            )),
        }
    }
}

/// Exploration bounds and options.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Strategy to run.
    pub strategy: StrategyKind,
    /// Maximum number of schedules: the DFS backtracking budget, or the
    /// number of random/PCT walks.
    pub max_schedules: usize,
    /// DFS flips only the first `max_depth` branch points of a run (the
    /// classic preemption/depth bound of stateless model checking).
    pub max_depth: usize,
    /// PCT priority change points per walk.
    pub pct_changes: usize,
    /// Deduplicate DFS subtrees by engine state digest.
    pub dedup: bool,
    /// Maximum replays spent shrinking a found witness.
    pub shrink_budget: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            strategy: StrategyKind::Dfs,
            max_schedules: 256,
            max_depth: 12,
            pct_changes: 3,
            dedup: true,
            shrink_budget: 200,
        }
    }
}

/// The outcome of one exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Schedules actually executed (excluding shrink replays).
    pub schedules: usize,
    /// DFS: the bounded tree was exhausted. Sampling: every requested walk
    /// ran. False when the schedule budget cut exploration short.
    pub complete: bool,
    /// Largest number of branch points seen in any single run.
    pub max_branch_points: usize,
    /// DFS subtrees skipped because their pre-choice state digest was
    /// already explored.
    pub dedup_prunes: usize,
    /// Replays spent shrinking the witness.
    pub shrink_runs: usize,
    /// The shrunk counterexample, if any schedule violated a property.
    pub witness: Option<Witness>,
}

/// Explore the schedule space of `spec` under `cfg`, stopping at the first
/// violation (which is then shrunk into the returned witness).
pub fn explore(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    match cfg.strategy {
        StrategyKind::Dfs => dfs(spec, cfg),
        StrategyKind::Random | StrategyKind::Pct => sample(spec, cfg),
    }
}

fn new_exploration() -> Exploration {
    Exploration {
        schedules: 0,
        complete: false,
        max_branch_points: 0,
        dedup_prunes: 0,
        shrink_runs: 0,
        witness: None,
    }
}

/// Shrink a violating schedule and attach the canonical witness.
fn finish(
    spec: &CheckSpec,
    cfg: &ExploreConfig,
    delays: Vec<u64>,
    violation: &PropertyViolation,
    out: &mut Exploration,
) {
    let (shrunk_spec, shrunk_delays, runs) =
        shrink(spec, delays, &violation.property, cfg.shrink_budget);
    out.shrink_runs = runs;
    // One canonical replay of the shrunk schedule yields the final detail
    // string and trims never-consumed trailing choices.
    let verdict = run_schedule(
        &shrunk_spec,
        &Plan::Replay {
            delays: shrunk_delays.clone(),
        },
    );
    let consumed = shrunk_delays.len().min(verdict.choices.len());
    let final_delays = shrunk_delays[..consumed].to_vec();
    let (property, detail) = match &verdict.violation {
        Some(v) => (v.property.clone(), v.detail.clone()),
        // Shrinking always preserves the violation; keep the original as a
        // defensive fallback.
        None => (violation.property.clone(), violation.detail.clone()),
    };
    out.witness = Some(Witness::new(&shrunk_spec, final_delays, &property, &detail));
}

/// Stateless DFS over branch decisions, CHESS-style: each run follows a
/// prefix of forced decisions and defaults to the earliest delay beyond
/// it; backtracking flips the deepest yet-unflipped branch point (within
/// the depth bound) to the latest delay and truncates the suffix. With
/// two-way branching this enumerates every earliest/latest schedule of
/// the bounded tree; state digests prune subtrees already explored from
/// an identical engine state.
fn dfs(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    let mut out = new_exploration();
    let mut prefix: Vec<u8> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    loop {
        if out.schedules >= cfg.max_schedules {
            return out; // budget exhausted: incomplete
        }
        out.schedules += 1;
        let verdict = run_schedule(
            spec,
            &Plan::Dfs {
                prefix: prefix.clone(),
                dedup: cfg.dedup,
            },
        );
        out.max_branch_points = out.max_branch_points.max(verdict.choices.len());
        if let Some(violation) = &verdict.violation {
            let delays: Vec<u64> = verdict.choices.iter().map(|c| c.delay).collect();
            finish(spec, cfg, delays, violation, &mut out);
            return out;
        }
        // Backtrack: deepest branch point still on its first (earliest)
        // branch, skipping states already explored elsewhere.
        let limit = verdict.choices.len().min(cfg.max_depth);
        let mut flip: Option<usize> = None;
        for i in (0..limit).rev() {
            let point = &verdict.choices[i];
            if point.index != 0 {
                continue; // both branches done at this position
            }
            if cfg.dedup {
                if let Some(digest) = point.digest {
                    if seen.contains(&digest) {
                        out.dedup_prunes += 1;
                        continue;
                    }
                }
            }
            flip = Some(i);
            break;
        }
        match flip {
            Some(i) => {
                if cfg.dedup {
                    if let Some(digest) = verdict.choices[i].digest {
                        seen.insert(digest);
                    }
                }
                prefix = verdict.choices[..i].iter().map(|c| c.index).collect();
                prefix.push(1);
            }
            None => {
                out.complete = true;
                return out;
            }
        }
    }
}

/// Independent walks: one run per derived seed, random or PCT.
fn sample(spec: &CheckSpec, cfg: &ExploreConfig) -> Exploration {
    let mut out = new_exploration();
    for walk in 0..cfg.max_schedules as u64 {
        out.schedules += 1;
        let seed = spec.seed.wrapping_add(walk);
        let plan = match cfg.strategy {
            StrategyKind::Random => Plan::Random { seed },
            StrategyKind::Pct => Plan::Pct {
                seed,
                changes: cfg.pct_changes,
            },
            StrategyKind::Dfs => unreachable!("sample() only runs sampling strategies"),
        };
        let verdict = run_schedule(spec, &plan);
        out.max_branch_points = out.max_branch_points.max(verdict.choices.len());
        if let Some(violation) = &verdict.violation {
            let delays: Vec<u64> = verdict.choices.iter().map(|c| c.delay).collect();
            finish(spec, cfg, delays, violation, &mut out);
            return out;
        }
    }
    out.complete = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mutation;
    use crate::witness::replay;
    use harness::AlgKind;

    fn line(n: usize) -> Vec<(u32, u32)> {
        (0..n as u32 - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn strategy_names_round_trip() {
        for k in [StrategyKind::Dfs, StrategyKind::Random, StrategyKind::Pct] {
            assert_eq!(StrategyKind::parse(k.name()).unwrap(), k);
        }
        assert!(StrategyKind::parse("bfs").is_err());
    }

    #[test]
    fn dfs_finds_shrinks_and_replays_the_seeded_bug() {
        let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
        spec.mutation = Mutation::NoSdfGuard;
        let result = explore(&spec, &ExploreConfig::default());
        let witness = result.witness.expect("mutation must be found");
        assert_eq!(witness.property, "lme-safety");
        let (_, verdict) = replay(&witness).unwrap();
        let violation = verdict.violation.expect("witness must replay");
        assert_eq!(violation.property, witness.property);
        assert_eq!(violation.detail, witness.detail);
    }

    #[test]
    fn dfs_on_intact_algorithm_reports_no_witness() {
        let spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
        let cfg = ExploreConfig {
            max_schedules: 64,
            max_depth: 6,
            ..ExploreConfig::default()
        };
        let result = explore(&spec, &cfg);
        assert!(result.witness.is_none(), "intact A1 must be clean");
        assert!(result.schedules >= 1);
    }

    #[test]
    fn dedup_prunes_without_changing_the_verdict() {
        let spec = CheckSpec::new(AlgKind::A2, "line:2", 2, line(2));
        let base = ExploreConfig {
            max_schedules: 48,
            max_depth: 5,
            ..ExploreConfig::default()
        };
        let with = explore(&spec, &base);
        let without = explore(
            &spec,
            &ExploreConfig {
                dedup: false,
                ..base
            },
        );
        assert!(with.witness.is_none());
        assert!(without.witness.is_none());
        assert!(with.schedules <= without.schedules);
    }

    #[test]
    fn sampling_strategies_find_the_seeded_bug_too() {
        for strategy in [StrategyKind::Random, StrategyKind::Pct] {
            let mut spec = CheckSpec::new(AlgKind::A1Greedy, "line:2", 2, line(2));
            spec.mutation = Mutation::NoSdfGuard;
            let cfg = ExploreConfig {
                strategy,
                max_schedules: 32,
                ..ExploreConfig::default()
            };
            let result = explore(&spec, &cfg);
            assert!(
                result.witness.is_some(),
                "{} should find the mutation",
                strategy.name()
            );
        }
    }
}
