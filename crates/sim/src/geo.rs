//! Spatial indexing for the link engine: a uniform hash grid over node
//! positions plus an immutable CSR adjacency snapshot.
//!
//! The grid partitions the plane into square cells slightly wider than the
//! radio range, so any two nodes within range of each other always sit in
//! the same cell or in horizontally/vertically/diagonally adjacent cells.
//! Link re-derivation after a node moves therefore only needs to examine
//! the ≤ 9 cells around the node instead of all `n` peers — the candidate
//! set scales with *local density*, not with the network size.
//!
//! Correctness does not depend on the grid being tight: the grid only
//! *prunes* candidates, and every surviving candidate is still checked
//! with the exact unit-disk predicate. The only hazard is a false
//! negative (a peer within range missing from the 3×3 neighborhood),
//! which the 1-ppb cell padding in [`cell_size`] rules out (see below).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::ids::NodeId;
use crate::world::Position;

/// Cell width for a given radio range.
///
/// The width is the radio range padded by one part per billion. With cells
/// exactly as wide as the range, a pair at distance *exactly* the range
/// whose coordinates round unluckily in `x / cell` could land two whole
/// cells apart and be missed. The padding makes the true cell-index gap of
/// an in-range pair at most `1 − 1e-9`, while the floating-point error of
/// the key computation is bounded by a few ulps of `x / cell` — many
/// orders of magnitude below the slack for any realistic coordinate
/// magnitude. A non-positive range (only coincident nodes can link)
/// degenerates to unit cells.
fn cell_size(radio_range: f64) -> f64 {
    if radio_range > 0.0 {
        radio_range * (1.0 + 1e-9)
    } else {
        1.0
    }
}

/// FNV-1a over the raw key bytes: a fixed, deterministic cell hasher (the
/// default `RandomState` would also be *observationally* deterministic —
/// the grid never iterates the whole map — but a fixed hasher keeps even
/// internal layout independent of the process).
#[derive(Clone)]
pub(crate) struct CellHasher(u64);

impl Default for CellHasher {
    fn default() -> CellHasher {
        CellHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for CellHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

type CellMap = HashMap<(i64, i64), Vec<NodeId>, BuildHasherDefault<CellHasher>>;

/// A uniform spatial hash grid: cell (slightly wider than the radio range)
/// → the nodes currently inside it. Nodes migrate between cells
/// incrementally as they move.
#[derive(Clone, Debug)]
pub(crate) struct Grid {
    cell: f64,
    cells: CellMap,
    /// Current cell key of every node (index = node ID).
    key_of: Vec<(i64, i64)>,
}

impl Grid {
    /// Build the grid for `positions` with cells sized for `radio_range`.
    pub(crate) fn new(radio_range: f64, positions: &[Position]) -> Grid {
        let mut grid = Grid {
            cell: cell_size(radio_range),
            cells: CellMap::default(),
            key_of: Vec::with_capacity(positions.len()),
        };
        for (i, &p) in positions.iter().enumerate() {
            let key = grid.key(p);
            grid.key_of.push(key);
            grid.cells.entry(key).or_default().push(NodeId(i as u32));
        }
        grid
    }

    fn key(&self, p: Position) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Migrate `n` to the cell of `new_pos` (no-op when it stays put).
    pub(crate) fn relocate(&mut self, n: NodeId, new_pos: Position) {
        let new_key = self.key(new_pos);
        let old_key = self.key_of[n.index()];
        if new_key == old_key {
            return;
        }
        let old = self.cells.get_mut(&old_key).expect("node's cell exists");
        let at = old.iter().position(|&m| m == n).expect("node in its cell");
        old.swap_remove(at);
        if old.is_empty() {
            // Keep the map proportional to *occupied* cells even under
            // unbounded motion.
            self.cells.remove(&old_key);
        }
        self.cells.entry(new_key).or_default().push(n);
        self.key_of[n.index()] = new_key;
    }

    /// Append every node in the 3×3 cell neighborhood of `p` to `out`
    /// (unsorted, may include the querying node itself). This is a
    /// superset of all nodes within radio range of `p`.
    pub(crate) fn near(&self, p: Position, out: &mut Vec<NodeId>) {
        let (cx, cy) = self.key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cell) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(cell);
                }
            }
        }
    }
}

/// An immutable compressed-sparse-row snapshot of a [`crate::World`]'s
/// adjacency: `offsets[i]..offsets[i + 1]` indexes the sorted neighbor
/// slice of node `i` inside `targets`. One flat allocation replaces the
/// per-node `Vec` collections consumers used to build, and sortedness is
/// a checked invariant rather than a convention.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Flatten per-node neighbor lists into CSR form.
    ///
    /// Debug builds assert that every row is strictly sorted by ID — the
    /// invariant all downstream consumers (BFS, edge extraction, protocol
    /// seeding) rely on instead of defensively re-sorting.
    pub(crate) fn from_lists(adj: &[Vec<NodeId>]) -> CsrAdjacency {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for row in adj {
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "adjacency row must be strictly sorted: {row:?}"
            );
            targets.extend_from_slice(row);
            offsets.push(targets.len() as u32);
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the snapshot covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of `n`, sorted by ID.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        let (a, b) = (self.offsets[n.index()], self.offsets[n.index() + 1]);
        &self.targets[a as usize..b as usize]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// All undirected edges as `(a, b)` pairs with `a < b`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.len() as u32).flat_map(move |i| {
            self.neighbors(NodeId(i))
                .iter()
                .filter(move |j| j.0 > i)
                .map(move |j| (i, j.0))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_migration_tracks_cells() {
        let positions = vec![Position { x: 0.0, y: 0.0 }, Position { x: 10.0, y: 0.0 }];
        let mut g = Grid::new(1.5, &positions);
        let mut near0 = Vec::new();
        g.near(positions[0], &mut near0);
        assert_eq!(near0, vec![NodeId(0)]);
        // Walk node 1 next to node 0: it must appear in the neighborhood.
        g.relocate(NodeId(1), Position { x: 1.0, y: 0.0 });
        near0.clear();
        g.near(positions[0], &mut near0);
        near0.sort_unstable();
        assert_eq!(near0, vec![NodeId(0), NodeId(1)]);
        // And vanish again when it leaves.
        g.relocate(NodeId(1), Position { x: -40.0, y: 7.0 });
        near0.clear();
        g.near(positions[0], &mut near0);
        assert_eq!(near0, vec![NodeId(0)]);
    }

    #[test]
    fn near_covers_exact_range_distance() {
        // Two nodes exactly one radio range apart, sitting exactly on cell
        // corners: the 3x3 neighborhood must still pair them up.
        for r in [1.0, 1.5, 2.5] {
            for k in -3i32..=3 {
                let a = Position {
                    x: f64::from(k) * r,
                    y: 0.0,
                };
                let b = Position {
                    x: f64::from(k) * r + r,
                    y: 0.0,
                };
                let g = Grid::new(r, &[a, b]);
                let mut out = Vec::new();
                g.near(a, &mut out);
                assert!(out.contains(&NodeId(1)), "r={r} k={k}: missed peer");
            }
        }
    }

    #[test]
    fn empty_cells_are_dropped() {
        let mut g = Grid::new(1.0, &[Position { x: 0.0, y: 0.0 }]);
        for i in 0..100 {
            g.relocate(
                NodeId(0),
                Position {
                    x: f64::from(i) * 5.0,
                    y: 0.0,
                },
            );
        }
        assert_eq!(g.cells.len(), 1, "stale cells must be garbage-collected");
    }

    #[test]
    fn csr_round_trips_lists() {
        let lists = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(0)],
            vec![NodeId(0)],
            vec![],
        ];
        let csr = CsrAdjacency::from_lists(&lists);
        assert_eq!(csr.len(), 4);
        assert!(!csr.is_empty());
        assert_eq!(csr.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(3)), &[]);
        assert_eq!(csr.degree(NodeId(0)), 2);
        assert_eq!(csr.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    #[cfg(debug_assertions)]
    fn csr_rejects_unsorted_rows() {
        let _ = CsrAdjacency::from_lists(&[vec![NodeId(2), NodeId(1)]]);
    }
}
