//! The physical world: node positions, unit-disk connectivity, motion and
//! crash status.

use crate::geo::{CsrAdjacency, Grid};
use crate::ids::NodeId;

/// A point in the 2D plane.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position { x, y }
    }
}

/// Which link-derivation engine a geometric [`World`] uses.
///
/// Both engines implement the same unit-disk semantics and produce
/// bit-for-bit identical link-change sequences (the differential suite in
/// `tests/engine_equivalence.rs` pins this); they differ only in cost:
///
/// * [`LinkEngine::Grid`] — the default: a uniform spatial hash grid
///   (see [`crate::geo`]) restricts every link re-derivation to the ≤ 9
///   cells around the affected node, so per-step cost scales with local
///   density instead of the network size.
/// * [`LinkEngine::Pairwise`] — the reference O(n²) scan kept as the
///   semantic anchor; it becomes the default when the crate is compiled
///   with the `reference` feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEngine {
    /// Spatial-hash-grid fast path (default).
    Grid,
    /// Pairwise O(n²) reference path.
    Pairwise,
}

impl Default for LinkEngine {
    fn default() -> LinkEngine {
        if cfg!(feature = "reference") {
            LinkEngine::Pairwise
        } else {
            LinkEngine::Grid
        }
    }
}

/// Ongoing smooth motion of one node.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Motion {
    pub dest: Position,
    /// Distance covered per movement step.
    pub step_len: f64,
    /// Guards against stale `MoveStep` events after crash/teleport.
    pub epoch: u64,
}

/// The state of the physical world: where every node is, who is moving, who
/// has crashed, and which links currently exist.
///
/// Connectivity follows the unit-disk model: a link exists between two live
/// positions iff their distance is at most the radio range. Because positions
/// only change when a node moves, the paper's assumption that *links never
/// change between static nodes* holds by construction.
#[derive(Clone, Debug)]
pub struct World {
    radio_range: f64,
    positions: Vec<Position>,
    moving: Vec<Option<Motion>>,
    crashed: Vec<bool>,
    /// Adjacency sets, kept sorted for deterministic iteration.
    adj: Vec<Vec<NodeId>>,
    /// Spatial index over `positions`; `Some` iff this is a geometric
    /// world running the [`LinkEngine::Grid`] fast path.
    grid: Option<Grid>,
    /// Candidate peers examined by [`World::relocate`] since construction —
    /// a deterministic, machine-independent measure of link-update cost
    /// (the grid path examines O(local density) candidates per step, the
    /// pairwise path always examines `n − 1`).
    scanned: u64,
    /// Explicit-graph mode: links were given directly instead of being
    /// derived from positions; such worlds are immutable (no movement).
    explicit: bool,
    /// Active partition cut, as a side mask: links between nodes whose
    /// mask bits differ are suppressed. `None` = no partition in force.
    cut: Option<Vec<bool>>,
    /// Links the active cut severed, as `(outside, inside)` pairs — the
    /// restoration list for explicit worlds, whose links cannot be
    /// re-derived from geometry.
    severed: Vec<(NodeId, NodeId)>,
}

/// A change to the link set caused by a node's position update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkChange {
    /// A link formed between the two nodes.
    Up(NodeId, NodeId),
    /// The link between the two nodes broke.
    Down(NodeId, NodeId),
}

impl World {
    /// Create a world with the given positions; links are derived from the
    /// unit-disk rule immediately (this is the initial topology, established
    /// without LinkUp notifications). Uses the default [`LinkEngine`].
    pub fn new(radio_range: f64, positions: Vec<Position>) -> World {
        World::with_engine(radio_range, positions, LinkEngine::default())
    }

    /// Create a world with an explicitly chosen link-derivation engine.
    /// Both engines produce identical link sets and change sequences; see
    /// [`LinkEngine`].
    pub fn with_engine(radio_range: f64, positions: Vec<Position>, engine: LinkEngine) -> World {
        let n = positions.len();
        let grid = match engine {
            LinkEngine::Grid => Some(Grid::new(radio_range, &positions)),
            LinkEngine::Pairwise => None,
        };
        let mut world = World {
            radio_range,
            positions,
            moving: vec![None; n],
            crashed: vec![false; n],
            adj: vec![Vec::new(); n],
            grid,
            scanned: 0,
            explicit: false,
            cut: None,
            severed: Vec::new(),
        };
        if let Some(grid) = &world.grid {
            // One candidate query per node; each in-range candidate pair is
            // seen from both sides, so no cross-wiring pass is needed.
            let mut cand = Vec::new();
            for i in 0..n {
                let me = NodeId(i as u32);
                cand.clear();
                grid.near(world.positions[i], &mut cand);
                let mut row: Vec<NodeId> = cand
                    .iter()
                    .copied()
                    .filter(|&j| {
                        j != me
                            && world.positions[i].distance(world.positions[j.index()])
                                <= world.radio_range
                    })
                    .collect();
                row.sort_unstable();
                world.adj[i] = row;
            }
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    if world.in_range(NodeId(i as u32), NodeId(j as u32)) {
                        world.adj[i].push(NodeId(j as u32));
                        world.adj[j].push(NodeId(i as u32));
                    }
                }
            }
            for a in &mut world.adj {
                a.sort_unstable();
            }
        }
        world
    }

    /// Create a world whose links are given *explicitly* instead of being
    /// derived from geometry — for experiments on topologies that unit
    /// disks cannot embed (stars, expanders, adversarial graphs). Nodes are
    /// placed on a synthetic far-apart line so geometry never interferes.
    ///
    /// Explicit worlds are immutable: movement is rejected (crashes are
    /// fine — a crash does not change links).
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or an endpoint ≥ `n`.
    pub fn from_adjacency(n: usize, edges: &[(u32, u32)]) -> World {
        let mut world = World {
            radio_range: 0.0,
            positions: (0..n)
                .map(|i| Position {
                    x: i as f64 * 1e6,
                    y: 0.0,
                })
                .collect(),
            moving: vec![None; n],
            crashed: vec![false; n],
            adj: vec![Vec::new(); n],
            grid: None,
            scanned: 0,
            explicit: true,
            cut: None,
            severed: Vec::new(),
        };
        for &(a, b) in edges {
            assert_ne!(a, b, "self-loop");
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            insert_sorted(&mut world.adj[a as usize], NodeId(b));
            insert_sorted(&mut world.adj[b as usize], NodeId(a));
        }
        world
    }

    /// Whether this world's links were given explicitly (immutable
    /// topology).
    pub fn is_explicit(&self) -> bool {
        self.explicit
    }

    /// The link-derivation engine in force.
    pub fn link_engine(&self) -> LinkEngine {
        if self.grid.is_some() {
            LinkEngine::Grid
        } else {
            LinkEngine::Pairwise
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of `n`.
    pub fn position(&self, n: NodeId) -> Position {
        self.positions[n.index()]
    }

    /// Whether `n` is currently moving.
    pub fn is_moving(&self, n: NodeId) -> bool {
        self.moving[n.index()].is_some()
    }

    /// Whether `n` has crashed.
    pub fn is_crashed(&self, n: NodeId) -> bool {
        self.crashed[n.index()]
    }

    /// Current neighbors of `n`, sorted by ID.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// An immutable CSR snapshot of the whole adjacency (sorted rows,
    /// checked in debug builds). Bulk consumers — BFS, edge extraction,
    /// protocol seeding — should take this instead of re-collecting
    /// per-node `Vec`s.
    pub fn csr_snapshot(&self) -> CsrAdjacency {
        CsrAdjacency::from_lists(&self.adj)
    }

    /// Whether a link currently exists between `a` and `b`.
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Maximum node degree in the current topology (the paper's δ).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Candidate peers examined by [`World::relocate`] so far — a
    /// deterministic cost counter used by `lme bench scale` to show the
    /// grid path's per-step work tracks local density, not `n`.
    pub fn candidates_examined(&self) -> u64 {
        self.scanned
    }

    /// Hop distance between `a` and `b` in the current communication graph,
    /// or `None` if disconnected. Used by failure-locality probes.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[a.index()] = 0;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    if v == b {
                        return Some(dist[v.index()]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions[a.index()].distance(self.positions[b.index()]) <= self.radio_range
    }

    pub(crate) fn motion(&self, n: NodeId) -> Option<&Motion> {
        self.moving[n.index()].as_ref()
    }

    pub(crate) fn begin_motion(&mut self, n: NodeId, dest: Position, step_len: f64) -> u64 {
        assert!(
            !self.explicit,
            "explicit-graph worlds are immutable: movement rejected"
        );
        let epoch = self.moving[n.index()].as_ref().map_or(0, |m| m.epoch) + 1;
        self.moving[n.index()] = Some(Motion {
            dest,
            step_len,
            epoch,
        });
        epoch
    }

    pub(crate) fn end_motion(&mut self, n: NodeId) {
        self.moving[n.index()] = None;
    }

    pub(crate) fn crash(&mut self, n: NodeId) {
        self.crashed[n.index()] = true;
        // A node does not change its location after it fails.
        self.moving[n.index()] = None;
    }

    /// Mark `n` crashed from *outside* the engine — used by hosts (the
    /// live runtime's trace validator) that maintain a mirror world while
    /// replaying a recorded execution through hooks. Same semantics as an
    /// engine crash: the node never moves again and its links stay up.
    pub fn mark_crashed(&mut self, n: NodeId) {
        self.crash(n);
    }

    pub(crate) fn recover(&mut self, n: NodeId) {
        // Links were never taken down by the crash, so clearing the flag
        // is all the physical world needs; the engine owns the rejoin
        // handshake (link flaps, fresh protocol incarnation).
        self.crashed[n.index()] = false;
    }

    /// Clear the crashed flag of `n` from *outside* the engine — the
    /// recovery counterpart of [`World::mark_crashed`] for host-side
    /// mirror worlds.
    pub fn mark_recovered(&mut self, n: NodeId) {
        self.recover(n);
    }

    /// Move `n` one motion step toward its destination; returns the link
    /// changes caused and whether the destination has been reached.
    pub(crate) fn step_motion(&mut self, n: NodeId) -> (Vec<LinkChange>, bool) {
        let motion = self.moving[n.index()].clone().expect("no motion to step");
        let pos = self.positions[n.index()];
        let remaining = pos.distance(motion.dest);
        let arrived = remaining <= motion.step_len;
        let new_pos = if arrived {
            motion.dest
        } else {
            let f = motion.step_len / remaining;
            Position {
                x: pos.x + (motion.dest.x - pos.x) * f,
                y: pos.y + (motion.dest.y - pos.y) * f,
            }
        };
        let changes = self.relocate(n, new_pos);
        (changes, arrived)
    }

    /// Whether the active partition cut suppresses the link `a — b`.
    pub(crate) fn cut_blocks(&self, a: NodeId, b: NodeId) -> bool {
        self.cut
            .as_ref()
            .is_some_and(|mask| mask[a.index()] != mask[b.index()])
    }

    /// Whether a partition cut is currently in force.
    pub fn is_partitioned(&self) -> bool {
        self.cut.is_some()
    }

    /// Impose a partition: sever every existing link crossing the cut
    /// between `side` and the rest of the network, and suppress new ones
    /// until [`World::clear_cut`]. Replaces any cut already in force
    /// (healing it first, in the same batch of changes).
    pub(crate) fn apply_cut(&mut self, side: &[NodeId]) -> Vec<LinkChange> {
        let mut changes = self.clear_cut();
        let mut mask = vec![false; self.len()];
        for &s in side {
            mask[s.index()] = true;
        }
        if self.grid.is_some() {
            // Fast path: only existing links can be severed, so scanning
            // the adjacency (O(Σ degree)) replaces the O(n²) pair scan.
            // Outer index ascending over sorted rows restricted to `j > i`
            // yields the same lexicographic (i, j) order as the pair scan.
            let mut cross = Vec::new();
            for i in 0..self.len() {
                for &j in &self.adj[i] {
                    if (j.index()) > i && mask[i] != mask[j.index()] {
                        cross.push((NodeId(i as u32), j));
                    }
                }
            }
            for (a, b) in cross {
                remove_sorted(&mut self.adj[a.index()], b);
                remove_sorted(&mut self.adj[b.index()], a);
                // Record (outside, inside) for heal-time ordering.
                let pair = if mask[a.index()] { (b, a) } else { (a, b) };
                self.severed.push(pair);
                changes.push(LinkChange::Down(a, b));
            }
        } else {
            for i in 0..self.len() {
                for j in (i + 1)..self.len() {
                    if mask[i] == mask[j] {
                        continue;
                    }
                    let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                    if self.linked(a, b) {
                        remove_sorted(&mut self.adj[i], b);
                        remove_sorted(&mut self.adj[j], a);
                        let pair = if mask[i] { (b, a) } else { (a, b) };
                        self.severed.push(pair);
                        changes.push(LinkChange::Down(a, b));
                    }
                }
            }
        }
        self.cut = Some(mask);
        changes
    }

    /// Lift the active partition, if any. Links are restored as fresh
    /// incarnations: geometric worlds re-derive every cross-cut link from
    /// the *current* positions (nodes may have moved during the cut),
    /// explicit worlds restore exactly the severed list. Each `Up` pair is
    /// ordered `(outside, inside)` so the partitioned-off side rejoins as
    /// the "moving" side of the paper's link-creation symmetry breaking.
    pub(crate) fn clear_cut(&mut self) -> Vec<LinkChange> {
        let Some(mask) = self.cut.take() else {
            return Vec::new();
        };
        let mut changes = Vec::new();
        if self.explicit {
            for (outside, inside) in std::mem::take(&mut self.severed) {
                insert_sorted(&mut self.adj[outside.index()], inside);
                insert_sorted(&mut self.adj[inside.index()], outside);
                changes.push(LinkChange::Up(outside, inside));
            }
        } else if self.grid.is_some() {
            // Fast path: a healed link must join nodes within range, so
            // candidates come from the 3×3 cell neighborhood of each node.
            // Ascending outer index over a sorted candidate row restricted
            // to `j > i` reproduces the pair scan's lexicographic order.
            self.severed.clear();
            let mut cand = Vec::new();
            for i in 0..self.len() {
                let a = NodeId(i as u32);
                cand.clear();
                let grid = self.grid.as_ref().expect("grid mode");
                grid.near(self.positions[i], &mut cand);
                cand.sort_unstable();
                cand.dedup();
                for &b in &cand {
                    if b.index() <= i || mask[i] == mask[b.index()] {
                        continue;
                    }
                    if self.in_range(a, b) && !self.linked(a, b) {
                        insert_sorted(&mut self.adj[i], b);
                        insert_sorted(&mut self.adj[b.index()], a);
                        let pair = if mask[i] { (b, a) } else { (a, b) };
                        changes.push(LinkChange::Up(pair.0, pair.1));
                    }
                }
            }
        } else {
            self.severed.clear();
            for i in 0..self.len() {
                for j in (i + 1)..self.len() {
                    if mask[i] == mask[j] {
                        continue;
                    }
                    let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                    if self.in_range(a, b) && !self.linked(a, b) {
                        insert_sorted(&mut self.adj[i], b);
                        insert_sorted(&mut self.adj[j], a);
                        let pair = if mask[i] { (b, a) } else { (a, b) };
                        changes.push(LinkChange::Up(pair.0, pair.1));
                    }
                }
            }
        }
        changes
    }

    /// Set `n`'s position and recompute its incident links; returns the
    /// resulting link changes with peers sorted by ID. This is the
    /// teleport primitive; smooth motion goes through the engine's
    /// `StartMove` command.
    ///
    /// # Panics
    ///
    /// Panics on explicit-graph worlds, whose topology is immutable.
    pub fn relocate(&mut self, n: NodeId, pos: Position) -> Vec<LinkChange> {
        assert!(
            !self.explicit,
            "explicit-graph worlds are immutable: movement rejected"
        );
        self.positions[n.index()] = pos;
        let mut changes = Vec::new();
        if let Some(grid) = self.grid.as_mut() {
            grid.relocate(n, pos);
            // A link can only break with a *current* neighbor and only
            // form with a node in range of the new position — i.e. inside
            // the 3×3 cell neighborhood. The sorted union of both sets,
            // walked in ascending ID order, visits exactly the peers the
            // pairwise scan would have flagged, in the same order.
            let mut cand = Vec::new();
            grid.near(pos, &mut cand);
            cand.extend_from_slice(&self.adj[n.index()]);
            cand.sort_unstable();
            cand.dedup();
            self.scanned += cand.len() as u64;
            for peer in cand {
                if peer == n {
                    continue;
                }
                self.diff_link(n, peer, &mut changes);
            }
        } else {
            self.scanned += (self.len() as u64).saturating_sub(1);
            for j in 0..self.len() {
                let peer = NodeId(j as u32);
                if peer == n {
                    continue;
                }
                self.diff_link(n, peer, &mut changes);
            }
        }
        changes
    }

    /// Re-evaluate the single link `n — peer` against geometry and the
    /// active cut, updating the adjacency and appending any change.
    fn diff_link(&mut self, n: NodeId, peer: NodeId, changes: &mut Vec<LinkChange>) {
        let now_linked = self.in_range(n, peer) && !self.cut_blocks(n, peer);
        let was_linked = self.linked(n, peer);
        if now_linked && !was_linked {
            insert_sorted(&mut self.adj[n.index()], peer);
            insert_sorted(&mut self.adj[peer.index()], n);
            changes.push(LinkChange::Up(n, peer));
        } else if !now_linked && was_linked {
            remove_sorted(&mut self.adj[n.index()], peer);
            remove_sorted(&mut self.adj[peer.index()], n);
            changes.push(LinkChange::Down(n, peer));
        }
    }
}

fn insert_sorted(v: &mut Vec<NodeId>, x: NodeId) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

fn remove_sorted(v: &mut Vec<NodeId>, x: NodeId) {
    if let Ok(i) = v.binary_search(&x) {
        v.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> World {
        World::new(
            1.5,
            (0..n)
                .map(|i| Position {
                    x: i as f64,
                    y: 0.0,
                })
                .collect(),
        )
    }

    /// Run `f` against a line world under both engines and require the
    /// returned observations to match.
    fn both_engines<T: PartialEq + std::fmt::Debug>(n: usize, f: impl Fn(&mut World) -> T) {
        let positions: Vec<Position> = (0..n)
            .map(|i| Position {
                x: i as f64,
                y: 0.0,
            })
            .collect();
        let mut grid = World::with_engine(1.5, positions.clone(), LinkEngine::Grid);
        let mut pair = World::with_engine(1.5, positions, LinkEngine::Pairwise);
        assert_eq!(f(&mut grid), f(&mut pair), "engines disagree");
        for i in 0..n as u32 {
            assert_eq!(
                grid.neighbors(NodeId(i)),
                pair.neighbors(NodeId(i)),
                "adjacency of {i} diverged"
            );
        }
    }

    #[test]
    fn initial_links_follow_unit_disk() {
        let w = line(4);
        assert!(w.linked(NodeId(0), NodeId(1)));
        assert!(!w.linked(NodeId(0), NodeId(2)));
        assert_eq!(w.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(w.max_degree(), 2);
    }

    #[test]
    fn engines_agree_on_initial_topology_and_relocation() {
        both_engines(6, |w| {
            vec![
                w.relocate(NodeId(5), Position { x: 0.5, y: 0.5 }),
                w.relocate(NodeId(0), Position { x: 9.0, y: 0.0 }),
                // Land exactly on a cell edge (x = 2 · cell ≈ 3.0).
                w.relocate(NodeId(0), Position { x: 3.0, y: 0.0 }),
            ]
        });
    }

    #[test]
    fn engines_agree_on_cut_and_heal() {
        both_engines(7, |w| {
            vec![
                w.apply_cut(&[NodeId(3), NodeId(4)]),
                w.relocate(NodeId(4), Position { x: 0.5, y: 0.2 }),
                w.clear_cut(),
                w.apply_cut(&[NodeId(0)]),
                w.apply_cut(&[NodeId(6)]),
                w.clear_cut(),
            ]
        });
    }

    #[test]
    fn csr_snapshot_matches_neighbors() {
        let w = line(5);
        let csr = w.csr_snapshot();
        assert_eq!(csr.len(), 5);
        for i in 0..5u32 {
            assert_eq!(csr.neighbors(NodeId(i)), w.neighbors(NodeId(i)));
        }
        assert_eq!(
            csr.edges().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)]
        );
    }

    #[test]
    fn grid_engine_scans_locally() {
        // 40 nodes spread far apart: a grid relocate should examine a
        // handful of candidates, the pairwise one all n − 1.
        let positions: Vec<Position> = (0..40)
            .map(|i| Position {
                x: f64::from(i) * 10.0,
                y: 0.0,
            })
            .collect();
        let mut g = World::with_engine(1.5, positions.clone(), LinkEngine::Grid);
        let mut p = World::with_engine(1.5, positions, LinkEngine::Pairwise);
        g.relocate(NodeId(0), Position { x: 1.0, y: 0.0 });
        p.relocate(NodeId(0), Position { x: 1.0, y: 0.0 });
        assert!(
            g.candidates_examined() <= 4,
            "grid scanned {}",
            g.candidates_examined()
        );
        assert_eq!(p.candidates_examined(), 39);
        assert_eq!(g.link_engine(), LinkEngine::Grid);
        assert_eq!(p.link_engine(), LinkEngine::Pairwise);
    }

    #[test]
    fn hop_distance_bfs() {
        let w = line(5);
        assert_eq!(w.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(w.hop_distance(NodeId(2), NodeId(2)), Some(0));
        let far = World::new(
            1.0,
            vec![Position { x: 0.0, y: 0.0 }, Position { x: 10.0, y: 0.0 }],
        );
        assert_eq!(far.hop_distance(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn relocate_reports_changes() {
        let mut w = line(3);
        // Move p2 next to p0: link to p1 kept (distance 1.5 -> within), link to p0 created.
        let changes = w.relocate(NodeId(2), Position { x: 0.5, y: 0.0 });
        assert!(changes.contains(&LinkChange::Up(NodeId(2), NodeId(0))));
        assert!(w.linked(NodeId(0), NodeId(2)));
        // Move p2 far away: both links drop.
        let changes = w.relocate(NodeId(2), Position { x: 100.0, y: 0.0 });
        assert_eq!(changes.len(), 2);
        assert!(matches!(changes[0], LinkChange::Down(_, _)));
        assert!(w.neighbors(NodeId(2)).is_empty());
    }

    #[test]
    fn motion_steps_toward_destination() {
        let mut w = line(2);
        w.begin_motion(NodeId(1), Position { x: 5.0, y: 0.0 }, 1.0);
        let mut arrived = false;
        let mut guard = 0;
        while !arrived {
            let (_, done) = w.step_motion(NodeId(1));
            arrived = done;
            guard += 1;
            assert!(guard < 100, "motion never completes");
        }
        assert_eq!(w.position(NodeId(1)), Position { x: 5.0, y: 0.0 });
    }

    #[test]
    fn explicit_world_from_adjacency() {
        let w = World::from_adjacency(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(w.is_explicit());
        assert_eq!(w.neighbors(NodeId(0)).len(), 4);
        assert_eq!(w.neighbors(NodeId(1)), &[NodeId(0)]);
        assert!(
            !w.linked(NodeId(1), NodeId(2)),
            "a true star: leaves unlinked"
        );
        assert_eq!(w.hop_distance(NodeId(1), NodeId(2)), Some(2));
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn explicit_world_rejects_motion() {
        let mut w = World::from_adjacency(2, &[(0, 1)]);
        w.begin_motion(NodeId(0), Position { x: 1.0, y: 0.0 }, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn explicit_world_rejects_self_loops() {
        let _ = World::from_adjacency(2, &[(1, 1)]);
    }

    #[test]
    fn cut_severs_and_heal_restores_geometric_links() {
        let mut w = line(4);
        let down = w.apply_cut(&[NodeId(2), NodeId(3)]);
        assert_eq!(down, vec![LinkChange::Down(NodeId(1), NodeId(2))]);
        assert!(w.is_partitioned());
        assert!(!w.linked(NodeId(1), NodeId(2)));
        assert!(w.linked(NodeId(0), NodeId(1)), "intra-side links survive");
        assert!(w.linked(NodeId(2), NodeId(3)));
        let up = w.clear_cut();
        // (outside, inside): node 1 is outside the cut side, node 2 inside.
        assert_eq!(up, vec![LinkChange::Up(NodeId(1), NodeId(2))]);
        assert!(!w.is_partitioned());
        assert!(w.linked(NodeId(1), NodeId(2)));
    }

    #[test]
    fn cut_suppresses_links_formed_by_movement() {
        let mut w = line(4);
        w.apply_cut(&[NodeId(3)]);
        // Node 3 walks right next to node 0: the cut must keep them apart.
        let changes = w.relocate(NodeId(3), Position { x: 0.5, y: 0.0 });
        assert!(
            changes.iter().all(|c| matches!(c, LinkChange::Down(_, _))),
            "no cross-cut link may form during a partition: {changes:?}"
        );
        assert!(!w.linked(NodeId(0), NodeId(3)));
        // After the heal the geometry wins again (from current positions).
        let up = w.clear_cut();
        assert!(up.contains(&LinkChange::Up(NodeId(0), NodeId(3))));
        assert!(w.linked(NodeId(0), NodeId(3)));
    }

    #[test]
    fn explicit_world_heals_exactly_the_severed_links() {
        let mut w = World::from_adjacency(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let down = w.apply_cut(&[NodeId(2), NodeId(3)]);
        assert_eq!(down.len(), 2);
        assert!(!w.linked(NodeId(1), NodeId(2)));
        assert!(!w.linked(NodeId(0), NodeId(3)));
        assert!(w.linked(NodeId(2), NodeId(3)));
        let up = w.clear_cut();
        assert_eq!(up.len(), 2);
        assert!(w.linked(NodeId(1), NodeId(2)));
        assert!(w.linked(NodeId(0), NodeId(3)));
    }

    #[test]
    fn reapplying_a_cut_replaces_the_old_one() {
        let mut w = line(5);
        w.apply_cut(&[NodeId(0)]);
        assert!(!w.linked(NodeId(0), NodeId(1)));
        let changes = w.apply_cut(&[NodeId(4)]);
        assert!(changes.contains(&LinkChange::Up(NodeId(1), NodeId(0))));
        assert!(changes.contains(&LinkChange::Down(NodeId(3), NodeId(4))));
        assert!(w.linked(NodeId(0), NodeId(1)));
        assert!(!w.linked(NodeId(3), NodeId(4)));
    }

    #[test]
    fn crash_cancels_motion() {
        let mut w = line(2);
        w.begin_motion(NodeId(1), Position { x: 5.0, y: 0.0 }, 1.0);
        w.crash(NodeId(1));
        assert!(w.is_crashed(NodeId(1)));
        assert!(!w.is_moving(NodeId(1)));
    }
}
