//! Deterministic fault-injection adversary.
//!
//! A [`FaultPlan`] is a *seeded, scripted adversary* layered over the
//! engine: message drop/duplication/delay-skew per link, scripted crash
//! waves, timed network partitions, and an adaptive worst-case delay
//! adversary that always charges the maximum legal delay ν against a
//! target set. Every fault decision is drawn from a dedicated RNG (seeded
//! by [`FaultPlan::seed`], falling back to a salt of the run seed), so
//!
//! * a run with an empty plan consumes *exactly* the same random stream as
//!   a run built before this module existed, and
//! * a run with any plan is replayable byte-for-byte from its seed.
//!
//! Faults injected are counted by kind in [`FaultStats`] (surfaced through
//! `EngineStats::faults`).
//!
//! # Relation to the paper's model
//!
//! The paper assumes reliable FIFO links: *drop* and *duplicate* faults are
//! deliberately **outside** its model and exist to measure how gracefully
//! the algorithms degrade beyond their guarantees. *Crash waves*,
//! *partitions* (expressed as link failures, which the paper's link layer
//! reports) and the *max-delay adversary* (ν is an upper bound, so always
//! charging ν is a legal schedule) stay **inside** the model.

use crate::ids::NodeId;
use crate::time::SimTime;

/// Faults applied per message on matching links.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a message is delayed beyond its drawn
    /// delay by [`LinkFaults::skew_ticks`].
    pub skew: f64,
    /// Extra delay, in ticks, added to skewed messages (may exceed ν — an
    /// out-of-model fault).
    pub skew_ticks: u64,
    /// How many ticks after the original delivery the duplicate arrives.
    /// `None` = ν (the largest in-model lag). Large lags are the
    /// interesting ones: they let the original be acted on (e.g. a fork
    /// forwarded onward) before its ghost shows up.
    pub dup_lag: Option<u64>,
    /// Restrict faults to sends happening in `[start, end)` (virtual
    /// time). `None` = the whole run.
    pub window: Option<(u64, u64)>,
    /// Periodic burst amplification of all three probabilities.
    pub burst: Option<Burst>,
    /// Only fault links touching one of these nodes. `None` = every link.
    pub targets: Option<Vec<NodeId>>,
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            skew: 0.0,
            skew_ticks: 0,
            dup_lag: None,
            window: None,
            burst: None,
            targets: None,
        }
    }
}

impl LinkFaults {
    /// Whether this fault class touches the message `from → to` sent at
    /// `now` (window + target filter; the probabilities still decide).
    pub fn applies(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        if let Some((start, end)) = self.window {
            if now.0 < start || now.0 >= end {
                return false;
            }
        }
        match &self.targets {
            None => true,
            Some(ts) => ts.contains(&from) || ts.contains(&to),
        }
    }

    /// `base` probability amplified by the burst schedule at `now`,
    /// clamped to `[0, 1]`.
    pub fn rate(&self, base: f64, now: SimTime) -> f64 {
        let amplified = match &self.burst {
            Some(b) if now.0 % b.period < b.active => base * b.factor,
            _ => base,
        };
        amplified.clamp(0.0, 1.0)
    }
}

/// A periodic burst window: for `active` out of every `period` ticks, the
/// link fault probabilities are multiplied by `factor`.
#[derive(Clone, Debug, PartialEq)]
pub struct Burst {
    /// Length of one burst cycle in ticks.
    pub period: u64,
    /// Ticks at the start of each cycle during which the burst is active.
    pub active: u64,
    /// Probability multiplier while active (results clamp to `[0, 1]`).
    pub factor: f64,
}

/// The adaptive worst-case delay adversary: every message to or from a
/// target node is charged exactly ν, the maximum legal delay. This is a
/// legal schedule of the paper's model — it tests the response-time
/// analysis at its worst case, not robustness beyond the model.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayAdversary {
    /// The nodes whose traffic is slowed (both directions).
    pub targets: Vec<NodeId>,
    /// Restrict the adversary to sends in `[start, end)`. `None` = always.
    pub window: Option<(u64, u64)>,
}

impl DelayAdversary {
    /// Whether the adversary charges ν against the message `from → to`
    /// sent at `now`.
    pub fn applies(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        if let Some((start, end)) = self.window {
            if now.0 < start || now.0 >= end {
                return false;
            }
        }
        self.targets.contains(&from) || self.targets.contains(&to)
    }
}

/// A scripted simultaneous crash of several nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashWave {
    /// When the wave strikes.
    pub at: u64,
    /// The nodes that crash (already-crashed members are no-ops).
    pub nodes: Vec<NodeId>,
}

/// A timed network partition: at `at`, every link crossing the cut between
/// `side` and the rest of the network is severed; `heal_after` ticks later
/// the cut is lifted and the links that the connectivity rule then implies
/// come back as fresh incarnations.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionWindow {
    /// When the partition starts.
    pub at: u64,
    /// One side of the cut (the "partitioned-off" node set).
    pub side: Vec<NodeId>,
    /// Ticks until the cut heals.
    pub heal_after: u64,
}

/// The full adversary schedule of one run. The default plan is empty:
/// no faults, and no change to the engine's random stream.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG. `0` (the default) derives the
    /// fault seed from the run seed, so distinct run seeds still explore
    /// distinct fault schedules without extra configuration.
    pub seed: u64,
    /// Per-message link faults (drop / duplicate / delay-skew).
    pub link: Option<LinkFaults>,
    /// The adaptive maximum-delay adversary.
    pub max_delay: Option<DelayAdversary>,
    /// Scripted crash waves.
    pub crash_waves: Vec<CrashWave>,
    /// Scripted partition/heal windows.
    pub partitions: Vec<PartitionWindow>,
    /// Scripted recovery waves: at `at`, each named node — if actually
    /// crashed by then — restarts as a fresh incarnation and rejoins
    /// (see `Command::Recover`). Reuses the [`CrashWave`] shape.
    pub recovers: Vec<CrashWave>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.link.is_none()
            && self.max_delay.is_none()
            && self.crash_waves.is_empty()
            && self.partitions.is_empty()
            && self.recovers.is_empty()
    }

    /// The earliest tick from which no more faults are injected: past it
    /// the network is fault-free again (crashed nodes stay crashed). Used
    /// by harness probes to assert post-quiescence progress.
    pub fn quiescence(&self) -> u64 {
        let mut q = 0u64;
        if let Some(lf) = &self.link {
            q = q.max(match lf.window {
                Some((_, end)) => end,
                // An unbounded window never quiesces.
                None if lf.drop > 0.0 || lf.duplicate > 0.0 || lf.skew > 0.0 => u64::MAX,
                None => 0,
            });
        }
        if let Some(da) = &self.max_delay {
            q = q.max(match da.window {
                Some((_, end)) => end,
                None if !da.targets.is_empty() => u64::MAX,
                None => 0,
            });
        }
        for w in &self.crash_waves {
            q = q.max(w.at.saturating_add(1));
        }
        for w in &self.recovers {
            q = q.max(w.at.saturating_add(1));
        }
        for p in &self.partitions {
            q = q.max(p.at.saturating_add(p.heal_after).saturating_add(1));
        }
        q
    }

    /// Validate the plan's invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        let check_prob = |name: &str, p: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("fault probability {name} = {p} outside [0, 1]"));
            }
            Ok(())
        };
        let check_node = |ctx: &str, node: NodeId| -> Result<(), String> {
            if node.index() >= n_nodes {
                return Err(format!(
                    "{ctx}: node {} out of range (n = {n_nodes})",
                    node.0
                ));
            }
            Ok(())
        };
        let check_window = |ctx: &str, w: Option<(u64, u64)>| -> Result<(), String> {
            if let Some((start, end)) = w {
                if start >= end {
                    return Err(format!("{ctx}: empty window [{start}, {end})"));
                }
            }
            Ok(())
        };
        if let Some(lf) = &self.link {
            check_prob("link.drop", lf.drop)?;
            check_prob("link.duplicate", lf.duplicate)?;
            check_prob("link.skew", lf.skew)?;
            if lf.skew > 0.0 && lf.skew_ticks == 0 {
                return Err("link.skew > 0 requires skew_ticks ≥ 1".into());
            }
            if lf.dup_lag == Some(0) {
                return Err("link.dup_lag must be ≥ 1 (duplicates arrive strictly later)".into());
            }
            check_window("link faults", lf.window)?;
            if let Some(b) = &lf.burst {
                if b.period == 0 {
                    return Err("burst.period must be ≥ 1".into());
                }
                if b.active > b.period {
                    return Err(format!(
                        "burst.active ({}) exceeds burst.period ({})",
                        b.active, b.period
                    ));
                }
                if b.factor < 0.0 || b.factor.is_nan() {
                    return Err("burst.factor must be ≥ 0".into());
                }
            }
            if let Some(ts) = &lf.targets {
                if ts.is_empty() {
                    return Err("link.targets, when given, must be non-empty".into());
                }
                for &t in ts {
                    check_node("link.targets", t)?;
                }
            }
        }
        if let Some(da) = &self.max_delay {
            if da.targets.is_empty() {
                return Err("max_delay.targets must be non-empty".into());
            }
            check_window("max-delay adversary", da.window)?;
            for &t in &da.targets {
                check_node("max_delay.targets", t)?;
            }
        }
        for (i, w) in self.crash_waves.iter().enumerate() {
            if w.nodes.is_empty() {
                return Err(format!("crash wave #{i} names no nodes"));
            }
            for &t in &w.nodes {
                check_node("crash wave", t)?;
            }
        }
        for (i, w) in self.recovers.iter().enumerate() {
            if w.nodes.is_empty() {
                return Err(format!("recover wave #{i} names no nodes"));
            }
            for &t in &w.nodes {
                check_node("recover wave", t)?;
            }
        }
        for (i, p) in self.partitions.iter().enumerate() {
            if p.side.is_empty() {
                return Err(format!("partition #{i} has an empty side"));
            }
            if p.side.len() >= n_nodes {
                return Err(format!(
                    "partition #{i}: side of {} nodes leaves nothing to cut off (n = {n_nodes})",
                    p.side.len()
                ));
            }
            if p.heal_after == 0 {
                return Err(format!("partition #{i}: heal_after must be ≥ 1"));
            }
            for &t in &p.side {
                check_node("partition side", t)?;
            }
        }
        Ok(())
    }
}

/// Counters of faults actually injected, by kind. Lives inside
/// `EngineStats`. With link faults active the no-fault message ledger
/// generalizes to `sent + msgs_duplicated = delivered + dropped_in_flight
/// + msgs_dropped` (once the queue drains).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the link-fault adversary (counted separately
    /// from the engine's link-race drop classes).
    pub msgs_dropped: u64,
    /// Extra deliveries scheduled by the duplication adversary.
    pub msgs_duplicated: u64,
    /// Messages skewed beyond their drawn delay.
    pub msgs_delayed: u64,
    /// Messages whose delay the adaptive adversary forced to ν.
    pub max_delay_forced: u64,
    /// Crashes injected by scripted crash waves.
    pub crashes_injected: u64,
    /// Partition cuts applied.
    pub partitions: u64,
    /// Partition cuts healed.
    pub heals: u64,
    /// Crashed nodes actually restarted by recovery commands (counted at
    /// execution, unlike `crashes_injected`: a recover addressed to a
    /// live node is a no-op and does not count).
    pub recoveries: u64,
}

impl FaultStats {
    /// Total faults injected across every kind.
    pub fn total(&self) -> u64 {
        self.msgs_dropped
            + self.msgs_duplicated
            + self.msgs_delayed
            + self.max_delay_forced
            + self.crashes_injected
            + self.partitions
            + self.heals
            + self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate(5).unwrap();
        assert_eq!(plan.quiescence(), 0);
    }

    #[test]
    fn rejects_bad_probabilities_and_windows() {
        let mut plan = FaultPlan {
            link: Some(LinkFaults {
                drop: 1.5,
                ..LinkFaults::default()
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate(5).is_err());
        plan.link = Some(LinkFaults {
            skew: 0.5,
            skew_ticks: 0,
            ..LinkFaults::default()
        });
        assert!(plan.validate(5).is_err());
        plan.link = Some(LinkFaults {
            drop: 0.5,
            window: Some((10, 10)),
            ..LinkFaults::default()
        });
        assert!(plan.validate(5).is_err());
    }

    #[test]
    fn rejects_out_of_range_nodes_and_degenerate_partitions() {
        let plan = FaultPlan {
            crash_waves: vec![CrashWave {
                at: 5,
                nodes: vec![NodeId(9)],
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate(5).is_err());
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                at: 5,
                side: (0..5).map(NodeId).collect(),
                heal_after: 10,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate(5).is_err(), "a cut needs two sides");
        let plan = FaultPlan {
            max_delay: Some(DelayAdversary {
                targets: vec![],
                window: None,
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate(5).is_err());
    }

    #[test]
    fn window_and_targets_gate_applicability() {
        let lf = LinkFaults {
            drop: 1.0,
            window: Some((10, 20)),
            targets: Some(vec![NodeId(2)]),
            ..LinkFaults::default()
        };
        assert!(lf.applies(NodeId(2), NodeId(3), SimTime(10)));
        assert!(lf.applies(NodeId(3), NodeId(2), SimTime(19)));
        assert!(!lf.applies(NodeId(2), NodeId(3), SimTime(20)), "window end");
        assert!(!lf.applies(NodeId(2), NodeId(3), SimTime(9)), "too early");
        assert!(!lf.applies(NodeId(0), NodeId(1), SimTime(15)), "off-target");
    }

    #[test]
    fn burst_amplifies_and_clamps() {
        let lf = LinkFaults {
            drop: 0.2,
            burst: Some(Burst {
                period: 100,
                active: 10,
                factor: 10.0,
            }),
            ..LinkFaults::default()
        };
        assert_eq!(lf.rate(0.2, SimTime(5)), 1.0, "amplified 2.0 clamps to 1");
        assert_eq!(lf.rate(0.2, SimTime(50)), 0.2, "outside burst");
        assert_eq!(lf.rate(0.05, SimTime(105)), 0.5);
    }

    #[test]
    fn quiescence_covers_every_fault_class() {
        let plan = FaultPlan {
            link: Some(LinkFaults {
                drop: 0.5,
                window: Some((0, 500)),
                ..LinkFaults::default()
            }),
            max_delay: Some(DelayAdversary {
                targets: vec![NodeId(0)],
                window: Some((0, 800)),
            }),
            crash_waves: vec![CrashWave {
                at: 900,
                nodes: vec![NodeId(1)],
            }],
            partitions: vec![PartitionWindow {
                at: 100,
                side: vec![NodeId(2)],
                heal_after: 1_000,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.quiescence(), 1_101);
        let unbounded = FaultPlan {
            link: Some(LinkFaults {
                drop: 0.1,
                ..LinkFaults::default()
            }),
            ..FaultPlan::default()
        };
        assert_eq!(unbounded.quiescence(), u64::MAX);
    }
}
